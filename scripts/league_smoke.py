"""CI smoke driver for the attack league.

Runs a 2-attacker × 2-victim × 1-round league at the smallest
:class:`~repro.experiments.config.ExperimentScale` through the
``repro-experiments league`` CLI path, then replays it against the same
store and asserts the league's core contracts:

* the first run schedules exactly attackers × victims matches,
* the cached rerun schedules **zero** matches, and
* both runs produce byte-identical ``leaderboard.json`` artifacts.

Usage::

    PYTHONPATH=src python scripts/league_smoke.py [--out DIR] [--jobs N]

``--out`` keeps the leaderboard files around (CI uploads them as the
job's artifact); the default is a temp directory.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.experiments.cli import main as cli_main  # noqa: E402
from repro.store import ArtifactStore  # noqa: E402
from repro.telemetry import Telemetry, use_telemetry  # noqa: E402

ATTACKERS = ["random", "pgd"]
VICTIMS = ["Hopper-v0:ppo", "Walker2d-v0:ppo"]


def run_cli(out_dir: Path, store_dir: Path, jobs: int, resume: bool) -> dict:
    """One CLI invocation under an in-memory telemetry; returns counters."""
    telemetry = Telemetry.in_memory()
    if resume:
        argv = ["league", "--resume", str(out_dir)]
    else:
        argv = (["league", "--attackers"] + ATTACKERS
                + ["--victims"] + VICTIMS
                + ["--rounds", "1", "--scale", "smoke", "--pgd-steps", "2",
                   "--out", str(out_dir)])
    argv += ["--store-dir", str(store_dir), "--jobs", str(jobs)]
    with use_telemetry(telemetry):
        code = cli_main(argv)
    if code != 0:
        raise SystemExit(f"league CLI exited {code} (argv: {argv})")
    counters = telemetry.metrics.snapshot().get("counters", {})
    return {name: value for name, value in counters.items()
            if name.startswith(("league.", "store."))}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=None, metavar="DIR",
                        help="leaderboard output dir (kept for CI upload)")
    parser.add_argument("--jobs", type=int, default=2)
    args = parser.parse_args()

    workdir = Path(args.out) if args.out else Path(tempfile.mkdtemp(prefix="league-smoke-"))
    workdir.mkdir(parents=True, exist_ok=True)
    store_dir = workdir / "store"
    out_dir = workdir / "league"
    expected = len(ATTACKERS) * len(VICTIMS)

    cold = run_cli(out_dir, store_dir, args.jobs, resume=False)
    print(f"[smoke] cold run counters: {cold}")
    scheduled = cold.get("league.matches_scheduled", 0)
    if scheduled != expected:
        raise SystemExit(f"cold run scheduled {scheduled} matches, "
                         f"expected {expected}")
    cold_bytes = (out_dir / "leaderboard.json").read_bytes()

    warm = run_cli(out_dir, store_dir, args.jobs, resume=True)
    print(f"[smoke] cached rerun counters: {warm}")
    if warm.get("league.matches_scheduled", 0) != 0:
        raise SystemExit("cached rerun scheduled matches; the store missed: "
                         f"{warm}")
    if warm.get("league.matches_cached", 0) != expected:
        raise SystemExit(f"cached rerun served {warm.get('league.matches_cached')} "
                         f"matches from the store, expected {expected}")
    warm_bytes = (out_dir / "leaderboard.json").read_bytes()
    if warm_bytes != cold_bytes:
        raise SystemExit("leaderboard bytes differ between cold run and "
                         "cached replay — determinism contract broken")

    store = ArtifactStore(store_dir)
    kinds = sorted({entry.spec.get("kind") for entry in store.list()})
    print(f"[smoke] store holds {len(store)} artifacts ({', '.join(map(str, kinds))})")
    print((out_dir / "leaderboard.txt").read_text())
    print(f"[smoke] OK: {expected} matches scheduled once, replay was pure "
          f"cache hits, leaderboard bytes identical ({len(cold_bytes)} bytes) "
          f"-> {out_dir}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
