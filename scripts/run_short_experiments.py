"""Run the short-scale experiment battery and dump results to
``artifacts/results/``.  Used to populate EXPERIMENTS.md.

Trimmed to a representative subset per table/figure so the battery fits
a single-core budget; the bench files expose the full grids.

``--jobs N`` routes the per-table/figure sections through the
process-pool scheduler (:mod:`repro.runtime.scheduler`): each section is
an independent job that writes its own artifact files, and a crashed
section is reported without aborting the battery.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.experiments import (
    SCALES,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7,
    run_table1,
    run_table2,
)
from repro.experiments.table3 import br_improvement_count, render_table3
from repro.runtime import Job, run_parallel

OUT = Path("artifacts/results")
SCALE = SCALES["short"]


def save(name: str, text: str, payload=None) -> None:
    OUT.mkdir(parents=True, exist_ok=True)
    (OUT / f"{name}.txt").write_text(text)
    if payload is not None:
        (OUT / f"{name}.json").write_text(json.dumps(payload, indent=2, default=float))
    print(f"=== saved {name} ===\n{text}\n", flush=True)


def section_table1() -> str:
    t1 = run_table1(
        env_ids=["Hopper-v0"],
        defenses=["ppo", "sa", "wocar", "atla"],
        attacks=["none", "random", "sarl", "imap-pc", "imap-r"],
        scale=SCALE, seed=0,
    )
    text = t1.render(attacks=["none", "random", "sarl", "imap-pc", "imap-r"])
    save("table1", text, [c.__dict__ for c in t1.cells])
    return "table1"


def section_table2_table3() -> str:
    t2 = run_table2(
        env_ids=["SparseHopper-v0", "AntUMaze-v0", "FetchReach-v0"],
        attacks=["none", "random", "sarl", "imap-sc", "imap-pc", "imap-r", "imap-d"],
        include_br=True, scale=SCALE, seed=0,
    )
    wins, total = t2.imap_dominates_sarl_count()
    improved, total3 = br_improvement_count(t2)
    text = (t2.render() + f"\nbest-IMAP <= SA-RL on {wins}/{total} tasks"
            + f"\nBR improves some variant on {improved}/{total3} tasks"
            + "\n\n" + render_table3(t2))
    save("table2_table3", text, [c.__dict__ for c in t2.cells])
    return "table2_table3"


def section_fig5() -> str:
    f5 = run_fig5(game_ids=["YouShallNotPass-v0"], scale=SCALE, seed=0)
    lines = []
    payload = {}
    OUT.mkdir(parents=True, exist_ok=True)
    for game_id, data in f5.items():
        lines.append(data["curves"].render(y_name="asr"))
        for attack, asr in data["final_asr"].items():
            lines.append(f"  {attack}: final ASR {asr:.2%}")
        payload[game_id] = {
            "final_asr": data["final_asr"],
            "curves": {k: {"x": c.x, "y": c.y} for k, c in data["curves"].curves.items()},
        }
        data["curves"].to_json(OUT / f"fig5_{game_id}.curves.json")
    save("fig5", "\n".join(lines), payload)
    return "fig5"


def section_fig4() -> str:
    f4 = run_fig4(env_ids=["SparseWalker2d-v0"],
                  attacks=["sarl", "imap-pc", "imap-r"], scale=SCALE, seed=0)
    lines = []
    OUT.mkdir(parents=True, exist_ok=True)
    for env_id, figure in f4.items():
        lines.append(figure.render(y_name="victim success"))
        figure.to_json(OUT / f"fig4_{env_id}.curves.json")
    save("fig4", "\n\n".join(lines))
    return "fig4"


def section_fig6() -> str:
    f6 = run_fig6(env_id="SparseHopper-v0", etas=[0.1, 1.0], scale=SCALE, seed=0)
    save("fig6",
         f6["curves"].render(y_name="victim success")
         + "\n" + "\n".join(f"eta={k}: victim reward {v:.2f}"
                            for k, v in f6["final_reward"].items()),
         {"final_reward": {str(k): v for k, v in f6["final_reward"].items()}})
    return "fig6"


def section_fig7() -> str:
    f7 = run_fig7(xis=[0.5, 1.0], scale=SCALE, seed=0)
    save("fig7",
         f7["curves"].render(y_name="asr")
         + "\n" + "\n".join(f"xi={k}: final ASR {v:.2%}"
                            for k, v in f7["final_asr"].items()),
         {"final_asr": {str(k): v for k, v in f7["final_asr"].items()}})
    return "fig7"


SECTIONS = [section_table1, section_table2_table3, section_fig5,
            section_fig4, section_fig6, section_fig7]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=1,
                        help="process-pool workers for the battery sections "
                             "(default 1: run sequentially)")
    args = parser.parse_args(argv)

    t0 = time.time()
    if args.jobs <= 1:
        for section in SECTIONS:
            name = section()
            print(f"[t={time.time()-t0:.0f}s] {name} done", flush=True)
        print(f"[t={time.time()-t0:.0f}s] ALL DONE", flush=True)
        return 0

    jobs = [Job(fn=section, name=section.__name__) for section in SECTIONS]
    report = run_parallel(jobs, max_workers=args.jobs)
    for result in report.results:
        status = "done" if result.ok else f"FAILED: {result.error}"
        print(f"[{result.duration:.0f}s] {result.name} {status}", flush=True)
    print(f"[scheduler] {report.summary()}", flush=True)
    return 1 if report.n_failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
