"""Artifact-store maintenance CLI: list, verify, and prune.

Examples::

    python scripts/store_gc.py list
    python scripts/store_gc.py list --store-dir /tmp/store
    python scripts/store_gc.py verify
    python scripts/store_gc.py prune --keep-latest 2
    python scripts/store_gc.py prune --keep-latest 0 --yes   # wipe everything
    python scripts/store_gc.py leases --fabric-dir /shared/sweep --yes

``prune --keep-latest N`` keeps the N newest artifacts per logical
family (kind + env/game + defense/attack) and deletes older ones, plus
any orphan blobs left by interrupted writes.  ``leases`` prunes expired
fencing-token files and stale worker heartbeats from a fabric directory
(superseded tokens and the lease dirs of finished jobs; the current
token of an unfinished job is never touched).  Destructive actions ask
for confirmation unless ``--yes`` is given.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.store import ArtifactStore, default_store_root  # noqa: E402


def _store(args) -> ArtifactStore:
    root = Path(args.store_dir) if args.store_dir else default_store_root()
    return ArtifactStore(root)


def cmd_list(args) -> int:
    store = _store(args)
    entries = store.list()
    if not entries:
        print(f"(empty store at {store.root})")
        return 0
    for entry in entries:
        spec = entry.spec
        label = "/".join(
            str(spec[field]) for field in ("kind", "env_id", "defense", "attack")
            if spec.get(field))
        print(f"{entry.key[:12]}  {entry.nbytes:>10d}B  {label}  "
              f"seed={spec.get('seed', '-')}")
    print(f"{len(entries)} artifacts, {store.total_bytes()} bytes at {store.root}")
    return 0


def cmd_verify(args) -> int:
    store = _store(args)
    problems = store.verify()
    for problem in problems:
        print(f"PROBLEM: {problem}")
    print(f"{len(store)} artifacts checked, {len(problems)} problems")
    return 1 if problems else 0


def cmd_prune(args) -> int:
    store = _store(args)
    before = len(store)
    if not args.yes:
        answer = input(f"prune store at {store.root} ({before} artifacts, "
                       f"keep latest {args.keep_latest} per family)? [y/N] ")
        if answer.strip().lower() not in ("y", "yes"):
            print("aborted")
            return 1
    removed = store.prune(keep_latest=args.keep_latest)
    for entry in removed:
        print(f"removed {entry.key[:12]} ({entry.group})")
    print(f"removed {len(removed)} artifacts; {len(store)} remain")
    return 0


def cmd_leases(args) -> int:
    from repro.fabric import FabricQueue

    queue = FabricQueue(args.fabric_dir)
    if not args.yes:
        answer = input(f"prune expired leases under {queue.root}? [y/N] ")
        if answer.strip().lower() not in ("y", "yes"):
            print("aborted")
            return 1
    removed = queue.prune_leases()
    for path in removed:
        print(f"removed {path.relative_to(queue.root)}")
    print(f"removed {len(removed)} lease/heartbeat files from {queue.root}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--store-dir", default=None,
                        help="store root (default: $REPRO_STORE or "
                             "$REPRO_ARTIFACTS/store)")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list committed artifacts")
    sub.add_parser("verify", help="integrity-scan the store")
    prune = sub.add_parser("prune", help="delete old artifacts + orphan blobs")
    prune.add_argument("--keep-latest", type=int, default=1,
                       help="artifacts to keep per family (default 1)")
    prune.add_argument("--yes", action="store_true",
                       help="skip the confirmation prompt")
    leases = sub.add_parser(
        "leases", help="prune expired fabric lease tokens + stale heartbeats")
    leases.add_argument("--fabric-dir", required=True,
                        help="the shared fabric directory to clean")
    leases.add_argument("--yes", action="store_true",
                        help="skip the confirmation prompt")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return {"list": cmd_list, "verify": cmd_verify, "prune": cmd_prune,
            "leases": cmd_leases}[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
