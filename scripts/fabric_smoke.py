"""CI smoke driver for the multi-host job fabric.

Boots two real ``python -m repro.fabric.worker`` daemons against one
shared queue directory, submits a batch of deterministic probe jobs
through ``run_parallel(fabric_dir=...)``, SIGKILLs one daemon while it
holds the lease on a deliberately held job, and asserts that:

* every job completes (the held job is stolen by the surviving daemon),
* the committed results are bit-identical to a single-host
  ``run_parallel`` of the same cells,
* the sweep was *not* degraded (the surviving daemon did the work), and
* ``store_gc.py leases`` afterwards prunes the dead lease tokens.

Usage::

    PYTHONPATH=src python scripts/fabric_smoke.py [--steps 16]
"""

from __future__ import annotations

import argparse
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.fabric import FabricConfig, FabricQueue  # noqa: E402
from repro.fabric.probe import probe_job  # noqa: E402
from repro.runtime import Job, run_parallel  # noqa: E402

# Chaos-friendly timings: a killed daemon's lease is stealable after 2s.
CONFIG = FabricConfig(lease_timeout=2.0, renew_interval=0.2,
                      poll_interval=0.1, worker_timeout=1.0, grace=60.0)


def spawn_daemon(fabric: Path, worker_id: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = f"{REPO / 'src'}{os.pathsep}" + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro.fabric.worker", str(fabric),
         "--worker-id", worker_id, "--idle-exit", "5", "--no-supervise"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)


def wait_for(predicate, timeout: float, what: str) -> None:
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() >= deadline:
            raise TimeoutError(f"timed out waiting for {what}")
        time.sleep(0.05)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--steps", type=int, default=16,
                        help="rollout steps per probe job (default 16)")
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="fabric-smoke-") as tmp:
        tmp_path = Path(tmp)
        fabric = tmp_path / "fabric"
        hang = tmp_path / "victim-started"
        release = tmp_path / "release"

        def jobs():
            batch = [Job(probe_job, name=f"cell-{seed}",
                         kwargs={"steps": args.steps, "seed": seed})
                     for seed in range(4)]
            # cell-0 announces its start and then blocks on the release
            # marker: the window in which we SIGKILL its daemon.
            batch[0].kwargs.update(start_marker=str(hang),
                                   hold_until=str(release))
            return batch

        print("[fabric_smoke] computing single-host reference results...")
        release.touch()  # reference run never blocks
        reference = run_parallel(jobs())
        assert reference.n_failed == 0, reference.summary()
        release.unlink()
        hang.unlink()  # the reference run touched it too

        queue = FabricQueue(fabric, config=CONFIG)
        daemons = {name: spawn_daemon(fabric, name)
                   for name in ("daemon-a", "daemon-b")}
        print("[fabric_smoke] daemons up: "
              + " ".join(f"{n}={p.pid}" for n, p in daemons.items()))
        killed: list[str] = []

        def holder_of_held_job() -> str | None:
            for lease_dir in queue.leases_dir.iterdir():
                if "cell-0" not in lease_dir.name or not lease_dir.is_dir():
                    continue
                for path in sorted(lease_dir.iterdir()):
                    owner = path.read_text().strip()
                    if owner in daemons:
                        return owner
            return None

        def chaos() -> None:
            wait_for(hang.exists, 90.0, "the held job to start")
            victim = holder_of_held_job() or "daemon-a"
            killed.append(victim)
            os.kill(daemons[victim].pid, signal.SIGKILL)
            print(f"[fabric_smoke] SIGKILLed {victim} mid-lease on the "
                  "held job")
            release.touch()

        chaos_thread = threading.Thread(target=chaos, daemon=True)
        chaos_thread.start()
        report = run_parallel(jobs(), fabric_dir=fabric)
        chaos_thread.join(10.0)
        assert killed, "chaos thread never fired"
        for name, proc in daemons.items():
            proc.wait(timeout=60 if name not in killed else 10)

        assert report.n_failed == 0, report.summary()
        assert not report.degraded, "daemons were live; must not degrade"
        for ours, ref in zip(report.results, reference.results):
            assert ours.value == ref.value, (
                f"{ours.name}: fabric result diverged from single-host run")
        workers = {queue.result_envelope(job_id)["worker"]
                   for job_id in queue.entries()}
        assert workers <= set(daemons), workers
        print(f"[fabric_smoke] all 4 cells bit-identical; committed by "
              f"{sorted(workers)}; {report.summary()}")

        gc = subprocess.run(
            [sys.executable, str(REPO / "scripts" / "store_gc.py"), "leases",
             "--fabric-dir", str(fabric), "--yes"],
            capture_output=True, text=True, timeout=60)
        assert gc.returncode == 0, gc.stdout + gc.stderr
        assert "removed" in gc.stdout, gc.stdout
        leftovers = [d for d in queue.leases_dir.iterdir() if d.is_dir()]
        assert not leftovers, f"leases survived gc: {leftovers}"
        print("[fabric_smoke] lease gc clean; OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
