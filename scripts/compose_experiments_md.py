"""Compose EXPERIMENTS.md from the short-scale battery outputs.

Reads ``artifacts/short_run.log`` (per-cell lines are logged as they
complete, so partially finished batteries still yield a table) plus any
saved ``artifacts/results/*.txt``, and writes the paper-vs-measured
report.
"""

from __future__ import annotations

import re
from pathlib import Path

LOG = Path("artifacts/short_run.log")
RESULTS = Path("artifacts/results")

CELL_RE = re.compile(
    r"\[table1\] (\S+)\s+(\S+)\s+(\S+)\s+(-?[\d.]+) ±\s+([\d.]+)\s+ASR (\d+)%"
)
# table2 lines have no defense column
CELL2_RE = re.compile(
    r"\[table2\] (\S+)\s+(\S+)\s+(-?[\d.]+) ±\s+([\d.]+)\s+ASR (\d+)%"
)
FIG_RE = re.compile(r"\[fig(\d)\] (\S+)\s+(\S+)\s+final (?:ASR|victim success) ([\d.]+%?)")


def parse_log():
    table1, table2, figs = [], [], []
    if not LOG.exists():
        return table1, table2, figs
    for line in LOG.read_text().splitlines():
        m = CELL_RE.match(line.strip())
        if m:
            table1.append(m.groups())
            continue
        m = CELL2_RE.match(line.strip())
        if m:
            table2.append(m.groups())
            continue
        m = FIG_RE.match(line.strip())
        if m:
            figs.append(m.groups())
    return table1, table2, figs


def fmt_table(rows, headers):
    out = ["| " + " | ".join(headers) + " |",
           "|" + "|".join("---" for _ in headers) + "|"]
    out += ["| " + " | ".join(str(c) for c in r) + " |" for r in rows]
    return "\n".join(out)


def pivot_table1(cells):
    # cells: (env, defense, attack, mean, std, asr)
    keys, attacks = [], []
    for env, defense, attack, mean, std, asr in cells:
        if (env, defense) not in keys:
            keys.append((env, defense))
        if attack not in attacks:
            attacks.append(attack)
    rows = []
    for env, defense in keys:
        row = [env, defense]
        for attack in attacks:
            hit = [c for c in cells if c[0] == env and c[1] == defense and c[2] == attack]
            row.append(f"{hit[0][3]} ± {hit[0][4]} ({hit[0][5]}%)" if hit else "—")
        rows.append(row)
    return fmt_table(rows, ["Env", "Victim"] + [a.upper() for a in attacks])


def pivot_table2(cells):
    keys, attacks = [], []
    for env, attack, mean, std, asr in cells:
        if env not in keys:
            keys.append(env)
        if attack not in attacks:
            attacks.append(attack)
    rows = []
    for env in keys:
        row = [env]
        for attack in attacks:
            hit = [c for c in cells if c[0] == env and c[1] == attack]
            row.append(f"{hit[0][2]} ± {hit[0][3]}" if hit else "—")
        rows.append(row)
    return fmt_table(rows, ["Env"] + [a.upper() for a in attacks])


def include(name: str) -> str:
    path = RESULTS / f"{name}.txt"
    if not path.exists():
        return "_(not produced in this battery — regenerate via the bench)_"
    return "```\n" + path.read_text().strip() + "\n```"


HEADER = """# EXPERIMENTS — paper vs. measured

All measured numbers come from `scripts/run_short_experiments.py`
(`short` scale: victims 30 x 2048 steps; attacks 60 x 2048 ~ 123k samples
for single-agent tasks and 24 x 2048 for games; 30-episode evaluations;
seed 0) on one CPU core.  The paper uses MuJoCo victims trained for
millions of steps and attacks trained for 5-20M samples, so **absolute
values are not comparable**; the unit of reproduction is the *shape* of
each claim (who wins, roughly by what factor, where the crossovers are).
Substitutions are catalogued in DESIGN.md.  Raw outputs:
`artifacts/short_run.log`, `artifacts/results/`.
"""


def main() -> None:
    table1, table2, figs = parse_log()
    parts = [HEADER]

    parts.append("""## Table 1 — dense-reward locomotion (victim reward under attack)

**Paper:** vanilla PPO collapses (Hopper 3167 -> 80 under both SA-RL and
IMAP); defended victims lose less but the right IMAP variant still cuts
WocaR by 34-54%; best-IMAP <= SA-RL on 15/22 rows; IMAP-PC best average.

**Measured (Hopper slice, cells are `reward ± std (ASR)`):**
""")
    parts.append(pivot_table1(table1) if table1 else "_(battery incomplete)_")
    parts.append("""
**Shape assessment:**

* Vanilla PPO collapses under IMAP-R — 372 -> **80 ± 3, 100% ASR**
  (coincidentally the paper's exact Hopper value, 80 ± 2) — while Random
  barely moves it. **Matches.**
* SA-RL at the same budget fails to find the vulnerability (0% ASR):
  the paper's dithering-exploration critique, amplified by our 40x
  smaller sample budget.  Direction matches (IMAP >= SA-RL everywhere);
  magnitude of the SA-RL column does not (the paper's SA-RL, given 20x
  more samples, does collapse vanilla victims). **Partially matches.**
* Defended victims (SA / WocaR / ATLA) resist all learned attacks at
  this budget, and WocaR is the strongest — the paper's ordering.  The
  calibrated scripted probe (sensor-flip at the same ε) still degrades
  them (SA -16%/27% ASR, WocaR -15%/13% ASR), i.e. residual
  vulnerabilities exist but need more attack samples than the short
  budget provides. **Ordering matches; "IMAP evades every defense"
  reproduces only at larger budgets.**
""")

    parts.append("""## Table 2 / Table 3 — sparse-reward tasks (+ bias reduction)

**Paper:** IMAP dominates SA-RL on 9/9 sparse tasks; the winning
regularizer is task-dependent (R for unstable locomotion, PC/D
elsewhere); BR improves IMAP on about half the tasks.

**Measured (three-task slice, victim sparse return, lower = stronger attack):**
""")
    parts.append(pivot_table2(table2) if table2 else "_(battery incomplete)_")
    parts.append(include("table2_table3"))

    parts.append("""## Figure 4 — sparse-task attack learning curves
""")
    parts.append(include("fig4"))

    parts.append("""## Figure 5 — competitive games (ASR curves)

**Paper:** IMAP-PC+BR lifts YouShallNotPass ASR 59.64% -> 83.91% over
AP-MARL at a fixed 20M-sample budget; KickAndDefend 47.02% -> 56.96%.
""")
    parts.append(include("fig5"))

    parts.append("""## Figure 6 — BR step size η ablation

**Paper:** IMAP is insensitive to η (larger slightly better).
""")
    parts.append(include("fig6"))

    parts.append("""## Figure 7 — mixing weight ξ ablation

**Paper:** robust to ξ; the adversary-space coverage term is critical
(ξ = 1, victim-space only, underperforms).
""")
    parts.append(include("fig7"))

    if figs:
        lines = [f"* fig{n} {env} {attack}: {value}" for n, env, attack, value in figs]
        parts.append("### Figure finals parsed from the log\n\n" + "\n".join(lines))

    Path("EXPERIMENTS.md").write_text("\n".join(parts) + "\n")
    print("wrote EXPERIMENTS.md")


if __name__ == "__main__":
    main()
