"""CI smoke driver for `python -m repro.serve`.

Connects to a running server and drives the canonical request mix:
a cold miss (scheduled, computed, persisted), a warm hit (answered from
the store), k coalesced duplicates (one evaluation fans out), and an
injected-fault request (classified through the supervisor's
``error_kind`` taxonomy).  Exits nonzero if any leg misbehaves, then
asks the server to shut down.

Usage::

    PYTHONPATH=src python scripts/serve_smoke.py --socket /tmp/serve.sock
"""

from __future__ import annotations

import argparse
import asyncio
import sys

from repro.serve import ServeClient, ServeError

REQUEST = {
    "env_id": "Hopper-v0",
    "victim": {"iterations": 1, "steps_per_iteration": 64},
    "attack": {"kind": "random"},
    "eval": {"episodes": 2, "seed": 3},
}


async def drive(args: argparse.Namespace) -> int:
    client = await ServeClient.connect(args.socket)
    try:
        assert (await client.ping())["event"] == "pong", "server unreachable"

        events: list[str] = []
        cold = await client.evaluate(
            REQUEST, on_event=lambda e: events.append(e["event"]))
        assert not cold["cached"], "cold request must not be a cache hit"
        assert events[0] == "queued" and "scheduled" in events, events
        print(f"cold miss:  scheduled + computed "
              f"(mean reward {cold['mean_reward']:.1f})")

        warm = await client.evaluate(REQUEST)
        assert warm["cached"], "identical warm request must hit the store"
        assert warm["episode_rewards"] == cold["episode_rewards"], \
            "warm payload diverged from cold"
        print("warm hit:   answered from the store, payload identical")

        fresh = dict(REQUEST, eval={"episodes": 2, "seed": 77})
        fanned = await asyncio.gather(
            *[client.evaluate(fresh) for _ in range(args.coalesce_k)])
        n_coalesced = sum(1 for p in fanned if p["coalesced"])
        assert n_coalesced == args.coalesce_k - 1, \
            f"expected {args.coalesce_k - 1} coalesced, got {n_coalesced}"
        reference = fanned[0]["episode_rewards"]
        assert all(p["episode_rewards"] == reference for p in fanned), \
            "coalesced payloads diverged"
        print(f"coalesced:  {args.coalesce_k} in-flight duplicates -> "
              f"1 evaluation ({n_coalesced} coalesced)")

        bad = dict(REQUEST, fault={"kind": "crash"},
                   eval={"episodes": 2, "seed": 78})
        try:
            await client.evaluate(bad)
        except ServeError as exc:
            assert exc.error_kind == "crash", \
                f"fault misclassified as {exc.error_kind!r}"
            print(f"fault:      injected crash classified as "
                  f"error_kind={exc.error_kind!r}")
        else:
            raise AssertionError("injected fault did not fail the request")

        status = await client.status()
        hits = status["counters"].get("serve.cache_hits", 0)
        print(f"status:     {int(status['counters']['serve.requests'])} "
              f"requests, {int(hits)} cache hits, "
              f"{status['inflight']} in flight")
        if args.shutdown:
            await client.shutdown()
        return 0
    finally:
        await client.close()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--socket", required=True,
                        help="Unix socket the server listens on")
    parser.add_argument("--coalesce-k", type=int, default=4)
    parser.add_argument("--no-shutdown", dest="shutdown", action="store_false",
                        help="leave the server running afterwards")
    args = parser.parse_args(argv)
    return asyncio.run(drive(args))


if __name__ == "__main__":
    sys.exit(main())
