"""Evading a defense: attack a WocaR-trained robust victim with all four
IMAP regularizers (the paper's Section 7 scenario, Figure 1).

The script trains one robust victim, probes it with Random / SA-RL /
IMAP-{SC,PC,R,D}, and prints a Table-1-style row plus trajectory
statistics showing *how* the winning attack breaks the victim (falls vs
slowdowns).

    python examples/robust_victim_attack.py          # ~10 minutes
    REPRO_FAST=1 python examples/robust_victim_attack.py   # quick demo
"""

from __future__ import annotations

import os

import numpy as np

from repro import envs
from repro.attacks import (
    AttackConfig,
    RandomAttackPolicy,
    StatePerturbationEnv,
    default_epsilon,
    train_imap,
    train_sarl,
)
from repro.defenses import DefenseTrainConfig, get_defense
from repro.eval import evaluate_single_agent, render_table

FAST = bool(os.environ.get("REPRO_FAST"))
ENV_ID = "Hopper-v0"
VICTIM_ITERS = 8 if FAST else 35
ATTACK_ITERS = 6 if FAST else 50
EPISODES = 10 if FAST else 30


def trajectory_stats(victim, attack_policy, epsilon: float) -> dict:
    """Run a few episodes and report fall rate / mean distance."""
    falls, distances, lengths = 0, [], []
    rng = np.random.default_rng(99)
    for ep in range(10):
        env = envs.make(ENV_ID)
        adv = StatePerturbationEnv(env, victim, epsilon=epsilon)
        adv.seed(500 + ep)
        obs = adv.reset()
        done, info = False, {}
        t = 0
        while not done:
            action = (attack_policy.action(obs, rng, deterministic=True)
                      if attack_policy else np.zeros_like(obs))
            obs, _, term, trunc, info = adv.step(action)
            done = term or trunc
            t += 1
        falls += int(term and not info.get("healthy", True))
        distances.append(info.get("x_position", 0.0))
        lengths.append(t)
    return {"fall_rate": falls / 10, "mean_distance": float(np.mean(distances)),
            "mean_length": float(np.mean(lengths))}


def main() -> None:
    epsilon = default_epsilon(ENV_ID)
    print(f"Training a WocaR-defended victim on {ENV_ID} ...")
    victim = get_defense("wocar")(
        lambda: envs.make(ENV_ID),
        DefenseTrainConfig(iterations=VICTIM_ITERS, seed=3, epsilon=epsilon),
    )

    results = {}
    results["No Attack"] = evaluate_single_agent(
        envs.make(ENV_ID), victim, None, episodes=EPISODES)
    results["Random"] = evaluate_single_agent(
        envs.make(ENV_ID), victim, RandomAttackPolicy(11, seed=1), epsilon=epsilon,
        episodes=EPISODES, attack_deterministic=False)

    config = AttackConfig(iterations=ATTACK_ITERS, seed=4)
    policies = {}
    sarl = train_sarl(StatePerturbationEnv(envs.make(ENV_ID), victim, epsilon=epsilon),
                      config)
    policies["SA-RL"] = sarl.policy
    results["SA-RL"] = evaluate_single_agent(
        envs.make(ENV_ID), victim, sarl.policy, epsilon=epsilon, episodes=EPISODES)

    for reg in ("sc", "pc", "r", "d"):
        name = f"IMAP-{reg.upper()}"
        print(f"Training {name} ...")
        attack = train_imap(
            StatePerturbationEnv(envs.make(ENV_ID), victim, epsilon=epsilon),
            reg, config)
        policies[name] = attack.policy
        results[name] = evaluate_single_agent(
            envs.make(ENV_ID), victim, attack.policy, epsilon=epsilon,
            episodes=EPISODES)

    rows = [[name, f"{ev.mean_reward:.0f} ± {ev.std_reward:.0f}", f"{ev.asr:.0%}"]
            for name, ev in results.items()]
    print()
    print(render_table(["Attack", "Victim reward", "ASR"], rows,
                       title=f"WocaR victim on {ENV_ID} (eps = {epsilon})"))

    best_name = min((k for k in results if k not in ("No Attack",)),
                    key=lambda k: results[k].mean_reward)
    print(f"\nStrongest attack: {best_name}. Trajectory anatomy:")
    for name in ("No Attack", best_name):
        stats = trajectory_stats(victim, policies.get(name), epsilon)
        print(f"  {name:>10}: fall rate {stats['fall_rate']:.0%}, "
              f"mean distance {stats['mean_distance']:.1f}, "
              f"mean episode length {stats['mean_length']:.0f}")
    print("\n(The paper's Figure 1: the robust Walker is lured to lean and fall;"
          "\n here the robust Hopper is destabilized the same way.)")


if __name__ == "__main__":
    main()
