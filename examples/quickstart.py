"""Quickstart: train a victim, attack it with IMAP, measure the damage.

Runs in about two minutes on a laptop:

    python examples/quickstart.py
"""

from __future__ import annotations

import math

from repro import envs
from repro.attacks import AttackConfig, StatePerturbationEnv, default_epsilon, train_imap
from repro.eval import evaluate_single_agent
from repro.rl import TrainConfig, train_ppo


def main() -> None:
    env_id = "Hopper-v0"
    epsilon = default_epsilon(env_id)

    # 1. Train a victim with vanilla PPO and freeze it for deployment.
    print(f"Training a PPO victim on {env_id} ...")
    result = train_ppo(envs.make(env_id), TrainConfig(iterations=30, seed=1))
    victim = result.policy
    victim.freeze_normalizer()
    if not math.isnan(result.final_return):  # nan = zero-iteration run
        print(f"  final training return: {result.final_return:.2f}")

    clean = evaluate_single_agent(envs.make(env_id), victim, None, episodes=20)
    print(f"  clean performance: {clean.summary()}")

    # 2. Build the black-box adversary MDP: the attacker sees the victim's
    #    normalized observation and perturbs it inside an l-inf eps-ball.
    #    It only observes the surrogate signal 1(victim succeeds).
    adv_env = StatePerturbationEnv(envs.make(env_id), victim, epsilon=epsilon)

    # 3. Train IMAP with the risk-driven regularizer (lure the victim
    #    toward its initial state -> no forward progress, falls at speed).
    print(f"Training IMAP-R attack (eps = {epsilon}) ...")
    attack = train_imap(adv_env, "r", AttackConfig(iterations=60, seed=2))

    # 4. Evaluate the attacked victim.
    attacked = evaluate_single_agent(envs.make(env_id), victim, attack.policy,
                                     epsilon=epsilon, episodes=20)
    print(f"  under IMAP-R:      {attacked.summary()}")
    drop = 100.0 * (1.0 - attacked.mean_reward / clean.mean_reward)
    print(f"  -> victim reward drops {drop:.0f}% "
          f"(attack success rate {attacked.asr:.0%})")


if __name__ == "__main__":
    main()
