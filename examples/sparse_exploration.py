"""Sparse-reward attack learning: why intrinsic motivation matters.

Trains SA-RL and IMAP-R side by side on SparseHopper and prints their
learning curves (the paper's Figure 4 phenomenon: the baseline's
dithering exploration never finds the vulnerability; the intrinsically
motivated attacker does, with a fraction of the samples).

    python examples/sparse_exploration.py              # ~6 minutes
    REPRO_FAST=1 python examples/sparse_exploration.py # quick demo
"""

from __future__ import annotations

import os

from repro import envs
from repro.attacks import AttackConfig, StatePerturbationEnv, default_epsilon, train_imap, train_sarl
from repro.eval import CurveSet, evaluate_single_agent
from repro.rl import TrainConfig, train_ppo
from repro.zoo import training_env_factory

FAST = bool(os.environ.get("REPRO_FAST"))
ENV_ID = "SparseHopper-v0"
ATTACK_ITERS = 5 if FAST else 50


def main() -> None:
    epsilon = default_epsilon(ENV_ID)
    print(f"Training the {ENV_ID} victim on its shaped-reward twin ...")
    victim = train_ppo(training_env_factory(ENV_ID)(),
                       TrainConfig(iterations=6 if FAST else 30, seed=1)).policy
    victim.freeze_normalizer()
    clean = evaluate_single_agent(envs.make(ENV_ID), victim, None, episodes=20)
    print(f"  clean sparse return: {clean.summary()}")

    figure = CurveSet(f"{ENV_ID}: victim success vs attack samples")
    config = AttackConfig(iterations=ATTACK_ITERS, seed=2)

    print("Training SA-RL (dithering exploration) ...")
    sarl = train_sarl(StatePerturbationEnv(envs.make(ENV_ID), victim, epsilon=epsilon),
                      config)
    for x, y in zip(*sarl.curve("victim_success_rate")):
        figure.curve("SA-RL").add(x, y)

    print("Training IMAP-R (risk-driven intrinsic exploration) ...")
    imap = train_imap(StatePerturbationEnv(envs.make(ENV_ID), victim, epsilon=epsilon),
                      "r", config)
    for x, y in zip(*imap.curve("victim_success_rate")):
        figure.curve("IMAP-R").add(x, y)

    print()
    print(figure.render(y_name="victim success"))
    for name, result in (("SA-RL", sarl), ("IMAP-R", imap)):
        ev = evaluate_single_agent(envs.make(ENV_ID), victim, result.policy,
                                   epsilon=epsilon, episodes=20)
        print(f"  {name:>7} final: victim sparse return {ev.mean_reward:.2f} "
              f"(ASR {ev.asr:.0%})")


if __name__ == "__main__":
    main()
