"""YouShallNotPass: learn a blocking opponent with AP-MARL and with
IMAP-PC+BR, then narrate what each adversary actually does (the paper's
Figure 2 story, in statistics instead of pixels).

    python examples/multiagent_blocking.py              # ~8 minutes
    REPRO_FAST=1 python examples/multiagent_blocking.py # quick demo
"""

from __future__ import annotations

import os

import numpy as np

from repro import envs
from repro.attacks import AttackConfig, OpponentEnv, train_apmarl, train_imap
from repro.eval import evaluate_game, render_table
from repro.zoo import get_game_victim

FAST = bool(os.environ.get("REPRO_FAST"))
GAME = "YouShallNotPass-v0"
ATTACK_ITERS = 4 if FAST else 24
EPISODES = 10 if FAST else 50


def behaviour_stats(victim, adversary, episodes: int = 20) -> dict:
    """How does the blocker behave? contacts, runner falls, timeouts."""
    rng = np.random.default_rng(7)
    contacts, falls, timeouts, wins = 0, 0, 0, 0
    for ep in range(episodes):
        game = envs.make_game(GAME)
        adv_env = OpponentEnv(game, victim, seed=900 + ep)
        adv_env.seed(900 + ep)
        obs = adv_env.reset()
        done, had_contact = False, False
        info = {}
        while not done:
            action = adversary.action(obs, rng, deterministic=True)
            obs, _, done, _, info = adv_env.step(action)
            had_contact = had_contact or bool(info.get("contact", False))
        contacts += int(had_contact)
        falls += int(game.runner.fallen)
        timeouts += int(info["steps"] >= game.max_steps)
        wins += int(info["adversary_win"])
    return {"win_rate": wins / episodes, "contact_rate": contacts / episodes,
            "runner_fall_rate": falls / episodes, "timeout_rate": timeouts / episodes}


def main() -> None:
    print(f"Loading / training the {GAME} victim (self-play proxy zoo) ...")
    victim = get_game_victim(GAME, iterations=8 if FAST else 40,
                             hardening_iterations=0 if FAST else 30,
                             budget_tag="example", seed=0)

    config = AttackConfig(iterations=ATTACK_ITERS, seed=5, intrinsic_reward_scale=0.05)
    print("Training the AP-MARL baseline blocker ...")
    apmarl = train_apmarl(OpponentEnv(envs.make_game(GAME), victim), config)
    print("Training the IMAP-PC+BR blocker ...")
    imap = train_imap(OpponentEnv(envs.make_game(GAME), victim), "pc", config,
                      multi_agent=True, use_bias_reduction=True)

    rows = []
    for name, result in (("AP-MARL", apmarl), ("IMAP-PC+BR", imap)):
        ev = evaluate_game(envs.make_game(GAME), victim, result.policy,
                           episodes=EPISODES)
        stats = behaviour_stats(victim, result.policy)
        rows.append([name, f"{ev.asr:.0%}", f"{stats['contact_rate']:.0%}",
                     f"{stats['runner_fall_rate']:.0%}", f"{stats['timeout_rate']:.0%}"])
        samples, asr = result.curve("asr")
        first_win = next((int(x) for x, y in zip(samples, asr) if y > 0), None)
        print(f"  {name}: first training win after "
              f"{first_win if first_win is not None else '>budget'} samples")

    print()
    print(render_table(
        ["Adversary", "ASR", "contact", "runner falls", "timeouts"], rows,
        title=f"{GAME}: how each adversary wins"))
    print("\nIMAP's PC bonus rewards covering novel joint states, which in this"
          "\ngame means intercept positions — it discovers blocking earlier than"
          "\nAP-MARL's dithering exploration (compare first-win samples above).")


if __name__ == "__main__":
    main()
