"""Ablation bench: the strict black-box surrogate reward vs SA-RL's
original relaxed dense reward.

The paper (Section 6.2) forces both SA-RL and IMAP onto the surrogate
``-r̂`` for fairness.  This bench quantifies how much the relaxation is
worth to SA-RL on a dense task.
"""

from __future__ import annotations

from conftest import run_once

from repro import envs
from repro.attacks import StatePerturbationEnv, default_epsilon, train_sarl
from repro.eval import evaluate_single_agent
from repro.experiments import attack_config_for, victim_for


def test_surrogate_vs_dense_reward(benchmark, scale):
    env_id = "Hopper-v0"
    eps = default_epsilon(env_id)

    def run():
        victim = victim_for(env_id, "ppo", scale, seed=0)
        results = {}
        for dense in (False, True):
            adv_env = StatePerturbationEnv(envs.make(env_id), victim, epsilon=eps)
            attack = train_sarl(adv_env, attack_config_for(scale, seed=0),
                                use_dense_reward=dense)
            ev = evaluate_single_agent(envs.make(env_id), victim, attack.policy,
                                       epsilon=eps, episodes=scale.eval_episodes)
            results["dense(relaxed)" if dense else "surrogate(black-box)"] = ev
        return results

    results = run_once(benchmark, run)
    print()
    for name, ev in results.items():
        print(f"{name:>22}: victim reward {ev.mean_reward:8.1f} ASR {ev.asr:.0%}")
