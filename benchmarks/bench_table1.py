"""Bench: regenerate Table 1 (dense locomotion, victims x attacks).

Default (smoke) runs a representative slice — Hopper with a vanilla and
a WocaR victim under {none, random, SA-RL, IMAP-PC, IMAP-R}.  Use
``REPRO_SCALE=short`` and ``REPRO_TABLE1_FULL=1`` for the full grid.
"""

from __future__ import annotations

import os

from conftest import run_once

from repro.experiments import run_table1
from repro.experiments.table1 import TABLE1_ATTACKS, TABLE1_DEFENSES

SLICE_ATTACKS = ["none", "random", "sarl", "imap-pc", "imap-r"]


def test_table1_hopper_slice(benchmark, scale):
    def run():
        return run_table1(env_ids=["Hopper-v0"], defenses=["ppo", "wocar"],
                          attacks=SLICE_ATTACKS, scale=scale, verbose=False)

    result = run_once(benchmark, run)
    print()
    print(result.render(attacks=SLICE_ATTACKS))
    print(f"best-IMAP <= SA-RL on {result.best_imap_beats_sarl_fraction():.0%} of rows")


def test_table1_full_grid(benchmark, scale):
    if not os.environ.get("REPRO_TABLE1_FULL"):
        import pytest
        pytest.skip("set REPRO_TABLE1_FULL=1 to run the full 4-env x 6-defense grid")

    def run():
        return run_table1(defenses=TABLE1_DEFENSES, attacks=TABLE1_ATTACKS,
                          scale=scale, verbose=True)

    result = run_once(benchmark, run)
    print()
    print(result.render())
