"""Bench: regenerate Figure 7 (multi-agent mixing weight ξ ablation)."""

from __future__ import annotations

from conftest import run_once

from repro.experiments import run_fig7


def test_fig7_xi_ablation(benchmark, scale):
    def run():
        return run_fig7(game_id="YouShallNotPass-v0", xis=[0.0, 0.5, 1.0],
                        scale=scale, verbose=False)

    out = run_once(benchmark, run)
    print()
    print(out["curves"].render(y_name="asr"))
    for xi, asr in out["final_asr"].items():
        print(f"xi={xi:<5} final ASR {asr:.2%}")
