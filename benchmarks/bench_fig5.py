"""Bench: regenerate Figure 5 (ASR curves, AP-MARL vs IMAP-PC+BR)."""

from __future__ import annotations

import os

from conftest import run_once

from repro.experiments import run_fig5


def test_fig5_youshallnotpass(benchmark, scale):
    def run():
        return run_fig5(game_ids=["YouShallNotPass-v0"], scale=scale, verbose=False)

    out = run_once(benchmark, run)
    data = out["YouShallNotPass-v0"]
    print()
    print(data["curves"].render(y_name="asr"))
    for attack, asr in data["final_asr"].items():
        print(f"{attack:>12} final ASR {asr:.2%}")


def test_fig5_kickanddefend(benchmark, scale):
    if not os.environ.get("REPRO_FIG5_FULL"):
        import pytest
        pytest.skip("set REPRO_FIG5_FULL=1 to run KickAndDefend as well")

    def run():
        return run_fig5(game_ids=["KickAndDefend-v0"], scale=scale, verbose=True)

    out = run_once(benchmark, run)
    print()
    print(out["KickAndDefend-v0"]["curves"].render(y_name="asr"))
