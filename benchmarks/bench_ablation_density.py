"""Ablation bench: KNN vs Parzen state-density estimation.

DESIGN.md calls out the paper's choice of KNN density over alternatives.
This bench measures (a) query cost of both estimators at rollout sizes
and (b) how well their state rankings agree (Spearman correlation): KNN
should be far cheaper at equal ranking quality.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.density import KnnDensityEstimator, ParzenDensityEstimator

RNG = np.random.default_rng(7)
REFS = RNG.standard_normal((2048, 11))
QUERIES = RNG.standard_normal((512, 11))


def test_knn_query_cost(benchmark):
    est = KnnDensityEstimator(REFS, k=5)
    benchmark(lambda: est.density(QUERIES))


def test_parzen_query_cost(benchmark):
    est = ParzenDensityEstimator(REFS, bandwidth=0.5)
    benchmark(lambda: est.density(QUERIES))


def test_ranking_agreement(benchmark):
    knn = KnnDensityEstimator(REFS, k=5)
    parzen = ParzenDensityEstimator(REFS, bandwidth=1.0)

    def run():
        a = knn.log_density(QUERIES)
        b = parzen.log_density(QUERIES)
        return stats.spearmanr(a, b).statistic

    rho = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nKNN-vs-Parzen density ranking Spearman rho = {rho:.3f}")
    assert rho > 0.5  # the estimators agree on which states are novel
