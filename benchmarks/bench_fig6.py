"""Bench: regenerate Figure 6 (BR step size η ablation)."""

from __future__ import annotations

from conftest import run_once

from repro.experiments import run_fig6


def test_fig6_eta_ablation(benchmark, scale):
    def run():
        return run_fig6(env_id="FetchReach-v0", etas=[0.1, 0.5, 1.0],
                        scale=scale, verbose=False)

    out = run_once(benchmark, run)
    print()
    print(out["curves"].render(y_name="victim success"))
    rewards = out["final_reward"]
    for eta, reward in rewards.items():
        print(f"eta={eta:<5} victim reward {reward:.2f}")
    spread = max(rewards.values()) - min(rewards.values())
    print(f"spread across eta: {spread:.2f} (paper: insensitive)")
