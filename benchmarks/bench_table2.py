"""Bench: regenerate Table 2 (sparse tasks, SA-RL vs IMAP vs best +BR).

Default runs the two cheapest tasks (FetchReach, SparseHopper); use
``REPRO_TABLE2_FULL=1`` for all nine tasks.
"""

from __future__ import annotations

import os

from conftest import run_once

from repro.experiments import run_table2

SLICE_TASKS = ["FetchReach-v0", "SparseHopper-v0"]


def test_table2_slice(benchmark, scale):
    def run():
        return run_table2(env_ids=SLICE_TASKS, include_br=True, scale=scale,
                          verbose=False)

    result = run_once(benchmark, run)
    print()
    print(result.render())
    wins, total = result.imap_dominates_sarl_count()
    print(f"best-IMAP <= SA-RL on {wins}/{total} sparse tasks")


def test_table2_full(benchmark, scale):
    if not os.environ.get("REPRO_TABLE2_FULL"):
        import pytest
        pytest.skip("set REPRO_TABLE2_FULL=1 to run all nine sparse tasks")

    def run():
        return run_table2(include_br=True, scale=scale, verbose=True)

    result = run_once(benchmark, run)
    print()
    print(result.render())
