"""Latency/throughput benchmark for the evaluation service (PR 6).

Boots an in-process :class:`~repro.serve.EvalService` over a temporary
store and measures the three paths a production request can take:

* **cold** — a genuine miss: the request is scheduled, evaluated, and
  persisted (dominated by victim training + rollout; reported for scale,
  not optimized here);
* **warm** — the same request again: dedup answers from the store
  without touching a worker.  p50/p99 latency and requests/s of this
  path are the service's headline numbers;
* **coalesced** — k identical requests in flight at once: the service
  runs exactly one evaluation and fans the payload out.

Results land in machine-readable ``BENCH_serve.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py            # full
    PYTHONPATH=src python benchmarks/bench_serve.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import asyncio
import json
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.serve import EvalService, ServeConfig
from repro.store import ArtifactStore
from repro.telemetry import MemoryEventSink, Telemetry


def percentile_ms(samples: list[float], q: float) -> float:
    return float(np.percentile(np.asarray(samples) * 1e3, q))


def base_request(args: argparse.Namespace) -> dict:
    return {
        "env_id": args.env_id,
        "victim": {"iterations": args.victim_iters,
                   "steps_per_iteration": args.victim_steps},
        "attack": {"kind": "random"},
        "eval": {"episodes": args.episodes, "seed": args.seed},
    }


async def bench(args: argparse.Namespace, store_root: str) -> dict:
    telemetry = Telemetry(sink=MemoryEventSink())
    store = ArtifactStore(store_root, telemetry=telemetry,
                          cache_size=args.store_cache)
    service = EvalService(
        store, ServeConfig(job_timeout=600.0, max_workers=args.workers),
        telemetry=telemetry)
    request = base_request(args)

    # -- cold: one genuine end-to-end computation -------------------------
    start = time.perf_counter()
    cold_payload = await service.submit(request)
    cold_seconds = time.perf_counter() - start

    # -- warm sequential: store-backed dedup latency ----------------------
    warm_samples = []
    for _ in range(args.warm_iters):
        start = time.perf_counter()
        payload = await service.submit(request)
        warm_samples.append(time.perf_counter() - start)
        assert payload["cached"], "warm request missed the cache"
        assert payload["episode_rewards"] == cold_payload["episode_rewards"]

    # -- warm concurrent: requests/s under fan-in -------------------------
    start = time.perf_counter()
    for _ in range(args.warm_batches):
        await asyncio.gather(*[service.submit(request)
                               for _ in range(args.warm_concurrency)])
    concurrent_seconds = time.perf_counter() - start
    total_concurrent = args.warm_batches * args.warm_concurrency

    # -- coalesced: k identical in-flight misses, one evaluation ----------
    eviction_key = cold_payload["key"]
    store.remove(eviction_key)
    before = service.metrics.counter("serve.computed").value
    start = time.perf_counter()
    fanned = await asyncio.gather(*[service.submit(request)
                                    for _ in range(args.coalesce_k)])
    coalesce_seconds = time.perf_counter() - start
    computed = service.metrics.counter("serve.computed").value - before
    coalesced = sum(1 for p in fanned if p["coalesced"])
    assert computed == 1, f"coalescing ran {computed} evaluations for one key"
    assert all(p["episode_rewards"] == cold_payload["episode_rewards"]
               for p in fanned), "coalesced payloads diverged"

    counters = service.stats()["counters"]
    requests = counters.get("serve.requests", 0.0)
    hits = counters.get("serve.cache_hits", 0.0)
    return {
        "benchmark": "serve_request_paths",
        "config": {
            "env_id": args.env_id, "episodes": args.episodes,
            "victim_iters": args.victim_iters,
            "victim_steps": args.victim_steps,
            "warm_iters": args.warm_iters,
            "warm_concurrency": args.warm_concurrency,
            "warm_batches": args.warm_batches,
            "coalesce_k": args.coalesce_k,
            "store_cache": args.store_cache, "seed": args.seed,
            "quick": args.quick,
        },
        "cold": {"seconds": cold_seconds},
        "warm": {
            "p50_ms": percentile_ms(warm_samples, 50),
            "p99_ms": percentile_ms(warm_samples, 99),
            "mean_ms": float(np.mean(warm_samples) * 1e3),
            "requests_per_s": total_concurrent / concurrent_seconds,
        },
        "coalesce": {
            "k": args.coalesce_k,
            "evaluations": int(computed),
            "coalesced": int(coalesced),
            "seconds": coalesce_seconds,
        },
        "cache_hit_rate": hits / requests if requests else 0.0,
        "counters": {k: v for k, v in sorted(counters.items())},
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI-scale smoke run (tiny budgets, fewer iters)")
    parser.add_argument("--env-id", default="Hopper-v0")
    parser.add_argument("--episodes", type=int, default=None,
                        help="episodes per evaluation (default 8; 3 with --quick)")
    parser.add_argument("--victim-iters", type=int, default=None,
                        help="victim training iterations (default 4; 1 with --quick)")
    parser.add_argument("--victim-steps", type=int, default=None,
                        help="victim steps/iteration (default 512; 64 with --quick)")
    parser.add_argument("--warm-iters", type=int, default=None,
                        help="sequential warm requests (default 200; 50 with --quick)")
    parser.add_argument("--warm-concurrency", type=int, default=16)
    parser.add_argument("--warm-batches", type=int, default=None,
                        help="concurrent warm rounds (default 10; 3 with --quick)")
    parser.add_argument("--coalesce-k", type=int, default=8,
                        help="identical in-flight requests to coalesce")
    parser.add_argument("--store-cache", type=int, default=32,
                        help="store LRU size (0 measures the disk path)")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--seed", type=int, default=1234)
    parser.add_argument("--output", type=Path,
                        default=Path(__file__).resolve().parent.parent / "BENCH_serve.json")
    args = parser.parse_args(argv)
    args.episodes = args.episodes or (3 if args.quick else 8)
    args.victim_iters = args.victim_iters or (1 if args.quick else 4)
    args.victim_steps = args.victim_steps or (64 if args.quick else 512)
    args.warm_iters = args.warm_iters or (50 if args.quick else 200)
    args.warm_batches = args.warm_batches or (3 if args.quick else 10)

    with tempfile.TemporaryDirectory() as store_root:
        result = asyncio.run(bench(args, store_root))
    args.output.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")

    warm = result["warm"]
    print(f"{args.env_id}: {args.episodes} episodes/eval, victim "
          f"{args.victim_iters}x{args.victim_steps}")
    print(f"cold:      {result['cold']['seconds'] * 1e3:9.1f} ms (train + evaluate + persist)")
    print(f"warm:      p50 {warm['p50_ms']:7.2f} ms   p99 {warm['p99_ms']:7.2f} ms   "
          f"{warm['requests_per_s']:8.1f} req/s")
    print(f"coalesce:  {result['coalesce']['k']} in-flight -> "
          f"{result['coalesce']['evaluations']} evaluation "
          f"({result['coalesce']['coalesced']} coalesced) in "
          f"{result['coalesce']['seconds'] * 1e3:.1f} ms")
    print(f"cache hit rate: {result['cache_hit_rate']:.3f}")
    print(f"wrote {args.output}")
    if warm["p50_ms"] >= 50.0:
        print(f"ERROR: warm p50 {warm['p50_ms']:.2f} ms breaches the 50 ms budget")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
