"""Microbenchmarks for the core substrates: autograd, PPO update,
environment stepping, and KNN density queries."""

from __future__ import annotations

import numpy as np
import pytest

from repro import envs, nn
from repro.density import KnnDensityEstimator
from repro.nn import MLP, Tensor
from repro.nn import functional as F
from repro.rl import ActorCritic, PPOConfig, PPOUpdater

RNG = np.random.default_rng(0)


def test_mlp_forward_backward(benchmark):
    net = MLP(64, (64, 64), 8, rng=RNG)
    x = RNG.standard_normal((256, 64))

    def step():
        net.zero_grad()
        loss = (net(x) ** 2).mean()
        loss.backward()
        return float(loss.data)

    benchmark(step)


def test_gaussian_log_prob(benchmark):
    from repro.nn import DiagGaussian
    mean = Tensor(RNG.standard_normal((512, 8)), requires_grad=True)
    log_std = Tensor(np.zeros(8), requires_grad=True)
    actions = RNG.standard_normal((512, 8))

    def step():
        return DiagGaussian(mean, log_std).log_prob(actions).data.sum()

    benchmark(step)


def test_ppo_minibatch_update(benchmark):
    policy = ActorCritic(17, 6, rng=RNG)
    updater = PPOUpdater(policy, PPOConfig(epochs=1, minibatches=1))
    n = 256
    with nn.no_grad():
        obs = RNG.standard_normal((n, 17))
        dist = policy.distribution(obs)
        actions = dist.sample(RNG)
        logp = dist.log_prob(actions).data
    batch = {
        "obs": obs, "actions": actions, "log_probs": logp,
        "advantages_e": RNG.standard_normal(n), "advantages_i": np.zeros(n),
        "returns_e": RNG.standard_normal(n), "returns_i": np.zeros(n),
    }

    benchmark(lambda: updater.update(batch, rng=RNG))


@pytest.mark.parametrize("env_id", ["Hopper-v0", "Ant-v0", "AntUMaze-v0"])
def test_env_step_throughput(benchmark, env_id):
    env = envs.make(env_id)
    env.reset(seed=0)
    action = np.zeros(env.action_space.shape)

    def step():
        _, _, term, trunc, _ = env.step(action)
        if term or trunc:
            env.reset()

    benchmark(step)


def test_game_step_throughput(benchmark):
    game = envs.make_game("YouShallNotPass-v0")
    game.reset(seed=0)
    a = np.zeros(3)

    def step():
        _, _, done, _ = game.step(a, a)
        if done:
            game.reset()

    benchmark(step)


def test_knn_density_query(benchmark):
    refs = RNG.standard_normal((4096, 11))
    queries = RNG.standard_normal((2048, 11))
    est = KnnDensityEstimator(refs, k=5)
    benchmark(lambda: est.distance(queries))


def test_policy_single_step_act(benchmark):
    policy = ActorCritic(111, 8, rng=RNG)
    obs = RNG.standard_normal(111)
    benchmark(lambda: policy.act(obs, RNG))
