"""Bench: regenerate Table 3 (full IMAP x BR grid on sparse tasks)."""

from __future__ import annotations

import os

from conftest import run_once

from repro.experiments import br_improvement_count, render_table3, run_table3


def test_table3_slice(benchmark, scale):
    def run():
        return run_table3(env_ids=["FetchReach-v0"], scale=scale, verbose=False)

    result = run_once(benchmark, run)
    print()
    print(render_table3(result))
    improved, total = br_improvement_count(result)
    print(f"BR improves some IMAP variant on {improved}/{total} tasks")


def test_table3_full(benchmark, scale):
    if not os.environ.get("REPRO_TABLE3_FULL"):
        import pytest
        pytest.skip("set REPRO_TABLE3_FULL=1 to run all nine sparse tasks")

    def run():
        return run_table3(scale=scale, verbose=True)

    result = run_once(benchmark, run)
    print()
    print(render_table3(result))
