"""Before/after benchmark for the amortized density index (PR 5).

Replays the PolicyCoverageRegularizer per-iteration bonus path on
**real adversary-rollout features** — states collected from the repo's
own :class:`StatePerturbationEnv` at the environment's default
perturbation budget — and compares the legacy from-scratch estimator
(rebuild the cKDTree over all of ``B`` on every compute) against the
incremental :class:`~repro.density.IncrementalKnnIndex`.  Results land
in a machine-readable ``BENCH_density.json``.

Real features matter here: rollout states concentrate on a
low-dimensional manifold, unlike an iid-Gaussian synthetic cloud whose
k-NN queries degenerate toward brute force at observation
dimensionality.  The bench fills the union buffer to its configured
size and past it, so the measured iterations sit in the reservoir
*replacement* regime — the steady state of a real attack run, where
the buffer is at capacity (``AttackConfig.union_buffer_capacity``
defaults to 50k) and the reservoir has shuffled trajectory locality
away.  The two paths must agree bit-for-bit — the bench asserts it —
so the speedup is free of accuracy caveats.

By default the index runs with ``background=True`` (the PR-7
double-buffered rebuild), exactly as the PolicyCoverageRegularizer
deploys it: the cKDTree construction kicked by the maintenance step
runs on a worker thread and finishes inside the next iteration's
(unmeasured) rollout-collection window, so the measured maintenance
cost is just the buffer gather + thread launch.  ``--sync-index``
restores the PR-5 inline-rebuild timing.

Usage::

    PYTHONPATH=src python benchmarks/bench_density.py            # 50k buffer
    PYTHONPATH=src python benchmarks/bench_density.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro import envs
from repro.attacks import StatePerturbationEnv, collect_adversary_rollout
from repro.attacks.threat_models import default_epsilon
from repro.density import IncrementalKnnIndex, KnnDensityEstimator, UnionStateBuffer
from repro.rl import ActorCritic


def baseline_bonus(features: np.ndarray, union_states: np.ndarray, k: int) -> np.ndarray:
    """The pre-index PC bonus: fresh cKDTree over D *and* B per call."""
    fresh = KnnDensityEstimator(features, k=k)
    dist_d = fresh.distance(features, exclude_self=True)
    if len(union_states) == 0:
        dist_b = np.ones_like(dist_d)
    else:
        dist_b = KnnDensityEstimator(union_states, k=k).distance(features)
    return np.sqrt(dist_d * dist_b)


def indexed_bonus(features: np.ndarray, index: IncrementalKnnIndex, k: int) -> np.ndarray:
    """The PR-5 PC bonus: throwaway D index + maintained B index."""
    fresh = IncrementalKnnIndex.over(features)
    dist_d = fresh.query(features, k, exclude_self=True)
    if len(index) == 0:
        dist_b = np.ones_like(dist_d)
    else:
        dist_b = index.query(features, k)
    return np.sqrt(dist_d * dist_b)


def make_feature_source(args: argparse.Namespace):
    """Rollout-feature generator over the repo's own threat model."""
    rng = np.random.default_rng(args.seed)
    victim_env = envs.make(args.env_id)
    obs_dim = victim_env.observation_space.shape[0]
    action_dim = victim_env.action_space.shape[0]
    victim = ActorCritic(obs_dim, action_dim, hidden_sizes=(8,),
                         rng=np.random.default_rng(args.seed + 1))
    adv_env = StatePerturbationEnv(victim_env, victim, epsilon=args.epsilon)
    adv_env.seed(args.seed)
    adversary = ActorCritic(obs_dim, obs_dim, hidden_sizes=(8,),
                            rng=np.random.default_rng(args.seed + 2))

    def rollout_features() -> np.ndarray:
        rollout = collect_adversary_rollout(adv_env, adversary, args.rollout, rng,
                                            update_normalizer=True)
        return rollout.knn_victim.copy()

    return obs_dim, rollout_features


def sync_index(index: IncrementalKnnIndex, union: UnionStateBuffer, delta) -> None:
    if delta.append_only:
        index.add(delta.appended)
    else:
        index.reset(union.states)


def run(args: argparse.Namespace) -> dict:
    feature_dim, rollout_features = make_feature_source(args)
    # capacity == measured size: filling past it lands the measured
    # iterations in the reservoir-replacement steady state
    union = UnionStateBuffer(capacity=args.buffer_size, seed=args.seed)
    index = IncrementalKnnIndex(background=not args.sync_index)

    fill_start = time.perf_counter()
    fill_iters = 0
    while union.total_seen < args.buffer_size:
        sync_index(index, union, union.extend(rollout_features()))
        fill_iters += 1
    # settle: warm the index's spatial layout with two replacement cycles
    for _ in range(2):
        sync_index(index, union, union.extend(rollout_features()))
        fill_iters += 1
    fill_seconds = time.perf_counter() - fill_start

    baseline_bonus_s, indexed_bonus_s = [], []
    baseline_update_s, indexed_update_s = [], []
    equivalent = True
    for _ in range(args.measure_iters):
        features = rollout_features()

        start = time.perf_counter()
        legacy = baseline_bonus(features, union.states, args.k)
        baseline_bonus_s.append(time.perf_counter() - start)

        start = time.perf_counter()
        amortized = indexed_bonus(features, index, args.k)
        indexed_bonus_s.append(time.perf_counter() - start)

        equivalent = equivalent and np.array_equal(legacy, amortized)

        # maintenance: baseline only extends the buffer; the indexed path
        # additionally pays the pending/rebuild bookkeeping
        start = time.perf_counter()
        delta = union.extend(features)
        baseline_update_s.append(time.perf_counter() - start)
        start = time.perf_counter()
        sync_index(index, union, delta)
        indexed_update_s.append(time.perf_counter() - start)

    def mean(xs: list[float]) -> float:
        return float(np.mean(xs))

    baseline_iter = mean(baseline_bonus_s) + mean(baseline_update_s)
    indexed_iter = mean(indexed_bonus_s) + mean(indexed_update_s)
    return {
        "benchmark": "density_index_pc_bonus_path",
        "config": {
            "buffer_size": args.buffer_size, "rollout": args.rollout,
            "env_id": args.env_id, "epsilon": args.epsilon,
            "feature_dim": feature_dim, "k": args.k,
            "measure_iters": args.measure_iters,
            "seed": args.seed, "quick": args.quick,
            "background_index": not args.sync_index,
            "regime": "reservoir_replacement",
        },
        "fill": {"iterations": fill_iters, "seconds": fill_seconds,
                 "rebuilds": index.rebuilds},
        "bonus_path": {
            "baseline_s_per_iter": mean(baseline_bonus_s),
            "indexed_s_per_iter": mean(indexed_bonus_s),
            "speedup": mean(baseline_bonus_s) / mean(indexed_bonus_s),
        },
        "maintenance": {
            "baseline_s_per_iter": mean(baseline_update_s),
            "indexed_s_per_iter": mean(indexed_update_s),
        },
        "per_iteration_total": {
            "baseline_s": baseline_iter,
            "indexed_s": indexed_iter,
            "speedup": baseline_iter / indexed_iter,
        },
        "index_stats": {"n_indexed": index.n_indexed, "n_pending": index.n_pending,
                        "rebuilds": index.rebuilds,
                        "pending_hits": index.pending_hits,
                        "query_chunks": index.query_chunks},
        "equivalent": equivalent,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI-scale smoke run (small buffer, fewer iters)")
    parser.add_argument("--buffer-size", type=int, default=None,
                        help="union-buffer capacity to measure at "
                             "(default 50000, the AttackConfig default; 8192 with --quick)")
    parser.add_argument("--rollout", type=int, default=None,
                        help="states per iteration (default 2048, the AttackConfig "
                             "default; 512 with --quick)")
    parser.add_argument("--env-id", default="Hopper-v0",
                        help="victim environment the features are rolled out in")
    parser.add_argument("--epsilon", type=float, default=None,
                        help="perturbation budget (default: the env's default budget)")
    parser.add_argument("--k", type=int, default=5, help="KNN k")
    parser.add_argument("--measure-iters", type=int, default=None,
                        help="measured iterations (default 10; 3 with --quick)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--sync-index", action="store_true",
                        help="rebuild the cKDTree inline (PR-5 timing) instead "
                             "of on the background worker thread")
    parser.add_argument("--min-total-speedup", type=float, default=None,
                        metavar="X",
                        help="regression gate: exit 1 if the per-iteration "
                             "total speedup lands below X (for CI)")
    parser.add_argument("--output", type=Path,
                        default=Path(__file__).resolve().parent.parent / "BENCH_density.json")
    args = parser.parse_args(argv)
    args.buffer_size = args.buffer_size or (8_192 if args.quick else 50_000)
    args.rollout = args.rollout or (512 if args.quick else 2_048)
    args.measure_iters = args.measure_iters or (3 if args.quick else 10)
    if args.epsilon is None:
        args.epsilon = default_epsilon(args.env_id)

    result = run(args)
    args.output.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")

    bonus = result["bonus_path"]
    total = result["per_iteration_total"]
    print(f"union-buffer size {args.buffer_size}, rollout {args.rollout}, "
          f"k={args.k}, {args.env_id} features (dim {result['config']['feature_dim']}, "
          f"eps {args.epsilon})")
    print(f"bonus path: baseline {bonus['baseline_s_per_iter'] * 1e3:8.2f} ms/iter"
          f" -> indexed {bonus['indexed_s_per_iter'] * 1e3:8.2f} ms/iter"
          f"  ({bonus['speedup']:.1f}x)")
    print(f"total:      baseline {total['baseline_s'] * 1e3:8.2f} ms/iter"
          f" -> indexed {total['indexed_s'] * 1e3:8.2f} ms/iter"
          f"  ({total['speedup']:.1f}x)")
    print(f"bit-identical bonuses: {result['equivalent']}")
    print(f"wrote {args.output}")
    if not result["equivalent"]:
        print("ERROR: indexed bonuses diverged from the baseline")
        return 1
    if (args.min_total_speedup is not None
            and total["speedup"] < args.min_total_speedup):
        print(f"ERROR: per-iteration total speedup {total['speedup']:.2f}x "
              f"below the {args.min_total_speedup:.2f}x gate")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
