"""Ablation bench: dual value heads (Eq. 14) vs a single mixed-reward head.

The paper estimates Â_E and Â_I with separate critics.  This bench trains
IMAP-PC both ways on the same victim and reports final attack quality.
"""

from __future__ import annotations

from dataclasses import replace

from conftest import run_once

from repro import envs
from repro.attacks import StatePerturbationEnv, default_epsilon, train_imap
from repro.eval import evaluate_single_agent
from repro.experiments import attack_config_for, victim_for


def test_dual_vs_single_value_head(benchmark, scale):
    env_id = "SparseHopper-v0"
    eps = default_epsilon(env_id)

    def run():
        victim = victim_for(env_id, "ppo", scale, seed=0)
        results = {}
        for single in (False, True):
            config = replace(attack_config_for(scale, seed=0), single_value_head=single)
            adv_env = StatePerturbationEnv(envs.make(env_id), victim, epsilon=eps)
            attack = train_imap(adv_env, "pc", config)
            ev = evaluate_single_agent(envs.make(env_id), victim, attack.policy,
                                       epsilon=eps, episodes=scale.eval_episodes)
            results["single" if single else "dual"] = ev
        return results

    results = run_once(benchmark, run)
    print()
    for name, ev in results.items():
        print(f"{name:>6} head: victim reward {ev.mean_reward:6.2f} ASR {ev.asr:.0%}")
