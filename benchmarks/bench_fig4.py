"""Bench: regenerate Figure 4 (sparse locomotion attack learning curves)."""

from __future__ import annotations

import os

from conftest import run_once

from repro.experiments import run_fig4
from repro.experiments.fig4 import FIG4_TASKS


def test_fig4_sparsehopper(benchmark, scale):
    def run():
        return run_fig4(env_ids=["SparseHopper-v0"],
                        attacks=["sarl", "imap-pc", "imap-r"],
                        scale=scale, verbose=False)

    figures = run_once(benchmark, run)
    print()
    figure = figures["SparseHopper-v0"]
    print(figure.render(y_name="victim success"))
    # sample-efficiency summary: lower AUC = faster attack
    for label, curve in figure.curves.items():
        print(f"{label:>10} AUC {curve.auc():.1f}  best {curve.best():.2f}")


def test_fig4_full(benchmark, scale):
    if not os.environ.get("REPRO_FIG4_FULL"):
        import pytest
        pytest.skip("set REPRO_FIG4_FULL=1 to run all six sparse locomotion tasks")

    def run():
        return run_fig4(env_ids=FIG4_TASKS, scale=scale, verbose=True)

    figures = run_once(benchmark, run)
    print()
    for env_id, figure in figures.items():
        print(figure.render(y_name="victim success"))
        print()
