"""Benchmark configuration.

Benches default to the ``smoke`` scale so ``pytest benchmarks/
--benchmark-only`` completes in minutes; set ``REPRO_SCALE=short`` (or
``paper``) to regenerate the tables/figures at meaningful budgets.
Victims are cached under ``$REPRO_ARTIFACTS`` between runs.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import SCALES


@pytest.fixture(scope="session")
def scale():
    name = os.environ.get("REPRO_SCALE", "smoke")
    return SCALES[name]


def run_once(benchmark, fn):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
