"""Warm persistent pool vs spawn-per-job scheduling (PR 7).

Runs the same deterministic job sweep through the two worker-lane
backends of :func:`repro.runtime.run_parallel`:

* **spawn** — the PR-4 supervised path: every job gets a freshly forked
  worker process with its own heartbeat file, killed when the job ends.
* **pool**  — a :class:`repro.runtime.WorkerPool` spawned once before
  the measured window (the "warm" state a long sweep or the serve
  daemon operates in) and reused for every job.

Both lanes enforce identical watchdog semantics (timeouts, heartbeats,
``error_kind`` taxonomy), so the delta is pure process-lifecycle
overhead: fork + interpreter teardown per job versus a pipe send of the
job's cached payload bytes.  The job bodies are seeded pure functions,
and the bench asserts the two lanes return bit-identical values — the
speedup carries no semantics caveat.

Usage::

    PYTHONPATH=src python benchmarks/bench_pool.py           # 32-job sweep
    PYTHONPATH=src python benchmarks/bench_pool.py --quick   # CI smoke (8 jobs)
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.runtime import Job, WorkerPool, run_parallel


def bench_job(seed: int, size: int, repeats: int) -> np.ndarray:
    """Deterministic stand-in for one experiment cell.

    A seeded chain of matrix products — enough numpy work to look like a
    small evaluation, small enough that process-lifecycle overhead stays
    visible.  Pure function of its arguments, so both lanes must return
    the same bits.
    """
    rng = np.random.default_rng(np.random.SeedSequence(seed))
    state = rng.standard_normal((size, size))
    step = rng.standard_normal((size, size)) / size
    for _ in range(repeats):
        state = np.tanh(state @ step)
    return state[0].copy()


def make_jobs(args: argparse.Namespace) -> list[Job]:
    # Fresh Job objects per lane: cached payload bytes never leak between
    # the measured runs.
    return [Job(fn=bench_job, args=(args.seed + i, args.size, args.repeats),
                name=f"bench:{i}", timeout=args.job_timeout)
            for i in range(args.n_jobs)]


def run(args: argparse.Namespace) -> dict:
    # Lane 1: spawn-per-job.  The timeout routes the batch through the
    # supervised scheduler, which forks one watchdogged process per job.
    spawn_jobs = make_jobs(args)
    start = time.perf_counter()
    spawn_report = run_parallel(spawn_jobs, max_workers=args.workers,
                                timeout=args.job_timeout)
    spawn_seconds = time.perf_counter() - start
    if spawn_report.n_failed:
        raise RuntimeError(f"spawn lane failed: {spawn_report.summary()}")

    # Lane 2: warm pool.  The warmup run pays worker spawn + first-dispatch
    # costs outside the measured window, as a long-lived sweep would.
    with WorkerPool(max_workers=args.workers) as pool:
        warm_report = run_parallel(make_jobs(args), pool=pool)
        if warm_report.n_failed:
            raise RuntimeError(f"pool warmup failed: {warm_report.summary()}")
        pool_jobs = make_jobs(args)
        start = time.perf_counter()
        pool_report = run_parallel(pool_jobs, pool=pool,
                                   timeout=args.job_timeout)
        pool_seconds = time.perf_counter() - start
        replacements = pool.replacements
    if pool_report.n_failed:
        raise RuntimeError(f"pool lane failed: {pool_report.summary()}")

    identical = all(
        np.array_equal(s.value, p.value)
        for s, p in zip(spawn_report.results, pool_report.results))

    return {
        "benchmark": "worker_pool_vs_spawn_per_job",
        "config": {
            "n_jobs": args.n_jobs, "workers": args.workers,
            "size": args.size, "repeats": args.repeats,
            "job_timeout": args.job_timeout, "seed": args.seed,
            "quick": args.quick,
        },
        "spawn": {
            "seconds": spawn_seconds,
            "jobs_per_s": args.n_jobs / spawn_seconds,
            "s_per_job": spawn_seconds / args.n_jobs,
        },
        "pool": {
            "seconds": pool_seconds,
            "jobs_per_s": args.n_jobs / pool_seconds,
            "s_per_job": pool_seconds / args.n_jobs,
            "worker_replacements": replacements,
        },
        "speedup": spawn_seconds / pool_seconds,
        "identical_values": identical,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI-scale smoke run (8 jobs)")
    parser.add_argument("--n-jobs", type=int, default=None,
                        help="sweep size (default 32; 8 with --quick)")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--size", type=int, default=96,
                        help="job matrix dimension")
    parser.add_argument("--repeats", type=int, default=10,
                        help="matrix products per job (default 10; larger "
                             "values shift the sweep from overhead-bound "
                             "toward compute-bound)")
    parser.add_argument("--job-timeout", type=float, default=120.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--min-speedup", type=float, default=1.0,
                        metavar="X",
                        help="regression gate: exit 1 if the warm pool is "
                             "not at least X times the spawn-per-job lane "
                             "(default 1.0: pool must not regress)")
    parser.add_argument("--output", type=Path,
                        default=Path(__file__).resolve().parent.parent / "BENCH_pool.json")
    args = parser.parse_args(argv)
    args.n_jobs = args.n_jobs or (8 if args.quick else 32)

    result = run(args)
    args.output.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")

    spawn, pool = result["spawn"], result["pool"]
    print(f"{args.n_jobs} jobs x (tanh({args.size}x{args.size} matmul) "
          f"* {args.repeats}), {args.workers} workers")
    print(f"spawn-per-job: {spawn['seconds']:.2f}s "
          f"({1e3 * spawn['s_per_job']:.0f} ms/job)")
    print(f"warm pool:     {pool['seconds']:.2f}s "
          f"({1e3 * pool['s_per_job']:.0f} ms/job)  "
          f"({result['speedup']:.2f}x)")
    print(f"bit-identical values: {result['identical_values']}")
    print(f"wrote {args.output}")
    if not result["identical_values"]:
        print("ERROR: pool lane values diverged from the spawn lane")
        return 1
    if result["speedup"] < args.min_speedup:
        print(f"ERROR: warm pool speedup {result['speedup']:.2f}x below "
              f"the {args.min_speedup:.2f}x gate")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
