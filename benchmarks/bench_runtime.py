"""Benchmarks for the parallel execution runtime.

* Rollout throughput (steps/s) of the vectorized collector at
  ``n_envs ∈ {1, 4, 8}`` — batching amortizes the per-step policy
  forward across lanes even on one core.
* Multiseed attack-training wall clock, sequential vs the process-pool
  scheduler with 4 workers.  The measured speedup tracks the number of
  *physical cores*; on a single-core runner the pool only adds overhead,
  so the speedup is reported rather than asserted.

Run with ``PYTHONPATH=src python -m pytest benchmarks/bench_runtime.py
--benchmark-only -q`` (add ``-s`` to see the speedup report).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro import envs
from repro.attacks import StatePerturbationEnv
from repro.experiments import ExperimentScale, train_best_of_seeds
from repro.rl import TrainConfig, train_ppo
from repro.rl.policy import ActorCritic
from repro.runtime import SyncVectorEnv, collect_adversary_rollout_vec

ROLLOUT_STEPS = 2048


@pytest.fixture(scope="module")
def victim():
    result = train_ppo(envs.make("Hopper-v0"),
                       TrainConfig(iterations=2, steps_per_iteration=512, seed=0))
    result.policy.freeze_normalizer()
    return result.policy


def _vec_env(victim, n_envs: int) -> SyncVectorEnv:
    vec = SyncVectorEnv([
        StatePerturbationEnv(envs.make("Hopper-v0"), victim, epsilon=0.6, seed=i)
        for i in range(n_envs)
    ])
    vec.seed(0)
    return vec


@pytest.mark.parametrize("n_envs", [1, 4, 8])
def test_rollout_throughput(benchmark, victim, n_envs):
    vec = _vec_env(victim, n_envs)
    policy = ActorCritic(vec.observation_space.shape[0],
                         vec.action_space.shape[0],
                         rng=np.random.default_rng(7))
    rng = np.random.default_rng(3)

    def collect():
        return collect_adversary_rollout_vec(vec, policy, ROLLOUT_STEPS, rng)

    rollout = benchmark(collect)
    assert len(rollout) == ROLLOUT_STEPS
    benchmark.extra_info["n_envs"] = n_envs
    benchmark.extra_info["steps_per_round"] = ROLLOUT_STEPS


def test_multiseed_serial_vs_parallel(victim, capsys):
    """Wall-clock comparison of sequential vs 4-worker multiseed training."""
    scale = ExperimentScale(name="smoke", victim_iterations=1,
                            attack_iterations=2, steps_per_iteration=512,
                            eval_episodes=4, game_victim_iterations=1,
                            game_hardening_iterations=0, game_attack_iterations=1)
    seeds = (0, 1, 2, 3)

    t0 = time.perf_counter()
    sequential = train_best_of_seeds("Hopper-v0", victim, "sarl", scale, seeds=seeds)
    serial_wall = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = train_best_of_seeds("Hopper-v0", victim, "sarl", scale, seeds=seeds,
                                   max_workers=4)
    parallel_wall = time.perf_counter() - t0

    assert parallel.best_index == sequential.best_index
    speedup = serial_wall / parallel_wall if parallel_wall > 0 else 0.0
    with capsys.disabled():
        print(f"\n[bench_runtime] multiseed {len(seeds)} seeds: "
              f"serial {serial_wall:.1f}s, 4 workers {parallel_wall:.1f}s, "
              f"speedup {speedup:.2f}x on {os.cpu_count()} cpu(s)")
