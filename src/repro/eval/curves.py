"""Learning-curve recording and text rendering (for the figure benches)."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

__all__ = ["Curve", "CurveSet"]


@dataclass
class Curve:
    """One labelled (x, y) series, e.g. ASR vs training samples."""

    label: str
    x: list[float] = field(default_factory=list)
    y: list[float] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        self.x.append(float(x))
        self.y.append(float(y))

    @property
    def final(self) -> float:
        return self.y[-1] if self.y else float("nan")

    def best(self, minimize: bool = True) -> float:
        if not self.y:
            return float("nan")
        return float(min(self.y) if minimize else max(self.y))

    def auc(self) -> float:
        """Area under the curve (trapezoid); a sample-efficiency summary."""
        if len(self.x) < 2:
            return float("nan")
        return float(np.trapezoid(self.y, self.x))


@dataclass
class CurveSet:
    """A figure: several curves over a shared x-axis meaning."""

    title: str
    curves: dict[str, Curve] = field(default_factory=dict)

    def curve(self, label: str) -> Curve:
        if label not in self.curves:
            self.curves[label] = Curve(label)
        return self.curves[label]

    def render(self, y_name: str = "value", width: int = 48) -> str:
        """Monospace sparkline rendering of every curve."""
        lines = [self.title]
        values = [v for c in self.curves.values() for v in c.y]
        if not values:
            return self.title + " (empty)"
        lo, hi = min(values), max(values)
        span = hi - lo if hi > lo else 1.0
        glyphs = " .:-=+*#%@"
        for label, curve in self.curves.items():
            if not curve.y:
                continue
            resampled = np.interp(
                np.linspace(0, len(curve.y) - 1, width),
                np.arange(len(curve.y)), curve.y,
            )
            bar = "".join(glyphs[int((v - lo) / span * (len(glyphs) - 1))] for v in resampled)
            lines.append(f"{label:>16} |{bar}| final {y_name}={curve.final:.3f}")
        return "\n".join(lines)

    def to_json(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "title": self.title,
            "curves": {k: {"x": c.x, "y": c.y} for k, c in self.curves.items()},
        }
        path.write_text(json.dumps(payload, indent=2))
        return path

    @staticmethod
    def from_json(path: str | Path) -> "CurveSet":
        payload = json.loads(Path(path).read_text())
        cs = CurveSet(payload["title"])
        for label, data in payload["curves"].items():
            cs.curves[label] = Curve(label, list(data["x"]), list(data["y"]))
        return cs
