"""Evaluation: attack harness, metrics, tables, and learning curves."""

from .curves import Curve, CurveSet
from .harness import AttackEvaluation, evaluate_game, evaluate_single_agent
from .metrics import bootstrap_ci, format_mean_std, mean_std
from .render import render_arena, render_locomotion_trace
from .tables import bold_min_per_row, render_table

__all__ = [
    "AttackEvaluation", "evaluate_single_agent", "evaluate_game",
    "mean_std", "bootstrap_ci", "format_mean_std",
    "render_table", "bold_min_per_row",
    "render_locomotion_trace", "render_arena",
    "Curve", "CurveSet",
]
