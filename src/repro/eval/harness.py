"""Attack-evaluation harness: victim performance under a (trained) attack.

Reports the paper's metrics: mean ± std of the victim's episode reward
over N episodes for single-agent tasks (Tables 1-3), and the attacking
success rate (ASR) for competitive games (Figure 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..envs.core import Env
from ..envs.multiagent.core import TwoPlayerEnv
from ..rl.policy import ActorCritic
from .metrics import mean_std
from ..attacks.threat_models import OpponentEnv, StatePerturbationEnv

__all__ = ["AttackEvaluation", "evaluate_single_agent", "evaluate_game"]


@dataclass
class AttackEvaluation:
    """Outcome of evaluating one attack against one victim."""

    episode_rewards: list[float] = field(default_factory=list)
    episode_successes: list[bool] = field(default_factory=list)
    episode_lengths: list[int] = field(default_factory=list)

    @property
    def mean_reward(self) -> float:
        return mean_std(self.episode_rewards)[0]

    @property
    def std_reward(self) -> float:
        return mean_std(self.episode_rewards)[1]

    @property
    def victim_success_rate(self) -> float:
        return float(np.mean(self.episode_successes)) if self.episode_successes else 0.0

    @property
    def asr(self) -> float:
        """Attacking success rate: fraction of episodes the victim fails."""
        return 1.0 - self.victim_success_rate

    def summary(self) -> str:
        return f"{self.mean_reward:.2f} ± {self.std_reward:.2f} (ASR {self.asr:.2%})"


def evaluate_single_agent(env: Env, victim: ActorCritic, attack_policy=None,
                          epsilon: float = 0.0, episodes: int = 50, seed: int = 1234,
                          victim_deterministic: bool = True,
                          attack_deterministic: bool = True) -> AttackEvaluation:
    """Victim episode rewards under a state-perturbation attack.

    ``attack_policy=None`` evaluates the clean victim; otherwise the
    attack (an ActorCritic or RandomAttackPolicy) perturbs the victim's
    normalized observations inside the ε-ball.
    """
    rng = np.random.default_rng(seed)
    result = AttackEvaluation()
    if attack_policy is None:
        env.seed(seed)
        for _ in range(episodes):
            obs = env.reset()
            done, ep_reward, ep_len, ep_success = False, 0.0, 0, False
            while not done:
                action = victim.action(obs, rng, deterministic=victim_deterministic)
                obs, reward, terminated, truncated, info = env.step(action)
                done = terminated or truncated
                ep_reward += reward
                ep_len += 1
                ep_success = ep_success or bool(info.get("success", False))
            result.episode_rewards.append(ep_reward)
            result.episode_successes.append(ep_success)
            result.episode_lengths.append(ep_len)
        return result

    adv_env = StatePerturbationEnv(env, victim, epsilon=epsilon,
                                   victim_deterministic=victim_deterministic, seed=seed)
    adv_env.seed(seed)
    for _ in range(episodes):
        obs = adv_env.reset()
        done, ep_reward, ep_len, ep_success = False, 0.0, 0, False
        while not done:
            action = attack_policy.action(obs, rng, deterministic=attack_deterministic)
            obs, _, terminated, truncated, info = adv_env.step(action)
            done = terminated or truncated
            ep_reward += float(info["victim_reward"])
            ep_len += 1
            ep_success = ep_success or bool(info.get("success", False))
        result.episode_rewards.append(ep_reward)
        result.episode_successes.append(ep_success)
        result.episode_lengths.append(ep_len)
    return result


def evaluate_game(game: TwoPlayerEnv, victim: ActorCritic, adversary,
                  episodes: int = 100, seed: int = 1234,
                  victim_deterministic: bool = True,
                  adversary_deterministic: bool = True) -> AttackEvaluation:
    """ASR of an adversarial opponent against a fixed game victim."""
    rng = np.random.default_rng(seed)
    adv_env = OpponentEnv(game, victim, victim_deterministic=victim_deterministic, seed=seed)
    adv_env.seed(seed)
    result = AttackEvaluation()
    for _ in range(episodes):
        obs = adv_env.reset()
        done, ep_reward, ep_len, victim_won = False, 0.0, 0, False
        while not done:
            action = adversary.action(obs, rng, deterministic=adversary_deterministic)
            obs, _, terminated, truncated, info = adv_env.step(action)
            done = terminated or truncated
            ep_reward += float(info["victim_reward"])
            ep_len += 1
            victim_won = victim_won or bool(info.get("victim_win", False))
        result.episode_rewards.append(ep_reward)
        result.episode_successes.append(victim_won)
        result.episode_lengths.append(ep_len)
    return result
