"""ASCII trajectory rendering — the closest this repo gets to the
paper's Figures 1-3 (MuJoCo frames).

* :func:`render_locomotion_trace` — side view of a locomotion episode:
  torso height/pitch over time, with falls marked.
* :func:`render_arena` — top-down view of a two-player game trajectory
  (runner path, blocker path, contact/fall events).
"""

from __future__ import annotations

import numpy as np

__all__ = ["render_locomotion_trace", "render_arena"]


def render_locomotion_trace(heights: list[float], pitches: list[float],
                            fell: bool, width: int = 60, rows: int = 7) -> str:
    """Render torso height over time; '/' '\\' mark strong lean, 'X' a fall."""
    if not heights:
        return "(empty trajectory)"
    heights_arr = np.asarray(heights, dtype=float)
    pitches_arr = np.asarray(pitches, dtype=float)
    idx = np.linspace(0, len(heights_arr) - 1, min(width, len(heights_arr))).astype(int)
    z = heights_arr[idx]
    phi = pitches_arr[idx]
    lo, hi = float(z.min()), float(z.max())
    span = hi - lo if hi > lo else 1.0
    grid = [[" "] * len(idx) for _ in range(rows)]
    for col, (zz, pp) in enumerate(zip(z, phi)):
        row = rows - 1 - int((zz - lo) / span * (rows - 1))
        if pp > 0.15:
            glyph = "/"
        elif pp < -0.15:
            glyph = "\\"
        else:
            glyph = "o"
        grid[row][col] = glyph
    if fell:
        grid[-1][-1] = "X"
    lines = [f"z={hi:4.2f} |" + "".join(grid[0])]
    lines += ["        |" + "".join(row) for row in grid[1:-1]]
    lines += [f"z={lo:4.2f} |" + "".join(grid[-1])]
    lines.append("        +" + "-" * len(idx) + "> t" + ("  (FELL)" if fell else ""))
    return "\n".join(lines)


def render_arena(paths: dict[str, list[np.ndarray]],
                 bounds: tuple[float, float, float, float],
                 events: dict[str, np.ndarray] | None = None,
                 width: int = 60, rows: int = 15) -> str:
    """Top-down arena with one glyph per agent path.

    ``paths`` maps a single-character glyph to a list of (x, y) points;
    ``events`` maps glyphs to single points (e.g. ``{"X": fall_pos}``).
    Later-drawn paths overwrite earlier ones where they overlap.
    """
    xmin, xmax, ymin, ymax = bounds
    grid = [["."] * width for _ in range(rows)]

    def plot(point, glyph):
        x = (float(point[0]) - xmin) / (xmax - xmin)
        y = (float(point[1]) - ymin) / (ymax - ymin)
        col = min(width - 1, max(0, int(x * (width - 1))))
        row = min(rows - 1, max(0, int((1.0 - y) * (rows - 1))))
        grid[row][col] = glyph

    for glyph, points in paths.items():
        if len(glyph) != 1:
            raise ValueError("path keys must be single characters")
        for point in points:
            plot(point, glyph)
    for glyph, point in (events or {}).items():
        plot(point, glyph)
    border = "+" + "-" * width + "+"
    return "\n".join([border] + ["|" + "".join(row) + "|" for row in grid] + [border])
