"""Small statistics helpers shared by the evaluation harness."""

from __future__ import annotations

import numpy as np

__all__ = ["mean_std", "bootstrap_ci", "format_mean_std"]


def mean_std(values) -> tuple[float, float]:
    """(mean, std) of a sequence; (0, 0) when empty."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return 0.0, 0.0
    return float(arr.mean()), float(arr.std())


def bootstrap_ci(values, confidence: float = 0.95, n_resamples: int = 2000,
                 seed: int = 0) -> tuple[float, float]:
    """Percentile bootstrap confidence interval for the mean."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return 0.0, 0.0
    rng = np.random.default_rng(seed)
    means = rng.choice(arr, size=(n_resamples, arr.size), replace=True).mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    return float(np.quantile(means, alpha)), float(np.quantile(means, 1.0 - alpha))


def format_mean_std(mean: float, std: float, digits: int = 2) -> str:
    return f"{mean:.{digits}f} ± {std:.{digits}f}"
