"""Plain-text table rendering for the experiment reports."""

from __future__ import annotations

__all__ = ["render_table", "bold_min_per_row"]


def render_table(headers: list[str], rows: list[list[str]], title: str | None = None) -> str:
    """Render an aligned monospace table (the benches print these)."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in rows:
        lines.append(" | ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def bold_min_per_row(values: list[float], formatted: list[str]) -> list[str]:
    """Mark the minimum entry of a row with ``*`` (the paper bolds it)."""
    if not values:
        return formatted
    best = min(range(len(values)), key=lambda i: values[i])
    marked = list(formatted)
    marked[best] = f"*{marked[best]}*"
    return marked
