"""Population-scale attack league (the many-attackers × many-victims view).

Gleave et al. showed adversarial policies are a population phenomenon;
the paper's Tables 1–3 are one slice of a bigger matrix.  This package
plays the whole matrix as a round-based tournament on top of the repo's
scheduling/store stack:

* :mod:`~repro.league.spec` — rosters, :class:`LeagueConfig`, canonical
  content-addressed match specs;
* :mod:`~repro.league.match` — the picklable, idempotent unit of work;
* :mod:`~repro.league.elo` — deterministic Elo/robustness leaderboard;
* :mod:`~repro.league.runner` — :func:`run_league`;
* :mod:`~repro.league.cli` — the ``repro-experiments league`` subcommand.
"""

from .elo import MatchOutcome, build_leaderboard, fold_elo, leaderboard_bytes, render_leaderboard
from .match import materialize_victim, play_match, train_counter_victim
from .runner import LeagueResult, RoundReport, run_league
from .spec import (
    DEFAULT_ATTACKERS,
    DEFAULT_VICTIMS,
    GRADIENT_ATTACKERS,
    LeagueConfig,
    league_key,
    league_spec,
    match_spec,
    parse_attacker_name,
    parse_victim_name,
)

__all__ = [
    "MatchOutcome", "build_leaderboard", "fold_elo", "leaderboard_bytes",
    "render_leaderboard", "materialize_victim", "play_match",
    "train_counter_victim", "LeagueResult", "RoundReport", "run_league",
    "DEFAULT_ATTACKERS", "DEFAULT_VICTIMS", "GRADIENT_ATTACKERS",
    "LeagueConfig", "league_key", "league_spec", "match_spec",
    "parse_attacker_name", "parse_victim_name",
]
