"""League identity: rosters, configs, and canonical match specs.

Everything the league schedules or persists is content-addressed through
the same canonical-JSON machinery as the rest of the store
(:mod:`repro.store.keys`):

* a **match spec** is a pure-data description of one (attacker, victim)
  cell — victim provenance spec, attacker name, training/eval budgets,
  seeds, code version.  Its :func:`~repro.store.spec_key` is the match's
  identity: a rematch of the same pairing in a later round (or a resumed
  league, or a different execution lane) hashes to the same key and is
  served from the store instead of being replayed.
* a **league spec** hashes the whole tournament configuration; it names
  the league's output directory and ties leaderboard artifacts to the
  exact roster/budget that produced them.

Attacker names combine the learned families from
:mod:`repro.experiments.runner` (``random``/``sarl``/``apmarl``/IMAP
variants ± BR) with the white-box gradient attackers from
:mod:`repro.attacks.gradient` (``pgd``, ``critic-pgd``, ``st-pgd``).
Victims are named ``"<env_id>:<defense>"``; counter-trained generations
append ``+ct<round>``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from ..attacks.threat_models import default_epsilon
from ..defenses import defense_names
from ..experiments.config import SCALES
from ..experiments.runner import attack_config_for, parse_attack_name, victim_config_for
from ..store import CODE_VERSION, spec_key
from ..zoo.train import victim_spec

__all__ = [
    "GRADIENT_ATTACKERS", "DEFAULT_ATTACKERS", "DEFAULT_VICTIMS",
    "LeagueConfig", "parse_victim_name", "parse_attacker_name",
    "base_entrant", "counter_entrant_spec", "entrant_from_counter_spec",
    "league_spec", "league_key", "match_spec", "config_to_doc",
    "config_from_doc",
]

GRADIENT_ATTACKERS = ("pgd", "critic-pgd", "st-pgd")

DEFAULT_ATTACKERS = (
    "random", "sarl",
    "imap-sc", "imap-pc", "imap-r", "imap-d",
    "pgd", "critic-pgd", "st-pgd",
)

DEFAULT_VICTIMS = (
    "Hopper-v0:ppo", "Hopper-v0:atla",
    "Walker2d-v0:ppo", "Walker2d-v0:wocar",
)


def parse_attacker_name(name: str) -> dict:
    """Validate a league attacker name into ``{"family": ...}`` options."""
    name = name.lower()
    if name in GRADIENT_ATTACKERS:
        return {"family": "gradient", "method": name}
    return parse_attack_name(name)  # raises ValueError on unknown names


def parse_victim_name(name: str) -> tuple[str, str]:
    """Split ``"<env_id>:<defense>"``; validates the defense is registered."""
    env_id, sep, defense = name.partition(":")
    if not sep or not env_id or not defense:
        raise ValueError(
            f"league victim {name!r} must be '<env_id>:<defense>', e.g. "
            "'Hopper-v0:ppo'")
    if defense not in defense_names():
        raise ValueError(
            f"league victim {name!r} names unknown defense {defense!r}; "
            f"options: {defense_names()}")
    return env_id, defense


@dataclass(frozen=True)
class LeagueConfig:
    """One tournament: who plays whom, for how long, at what budget."""

    attackers: tuple[str, ...] = DEFAULT_ATTACKERS
    victims: tuple[str, ...] = DEFAULT_VICTIMS
    rounds: int = 1
    scale: str = "smoke"
    seed: int = 0
    eval_seed: int = 1000
    # Retrain the worst victim against the best attacker between rounds
    # (the ATLA loop generalized to a league).
    counter_training: bool = False
    # White-box attacker knobs (part of the match identity).
    pgd_steps: int = 5
    sta_fraction: float = 0.3
    # Elo fold parameters (leaderboard identity, not match identity).
    elo_k: float = 32.0
    initial_rating: float = 1000.0

    def __post_init__(self):
        object.__setattr__(self, "attackers", tuple(self.attackers))
        object.__setattr__(self, "victims", tuple(self.victims))
        if not self.attackers:
            raise ValueError("league needs at least one attacker")
        if not self.victims:
            raise ValueError("league needs at least one victim")
        for name in self.attackers:
            parse_attacker_name(name)
        for name in self.victims:
            parse_victim_name(name)
        if self.rounds < 1:
            raise ValueError("rounds must be >= 1")
        if self.scale not in SCALES:
            raise ValueError(f"unknown scale {self.scale!r}; "
                             f"options: {sorted(SCALES)}")
        if self.pgd_steps < 1:
            raise ValueError("pgd_steps must be >= 1")
        if not 0.0 < self.sta_fraction <= 1.0:
            raise ValueError("sta_fraction must be in (0, 1]")


def config_to_doc(config: LeagueConfig) -> dict:
    """Plain-JSON record of a config (the ``league.json`` resume file)."""
    doc = dataclasses.asdict(config)
    doc["attackers"] = list(config.attackers)
    doc["victims"] = list(config.victims)
    return doc


def config_from_doc(doc: dict, **overrides) -> LeagueConfig:
    """Rebuild a config from :func:`config_to_doc` output (+ overrides)."""
    merged = dict(doc)
    merged.update({k: v for k, v in overrides.items() if v is not None})
    merged["attackers"] = tuple(merged["attackers"])
    merged["victims"] = tuple(merged["victims"])
    known = {f.name for f in dataclasses.fields(LeagueConfig)}
    unknown = sorted(set(merged) - known)
    if unknown:
        raise ValueError(f"league config record has unknown fields {unknown}")
    return LeagueConfig(**merged)


def league_spec(config: LeagueConfig) -> dict:
    """Canonical identity of the whole tournament (roster order elided)."""
    return {
        "kind": "league",
        "attackers": sorted(config.attackers),
        "victims": sorted(config.victims),
        "rounds": config.rounds,
        "scale": config.scale,
        "seed": config.seed,
        "eval_seed": config.eval_seed,
        "counter_training": config.counter_training,
        "pgd_steps": config.pgd_steps,
        "sta_fraction": config.sta_fraction,
        "elo_k": config.elo_k,
        "initial_rating": config.initial_rating,
        "code_version": CODE_VERSION,
    }


def league_key(config: LeagueConfig) -> str:
    return spec_key(league_spec(config))


def base_entrant(config: LeagueConfig, name: str) -> dict:
    """Victim-entrant doc for a zoo victim named ``"<env_id>:<defense>"``.

    ``entrant["spec"]`` is the victim's full content-address spec (env,
    defense, complete training config, budget tag, seed, code version) —
    the *recipe*, not the parameters.  The recipe is deterministic, so
    it is a valid identity proxy that match keys can embed without the
    submitter having to train (or even load) the victim first.
    """
    env_id, defense = parse_victim_name(name)
    scale = SCALES[config.scale]
    config_spec = victim_spec(env_id, defense,
                              victim_config_for(env_id, scale, seed=config.seed),
                              scale.budget_tag, config.seed)
    return {"name": name, "env_id": env_id, "defense": defense,
            "spec": config_spec}


def counter_entrant_spec(config: LeagueConfig, base: dict, attacker: str,
                         round_index: int) -> dict:
    """Content-address spec for a counter-trained victim generation.

    Self-describing on purpose: a fabric worker on another host can
    rebuild the victim deterministically from this spec alone (base
    recipe → base victim → the named attacker → perturbed retraining),
    all through store-cached intermediates.
    """
    scale = SCALES[config.scale]
    env_id = base["env_id"]
    return {
        "kind": "league_victim",
        "env_id": env_id,
        "defense": base["defense"],
        "base": base["spec"],
        "attacker": attacker,
        "round": round_index,
        "scale": config.scale,
        "iterations": scale.victim_iterations,
        "steps_per_iteration": scale.steps_per_iteration,
        "epsilon": default_epsilon(env_id),
        "seed": config.seed + 7919 * (round_index + 1),
        "attack_seed": config.seed,
        "pgd_steps": config.pgd_steps,
        "sta_fraction": config.sta_fraction,
        "code_version": CODE_VERSION,
    }


def entrant_from_counter_spec(base_name: str, spec: dict) -> dict:
    """Entrant doc for a counter-trained generation of ``base_name``."""
    return {
        "name": f"{base_name}+ct{spec['round'] + 1}",
        "env_id": spec["env_id"],
        "defense": spec["defense"],
        "spec": spec,
    }


def match_spec(config: LeagueConfig, entrant: dict, attacker: str) -> dict:
    """Canonical identity of one match — also its executable description.

    Deliberately contains no round number: replaying the same pairing in
    a later round *is* the same computation, so it hashes to the same
    key and the rematch is a store hit.  Everything that does change the
    outcome — victim recipe, attacker name and training config, eval
    budget and seed, ε, white-box knobs, code version — is in here.
    """
    parsed = parse_attacker_name(attacker)
    scale = SCALES[config.scale]
    doc = {
        "kind": "league_match",
        "env_id": entrant["env_id"],
        "victim_name": entrant["name"],
        "victim": entrant["spec"],
        "attack": attacker,
        "scale": config.scale,
        "seed": config.seed,
        "eval_seed": config.eval_seed,
        "eval_episodes": scale.eval_episodes,
        "epsilon": default_epsilon(entrant["env_id"]),
        "code_version": CODE_VERSION,
    }
    if parsed["family"] == "gradient":
        doc["pgd_steps"] = config.pgd_steps
        doc["sta_fraction"] = config.sta_fraction
    elif parsed["family"] != "random":
        doc["attack_config"] = dataclasses.asdict(
            attack_config_for(scale, config.seed))
    return doc
