"""League match execution: self-contained, picklable, idempotent.

:func:`play_match` is the unit of work the league schedules through
:func:`~repro.runtime.run_parallel`.  It takes only plain data — the
canonical match doc from :func:`~repro.league.spec.match_spec` and a
store root path — so it runs identically inline, in a process pool, in a
persistent :class:`~repro.runtime.WorkerPool`, or on a fabric daemon on
another host.  Every heavy intermediate (victim, learned attack, the
match result itself) goes through the content-addressed store, so the
function is idempotent: replaying a match is a read, not a recompute.
"""

from __future__ import annotations

import numpy as np

from ..attacks import RandomAttackPolicy
from ..attacks.gradient import CriticPgdAttack, PgdAttack, StrategicallyTimedAttack
from ..defenses import DefenseTrainConfig
from ..defenses.perturbed_training import PolicyPerturbation, train_with_perturbation
from ..eval import evaluate_single_agent
from ..envs import make
from ..experiments.config import SCALES
from ..experiments.runner import train_single_agent_attack
from ..rl.policy import ActorCritic
from ..rl.ppo import PPOConfig
from ..store import ArtifactStore
from ..zoo import get_victim
from ..zoo.train import training_env_factory
from .spec import parse_attacker_name

__all__ = ["play_match", "materialize_victim", "build_gradient_attack",
           "train_counter_victim", "defense_config_from_dict"]


def defense_config_from_dict(doc: dict) -> DefenseTrainConfig:
    """Invert ``dataclasses.asdict`` on a :class:`DefenseTrainConfig`."""
    doc = dict(doc)
    doc["hidden_sizes"] = tuple(doc["hidden_sizes"])
    doc["ppo"] = PPOConfig(**doc["ppo"])
    return DefenseTrainConfig(**doc)


def materialize_victim(spec: dict, store: ArtifactStore) -> ActorCritic:
    """Victim parameters from a victim *recipe* spec, via the store.

    ``kind == "victim"`` specs are the zoo's own content-address specs:
    :func:`~repro.zoo.get_victim` resolves them (store hit or train).
    ``kind == "league_victim"`` specs describe a counter-trained
    generation; they are loaded from the store when present and rebuilt
    deterministically by :func:`train_counter_victim` when not — which
    is what lets a fabric worker on a fresh host play matches against a
    victim it never saw trained.
    """
    kind = spec.get("kind")
    if kind == "victim":
        return get_victim(spec["env_id"], spec["defense"],
                          config=defense_config_from_dict(spec["config"]),
                          budget_tag=spec["budget_tag"], seed=spec["seed"],
                          store=store)
    if kind == "league_victim":
        hit = store.get(spec)
        if hit is not None:
            state, entry = hit
            meta = entry.metadata
            policy = ActorCritic(int(meta["obs_dim"]), int(meta["action_dim"]),
                                 hidden_sizes=tuple(meta["hidden_sizes"]))
            policy.load_checkpoint_state(state)
            policy.freeze_normalizer()
            return policy
        return train_counter_victim(spec, store)
    raise ValueError(f"unknown victim spec kind {kind!r}")


def build_gradient_attack(method: str, victim: ActorCritic, match: dict):
    """Construct a white-box attacker from the match doc's knobs."""
    steps = int(match["pgd_steps"])
    seed = int(match["seed"])
    if method == "pgd":
        return PgdAttack(victim, steps=steps, seed=seed)
    if method == "critic-pgd":
        return CriticPgdAttack(victim, steps=steps, seed=seed)
    if method == "st-pgd":
        # Lazily self-calibrating: the first evaluation episode doubles
        # as the calibration sample (see attacks.gradient).
        return StrategicallyTimedAttack(
            victim, PgdAttack(victim, steps=steps, seed=seed),
            attack_fraction=float(match["sta_fraction"]))
    raise ValueError(f"unknown gradient attack {method!r}")


def _attacker_policy(match: dict, victim: ActorCritic, store: ArtifactStore):
    """The attack policy object for a match, plus its eval determinism."""
    parsed = parse_attacker_name(match["attack"])
    if parsed["family"] == "gradient":
        return build_gradient_attack(parsed["method"], victim, match), True
    if parsed["family"] == "random":
        env = make(match["env_id"])
        policy = RandomAttackPolicy(env.observation_space.shape[0],
                                    seed=match["eval_seed"])
        return policy, False
    result = train_single_agent_attack(
        match["env_id"], victim, match["attack"], SCALES[match["scale"]],
        seed=match["seed"], epsilon=match["epsilon"], store=store)
    assert result is not None
    return result.policy, True


def train_counter_victim(spec: dict, store: ArtifactStore) -> ActorCritic:
    """Deterministically (re)build a counter-trained victim generation.

    The ATLA loop generalized: materialize the base victim, materialize
    the named attacker *against that base victim* (cache-shared with the
    round's matches), then retrain the victim with the attacker as the
    observation-perturbation model.  The result is stored under ``spec``
    so every worker resolves the same generation to the same parameters.
    """
    base = materialize_victim(spec["base"], store)
    parsed = parse_attacker_name(spec["attacker"])
    if parsed["family"] == "gradient":
        adversary = build_gradient_attack(
            parsed["method"], base,
            {"pgd_steps": spec["pgd_steps"], "seed": spec["attack_seed"],
             "sta_fraction": spec["sta_fraction"]})
    elif parsed["family"] == "random":
        env = make(spec["env_id"])
        adversary = RandomAttackPolicy(env.observation_space.shape[0],
                                       seed=spec["attack_seed"])
    else:
        result = train_single_agent_attack(
            spec["env_id"], base, spec["attacker"], SCALES[spec["scale"]],
            seed=spec["attack_seed"], epsilon=spec["epsilon"], store=store)
        assert result is not None
        adversary = result.policy
    config = DefenseTrainConfig(
        iterations=int(spec["iterations"]),
        steps_per_iteration=int(spec["steps_per_iteration"]),
        seed=int(spec["seed"]),
        epsilon=float(spec["epsilon"]),
    )
    epsilon = float(spec["epsilon"])
    policy = train_with_perturbation(
        training_env_factory(spec["env_id"]), config,
        lambda rng: PolicyPerturbation(adversary, epsilon, rng))
    store.put(spec, policy.checkpoint_state(), metadata={
        "env_id": spec["env_id"],
        "defense": spec["defense"],
        "attacker": spec["attacker"],
        "round": spec["round"],
        "obs_dim": policy.obs_dim,
        "action_dim": policy.action_dim,
        "hidden_sizes": list(config.hidden_sizes),
    })
    return policy


def play_match(match: dict, store_root: str) -> dict:
    """Play one league match; returns (and stores) the result record.

    Top-level and argument-picklable by design.  Re-checks the store
    first so replays — including a job that was scheduled concurrently
    with an identical one on another worker — cost one read.
    """
    store = ArtifactStore(store_root)
    hit = store.get(match)
    if hit is not None:
        arrays, entry = hit
        return dict(entry.metadata["record"])
    victim = materialize_victim(match["victim"], store)
    attack_policy, deterministic = _attacker_policy(match, victim, store)
    evaluation = evaluate_single_agent(
        make(match["env_id"]), victim, attack_policy,
        epsilon=match["epsilon"], episodes=match["eval_episodes"],
        seed=match["eval_seed"], attack_deterministic=deterministic)
    record = {
        "env_id": match["env_id"],
        "victim": match["victim_name"],
        "attack": match["attack"],
        "asr": float(evaluation.asr),
        "victim_reward": float(np.mean(evaluation.episode_rewards)),
        "episodes": len(evaluation.episode_rewards),
    }
    calibration = getattr(attack_policy, "calibration", None)
    if calibration is not None:
        record["sta_calibration"] = dict(calibration)
    store.put(match, {
        "episode_rewards": np.asarray(evaluation.episode_rewards, dtype=np.float64),
        "episode_successes": np.asarray(evaluation.episode_successes, dtype=np.bool_),
        "episode_lengths": np.asarray(evaluation.episode_lengths, dtype=np.int64),
    }, metadata={"record": record})
    return record
