"""``repro-experiments league`` — the attack-league subcommand.

Examples::

    repro-experiments league --rounds 2 --scale smoke --jobs 4
    repro-experiments league --attackers random pgd --victims Hopper-v0:ppo
    repro-experiments league --fabric /shared/fabric --rounds 3
    repro-experiments league --resume artifacts/store/league/abcd1234

``--resume OUT_DIR`` reads the ``league.json`` config record a previous
run wrote and replays the league against the same store: every completed
match is a cache hit, so resumption costs reads, not matches.
"""

from __future__ import annotations

import argparse
import contextlib
import os

from ..experiments.config import SCALES
from ..runtime import WorkerPool
from ..store import ArtifactStore, default_store
from ..telemetry import Telemetry, use_telemetry
from .runner import run_league
from .spec import DEFAULT_ATTACKERS, DEFAULT_VICTIMS, LeagueConfig, config_from_doc

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments league",
        description="Round-based attackers x victims tournament with an "
                    "Elo/robustness leaderboard.",
    )
    parser.add_argument("--attackers", nargs="*", default=None,
                        metavar="NAME",
                        help="attacker roster (default: "
                             f"{' '.join(DEFAULT_ATTACKERS)})")
    parser.add_argument("--victims", nargs="*", default=None,
                        metavar="ENV:DEFENSE",
                        help="victim roster as '<env_id>:<defense>' "
                             f"(default: {' '.join(DEFAULT_VICTIMS)})")
    parser.add_argument("--rounds", type=int, default=None,
                        help="tournament rounds (default 1)")
    parser.add_argument("--scale", default=None, choices=sorted(SCALES),
                        help="budget preset (default: smoke)")
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--counter-training", action="store_true",
                        help="after each round, retrain the worst victim "
                             "against the best attacker and enter the new "
                             "generation next round")
    parser.add_argument("--pgd-steps", type=int, default=None,
                        help="inner PGD steps for the white-box attackers")
    parser.add_argument("--jobs", type=int, default=1,
                        help="matches scheduled concurrently (default 1: inline)")
    parser.add_argument("--job-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-match wall-clock budget (watchdog-enforced)")
    parser.add_argument("--pool", action="store_true",
                        help="run matches on a persistent worker pool instead "
                             "of a fresh process per job")
    parser.add_argument("--fabric", default=None, metavar="DIR",
                        help="run matches on the multi-host job fabric at DIR")
    parser.add_argument("--store-dir", default=None, metavar="DIR",
                        help="artifact store location (default: $REPRO_STORE "
                             "or $REPRO_ARTIFACTS/store)")
    parser.add_argument("--out", default=None, metavar="DIR",
                        help="leaderboard output directory "
                             "(default: <store>/league/<key prefix>)")
    parser.add_argument("--resume", default=None, metavar="OUT_DIR",
                        help="replay the league recorded in OUT_DIR/league.json "
                             "(explicit flags override recorded values)")
    parser.add_argument("--telemetry-dir", default=None, metavar="DIR",
                        help="record the run (manifest + league.* counters) "
                             "under DIR")
    return parser


def _config_from_args(args, parser) -> LeagueConfig:
    overrides = {
        "attackers": tuple(args.attackers) if args.attackers else None,
        "victims": tuple(args.victims) if args.victims else None,
        "rounds": args.rounds,
        "scale": args.scale,
        "seed": args.seed,
        "counter_training": args.counter_training or None,
        "pgd_steps": args.pgd_steps,
    }
    if args.resume is not None:
        import json
        from pathlib import Path

        record_path = Path(args.resume) / "league.json"
        if not record_path.exists():
            parser.error(f"--resume: no league.json under {args.resume}")
        record = json.loads(record_path.read_text())
        if args.out is None:
            args.out = args.resume
        return config_from_doc(record["config"], **overrides)
    return config_from_doc(
        {"attackers": list(DEFAULT_ATTACKERS), "victims": list(DEFAULT_VICTIMS)},
        **overrides)


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.fabric is not None and args.pool:
        parser.error("--fabric and --pool are mutually exclusive "
                     "execution lanes")
    try:
        config = _config_from_args(args, parser)
    except ValueError as exc:
        parser.error(str(exc))
    if args.store_dir is not None:
        os.environ["REPRO_STORE"] = str(args.store_dir)  # workers inherit
        store = ArtifactStore(args.store_dir)
    else:
        store = default_store()
    telemetry = None
    if args.telemetry_dir is not None:
        telemetry = Telemetry.to_dir(
            args.telemetry_dir,
            run_id=f"league-{config.scale}-seed{config.seed}",
            experiment={"what": ["league"], "scale": config.scale,
                        "seed": config.seed, "rounds": config.rounds,
                        "attackers": list(config.attackers),
                        "victims": list(config.victims)},
            seeds=[config.seed],
        )
    context = use_telemetry(telemetry) if telemetry else contextlib.nullcontext()
    try:
        with context, contextlib.ExitStack() as stack:
            pool = None
            if args.pool:
                pool = stack.enter_context(WorkerPool(max_workers=max(1, args.jobs)))
            result = run_league(config, store=store, out_dir=args.out,
                                jobs=args.jobs, pool=pool,
                                fabric_dir=args.fabric,
                                job_timeout=args.job_timeout,
                                telemetry=telemetry, verbose=True)
    except BaseException as exc:
        if telemetry is not None:
            telemetry.finalize("failed", error=f"{type(exc).__name__}: {exc}")
        raise
    print(f"\n[league] {result.key[:16]}: "
          f"{result.matches_scheduled} scheduled, "
          f"{result.matches_cached} cached, "
          f"{result.matches_failed} failed; "
          f"leaderboard -> {result.out_dir}")
    exit_code = 1 if result.matches_failed else 0
    if telemetry is not None:
        telemetry.finalize("ok" if exit_code == 0 else "failed")
    return exit_code
