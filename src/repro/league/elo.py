"""Elo leaderboard: deterministic fold over match records.

The league's leaderboard is itself an artifact, so it has to be
byte-reproducible.  Two rules make it so:

* the fold order is fixed — outcomes are sorted by ``(round, attack,
  victim)`` before rating updates, so scheduling order (which varies
  across pools/fabrics) cannot leak into the ratings;
* the persisted form is **canonical JSON** (:func:`leaderboard_bytes`),
  not an npz blob — ``np.savez`` embeds zip timestamps, canonical JSON
  of a pure-data doc does not.

Ratings use the standard logistic Elo update with the attacker's score
set to its ASR (the victim scores ``1 - ASR``), applied zero-sum: a
match moves the attacker and the victim by opposite amounts, so the
population mean rating is invariant.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..eval.tables import render_table
from ..store import canonical_json

__all__ = ["MatchOutcome", "fold_elo", "build_leaderboard",
           "leaderboard_bytes", "render_leaderboard"]


@dataclass(frozen=True)
class MatchOutcome:
    """One played match, as the leaderboard sees it."""

    round: int
    attack: str
    victim: str
    asr: float
    victim_reward: float


def _expected(rating_a: float, rating_b: float) -> float:
    return 1.0 / (1.0 + 10.0 ** ((rating_b - rating_a) / 400.0))


def fold_elo(outcomes: list[MatchOutcome], k: float = 32.0,
             initial: float = 1000.0) -> dict[str, float]:
    """Fold outcomes into per-entrant ratings, order-independently.

    The input list may arrive in any order (scheduler completion order
    is nondeterministic); the fold sorts first, so identical outcome
    *sets* always produce identical ratings.
    """
    ratings: dict[str, float] = {}
    for outcome in sorted(outcomes,
                          key=lambda o: (o.round, o.attack, o.victim)):
        ra = ratings.setdefault(outcome.attack, initial)
        rv = ratings.setdefault(outcome.victim, initial)
        score = float(outcome.asr)  # attacker's observed score in [0, 1]
        delta = k * (score - _expected(ra, rv))
        ratings[outcome.attack] = ra + delta
        ratings[outcome.victim] = rv - delta
    return ratings


def build_leaderboard(league_key: str, league_spec: dict, round_index: int,
                      outcomes: list[MatchOutcome], k: float,
                      initial: float) -> dict:
    """The canonical leaderboard doc for one round (pure data, no floats
    beyond what canonical JSON round-trips exactly)."""
    ratings = fold_elo(outcomes, k=k, initial=initial)
    attackers = sorted({o.attack for o in outcomes})
    victims = sorted({o.victim for o in outcomes})
    mean_asr = {
        a: float(np.mean([o.asr for o in outcomes if o.attack == a]))
        for a in attackers
    }
    mean_robustness = {
        v: float(np.mean([1.0 - o.asr for o in outcomes if o.victim == v]))
        for v in victims
    }
    standings = sorted(
        ({"name": name, "rating": round(rating, 6),
          "role": "attacker" if name in mean_asr else "victim",
          "score": round(mean_asr.get(name, mean_robustness.get(name, 0.0)), 6)}
         for name, rating in ratings.items()),
        key=lambda row: (-row["rating"], row["name"]))
    return {
        "kind": "league_leaderboard",
        "league": league_key,
        "spec": league_spec,
        "round": round_index,
        "matches": [
            {"round": o.round, "attack": o.attack, "victim": o.victim,
             "asr": round(float(o.asr), 6),
             "victim_reward": round(float(o.victim_reward), 6)}
            for o in sorted(outcomes,
                            key=lambda o: (o.round, o.attack, o.victim))
        ],
        "standings": standings,
    }


def leaderboard_bytes(doc: dict) -> bytes:
    """The persisted byte form — canonical JSON, newline-terminated.

    This is the league's byte-identity contract: same matches, same
    bytes, regardless of scheduler, lane, host, or wall-clock.
    """
    return canonical_json(doc).encode("utf-8") + b"\n"


def render_leaderboard(doc: dict) -> str:
    """Human-readable standings via the shared table renderer."""
    headers = ["#", "entrant", "role", "Elo", "ASR / robustness"]
    rows = [
        [str(i + 1), row["name"], row["role"],
         f"{row['rating']:.1f}", f"{row['score']:.3f}"]
        for i, row in enumerate(doc["standings"])
    ]
    title = (f"League {doc['league'][:12]} — round {doc['round'] + 1} "
             f"({len(doc['matches'])} matches)")
    return render_table(headers, rows, title=title)
