"""The league loop: schedule rounds, fold leaderboards, counter-train.

One round = the full attackers × entrants matrix.  Every pairing's
canonical match doc is checked against the store first — only misses
become :class:`~repro.runtime.Job`\\ s, scheduled through
:func:`~repro.runtime.run_parallel` (so ``--jobs``, a persistent
``pool=``, and a multi-host ``fabric_dir=`` all compose for free).
Because match keys contain no round number, a resumed or replayed league
re-reads every completed match from the store and schedules nothing.

After each round the cumulative outcome set folds into an Elo
leaderboard (:mod:`repro.league.elo`), written both as canonical-JSON
files in the league's output directory (the byte-identity contract) and
as a store artifact.  With ``counter_training`` enabled the round ends
by minting a new victim generation: the currently worst victim
retrained against the currently best attacker.  Its spec is
self-describing, so the *matches* of the next round materialize it
lazily wherever they run — the league driver never trains anything.

Telemetry counters (under the ambient or injected run):

* ``league.matches_scheduled`` / ``league.matches_cached`` /
  ``league.matches_failed`` (+ ``league.matches_failed.<error_kind>``)
* ``league.counter_trainings``
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..runtime import Job, run_parallel
from ..store import ArtifactStore, canonical_json, default_store
from ..telemetry import current_telemetry
from .elo import MatchOutcome, build_leaderboard, leaderboard_bytes, render_leaderboard
from .match import play_match
from .spec import (
    LeagueConfig,
    base_entrant,
    config_to_doc,
    counter_entrant_spec,
    entrant_from_counter_spec,
    league_key,
    league_spec,
    match_spec,
)

__all__ = ["RoundReport", "LeagueResult", "run_league"]


@dataclass
class RoundReport:
    """What one round did: cache traffic, failures, standings."""

    index: int
    matches_total: int = 0
    matches_cached: int = 0
    matches_scheduled: int = 0
    matches_failed: int = 0
    failed_kinds: dict[str, int] = field(default_factory=dict)
    degraded: bool = False
    degraded_reason: str = ""
    leaderboard: dict | None = None
    counter_entrant: str | None = None


@dataclass
class LeagueResult:
    """Outcome of a whole league run."""

    key: str
    config: LeagueConfig
    out_dir: Path
    rounds: list[RoundReport] = field(default_factory=list)

    @property
    def leaderboard(self) -> dict:
        return self.rounds[-1].leaderboard

    @property
    def matches_scheduled(self) -> int:
        return sum(r.matches_scheduled for r in self.rounds)

    @property
    def matches_cached(self) -> int:
        return sum(r.matches_cached for r in self.rounds)

    @property
    def matches_failed(self) -> int:
        return sum(r.matches_failed for r in self.rounds)


def _count(telemetry, name: str, amount: int = 1) -> None:
    if telemetry is not None and amount:
        telemetry.metrics.counter(name).inc(amount)


def _pick_counter_pair(outcomes: list[MatchOutcome],
                       entrants: list[dict], attackers: tuple[str, ...]):
    """(worst entrant, best attacker) by mean robustness / mean ASR.

    Ties break lexicographically — the pick must not depend on dict or
    completion order, or resumed leagues would fork.
    """
    by_victim = {e["name"]: [] for e in entrants}
    by_attack = {a: [] for a in attackers}
    for o in outcomes:
        if o.victim in by_victim:
            by_victim[o.victim].append(1.0 - o.asr)
        if o.attack in by_attack:
            by_attack[o.attack].append(o.asr)
    scored_victims = sorted(
        (float(np.mean(v)), name) for name, v in by_victim.items() if v)
    scored_attacks = sorted(
        ((-float(np.mean(v)), name) for name, v in by_attack.items() if v))
    if not scored_victims or not scored_attacks:
        return None, None
    worst_name = scored_victims[0][1]
    worst = next(e for e in entrants if e["name"] == worst_name)
    return worst, scored_attacks[0][1]


def run_league(config: LeagueConfig, store: ArtifactStore | None = None,
               out_dir: str | Path | None = None, jobs: int = 1,
               pool=None, fabric_dir: str | Path | None = None,
               job_timeout: float | None = None, telemetry=None,
               verbose: bool = False) -> LeagueResult:
    """Run (or resume — same thing) a league to completion."""
    store = store if store is not None else default_store()
    telemetry = telemetry if telemetry is not None else current_telemetry()
    key = league_key(config)
    out_dir = Path(out_dir) if out_dir is not None else (
        store.root / "league" / key[:16])
    out_dir.mkdir(parents=True, exist_ok=True)
    # The resume record: `league --resume OUT_DIR` reconstructs the
    # config from this file, so the rematch keys line up exactly.
    (out_dir / "league.json").write_text(
        canonical_json({"key": key, "config": config_to_doc(config)}) + "\n")

    result = LeagueResult(key=key, config=config, out_dir=out_dir)
    entrants = [base_entrant(config, name) for name in config.victims]
    outcomes: list[MatchOutcome] = []

    for round_index in range(config.rounds):
        report = RoundReport(index=round_index)
        pending: list[tuple[Job, dict]] = []
        for entrant in entrants:
            for attacker in config.attackers:
                doc = match_spec(config, entrant, attacker)
                report.matches_total += 1
                hit = store.get(doc)
                if hit is not None:
                    record = dict(hit[1].metadata["record"])
                    outcomes.append(MatchOutcome(
                        round=round_index, attack=record["attack"],
                        victim=record["victim"], asr=record["asr"],
                        victim_reward=record["victim_reward"]))
                    report.matches_cached += 1
                    continue
                name = f"r{round_index}:{attacker}@{entrant['name']}"
                pending.append((Job(play_match, args=(doc, str(store.root)),
                                    name=name, timeout=job_timeout), doc))
        _count(telemetry, "league.matches_cached", report.matches_cached)
        _count(telemetry, "league.matches_scheduled", len(pending))
        report.matches_scheduled = len(pending)
        if verbose:
            print(f"[league] round {round_index + 1}/{config.rounds}: "
                  f"{report.matches_cached} cached, "
                  f"{len(pending)} scheduled")
        if pending:
            schedule = run_parallel([job for job, _ in pending],
                                    max_workers=jobs, timeout=job_timeout,
                                    telemetry=telemetry, pool=pool,
                                    fabric_dir=fabric_dir)
            report.degraded = schedule.degraded
            report.degraded_reason = schedule.degraded_reason
            for job_result in schedule.results:
                if job_result.ok:
                    record = job_result.value
                    outcomes.append(MatchOutcome(
                        round=round_index, attack=record["attack"],
                        victim=record["victim"], asr=record["asr"],
                        victim_reward=record["victim_reward"]))
                else:
                    kind = job_result.error_kind or "crash"
                    report.matches_failed += 1
                    report.failed_kinds[kind] = report.failed_kinds.get(kind, 0) + 1
                    _count(telemetry, "league.matches_failed")
                    _count(telemetry, f"league.matches_failed.{kind}")
                    if verbose:
                        print(f"[league] match {job_result.name} failed "
                              f"({kind}): {job_result.error}")

        doc = build_leaderboard(key, league_spec(config), round_index,
                                outcomes, k=config.elo_k,
                                initial=config.initial_rating)
        data = leaderboard_bytes(doc)
        (out_dir / f"leaderboard-round{round_index:03d}.json").write_bytes(data)
        (out_dir / "leaderboard.json").write_bytes(data)
        rendered = render_leaderboard(doc)
        (out_dir / "leaderboard.txt").write_text(rendered + "\n")
        store.put({"kind": "league_leaderboard", "league": key,
                   "round": round_index},
                  {"leaderboard": np.frombuffer(data, dtype=np.uint8)},
                  metadata={"doc": doc})
        report.leaderboard = doc
        if verbose:
            print(rendered)

        if config.counter_training and round_index + 1 < config.rounds:
            worst, best_attacker = _pick_counter_pair(
                outcomes, entrants, config.attackers)
            if worst is not None:
                spec = counter_entrant_spec(config, worst, best_attacker,
                                            round_index)
                entrant = entrant_from_counter_spec(worst["name"], spec)
                entrants.append(entrant)
                report.counter_entrant = entrant["name"]
                _count(telemetry, "league.counter_trainings")
                if verbose:
                    print(f"[league] counter-training {worst['name']} vs "
                          f"{best_attacker} -> {entrant['name']}")
        result.rounds.append(report)
    return result
