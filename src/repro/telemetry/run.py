"""The per-run telemetry facade and the ambient-telemetry context.

:class:`Telemetry` bundles the three sinks a run needs — a
:class:`~repro.telemetry.metrics.MetricsRegistry`, an
:class:`~repro.telemetry.events.EventSink`, and an optional
:class:`~repro.telemetry.manifest.RunManifest` — behind one object that
instrumented code can treat uniformly.  ``Telemetry.to_dir(...)`` is the
standard production shape: ``manifest.json`` + ``events.jsonl`` in one
directory.

Instrumented hot paths take ``telemetry=None`` and fall back to the
*ambient* telemetry installed with :func:`use_telemetry` (a contextvar),
which is how the experiments CLI reaches training loops buried under
``run_table1`` et al. without threading a parameter through every layer.
With neither set, instrumentation short-circuits to nothing — that is
the default, and it is what keeps tier-1 tests and benchmarks at
baseline speed.
"""

from __future__ import annotations

import contextlib
import threading
from contextvars import ContextVar
from pathlib import Path

from .clock import Clock, WallClock
from .events import EventSink, JsonlEventSink, MemoryEventSink, NullEventSink
from .manifest import EVENTS_NAME, MANIFEST_NAME, RunManifest
from .metrics import MetricsRegistry

__all__ = ["Telemetry", "use_telemetry", "current_telemetry"]

_current: ContextVar["Telemetry | None"] = ContextVar("repro_telemetry", default=None)


def current_telemetry() -> "Telemetry | None":
    """The ambient telemetry installed by :func:`use_telemetry` (or None)."""
    return _current.get()


@contextlib.contextmanager
def use_telemetry(telemetry: "Telemetry | None"):
    """Install ``telemetry`` as the ambient default within the block."""
    token = _current.set(telemetry)
    try:
        yield telemetry
    finally:
        _current.reset(token)


class _Timer:
    """Context manager: measures a block and records it once on exit."""

    __slots__ = ("telemetry", "name", "start", "seconds")

    def __init__(self, telemetry: "Telemetry", name: str):
        self.telemetry = telemetry
        self.name = name
        self.start = 0.0
        self.seconds = 0.0

    def __enter__(self) -> "_Timer":
        self.start = self.telemetry.clock.perf()
        return self

    def __exit__(self, *exc) -> None:
        self.seconds = self.telemetry.clock.perf() - self.start
        self.telemetry.metrics.observe_duration(self.name, self.seconds)


class Telemetry:
    """One run's metrics + event log + manifest (see module docstring)."""

    def __init__(self, metrics: MetricsRegistry | None = None,
                 sink: EventSink | None = None,
                 manifest: RunManifest | None = None,
                 clock: Clock | None = None,
                 manifest_path: str | Path | None = None):
        self.metrics = metrics or MetricsRegistry()
        self.sink = sink or NullEventSink()
        self.manifest = manifest
        self.clock = clock or WallClock()
        self.manifest_path = Path(manifest_path) if manifest_path else None
        self._seq = 0
        self._seq_lock = threading.Lock()
        self._finalized = False

    # ------------------------------------------------------------ factories

    @classmethod
    def to_dir(cls, directory: str | Path, run_id: str = "run",
               experiment: dict | None = None, seeds: list[int] | None = None,
               clock: Clock | None = None, argv: list[str] | None = None,
               buffer_size: int = 64) -> "Telemetry":
        """Manifest + JSONL sink under ``directory`` (created on demand).

        The manifest is written immediately with ``status="running"`` so
        a killed run still leaves an identifiable record behind.
        """
        directory = Path(directory)
        clock = clock or WallClock()
        manifest = RunManifest.create(run_id=run_id, experiment=experiment,
                                      seeds=seeds, argv=argv, clock=clock)
        manifest.events_path = EVENTS_NAME
        telemetry = cls(
            sink=JsonlEventSink(directory / EVENTS_NAME, buffer_size=buffer_size),
            manifest=manifest,
            clock=clock,
            manifest_path=directory / MANIFEST_NAME,
        )
        manifest.write(telemetry.manifest_path)
        return telemetry

    @classmethod
    def in_memory(cls, clock: Clock | None = None) -> "Telemetry":
        """Metrics + a :class:`MemoryEventSink`; what the tests use."""
        return cls(sink=MemoryEventSink(), clock=clock)

    # ------------------------------------------------------------ recording

    def event(self, event_type: str, payload: dict | None = None,
              perf: dict | None = None) -> None:
        """Emit one event; ``payload`` must be deterministic, ``perf`` may not.

        Sequence numbers are allocated under a lock so concurrent
        producers (serving coroutines, scheduler threads) never share a
        ``seq``; the sink itself is responsible for its own thread safety.
        """
        with self._seq_lock:
            seq = self._seq
            self._seq += 1
        record: dict = {"seq": seq, "ts": self.clock.wall(),
                        "type": event_type, "payload": payload or {}}
        if perf:
            record["perf"] = perf
        self.sink.emit(record)

    def timer(self, name: str) -> _Timer:
        """``with telemetry.timer("attack.knn_bonus") as t: ...`` — records
        the block's duration under ``name`` (EWMA + histogram)."""
        return _Timer(self, name)

    # ------------------------------------------------------------- lifecycle

    def record_job(self, name: str, ok: bool, duration: float = 0.0,
                   error: str | None = None, traceback: str | None = None,
                   attempts: int = 1, error_kind: str | None = None) -> None:
        """Forward a job outcome to the manifest (no-op without one)."""
        if self.manifest is not None:
            self.manifest.record_job(name, ok, duration=duration,
                                     error=error, traceback=traceback,
                                     attempts=attempts, error_kind=error_kind)

    def record_artifact(self, key: str, role: str, kind: str | None = None) -> None:
        """Record an artifact-store hit/write: manifest entry + event."""
        if self.manifest is not None:
            self.manifest.record_artifact(key, role, kind=kind)
        payload = {"key": key, "role": role}
        if kind is not None:
            payload["kind"] = kind
        self.event("artifact", payload=payload)

    def finalize(self, status: str = "ok", error: str | None = None) -> None:
        """Seal the run: final manifest (with metrics snapshot), close sink."""
        if self._finalized:
            return
        self._finalized = True
        if self.manifest is not None:
            self.manifest.finalize(status=status, error=error, clock=self.clock,
                                   metrics=self.metrics.snapshot())
            if self.manifest_path is not None:
                self.manifest.write(self.manifest_path)
        self.sink.close()

    def __enter__(self) -> "Telemetry":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.finalize("ok")
        else:
            self.finalize("failed", error=f"{exc_type.__name__}: {exc}")
