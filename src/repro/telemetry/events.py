"""Structured event log: one JSON object per line (JSONL).

Events have a fixed envelope::

    {"seq": 12, "ts": 1717.25, "type": "attack.iteration",
     "payload": {...}, "perf": {...}}

``payload`` is the *deterministic* part — given the same seed it must be
bit-identical across runs (the determinism battery asserts this).
Wall-clock-dependent measurements (durations, steps/sec) go under
``perf`` and are excluded from reproducibility comparisons.  ``ts``
comes from an injected :class:`~repro.telemetry.clock.Clock`.

:class:`JsonlEventSink` buffers serialized lines and appends them with a
single ``write`` call per flush, so a line is never torn by a concurrent
reader; ``close()`` flushes and fsyncs.  The sink is also safe for
concurrent *producers*: a serving process has many coroutines and worker
threads emitting into one sink, so buffer append, flush, and close are
serialized under an internal lock — two racing emits can interleave
whole lines but never tear one.  :class:`MemoryEventSink` keeps events
in a list for tests.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path

__all__ = ["EventSink", "NullEventSink", "MemoryEventSink", "JsonlEventSink",
           "strip_perf", "read_jsonl"]


def strip_perf(event: dict) -> dict:
    """Drop the non-deterministic fields (``ts``/``perf``) of an event."""
    return {k: v for k, v in event.items() if k not in ("ts", "perf")}


class EventSink:
    """Interface: receives event dicts, owns their persistence."""

    def emit(self, event: dict) -> None:
        raise NotImplementedError

    def flush(self) -> None:
        """Persist anything buffered."""

    def close(self) -> None:
        self.flush()


class NullEventSink(EventSink):
    """Swallows everything (telemetry disabled)."""

    def emit(self, event: dict) -> None:
        pass


class MemoryEventSink(EventSink):
    """Keeps events in memory; the test battery's sink of choice."""

    def __init__(self):
        self.events: list[dict] = []

    def emit(self, event: dict) -> None:
        self.events.append(event)

    def payloads(self, event_type: str | None = None) -> list[dict]:
        """Deterministic views (envelope minus ts/perf), optionally filtered."""
        return [strip_perf(e) for e in self.events
                if event_type is None or e["type"] == event_type]


class JsonlEventSink(EventSink):
    """Buffered append-only JSONL writer.

    Lines are serialized eagerly (so a mutated payload can't retro-change
    a buffered event) and written in batches of ``buffer_size`` with one
    ``write`` syscall per flush.  The file is opened lazily on the first
    flush, so constructing a sink never touches the filesystem.

    Emit/flush/close are serialized under a lock: concurrent producers
    (server coroutines, scheduler threads) may interleave *lines* but can
    never tear one or drop a buffered event in an emit/flush race.
    Serialization happens outside the lock — only buffer and file state
    are guarded.
    """

    def __init__(self, path: str | Path, buffer_size: int = 64,
                 fsync_on_close: bool = True):
        self.path = Path(path)
        self.buffer_size = max(1, buffer_size)
        self.fsync_on_close = fsync_on_close
        self._lines: list[str] = []
        self._file = None
        self._closed = False
        self._lock = threading.Lock()

    def emit(self, event: dict) -> None:
        line = json.dumps(event, sort_keys=True,
                          separators=(",", ":"), default=str)
        with self._lock:
            if self._closed:
                raise ValueError(f"sink for {self.path} is closed")
            self._lines.append(line)
            if len(self._lines) >= self.buffer_size:
                self._flush_locked()

    def _flush_locked(self) -> None:
        if not self._lines:
            return
        if self._file is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._file = open(self.path, "a", encoding="utf-8")
        self._file.write("\n".join(self._lines) + "\n")
        self._file.flush()
        self._lines = []

    def flush(self) -> None:
        with self._lock:
            self._flush_locked()

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._flush_locked()
            if self._file is not None:
                if self.fsync_on_close:
                    os.fsync(self._file.fileno())
                self._file.close()
                self._file = None
            self._closed = True

    def __enter__(self) -> "JsonlEventSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_jsonl(path: str | Path) -> list[dict]:
    """Load every event in a JSONL file (skipping blank lines)."""
    out = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out
