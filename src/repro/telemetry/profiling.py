"""Lightweight profiling hooks for methods on telemetry-aware objects.

``@profiled("ppo.update")`` wraps a method so its wall time is recorded
into the owning object's telemetry — *if* the object carries one.  The
lookup is a single ``getattr(self, "telemetry", None)`` per call, so
undecorated-speed is preserved when telemetry is off (the <2% benchmark
budget in the acceptance criteria).

For free functions, or finer-than-method granularity, use
``telemetry.timer(name)`` directly.
"""

from __future__ import annotations

import functools

__all__ = ["profiled"]


def profiled(name: str, attr: str = "telemetry"):
    """Decorator: time each call into ``getattr(self, attr).metrics[name]``.

    ``self.<attr>`` may be ``None`` (telemetry disabled) — the call then
    goes straight through.
    """

    def decorate(method):
        @functools.wraps(method)
        def wrapper(self, *args, **kwargs):
            telemetry = getattr(self, attr, None)
            if telemetry is None:
                return method(self, *args, **kwargs)
            with telemetry.timer(name):
                return method(self, *args, **kwargs)

        return wrapper

    return decorate
