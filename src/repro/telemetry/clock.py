"""Injectable clocks: the telemetry determinism boundary.

Every timestamp or duration that telemetry records flows through a
:class:`Clock`, never through ``time.time()`` directly.  Production code
uses :class:`WallClock`; tests inject a :class:`ManualClock` so event
timestamps — and therefore whole JSONL traces — are bit-reproducible
given a seed.  ``wall()`` is an epoch timestamp for humans reading
manifests; ``perf()`` is monotonic and only ever used for durations.
"""

from __future__ import annotations

import time

__all__ = ["Clock", "WallClock", "ManualClock"]


class Clock:
    """Timestamp source interface (see module docstring)."""

    def wall(self) -> float:
        """Seconds since the epoch (manifest/event timestamps)."""
        raise NotImplementedError

    def perf(self) -> float:
        """Monotonic seconds (duration measurements only)."""
        raise NotImplementedError


class WallClock(Clock):
    """The real thing: ``time.time`` / ``time.perf_counter``."""

    def wall(self) -> float:
        return time.time()

    def perf(self) -> float:
        return time.perf_counter()


class ManualClock(Clock):
    """Deterministic clock for tests: advances only via :meth:`tick`.

    ``auto_tick`` > 0 additionally advances the clock by that amount on
    every read, so successive events get distinct (but reproducible)
    timestamps without explicit ticking.
    """

    def __init__(self, start: float = 0.0, auto_tick: float = 0.0):
        self.now = float(start)
        self.auto_tick = float(auto_tick)

    def tick(self, seconds: float) -> None:
        self.now += float(seconds)

    def _read(self) -> float:
        value = self.now
        if self.auto_tick:
            self.now += self.auto_tick
        return value

    def wall(self) -> float:
        return self._read()

    def perf(self) -> float:
        return self._read()
