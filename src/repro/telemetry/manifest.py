"""Run manifests: one JSON document describing one run, written atomically.

A manifest answers "what exactly produced these artifacts?": experiment
configuration, seeds, package versions, wall-clock bounds, exit status,
per-job records (including structured crash reports from the scheduler)
and a final metrics snapshot.  ``write()`` goes through a temp file +
``os.replace`` so readers never observe a half-written manifest — the
file is either the previous complete version or the new one.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import tempfile
from dataclasses import asdict, dataclass, field
from pathlib import Path

from .clock import Clock, WallClock

__all__ = ["RunManifest", "package_versions", "MANIFEST_NAME", "EVENTS_NAME"]

MANIFEST_NAME = "manifest.json"
EVENTS_NAME = "events.jsonl"


def package_versions() -> dict[str, str]:
    """Versions of everything that can change a run's numbers."""
    import numpy
    import scipy

    import repro

    return {
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "scipy": scipy.__version__,
        "repro": getattr(repro, "__version__", "unknown"),
    }


@dataclass
class RunManifest:
    """Everything needed to identify, audit, and reproduce one run."""

    run_id: str
    experiment: dict = field(default_factory=dict)
    seeds: list[int] = field(default_factory=list)
    argv: list[str] = field(default_factory=list)
    versions: dict = field(default_factory=dict)
    started_at: float = 0.0
    finished_at: float | None = None
    status: str = "running"          # running | ok | failed
    error: str | None = None
    jobs: list[dict] = field(default_factory=list)
    metrics: dict = field(default_factory=dict)
    events_path: str | None = None
    artifacts: list[dict] = field(default_factory=list)

    @classmethod
    def create(cls, run_id: str, experiment: dict | None = None,
               seeds: list[int] | None = None, argv: list[str] | None = None,
               clock: Clock | None = None,
               versions: dict | None = None) -> "RunManifest":
        clock = clock or WallClock()
        return cls(
            run_id=run_id,
            experiment=dict(experiment or {}),
            seeds=list(seeds or []),
            argv=list(sys.argv if argv is None else argv),
            versions=package_versions() if versions is None else dict(versions),
            started_at=clock.wall(),
        )

    def record_job(self, name: str, ok: bool, duration: float = 0.0,
                   error: str | None = None, traceback: str | None = None,
                   attempts: int = 1, error_kind: str | None = None) -> None:
        """Append one job outcome; failed jobs double as crash records."""
        record: dict = {"name": name, "ok": ok, "duration": duration}
        if attempts != 1:
            record["attempts"] = attempts
        if error is not None:
            record["error"] = error
        if error_kind is not None:
            record["error_kind"] = error_kind
        if traceback is not None:
            record["traceback"] = traceback
        self.jobs.append(record)

    def record_artifact(self, key: str, role: str, kind: str | None = None) -> None:
        """Record one artifact-store interaction (content hash + role).

        ``role`` is ``"consumed"`` (cache hit the run depended on) or
        ``"produced"`` (the run wrote it).  Repeat interactions with the
        same (key, role) are deduplicated — a sweep may read one victim
        hundreds of times.
        """
        record = {"key": key, "role": role}
        if kind is not None:
            record["kind"] = kind
        if record not in self.artifacts:
            self.artifacts.append(record)

    def finalize(self, status: str = "ok", error: str | None = None,
                 clock: Clock | None = None, metrics: dict | None = None) -> None:
        self.status = status
        self.error = error
        self.finished_at = (clock or WallClock()).wall()
        if metrics is not None:
            self.metrics = metrics

    @property
    def duration(self) -> float | None:
        if self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    def to_dict(self) -> dict:
        return asdict(self)

    def write(self, path: str | Path) -> Path:
        """Atomic write: serialize to a sibling temp file, then replace."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(self.to_dict(), indent=2, sort_keys=True, default=str)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=path.name,
                                        suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(payload + "\n")
            os.replace(tmp_name, path)
        except BaseException:
            if os.path.exists(tmp_name):
                os.unlink(tmp_name)
            raise
        return path

    @classmethod
    def load(cls, path: str | Path) -> "RunManifest":
        with open(path, encoding="utf-8") as fh:
            data = json.load(fh)
        return cls(**data)
