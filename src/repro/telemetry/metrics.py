"""In-process metrics: counters, gauges, EWMA timers, histogram summaries.

A :class:`MetricsRegistry` is a flat namespace of named instruments.
Instruments are created lazily on first use (``registry.counter("x")``)
so instrumented code never has to pre-declare what it measures.
``snapshot()`` renders everything into a plain, sorted, JSON-safe dict —
that is what lands in run manifests.

All instruments are deterministic functions of the observation sequence:
histograms keep an exact sample (capped at ``max_samples``, after which
only the streaming moments keep updating), never a randomized reservoir.
"""

from __future__ import annotations

import math

__all__ = ["Counter", "Gauge", "EwmaTimer", "Histogram", "MetricsRegistry"]


class Counter:
    """Monotonically increasing count (events, steps, failures)."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def render(self) -> float:
        return self.value


class Gauge:
    """Last-write-wins scalar (current τ, last KL, buffer size)."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = float("nan")

    def set(self, value: float) -> None:
        self.value = float(value)

    def render(self) -> float:
        return self.value


class EwmaTimer:
    """Exponentially weighted moving average of observed durations.

    Tracks a smoothed "recent" value next to the all-time mean; the
    first observation seeds the EWMA so it is defined immediately.
    """

    __slots__ = ("alpha", "ewma", "count", "total")

    def __init__(self, alpha: float = 0.2):
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self.ewma = float("nan")
        self.count = 0
        self.total = 0.0

    def observe(self, seconds: float) -> None:
        seconds = float(seconds)
        self.count += 1
        self.total += seconds
        if math.isnan(self.ewma):
            self.ewma = seconds
        else:
            self.ewma += self.alpha * (seconds - self.ewma)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def render(self) -> dict:
        return {"ewma": self.ewma, "mean": self.mean,
                "count": self.count, "total": self.total}


class Histogram:
    """Summary statistics over observed values.

    Keeps exact values up to ``max_samples`` for quantiles; streaming
    moments (count/sum/min/max/sumsq) always cover every observation.
    """

    __slots__ = ("max_samples", "samples", "count", "sum", "sumsq", "min", "max")

    def __init__(self, max_samples: int = 4096):
        self.max_samples = max_samples
        self.samples: list[float] = []
        self.count = 0
        self.sum = 0.0
        self.sumsq = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        self.sumsq += value * value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        if len(self.samples) < self.max_samples:
            self.samples.append(value)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else float("nan")

    @property
    def std(self) -> float:
        if not self.count:
            return float("nan")
        var = self.sumsq / self.count - self.mean**2
        return math.sqrt(max(var, 0.0))

    def quantile(self, q: float) -> float:
        """Linear-interpolated quantile over the retained sample."""
        if not self.samples:
            return float("nan")
        ordered = sorted(self.samples)
        pos = q * (len(ordered) - 1)
        lo = int(math.floor(pos))
        hi = min(lo + 1, len(ordered) - 1)
        frac = pos - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    def render(self) -> dict:
        if not self.count:
            return {"count": 0}
        return {
            "count": self.count, "mean": self.mean, "std": self.std,
            "min": self.min, "max": self.max, "sum": self.sum,
            "p50": self.quantile(0.5), "p90": self.quantile(0.9),
            "p99": self.quantile(0.99),
        }


class MetricsRegistry:
    """Named instruments with lazy creation and a JSON-safe snapshot."""

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._timers: dict[str, EwmaTimer] = {}
        self._histograms: dict[str, Histogram] = {}

    @staticmethod
    def _get(table: dict, name: str, factory):
        instrument = table.get(name)
        if instrument is None:
            instrument = table[name] = factory()
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(self._counters, name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(self._gauges, name, Gauge)

    def ewma(self, name: str, alpha: float = 0.2) -> EwmaTimer:
        return self._get(self._timers, name, lambda: EwmaTimer(alpha))

    def histogram(self, name: str, max_samples: int = 4096) -> Histogram:
        return self._get(self._histograms, name, lambda: Histogram(max_samples))

    def observe_duration(self, name: str, seconds: float) -> None:
        """Record one duration into both the EWMA and the histogram."""
        self.ewma(name).observe(seconds)
        self.histogram(name).observe(seconds)

    def snapshot(self) -> dict:
        """Everything, sorted, as plain floats/dicts (manifest-ready)."""
        out: dict[str, dict] = {}
        for kind, table in (("counters", self._counters), ("gauges", self._gauges),
                            ("timers", self._timers), ("histograms", self._histograms)):
            if table:
                out[kind] = {name: table[name].render() for name in sorted(table)}
        return out
