"""Telemetry subsystem: run manifests, metrics, JSONL events, profiling.

Layering (each usable on its own):

1. :mod:`~repro.telemetry.clock` — injectable ``Clock`` (``WallClock``
   in production, ``ManualClock`` in tests).  All timestamps flow
   through a clock; that is the determinism contract.
2. :mod:`~repro.telemetry.metrics` — ``MetricsRegistry`` of counters,
   gauges, EWMA timers, and histogram summaries.
3. :mod:`~repro.telemetry.events` — ``JsonlEventSink`` with buffered
   atomic appends; deterministic ``payload`` vs non-deterministic
   ``perf`` split per event.
4. :mod:`~repro.telemetry.manifest` — ``RunManifest``: config, seeds,
   package versions, wall-clock bounds, exit status, crash records;
   atomic temp-file + ``os.replace`` writes.
5. :mod:`~repro.telemetry.run` — the per-run ``Telemetry`` facade plus
   the ambient-telemetry contextvar (``use_telemetry``) that lets the
   experiments CLI instrument training loops without parameter plumbing.
6. :mod:`~repro.telemetry.profiling` — ``@profiled`` method decorator.

Telemetry is opt-in everywhere: hot paths take ``telemetry=None`` and
fall back to the ambient context; with neither set they run at baseline
speed.
"""

from .clock import Clock, ManualClock, WallClock
from .events import (
    EventSink,
    JsonlEventSink,
    MemoryEventSink,
    NullEventSink,
    read_jsonl,
    strip_perf,
)
from .manifest import EVENTS_NAME, MANIFEST_NAME, RunManifest, package_versions
from .metrics import Counter, EwmaTimer, Gauge, Histogram, MetricsRegistry
from .profiling import profiled
from .run import Telemetry, current_telemetry, use_telemetry

__all__ = [
    "Clock", "WallClock", "ManualClock",
    "EventSink", "NullEventSink", "MemoryEventSink", "JsonlEventSink",
    "read_jsonl", "strip_perf",
    "RunManifest", "package_versions", "MANIFEST_NAME", "EVENTS_NAME",
    "Counter", "Gauge", "EwmaTimer", "Histogram", "MetricsRegistry",
    "profiled",
    "Telemetry", "use_telemetry", "current_telemetry",
]
