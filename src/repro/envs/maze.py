"""Axis-aligned maze geometry: wall rectangles, collision, raycasts.

Shared substrate for the navigation tasks (AntUMaze, Ant4Rooms).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Rect", "Maze", "u_maze", "four_rooms"]


@dataclass(frozen=True)
class Rect:
    """Solid axis-aligned rectangle (a wall block)."""

    xmin: float
    xmax: float
    ymin: float
    ymax: float

    def contains(self, point: np.ndarray, margin: float = 0.0) -> bool:
        x, y = float(point[0]), float(point[1])
        return (
            self.xmin - margin <= x <= self.xmax + margin
            and self.ymin - margin <= y <= self.ymax + margin
        )


class Maze:
    """A set of wall rectangles inside an outer boundary."""

    def __init__(self, bounds: Rect, walls: list[Rect]):
        self.bounds = bounds
        self.walls = list(walls)

    def collides(self, point: np.ndarray, radius: float = 0.0) -> bool:
        x, y = float(point[0]), float(point[1])
        if not (
            self.bounds.xmin + radius <= x <= self.bounds.xmax - radius
            and self.bounds.ymin + radius <= y <= self.bounds.ymax - radius
        ):
            return True
        return any(w.contains(point, margin=radius) for w in self.walls)

    def resolve_move(self, position: np.ndarray, delta: np.ndarray, radius: float = 0.0
                     ) -> tuple[np.ndarray, np.ndarray]:
        """Move ``position`` by ``delta``, sliding along walls.

        Returns ``(new_position, blocked_mask)`` where ``blocked_mask`` is a
        boolean (2,) array marking which axis hit a wall (its velocity
        should be zeroed by the caller).
        """
        new = position.copy()
        blocked = np.zeros(2, dtype=bool)
        for axis in range(2):
            trial = new.copy()
            trial[axis] += delta[axis]
            if self.collides(trial, radius=radius):
                blocked[axis] = True
            else:
                new = trial
        return new, blocked

    def raycast(self, origin: np.ndarray, angles: np.ndarray, max_range: float = 10.0,
                step: float = 0.1) -> np.ndarray:
        """Distance to the nearest wall along each angle (sampled march)."""
        distances = np.full(len(angles), max_range)
        directions = np.stack([np.cos(angles), np.sin(angles)], axis=1)
        ts = np.arange(step, max_range + step, step)
        for i, direction in enumerate(directions):
            for t in ts:
                if self.collides(origin + t * direction):
                    distances[i] = t
                    break
        return distances


def u_maze(size: float = 3.0, corridor: float = 1.0) -> Maze:
    """The AntUMaze layout: go around a central tongue wall.

    Start is in the lower-left arm, goal in the upper-left arm; the agent
    must travel right, around the tongue, and back left.
    """
    bounds = Rect(-size, size, -size, size)
    tongue = Rect(-size, size - 2.0 * corridor, -0.5 * corridor, 0.5 * corridor)
    return Maze(bounds, [tongue])


def four_rooms(size: float = 3.0, door: float = 0.8, thickness: float = 0.2) -> Maze:
    """Classic four-rooms layout with one door in each dividing wall."""
    bounds = Rect(-size, size, -size, size)
    half_door = door / 2.0
    t = thickness / 2.0
    walls = [
        # vertical divider (x == 0) with doors at y = ±size/2
        Rect(-t, t, -size, -size / 2.0 - half_door),
        Rect(-t, t, -size / 2.0 + half_door, size / 2.0 - half_door),
        Rect(-t, t, size / 2.0 + half_door, size),
        # horizontal divider (y == 0) with doors at x = ±size/2
        Rect(-size, -size / 2.0 - half_door, -t, t),
        Rect(-size / 2.0 + half_door, size / 2.0 - half_door, -t, t),
        Rect(size / 2.0 + half_door, size, -t, t),
    ]
    return Maze(bounds, walls)
