"""Sparse-reward manipulation: a FetchReach proxy.

A three-joint kinematic arm must bring its end effector within a small
tolerance of a randomly sampled goal.  Success yields +1 and ends the
episode; running out of time yields the paper's −0.1 failure signal.
"""

from __future__ import annotations

import numpy as np

from .core import Env
from .spaces import Box

__all__ = ["FetchReachEnv"]


class FetchReachEnv(Env):
    """Planar 3-link reaching task with velocity-command actions."""

    n_joints = 3
    link_lengths = (0.5, 0.4, 0.3)
    joint_speed = 1.5
    dt = 0.05
    goal_tolerance = 0.08
    max_steps = 60
    failure_penalty = -0.1

    def __init__(self, shaped: bool = False):
        super().__init__()
        # obs: q(3) qd(3) ee(2) goal(2)  -> 10-dim, like the real FetchReach
        self.observation_space = Box(-np.inf, np.inf, (10,))
        self.action_space = Box(-1.0, 1.0, (self.n_joints,))
        # ``shaped`` enables the victim's private goal-approach reward.
        self.shaped = shaped
        self.q = np.zeros(self.n_joints)
        self.qd = np.zeros(self.n_joints)
        self.goal = np.zeros(2)
        self._prev_distance = 0.0
        self._steps = 0

    # ---------------------------------------------------------------- helpers

    def end_effector(self, q: np.ndarray | None = None) -> np.ndarray:
        q = self.q if q is None else q
        angles = np.cumsum(q)
        x = float(np.sum(np.asarray(self.link_lengths) * np.cos(angles)))
        y = float(np.sum(np.asarray(self.link_lengths) * np.sin(angles)))
        return np.array([x, y])

    def _sample_goal(self) -> np.ndarray:
        reach = sum(self.link_lengths)
        radius = self.np_random.uniform(0.35 * reach, 0.9 * reach)
        angle = self.np_random.uniform(-np.pi, np.pi)
        return radius * np.array([np.cos(angle), np.sin(angle)])

    def _observe(self) -> np.ndarray:
        return np.concatenate([self.q, self.qd, self.end_effector(), self.goal])

    # ------------------------------------------------------------------- API

    def _reset(self) -> np.ndarray:
        self.q = self.np_random.uniform(-0.1, 0.1, size=self.n_joints)
        self.qd = np.zeros(self.n_joints)
        self.goal = self._sample_goal()
        self._steps = 0
        self._prev_distance = float(np.linalg.norm(self.end_effector() - self.goal))
        return self._observe()

    def step(self, action):
        action = np.clip(np.asarray(action, dtype=np.float64), -1.0, 1.0)
        self.qd = self.joint_speed * action
        self.q = self.q + self.dt * self.qd
        self.q = np.clip(self.q, -np.pi, np.pi)
        self._steps += 1

        distance = float(np.linalg.norm(self.end_effector() - self.goal))
        success = distance <= self.goal_tolerance
        timeout = self._steps >= self.max_steps and not success
        if self.shaped:
            reward = 5.0 * (self._prev_distance - distance) + (5.0 if success else 0.0)
        elif success:
            reward = 1.0
        elif timeout:
            reward = self.failure_penalty
        else:
            reward = 0.0
        self._prev_distance = distance
        info = {"success": success, "distance_to_goal": distance}
        return self._observe(), reward, success, timeout, info
