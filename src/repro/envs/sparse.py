"""Sparse-reward locomotion tasks (SparseHopper, SparseWalker2d, …).

The sparse tasks follow the paper's setup: the victim must move past a
distant line (or stand up) before the time limit; it receives +1 on
success (episode ends), a small penalty for falling into an unhealthy
state, and 0 otherwise.  ``info["success"]`` carries the same indicator
the adversary's surrogate reward uses.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from .core import Env
from .locomotion import LOCOMOTION_CONFIGS, LocomotionConfig, LocomotionEnv

__all__ = [
    "SparseLocomotionEnv",
    "SparseHopperEnv",
    "SparseWalker2dEnv",
    "SparseHalfCheetahEnv",
    "SparseAntEnv",
    "SparseHumanoidEnv",
    "SparseHumanoidStandupEnv",
    "SPARSE_SUCCESS_REWARD",
    "SPARSE_FAILURE_PENALTY",
]

SPARSE_SUCCESS_REWARD = 1.0
SPARSE_FAILURE_PENALTY = -0.1


class SparseLocomotionEnv(Env):
    """Sparse-success view of a dense locomotion task."""

    def __init__(self, config: LocomotionConfig, goal_distance: float | None = None):
        super().__init__()
        if goal_distance is not None:
            config = replace(config, success_distance=goal_distance)
        self._inner = LocomotionEnv(config)
        self.config = config
        self.observation_space = self._inner.observation_space
        self.action_space = self._inner.action_space

    def seed(self, seed: int | None) -> None:
        super().seed(seed)
        self._inner.seed(seed)

    def _reset(self) -> np.ndarray:
        self._inner.np_random = self.np_random
        return self._inner.reset()

    def step(self, action):
        obs, _, terminated, truncated, info = self._inner.step(action)
        if info["success"]:
            reward = SPARSE_SUCCESS_REWARD
            terminated = True  # task done
        elif terminated:
            reward = SPARSE_FAILURE_PENALTY  # fell into an unhealthy state
        else:
            reward = 0.0
        return obs, reward, terminated, truncated, info


def _sparse_config(base: str, **overrides) -> LocomotionConfig:
    config = LOCOMOTION_CONFIGS[base]
    if overrides:
        config = replace(config, **overrides)
    return replace(config, name=f"Sparse{config.name}")


class SparseHopperEnv(SparseLocomotionEnv):
    def __init__(self):
        super().__init__(_sparse_config("Hopper", success_distance=7.0))


class SparseWalker2dEnv(SparseLocomotionEnv):
    def __init__(self):
        super().__init__(_sparse_config("Walker2d", success_distance=7.0))


class SparseHalfCheetahEnv(SparseLocomotionEnv):
    def __init__(self):
        super().__init__(_sparse_config("HalfCheetah", success_distance=9.0))


class SparseAntEnv(SparseLocomotionEnv):
    def __init__(self):
        super().__init__(_sparse_config("Ant", success_distance=7.0))


class SparseHumanoidEnv(SparseLocomotionEnv):
    def __init__(self):
        super().__init__(_sparse_config("Humanoid", success_distance=6.0))


class SparseHumanoidStandupEnv(SparseLocomotionEnv):
    def __init__(self):
        super().__init__(_sparse_config("HumanoidStandup"))
