"""Environment suite for the reproduction (Gym/MuJoCo substitute).

Use :func:`make` / :func:`make_game` with the ids in :data:`DENSE_TASKS`,
:data:`SPARSE_TASKS`, and :data:`GAME_TASKS`.
"""

from . import maze, multiagent, physics
from .core import Env, TimeLimit, Wrapper
from .locomotion import LOCOMOTION_CONFIGS, LocomotionConfig, LocomotionEnv
from .manipulation import FetchReachEnv
from .navigation import Ant4RoomsEnv, AntUMazeEnv, MazeNavigationEnv
from .registry import (
    DENSE_TASKS,
    GAME_TASKS,
    SPARSE_TASKS,
    make,
    make_game,
    register,
    registered_ids,
)
from .spaces import Box, Discrete, Space
from .sparse import SparseLocomotionEnv

__all__ = [
    "Env", "Wrapper", "TimeLimit",
    "Space", "Box", "Discrete",
    "make", "make_game", "register", "registered_ids",
    "DENSE_TASKS", "SPARSE_TASKS", "GAME_TASKS",
    "LocomotionEnv", "LocomotionConfig", "LOCOMOTION_CONFIGS",
    "SparseLocomotionEnv", "MazeNavigationEnv", "AntUMazeEnv", "Ant4RoomsEnv",
    "FetchReachEnv",
    "physics", "maze", "multiagent",
]
