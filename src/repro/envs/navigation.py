"""Sparse-reward navigation tasks: AntUMaze and Ant4Rooms proxies.

An Ant-proxy point body (8-dimensional torque action mapped to a planar
force, as the Ant's legs map to net thrust) navigates a maze to a goal
region.  Success gives +1 and ends the episode; there is no shaped
reward, matching the paper's sparse navigation setting.
"""

from __future__ import annotations

import zlib

import numpy as np

from .core import Env
from .maze import Maze, four_rooms, u_maze
from .spaces import Box

__all__ = ["MazeNavigationEnv", "AntUMazeEnv", "Ant4RoomsEnv"]

_N_RAYS = 8
_RAY_ANGLES = np.linspace(0.0, 2.0 * np.pi, _N_RAYS, endpoint=False)


def _force_map(name: str, action_dim: int) -> np.ndarray:
    """Fixed 2 x action_dim matrix turning joint torques into planar force."""
    rng = np.random.default_rng(zlib.crc32(f"repro-nav-force:{name}".encode("utf-8")))
    m = rng.standard_normal((2, action_dim))
    return m / np.linalg.norm(m, axis=1, keepdims=True)


class MazeNavigationEnv(Env):
    """Point-body maze navigation with sparse success reward."""

    action_dim = 8  # Ant-proxy torques
    radius = 0.18
    goal_radius = 0.5
    accel_gain = 4.0
    drag = 1.5
    dt = 0.1

    def __init__(self, name: str, maze: Maze, start: np.ndarray, goal: np.ndarray,
                 max_steps: int = 150, goal_noise: float = 0.15, shaped: bool = False,
                 waypoints: list[np.ndarray] | None = None):
        super().__init__()
        self.name = name
        self.maze = maze
        self.start = np.asarray(start, dtype=np.float64)
        self.goal_center = np.asarray(goal, dtype=np.float64)
        self.max_steps = max_steps
        self.goal_noise = goal_noise
        # ``shaped`` turns on the victim's private training reward: progress
        # along a waypoint path around the walls (plain goal-distance shaping
        # would pull the agent into a wall-trap local optimum).  The
        # published task signal stays sparse.
        self.shaped = shaped
        self.waypoints = [np.asarray(w, dtype=np.float64) for w in (waypoints or [])]
        self._wp_index = 0
        self._prev_distance = 0.0
        self._force_map = _force_map(name, self.action_dim)
        # obs: pos(2) vel(2) goal_delta(2) rays(8)
        self.observation_space = Box(-np.inf, np.inf, (6 + _N_RAYS,))
        self.action_space = Box(-1.0, 1.0, (self.action_dim,))
        self.position = self.start.copy()
        self.velocity = np.zeros(2)
        self.goal = self.goal_center.copy()
        self._steps = 0

    def _observe(self) -> np.ndarray:
        rays = self.maze.raycast(self.position, _RAY_ANGLES, max_range=6.0, step=0.15)
        return np.concatenate(
            [self.position, self.velocity, self.goal - self.position, rays]
        )

    def _reset(self) -> np.ndarray:
        jitter = self.np_random.uniform(-0.1, 0.1, size=2)
        self.position = self.start + jitter
        self.velocity = np.zeros(2)
        self.goal = self.goal_center + self.np_random.uniform(
            -self.goal_noise, self.goal_noise, size=2
        )
        self._steps = 0
        self._wp_index = 0
        self._prev_distance = float(np.linalg.norm(self.position - self._target()))
        return self._observe()

    def _target(self) -> np.ndarray:
        """Active shaping target: next unreached waypoint, then the goal."""
        if self._wp_index < len(self.waypoints):
            return self.waypoints[self._wp_index]
        return self.goal

    def step(self, action):
        action = np.clip(np.asarray(action, dtype=np.float64), -1.0, 1.0)
        force = self._force_map @ action
        self.velocity = self.velocity + self.dt * (self.accel_gain * force - self.drag * self.velocity)
        delta = self.dt * self.velocity
        self.position, blocked = self.maze.resolve_move(self.position, delta, radius=self.radius)
        self.velocity[blocked] = 0.0
        self._steps += 1

        distance = float(np.linalg.norm(self.position - self.goal))
        success = distance <= self.goal_radius
        terminated = success
        truncated = self._steps >= self.max_steps and not terminated
        if self.shaped:
            wp_distance = float(np.linalg.norm(self.position - self._target()))
            reward = 2.0 * (self._prev_distance - wp_distance) + (5.0 if success else 0.0)
            if self._wp_index < len(self.waypoints) and wp_distance <= self.goal_radius:
                self._wp_index += 1
                wp_distance = float(np.linalg.norm(self.position - self._target()))
            self._prev_distance = wp_distance
        else:
            reward = 1.0 if success else 0.0
        info = {
            "success": success,
            "distance_to_goal": distance,
            "position": self.position.copy(),
        }
        return self._observe(), reward, terminated, truncated, info


class AntUMazeEnv(MazeNavigationEnv):
    """Navigate around the U-shaped tongue wall to the goal arm."""

    def __init__(self, shaped: bool = False):
        super().__init__(
            name="AntUMaze",
            maze=u_maze(size=3.0, corridor=1.0),
            start=np.array([-2.2, -2.0]),
            goal=np.array([-2.2, 2.0]),
            max_steps=150,
            shaped=shaped,
            waypoints=[np.array([2.0, -1.8]), np.array([2.0, 1.8])],
        )


class Ant4RoomsEnv(MazeNavigationEnv):
    """Cross two doorways of the four-rooms maze to the opposite room."""

    def __init__(self, shaped: bool = False):
        super().__init__(
            name="Ant4Rooms",
            maze=four_rooms(size=3.0, door=0.9),
            start=np.array([-2.0, -2.0]),
            goal=np.array([2.0, 2.0]),
            max_steps=200,
            shaped=shaped,
            waypoints=[np.array([0.0, -1.5]), np.array([1.5, 0.0])],
        )
