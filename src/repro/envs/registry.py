"""Environment registry: ``make("Hopper-v0")`` etc.

Single-agent ids return :class:`~repro.envs.core.Env` instances wrapped
in a :class:`~repro.envs.core.TimeLimit`; two-player game ids return
:class:`~repro.envs.multiagent.TwoPlayerEnv` instances (their step limit
is internal).
"""

from __future__ import annotations

from typing import Callable

from .core import Env, TimeLimit
from .locomotion import (
    AntEnv,
    HalfCheetahEnv,
    HopperEnv,
    HumanoidEnv,
    HumanoidStandupEnv,
    Walker2dEnv,
)
from .manipulation import FetchReachEnv
from .multiagent import KickAndDefendEnv, TwoPlayerEnv, YouShallNotPassEnv
from .navigation import Ant4RoomsEnv, AntUMazeEnv
from .sparse import (
    SparseAntEnv,
    SparseHalfCheetahEnv,
    SparseHopperEnv,
    SparseHumanoidEnv,
    SparseHumanoidStandupEnv,
    SparseWalker2dEnv,
)

__all__ = ["make", "make_game", "register", "registered_ids", "DENSE_TASKS", "SPARSE_TASKS", "GAME_TASKS"]

_DEFAULT_TIME_LIMIT = 200

_REGISTRY: dict[str, tuple[Callable[[], Env], int | None]] = {}
_GAME_REGISTRY: dict[str, Callable[[], TwoPlayerEnv]] = {}


def register(env_id: str, factory: Callable[[], Env], max_steps: int | None = _DEFAULT_TIME_LIMIT) -> None:
    if env_id in _REGISTRY or env_id in _GAME_REGISTRY:
        raise ValueError(f"environment id {env_id!r} already registered")
    _REGISTRY[env_id] = (factory, max_steps)


def register_game(env_id: str, factory: Callable[[], TwoPlayerEnv]) -> None:
    if env_id in _REGISTRY or env_id in _GAME_REGISTRY:
        raise ValueError(f"environment id {env_id!r} already registered")
    _GAME_REGISTRY[env_id] = factory


def make(env_id: str) -> Env:
    """Instantiate a registered single-agent environment."""
    if env_id not in _REGISTRY:
        raise KeyError(f"unknown environment {env_id!r}; known: {registered_ids()}")
    factory, max_steps = _REGISTRY[env_id]
    env = factory()
    if max_steps is not None:
        env = TimeLimit(env, max_steps)
    return env


def make_game(env_id: str) -> TwoPlayerEnv:
    """Instantiate a registered two-player game."""
    if env_id not in _GAME_REGISTRY:
        raise KeyError(f"unknown game {env_id!r}; known: {sorted(_GAME_REGISTRY)}")
    return _GAME_REGISTRY[env_id]()


def registered_ids() -> list[str]:
    return sorted(_REGISTRY) + sorted(_GAME_REGISTRY)


# --------------------------------------------------------------- registrations

DENSE_TASKS = ["Hopper-v0", "Walker2d-v0", "HalfCheetah-v0", "Ant-v0"]
SPARSE_TASKS = [
    "SparseHopper-v0",
    "SparseWalker2d-v0",
    "SparseHalfCheetah-v0",
    "SparseAnt-v0",
    "SparseHumanoidStandup-v0",
    "SparseHumanoid-v0",
    "AntUMaze-v0",
    "Ant4Rooms-v0",
    "FetchReach-v0",
]
GAME_TASKS = ["YouShallNotPass-v0", "KickAndDefend-v0"]

register("Hopper-v0", HopperEnv)
register("Walker2d-v0", Walker2dEnv)
register("HalfCheetah-v0", HalfCheetahEnv)
register("Ant-v0", AntEnv)
register("Humanoid-v0", HumanoidEnv)
register("HumanoidStandup-v0", HumanoidStandupEnv)

register("SparseHopper-v0", SparseHopperEnv, max_steps=200)
register("SparseWalker2d-v0", SparseWalker2dEnv, max_steps=200)
register("SparseHalfCheetah-v0", SparseHalfCheetahEnv, max_steps=200)
register("SparseAnt-v0", SparseAntEnv, max_steps=200)
register("SparseHumanoid-v0", SparseHumanoidEnv, max_steps=200)
register("SparseHumanoidStandup-v0", SparseHumanoidStandupEnv, max_steps=200)

register("AntUMaze-v0", AntUMazeEnv, max_steps=None)   # internal limit
register("Ant4Rooms-v0", Ant4RoomsEnv, max_steps=None)
register("FetchReach-v0", FetchReachEnv, max_steps=None)

register_game("YouShallNotPass-v0", YouShallNotPassEnv)
register_game("KickAndDefend-v0", KickAndDefendEnv)
