"""Core environment API (Gym-style step/reset with terminated/truncated).

Conventions used throughout the reproduction:

* ``step`` returns ``(obs, reward, terminated, truncated, info)``.
* ``info["success"]`` is True on the step where the agent completes the
  task.  This is the *only* signal the black-box adversary is allowed to
  observe (the surrogate reward ``r̂ = 1(success)`` of the threat model);
  the shaped ``reward`` plays the role of the victim's private
  training-time reward ``r_E^v``.
"""

from __future__ import annotations

import numpy as np

from .spaces import Space

__all__ = ["Env", "Wrapper", "TimeLimit"]


class Env:
    """Base environment."""

    observation_space: Space
    action_space: Space

    def __init__(self):
        self.np_random = np.random.default_rng()

    def seed(self, seed: int | None) -> None:
        self.np_random = np.random.default_rng(seed)

    def reset(self, seed: int | None = None) -> np.ndarray:
        if seed is not None:
            self.seed(seed)
        return self._reset()

    def _reset(self) -> np.ndarray:
        raise NotImplementedError

    def step(self, action):
        raise NotImplementedError

    @property
    def unwrapped(self) -> "Env":
        return self

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"


class Wrapper(Env):
    """Delegating wrapper; subclasses override the pieces they change."""

    def __init__(self, env: Env):
        super().__init__()
        self.env = env
        self.observation_space = env.observation_space
        self.action_space = env.action_space

    def seed(self, seed: int | None) -> None:
        self.env.seed(seed)

    def reset(self, seed: int | None = None):
        return self.env.reset(seed=seed)

    def step(self, action):
        return self.env.step(action)

    @property
    def np_random(self):
        return self.env.np_random

    @np_random.setter
    def np_random(self, value):
        # Env.__init__ assigns a default generator; forward it if possible.
        if "env" in self.__dict__:
            self.env.np_random = value

    @property
    def unwrapped(self) -> Env:
        return self.env.unwrapped

    def __repr__(self) -> str:
        return f"<{type(self).__name__}{self.env!r}>"


class TimeLimit(Wrapper):
    """Truncate episodes after ``max_steps`` steps."""

    def __init__(self, env: Env, max_steps: int):
        super().__init__(env)
        if max_steps <= 0:
            raise ValueError("max_steps must be positive")
        self.max_steps = int(max_steps)
        self._elapsed = 0

    def reset(self, seed: int | None = None):
        self._elapsed = 0
        return self.env.reset(seed=seed)

    def step(self, action):
        obs, reward, terminated, truncated, info = self.env.step(action)
        self._elapsed += 1
        if self._elapsed >= self.max_steps and not terminated:
            truncated = True
        return obs, reward, terminated, truncated, info
