"""Dense-reward locomotion environments (Hopper, Walker2d, HalfCheetah,
Ant, Humanoid, HumanoidStandup proxies).

Each environment wraps a :class:`~repro.envs.physics.LinkChainBody`.  The
observation is the body's core state padded with deterministic
"contact-like" features (a fixed tanh random projection of the core
state) so the observation dimensionality matches the paper's MuJoCo
tasks (Hopper 11, Walker2d/HalfCheetah 17, Ant 111, Humanoid 376).

Reward structure mirrors Gym MuJoCo: forward velocity + alive bonus −
control cost (this is the victim's *private* training reward).  The
black-box surrogate signal is ``info["success"]``: True once the agent
has run past ``success_distance`` (locomotion) or stood up (standup).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, replace

import numpy as np

from .core import Env
from .physics import BodyConfig, LinkChainBody
from .spaces import Box

__all__ = [
    "LocomotionConfig",
    "LocomotionEnv",
    "HopperEnv",
    "Walker2dEnv",
    "HalfCheetahEnv",
    "AntEnv",
    "HumanoidEnv",
    "HumanoidStandupEnv",
    "LOCOMOTION_CONFIGS",
]


@dataclass
class LocomotionConfig:
    """Task-level parameters layered on a body."""

    name: str
    body: BodyConfig
    obs_dim: int
    forward_reward_weight: float = 1.0
    alive_bonus: float = 1.0
    ctrl_cost_weight: float = 0.05
    success_distance: float = 6.0
    terminate_unhealthy: bool = True
    standup: bool = False
    standup_height: float = 1.1
    fallen_pitch: float = 0.9


def _padding_projection(name: str, core_dim: int, pad_dim: int) -> np.ndarray:
    """Deterministic projection for the contact-like padding features.

    Uses a stable (non-salted) hash so cached victim checkpoints keep
    seeing the same observation layout across processes.
    """
    seed = zlib.crc32(f"repro-env-padding:{name}".encode("utf-8"))
    rng = np.random.default_rng(seed)
    return rng.standard_normal((core_dim, pad_dim)) / np.sqrt(core_dim)


class LocomotionEnv(Env):
    """Dense-reward locomotion over a link-chain body."""

    def __init__(self, config: LocomotionConfig):
        super().__init__()
        self.config = config
        self.body = LinkChainBody(config.body)
        core_dim = self.body.core_dim
        if config.obs_dim < core_dim:
            raise ValueError(
                f"{config.name}: obs_dim {config.obs_dim} smaller than core dim {core_dim}"
            )
        self._pad_dim = config.obs_dim - core_dim
        self._projection = (
            _padding_projection(config.name, core_dim, self._pad_dim)
            if self._pad_dim
            else None
        )
        self.observation_space = Box(-np.inf, np.inf, (config.obs_dim,))
        self.action_space = Box(-1.0, 1.0, (config.body.n_joints,))
        self._succeeded = False
        self._prev_z = 0.0

    # ---------------------------------------------------------------- helpers

    def _observe(self) -> np.ndarray:
        core = self.body.core_state()
        if self._projection is None:
            return core
        pad = np.tanh(core @ self._projection)
        return np.concatenate([core, pad])

    def _success_now(self) -> bool:
        if self.config.standup:
            return self.body.z >= self.config.standup_height
        return self.body.x >= self.config.success_distance

    # ------------------------------------------------------------------- API

    def _reset(self) -> np.ndarray:
        pitch0 = self.config.fallen_pitch if self.config.standup else 0.0
        self.body.reset(self.np_random, pitch0=pitch0)
        self._succeeded = False
        self._prev_z = self.body.z
        return self._observe()

    def step(self, action):
        cfg = self.config
        action = np.clip(np.asarray(action, dtype=np.float64), -1.0, 1.0)
        self.body.step(action, rng=self.np_random)

        if cfg.standup:
            progress = (self.body.z - self._prev_z) / cfg.body.dt
            self._prev_z = self.body.z
        else:
            progress = self.body.v
        # mean (not sum) so the cost scale is joint-count independent
        ctrl_cost = cfg.ctrl_cost_weight * float(np.mean(action**2))
        reward = cfg.forward_reward_weight * progress + cfg.alive_bonus - ctrl_cost

        terminated = cfg.terminate_unhealthy and not self.body.healthy
        success = False
        if not terminated and not self._succeeded and self._success_now():
            success = True
            self._succeeded = True

        info = {
            "success": success,
            "x_position": self.body.x,
            "forward_velocity": self.body.v,
            "height": self.body.z,
            "pitch": self.body.pitch,
            "healthy": self.body.healthy,
        }
        return self._observe(), reward, terminated, False, info


def _dense(name: str, n_joints: int, obs_dim: int, **task_kwargs) -> LocomotionConfig:
    return LocomotionConfig(name=name, body=BodyConfig(n_joints=n_joints), obs_dim=obs_dim, **task_kwargs)


LOCOMOTION_CONFIGS: dict[str, LocomotionConfig] = {
    "Hopper": _dense("Hopper", 3, 11, success_distance=6.5),
    "Walker2d": _dense("Walker2d", 6, 17, success_distance=6.5),
    # HalfCheetah cannot fall over in MuJoCo; mirror that with a very
    # forgiving health region and no unhealthy termination.  The attack
    # surface is speed, not falling: corrupted observations make the gait
    # inefficient or reversed.
    "HalfCheetah": replace(
        _dense("HalfCheetah", 6, 17, success_distance=9.0, alive_bonus=0.0,
               terminate_unhealthy=False),
        body=BodyConfig(n_joints=6, pitch_max=np.inf, z_min=-np.inf, drive_gain=6.5,
                        speed_coupling=0.0, tip_gain=0.0),
    ),
    "Ant": _dense("Ant", 8, 111, success_distance=6.5),
    "Humanoid": replace(
        _dense("Humanoid", 17, 376, success_distance=4.5),
        body=BodyConfig(n_joints=17, speed_coupling=2.4, pitch_noise=0.4),
    ),
    "HumanoidStandup": LocomotionConfig(
        name="HumanoidStandup",
        # Standing is actively unstable: gravity tipping beats the passive
        # stiffness, so the policy must balance with observed pitch.
        body=BodyConfig(n_joints=17, pitch_max=2.6, z_min=-np.inf,
                        pitch_stiffness=1.2, tip_gain=1.6, imbalance_gain=2.5,
                        speed_coupling=0.0, drive_gain=0.0),
        obs_dim=376,
        standup=True,
        alive_bonus=0.0,
        forward_reward_weight=2.0,
        terminate_unhealthy=False,
    ),
}


class HopperEnv(LocomotionEnv):
    def __init__(self):
        super().__init__(LOCOMOTION_CONFIGS["Hopper"])


class Walker2dEnv(LocomotionEnv):
    def __init__(self):
        super().__init__(LOCOMOTION_CONFIGS["Walker2d"])


class HalfCheetahEnv(LocomotionEnv):
    def __init__(self):
        super().__init__(LOCOMOTION_CONFIGS["HalfCheetah"])


class AntEnv(LocomotionEnv):
    def __init__(self):
        super().__init__(LOCOMOTION_CONFIGS["Ant"])


class HumanoidEnv(LocomotionEnv):
    def __init__(self):
        super().__init__(LOCOMOTION_CONFIGS["Humanoid"])


class HumanoidStandupEnv(LocomotionEnv):
    def __init__(self):
        super().__init__(LOCOMOTION_CONFIGS["HumanoidStandup"])
