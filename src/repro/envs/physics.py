"""Analytic rigid-body-proxy dynamics for the locomotion suite.

MuJoCo is replaced (see DESIGN.md) by a torque-driven joint chain with an
explicit balance channel.  The model keeps the properties the paper's
attacks exploit:

* forward thrust requires coordinated joint motion (``a · tanh(q̇)``);
* running fast destabilizes the torso pitch (``speed_coupling · v · φ``),
  so a competent policy must close a feedback loop on the pitch it
  *observes* — which is exactly the loop an observation attacker corrupts;
* an unhealthy region (torso too low / pitch too large) terminates the
  episode, i.e. the agent "falls".

All states integrate with semi-implicit Euler at ``dt``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["BodyConfig", "LinkChainBody"]


@dataclass
class BodyConfig:
    """Parameters of a link-chain locomotion body."""

    n_joints: int = 3
    dt: float = 0.05
    torque_gain: float = 8.0
    joint_damping: float = 2.0
    joint_stiffness: float = 3.0
    drive_gain: float = 5.0
    drag: float = 1.0
    imbalance_gain: float = 2.0
    pitch_stiffness: float = 2.0
    pitch_damping: float = 1.0
    pitch_noise: float = 0.9
    tip_gain: float = 0.6  # gravity tipping torque coefficient (destabilizing)
    speed_coupling: float = 5.0
    z_rest: float = 1.25
    height_sag: float = 0.9
    crouch_sag: float = 0.35
    z_min: float = 0.7
    pitch_max: float = 0.3
    # joint torques that feed the pitch channel; alternating signs by default
    imbalance_weights: np.ndarray | None = field(default=None, repr=False)

    def weights(self) -> np.ndarray:
        if self.imbalance_weights is not None:
            w = np.asarray(self.imbalance_weights, dtype=np.float64)
            if w.shape != (self.n_joints,):
                raise ValueError("imbalance_weights must have shape (n_joints,)")
            return w
        signs = np.where(np.arange(self.n_joints) % 2 == 0, 1.0, -1.0)
        signs = signs - signs.mean()  # symmetric torque produces no net tipping
        total = np.abs(signs).sum()
        return signs / (total if total > 0 else 1.0)


class LinkChainBody:
    """Stateful integrator for the body model.

    State vector layout (``core_state``):
    ``[z, pitch, q_0..q_{n-1}, v, pitch_dot, qd_0..qd_{n-1}]``
    The absolute forward position ``x`` is tracked separately (it is not
    observed, matching MuJoCo's convention of excluding the root x).
    """

    def __init__(self, config: BodyConfig):
        self.config = config
        self._w = config.weights()
        self.reset(np.random.default_rng(0))

    # ------------------------------------------------------------- lifecycle

    def reset(self, rng: np.random.Generator, pitch0: float = 0.0) -> None:
        c = self.config
        n = c.n_joints
        self.q = rng.uniform(-0.05, 0.05, size=n)
        self.qd = np.zeros(n)
        self.pitch = pitch0 + rng.uniform(-0.03, 0.03)
        self.pitch_dot = 0.0
        self.v = 0.0
        self.x = 0.0
        self._update_height()

    def _update_height(self) -> None:
        c = self.config
        crouch = float(np.mean(1.0 - np.cos(self.q))) if c.n_joints else 0.0
        self.z = c.z_rest - c.height_sag * (1.0 - np.cos(self.pitch)) - c.crouch_sag * crouch

    # ------------------------------------------------------------- dynamics

    def step(self, action: np.ndarray, rng: np.random.Generator | None = None) -> None:
        c = self.config
        a = np.clip(np.asarray(action, dtype=np.float64), -1.0, 1.0)
        if a.shape != (c.n_joints,):
            raise ValueError(f"action must have shape ({c.n_joints},), got {a.shape}")

        qdd = c.torque_gain * a - c.joint_damping * self.qd - c.joint_stiffness * self.q
        self.qd = self.qd + c.dt * qdd
        self.q = self.q + c.dt * self.qd

        # Thrust: symmetric torque drives the gait; over-extended joints
        # (large |q|) lose leverage, so pushing harder is not always faster.
        efficiency = float(np.clip(np.mean(np.cos(self.q)), 0.0, 1.0))
        thrust = c.drive_gain * float(np.mean(a)) * efficiency
        self.v = self.v + c.dt * (thrust - c.drag * self.v)
        self.x = self.x + c.dt * self.v

        noise = float(rng.standard_normal()) * c.pitch_noise if rng is not None else 0.0
        pitch_acc = (
            c.imbalance_gain * float(self._w @ a)
            - c.pitch_stiffness * self.pitch
            + c.tip_gain * np.sin(self.pitch)
            - c.pitch_damping * self.pitch_dot
            + c.speed_coupling * self.v * self.pitch
            + noise
        )
        self.pitch_dot = self.pitch_dot + c.dt * pitch_acc
        self.pitch = self.pitch + c.dt * self.pitch_dot
        self._update_height()

    # ----------------------------------------------------------- observation

    @property
    def healthy(self) -> bool:
        c = self.config
        return self.z >= c.z_min and abs(self.pitch) <= c.pitch_max

    def core_state(self) -> np.ndarray:
        return np.concatenate(
            ([self.z, self.pitch], self.q, [self.v, self.pitch_dot], self.qd)
        )

    @property
    def core_dim(self) -> int:
        return 4 + 2 * self.config.n_joints
