"""Observation/action spaces with a Gym-compatible surface."""

from __future__ import annotations

import numpy as np

__all__ = ["Space", "Box", "Discrete"]


class Space:
    def contains(self, value) -> bool:
        raise NotImplementedError

    def sample(self, rng: np.random.Generator):
        raise NotImplementedError


class Box(Space):
    """Continuous box ``low <= x <= high`` with a fixed shape."""

    def __init__(self, low, high, shape: tuple[int, ...] | None = None):
        if shape is None:
            low_arr = np.asarray(low, dtype=np.float64)
            shape = low_arr.shape
        self.shape = tuple(shape)
        self.low = np.broadcast_to(np.asarray(low, dtype=np.float64), self.shape).copy()
        self.high = np.broadcast_to(np.asarray(high, dtype=np.float64), self.shape).copy()
        if np.any(self.low > self.high):
            raise ValueError("Box requires low <= high elementwise")

    def contains(self, value) -> bool:
        value = np.asarray(value, dtype=np.float64)
        return value.shape == self.shape and bool(
            np.all(value >= self.low - 1e-9) and np.all(value <= self.high + 1e-9)
        )

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        bounded = np.isfinite(self.low) & np.isfinite(self.high)
        out = np.where(
            bounded,
            rng.uniform(np.where(bounded, self.low, 0.0), np.where(bounded, self.high, 1.0)),
            rng.standard_normal(self.shape),
        )
        return out

    def clip(self, value) -> np.ndarray:
        return np.clip(np.asarray(value, dtype=np.float64), self.low, self.high)

    def __repr__(self) -> str:
        return f"Box(shape={self.shape})"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Box)
            and self.shape == other.shape
            and np.array_equal(self.low, other.low)
            and np.array_equal(self.high, other.high)
        )


class Discrete(Space):
    """Integer actions ``0 .. n-1``."""

    def __init__(self, n: int):
        if n <= 0:
            raise ValueError("Discrete space needs n >= 1")
        self.n = int(n)
        self.shape = ()

    def contains(self, value) -> bool:
        try:
            ivalue = int(value)
        except (TypeError, ValueError):
            return False
        return 0 <= ivalue < self.n

    def sample(self, rng: np.random.Generator) -> int:
        return int(rng.integers(self.n))

    def __repr__(self) -> str:
        return f"Discrete({self.n})"

    def __eq__(self, other) -> bool:
        return isinstance(other, Discrete) and self.n == other.n
