"""YouShallNotPass: a runner (victim) must cross the finish line; the
blocker (adversary) wins if it does not.

Mirrors Bansal et al.'s MuJoCo game at planar-body fidelity: the two
agents start facing each other, the runner is slightly faster, and the
blocker can only stop it by physically intercepting it and knocking its
balance down (or forcing a timeout).
"""

from __future__ import annotations

import numpy as np

from ..spaces import Box
from .bodies import PlanarBody, resolve_contact
from .core import TwoPlayerEnv

__all__ = ["YouShallNotPassEnv"]


class YouShallNotPassEnv(TwoPlayerEnv):
    """Runner-vs-blocker interception game."""

    bounds = (-6.0, 6.0, -3.0, 3.0)
    finish_x = -4.5
    max_steps = 200
    damage_gain = 0.28

    def __init__(self):
        super().__init__()
        # Runner is faster but more fragile than the blocker: blocking
        # requires anticipating its path, not chasing it.
        self.runner = PlanarBody(max_force=1.3, brace_effect=0.35)
        self.blocker = PlanarBody(max_force=0.95, brace_effect=0.75)
        obs_dim = 14
        self.victim_observation_space = Box(-np.inf, np.inf, (obs_dim,))
        self.adversary_observation_space = Box(-np.inf, np.inf, (obs_dim,))
        self.victim_action_space = Box(-1.0, 1.0, (3,))
        self.adversary_action_space = Box(-1.0, 1.0, (3,))
        self._steps = 0

    # ---------------------------------------------------------------- helpers

    def _obs_for(self, me: PlanarBody, other: PlanarBody) -> np.ndarray:
        return np.concatenate([me.state(), other.state(), other.position - me.position])

    def _observations(self) -> tuple[np.ndarray, np.ndarray]:
        return self._obs_for(self.runner, self.blocker), self._obs_for(self.blocker, self.runner)

    # ------------------------------------------------------------------- API

    def _reset(self) -> tuple[np.ndarray, np.ndarray]:
        self.runner.reset(np.array([4.0, self.np_random.uniform(-1.0, 1.0)]))
        self.blocker.reset(np.array([0.0, self.np_random.uniform(-1.0, 1.0)]))
        self._steps = 0
        return self._observations()

    def step(self, victim_action, adversary_action):
        self.runner.apply_action(victim_action)
        self.blocker.apply_action(adversary_action)
        self.runner.integrate(self.bounds)
        self.blocker.integrate(self.bounds)
        contact = resolve_contact(self.runner, self.blocker, damage_gain=self.damage_gain)
        self._steps += 1

        victim_win = (not self.runner.fallen) and self.runner.position[0] <= self.finish_x
        runner_out = self.runner.fallen
        timeout = self._steps >= self.max_steps
        done = victim_win or runner_out or timeout
        adversary_win = done and not victim_win

        # Victim's private shaped reward: progress toward the line + outcome.
        progress = -self.runner.velocity[0] * self.runner.dt
        r_v = progress
        if victim_win:
            r_v += 5.0
        elif done:
            r_v -= 5.0
        r_a = -r_v  # zero-sum shaped counterpart (used only by white-box tooling)

        info = {
            "victim_win": victim_win,
            "adversary_win": adversary_win,
            "contact": contact,
            "steps": self._steps,
            "victim_state": self.runner.state(),
            "adversary_state": self.blocker.state(),
        }
        return self._observations(), (r_v, r_a), done, info
