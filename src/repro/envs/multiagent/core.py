"""Two-player zero-sum game interface.

A :class:`TwoPlayerEnv` steps both agents simultaneously and reports a
zero-sum outcome.  ``info`` carries ``victim_win`` / ``adversary_win``
flags plus compact ``victim_state`` / ``adversary_state`` vectors used by
the multi-agent IMAP regularizers' projection operators Π_Z (Eq. 7/9).
"""

from __future__ import annotations

import numpy as np

from ..spaces import Space

__all__ = ["TwoPlayerEnv"]


class TwoPlayerEnv:
    """Base class for simultaneous-move two-player zero-sum games."""

    victim_observation_space: Space
    adversary_observation_space: Space
    victim_action_space: Space
    adversary_action_space: Space
    max_steps: int

    def __init__(self):
        self.np_random = np.random.default_rng()

    def seed(self, seed: int | None) -> None:
        self.np_random = np.random.default_rng(seed)

    def reset(self, seed: int | None = None) -> tuple[np.ndarray, np.ndarray]:
        """Returns ``(victim_obs, adversary_obs)``."""
        if seed is not None:
            self.seed(seed)
        return self._reset()

    def _reset(self) -> tuple[np.ndarray, np.ndarray]:
        raise NotImplementedError

    def step(self, victim_action, adversary_action):
        """Returns ``(victim_obs, adversary_obs), (r_v, r_a), done, info``.

        Rewards are the *shaped* per-player signals used when training the
        victim; the black-box adversary must rely on ``info`` win flags.
        """
        raise NotImplementedError
