"""Planar humanoid-proxy bodies for the competitive games.

Each body is a disc with position, velocity, and a *balance* scalar.
Collisions shove both bodies apart and drain balance proportionally to
impact speed; a body whose balance reaches zero falls and stays down for
the rest of the episode (it stops acting and stops blocking), which is
how "making the victim trip" is expressed in this substrate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PlanarBody", "resolve_contact"]


@dataclass
class PlanarBody:
    """A disc body with balance dynamics."""

    radius: float = 0.4
    max_force: float = 1.0
    drag: float = 1.6
    dt: float = 0.1
    recover_rate: float = 0.02
    brace_effect: float = 0.6  # how much bracing reduces knockdown damage

    def __post_init__(self):
        self.position = np.zeros(2)
        self.velocity = np.zeros(2)
        self.balance = 1.0
        self.brace = 0.0
        self.fallen = False

    def reset(self, position: np.ndarray) -> None:
        self.position = np.asarray(position, dtype=np.float64).copy()
        self.velocity = np.zeros(2)
        self.balance = 1.0
        self.brace = 0.0
        self.fallen = False

    def apply_action(self, action: np.ndarray) -> None:
        """``action = [fx, fy, brace]`` in [-1, 1]; fallen bodies cannot act."""
        if self.fallen:
            self.brace = 0.0
            return
        action = np.clip(np.asarray(action, dtype=np.float64), -1.0, 1.0)
        self.brace = 0.5 * (action[2] + 1.0)  # map to [0, 1]
        # Bracing trades speed for stability.
        force = self.max_force * (1.0 - 0.5 * self.brace) * action[:2]
        self.velocity = self.velocity + self.dt * (4.0 * force - self.drag * self.velocity)

    def integrate(self, bounds: tuple[float, float, float, float]) -> None:
        if self.fallen:
            self.velocity *= 0.5  # slides to a stop
        self.position = self.position + self.dt * self.velocity
        xmin, xmax, ymin, ymax = bounds
        for axis, (low, high) in enumerate(((xmin, xmax), (ymin, ymax))):
            if self.position[axis] < low or self.position[axis] > high:
                self.velocity[axis] = 0.0  # hit the arena wall
        self.position = np.clip(self.position, [xmin, ymin], [xmax, ymax])
        if not self.fallen:
            self.balance = min(1.0, self.balance + self.recover_rate)

    def take_impact(self, impact_speed: float, damage_gain: float) -> None:
        if self.fallen:
            return
        damage = damage_gain * impact_speed * (1.0 - self.brace_effect * self.brace)
        self.balance -= max(0.0, damage)
        if self.balance <= 0.0:
            self.balance = 0.0
            self.fallen = True

    @property
    def effective_radius(self) -> float:
        # A fallen body is low to the ground and easy to step around.
        return self.radius * (0.45 if self.fallen else 1.0)

    def state(self) -> np.ndarray:
        return np.concatenate(
            [self.position, self.velocity, [self.balance, 1.0 if self.fallen else 0.0]]
        )


def resolve_contact(a: PlanarBody, b: PlanarBody, damage_gain: float = 0.25,
                    restitution: float = 0.6) -> bool:
    """Resolve a collision between two bodies.  Returns True on contact.

    Both bodies are pushed apart along the contact normal; each takes
    balance damage proportional to the closing speed.  A fallen body
    neither pushes nor takes further damage.
    """
    delta = b.position - a.position
    distance = float(np.linalg.norm(delta))
    min_dist = a.effective_radius + b.effective_radius
    if distance >= min_dist or distance < 1e-9:
        return False
    normal = delta / distance
    closing = float((a.velocity - b.velocity) @ normal)
    if closing > 0.0:
        # The faster body (pre-impact) is the more off-balance one:
        # charging into a braced, planted opponent hurts the charger most.
        # This is what makes naive ramming a poor blocking strategy.
        speed_a = float(np.linalg.norm(a.velocity))
        speed_b = float(np.linalg.norm(b.velocity))
        total = speed_a + speed_b + 1e-6
        # Exchange momentum along the normal (equal masses).
        impulse = restitution * closing
        if not a.fallen:
            a.velocity = a.velocity - impulse * normal
        if not b.fallen:
            b.velocity = b.velocity + impulse * normal
        a.take_impact(closing * 2.0 * speed_a / total, damage_gain)
        b.take_impact(closing * 2.0 * speed_b / total, damage_gain)
    # positional de-penetration, split between the two bodies
    overlap = min_dist - distance
    a.position = a.position - 0.5 * overlap * normal
    b.position = b.position + 0.5 * overlap * normal
    return True
