"""Two-player zero-sum competitive games (planar proxies of Bansal et al.)."""

from .bodies import PlanarBody, resolve_contact
from .core import TwoPlayerEnv
from .kick_and_defend import KickAndDefendEnv
from .you_shall_not_pass import YouShallNotPassEnv

__all__ = [
    "PlanarBody",
    "resolve_contact",
    "TwoPlayerEnv",
    "YouShallNotPassEnv",
    "KickAndDefendEnv",
]
