"""KickAndDefend: a penalty shootout between a kicker (victim) and a
goalie (adversary).

The kicker runs to the ball and shoots at the gate; the goalie is
confined to a box in front of the gate (as in the paper) and wins by
intercepting the ball or running out the clock.
"""

from __future__ import annotations

import numpy as np

from ..spaces import Box
from .bodies import PlanarBody
from .core import TwoPlayerEnv

__all__ = ["KickAndDefendEnv"]


class KickAndDefendEnv(TwoPlayerEnv):
    bounds = (-6.0, 6.0, -3.0, 3.0)
    gate_x = 5.0
    gate_half_width = 1.2
    goalie_box = (3.2, 4.6, -1.8, 1.8)  # xmin, xmax, ymin, ymax
    kick_radius = 0.55
    kick_speed = 3.2
    ball_drag = 0.12
    block_radius = 0.55
    max_steps = 150

    def __init__(self):
        super().__init__()
        self.kicker = PlanarBody(max_force=1.0)
        self.goalie = PlanarBody(max_force=1.0)
        # obs: me(6) opp(6) ball pos(2) ball vel(2) gate delta(1) -> 17
        self.victim_observation_space = Box(-np.inf, np.inf, (17,))
        self.adversary_observation_space = Box(-np.inf, np.inf, (17,))
        # kicker: [fx, fy, aim_y]; goalie: [fx, fy, brace]
        self.victim_action_space = Box(-1.0, 1.0, (3,))
        self.adversary_action_space = Box(-1.0, 1.0, (3,))
        self.ball_position = np.zeros(2)
        self.ball_velocity = np.zeros(2)
        self._kicked = False
        self._steps = 0

    # ---------------------------------------------------------------- helpers

    def _obs_for(self, me: PlanarBody, other: PlanarBody) -> np.ndarray:
        return np.concatenate(
            [
                me.state(),
                other.state(),
                self.ball_position,
                self.ball_velocity,
                [self.gate_x - self.ball_position[0]],
            ]
        )

    def _observations(self) -> tuple[np.ndarray, np.ndarray]:
        return self._obs_for(self.kicker, self.goalie), self._obs_for(self.goalie, self.kicker)

    # ------------------------------------------------------------------- API

    def _reset(self) -> tuple[np.ndarray, np.ndarray]:
        self.kicker.reset(np.array([-4.0, self.np_random.uniform(-0.8, 0.8)]))
        gx = self.np_random.uniform(self.goalie_box[0], self.goalie_box[1])
        gy = self.np_random.uniform(-0.8, 0.8)
        self.goalie.reset(np.array([gx, gy]))
        self.ball_position = np.array([-3.0, self.np_random.uniform(-0.6, 0.6)])
        self.ball_velocity = np.zeros(2)
        self._kicked = False
        self._steps = 0
        return self._observations()

    def _clamp_goalie(self) -> None:
        xmin, xmax, ymin, ymax = self.goalie_box
        pos = self.goalie.position
        if pos[0] < xmin or pos[0] > xmax:
            self.goalie.velocity[0] = 0.0
        if pos[1] < ymin or pos[1] > ymax:
            self.goalie.velocity[1] = 0.0
        self.goalie.position = np.clip(pos, [xmin, ymin], [xmax, ymax])

    def step(self, victim_action, adversary_action):
        victim_action = np.clip(np.asarray(victim_action, dtype=np.float64), -1.0, 1.0)
        self.kicker.apply_action(np.array([victim_action[0], victim_action[1], -1.0]))
        self.goalie.apply_action(adversary_action)
        self.kicker.integrate(self.bounds)
        self.goalie.integrate(self.bounds)
        self._clamp_goalie()

        # Kicking: first time the kicker touches the ball it shoots toward
        # the aimed point on the gate line.
        if not self._kicked and (
            float(np.linalg.norm(self.kicker.position - self.ball_position)) <= self.kick_radius
        ):
            aim_y = float(victim_action[2]) * self.gate_half_width * 1.2
            direction = np.array([self.gate_x, aim_y]) - self.ball_position
            direction /= max(float(np.linalg.norm(direction)), 1e-9)
            self.ball_velocity = self.kick_speed * direction
            self._kicked = True

        self.ball_velocity *= 1.0 - self.ball_drag * self.kicker.dt
        self.ball_position = self.ball_position + self.kicker.dt * self.ball_velocity

        blocked = (
            self._kicked
            and float(np.linalg.norm(self.goalie.position - self.ball_position)) <= self.block_radius
        )
        if blocked:
            self.ball_velocity = np.zeros(2)

        self._steps += 1
        goal = (
            self.ball_position[0] >= self.gate_x
            and abs(self.ball_position[1]) <= self.gate_half_width
        )
        out = self.ball_position[0] >= self.gate_x and not goal
        stalled = self._kicked and float(np.linalg.norm(self.ball_velocity)) < 0.05
        timeout = self._steps >= self.max_steps
        done = goal or out or blocked or stalled or timeout
        victim_win = bool(goal)
        adversary_win = done and not victim_win

        # Victim's private shaped reward: approach ball, then ball-to-gate progress.
        if not self._kicked:
            r_v = -0.05 * float(np.linalg.norm(self.kicker.position - self.ball_position))
        else:
            r_v = 0.05 * float(self.ball_velocity[0])
        if victim_win:
            r_v += 5.0
        elif done:
            r_v -= 5.0
        r_a = -r_v

        info = {
            "victim_win": victim_win,
            "adversary_win": adversary_win,
            "kicked": self._kicked,
            "blocked": blocked,
            "steps": self._steps,
            "victim_state": np.concatenate([self.kicker.state(), self.ball_position]),
            "adversary_state": self.goalie.state(),
        }
        return self._observations(), (r_v, r_a), done, info
