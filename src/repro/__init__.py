"""repro — reproduction of "Toward Evaluating Robustness of Reinforcement
Learning with Adversarial Policy" (IMAP, DSN 2024).

Public entry points:

* :mod:`repro.envs`     — environment suite (``repro.envs.make``)
* :mod:`repro.rl`       — PPO and rollout machinery
* :mod:`repro.attacks`  — SA-RL, AP-MARL, Random, and the IMAP family
* :mod:`repro.defenses` — victim training with robustness defenses
* :mod:`repro.zoo`      — cached victim checkpoints
* :mod:`repro.eval`     — attack-evaluation harness and table renderers
* :mod:`repro.experiments` — per-table/figure experiment runners
* :mod:`repro.runtime`  — vectorized envs + fault-contained scheduler
* :mod:`repro.telemetry` — run manifests, metrics, JSONL event logs
* :mod:`repro.faultinject` — deterministic chaos-testing harness
"""

__version__ = "1.0.0"
