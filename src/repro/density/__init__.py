"""State-density estimation: KNN estimators and the D/B replay buffers."""

from .buffers import StateBuffer, UnionStateBuffer
from .knn import KnnDensityEstimator, knn_distances
from .parzen import ParzenDensityEstimator

__all__ = ["StateBuffer", "UnionStateBuffer", "KnnDensityEstimator",
           "ParzenDensityEstimator", "knn_distances"]
