"""State-density estimation: KNN estimators, the D/B replay buffers,
and the amortized incremental density index."""

from .buffers import ExtendDelta, StateBuffer, UnionStateBuffer
from .index import IncrementalKnnIndex
from .knn import KnnDensityEstimator, knn_distances
from .parzen import ParzenDensityEstimator

__all__ = ["StateBuffer", "UnionStateBuffer", "ExtendDelta",
           "IncrementalKnnIndex", "KnnDensityEstimator",
           "ParzenDensityEstimator", "knn_distances"]
