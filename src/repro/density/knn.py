"""K-nearest-neighbour state-density estimation (Section 5.2 of the paper).

The paper estimates the adversarial state density as
``d(s) ≈ 1 / ||s − s*_D||`` where ``s*_D`` is the K-th nearest state in a
replay buffer.  We back it with a cKDTree; distances come back clipped
away from zero so downstream ``log``/division are safe.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

__all__ = ["knn_distances", "KnnDensityEstimator"]

_MIN_DISTANCE = 1e-8


def knn_distances(queries: np.ndarray, references: np.ndarray, k: int = 5,
                  exclude_self: bool = False) -> np.ndarray:
    """Distance from each query to its k-th nearest reference point.

    ``exclude_self=True`` skips the zero-distance match that appears when
    the queries are themselves contained in ``references``.  On reference
    sets smaller than ``k + 1`` the distance clamps to the farthest
    non-self neighbour; a singleton set (whose only neighbour is the
    query itself) returns the neutral distance 1.0 — matching the
    empty-set convention — instead of the clipped zero self-distance,
    which would otherwise explode into a ~1e8 density bonus on tiny
    early-iteration buffers.
    """
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    references = np.atleast_2d(np.asarray(references, dtype=np.float64))
    if len(references) == 0 or (exclude_self and len(references) == 1):
        return np.full(len(queries), 1.0)
    kth = k + 1 if exclude_self else k
    kth = min(kth, len(references))
    tree = cKDTree(references)
    dists, _ = tree.query(queries, k=kth)
    if kth == 1:
        dists = dists[:, None] if dists.ndim == 1 else dists
    column = dists[:, -1] if dists.ndim == 2 else dists
    return np.maximum(column, _MIN_DISTANCE)


class KnnDensityEstimator:
    """Density estimate over a fixed reference set: ``d(s) = 1 / dist_k(s)``."""

    def __init__(self, references: np.ndarray, k: int = 5):
        self.references = np.atleast_2d(np.asarray(references, dtype=np.float64))
        self.k = k
        self._tree = cKDTree(self.references) if len(self.references) else None

    def distance(self, queries: np.ndarray, exclude_self: bool = False) -> np.ndarray:
        if self._tree is None or (exclude_self and len(self.references) == 1):
            # empty set, or a singleton whose only neighbour is the query
            # itself: neutral distance (see knn_distances)
            return np.full(len(np.atleast_2d(queries)), 1.0)
        kth = min(self.k + (1 if exclude_self else 0), len(self.references))
        dists, _ = self._tree.query(np.atleast_2d(queries), k=kth)
        if dists.ndim == 1:
            dists = dists[:, None]
        return np.maximum(dists[:, -1], _MIN_DISTANCE)

    def density(self, queries: np.ndarray, exclude_self: bool = False) -> np.ndarray:
        return 1.0 / self.distance(queries, exclude_self=exclude_self)

    def log_density(self, queries: np.ndarray, exclude_self: bool = False) -> np.ndarray:
        return -np.log(self.distance(queries, exclude_self=exclude_self))
