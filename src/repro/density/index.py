"""Incremental KNN density index: amortized cKDTree maintenance.

The IMAP regularizers (Section 5.2) query k-th-neighbour distances
against two reference sets every iteration: the fresh buffer ``D`` and
the union buffer ``B`` (up to ``union_buffer_capacity`` states).  The
original estimator rebuilt a :class:`~scipy.spatial.cKDTree` over the
*entire* reference set on every call — an O(n log n) rebuild per
iteration dominated by ``B`` — even though ``B`` only ever grows by one
rollout of states between queries.

:class:`IncrementalKnnIndex` amortizes that maintenance:

* Inserted points land in a small **pending buffer**; the main tree is
  rebuilt over the full set only when the pending size exceeds
  ``rebuild_fraction`` of the indexed set, so rebuilds follow a
  geometric schedule and their amortized cost per insert is O(log n).
* Queries consult the main tree and scan the pending buffer, then merge
  the two candidate lists.  The pending scan runs through a throwaway
  ``cKDTree`` over the pending block (rebuilt per insert batch) rather
  than a NumPy brute-force loop: scipy's distance kernel and vectorized
  NumPy reductions disagree in the last ulp for dim >= 8, and the index
  promises **bit-identical** results to the from-scratch estimator.
* Queries are chunked (``query_chunk`` rows at a time) so a 50k-point
  query against a 50k-point set never materializes a quadratic
  distance matrix.
* The main tree is built over a **spatially pre-ordered** copy of the
  points: each build composes the previous tree's leaf permutation, so
  tree leaves index into near-contiguous memory and queries stop
  cache-missing across a reservoir-shuffled buffer.  Queries are
  likewise sorted along their widest axis before the tree walk and the
  results unsorted afterwards.  Both are pure layout changes — the
  point *set* and every pairwise distance are untouched, so results
  stay bit-identical (the equivalence property test covers them).

Exact-equivalence contract (property-tested in
``tests/test_density_index.py``): for any interleaving of ``add`` /
``reset`` / ``query`` calls, ``query(q, k, exclude_self)`` returns
bit-identical distances to
``KnnDensityEstimator(all_points, k).distance(q, exclude_self)``.
This holds because a cKDTree reports the same float64 distance for a
given (query, point) pair regardless of tree shape, so merging the
k smallest candidates from two partitions of the reference set yields
exactly the k smallest distances over their union.

Small-buffer semantics match :mod:`repro.density.knn` after the
PR-5 fix: ``exclude_self`` on a singleton reference set returns the
neutral distance 1.0 (the only neighbour is the query itself), and
with fewer than ``k`` non-self neighbours the distance clamps to the
farthest non-self neighbour.

Telemetry: ``density.index.rebuilds``, ``density.index.pending_hits``
and ``density.index.query_chunks`` counters are threaded through the
ambient :func:`~repro.telemetry.current_telemetry` registry whenever
one is installed; the same counts are kept locally (and checkpointed)
so resumed runs report identical totals.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from ..telemetry import current_telemetry
from .knn import _MIN_DISTANCE

__all__ = ["IncrementalKnnIndex"]


def _inc(name: str, amount: int = 1) -> None:
    telemetry = current_telemetry()
    if telemetry is not None:
        telemetry.metrics.counter(f"density.index.{name}").inc(amount)


class IncrementalKnnIndex:
    """Amortized-rebuild KNN index over a growing point set."""

    def __init__(self, rebuild_fraction: float = 0.1, query_chunk: int = 4096):
        if rebuild_fraction <= 0.0:
            raise ValueError(f"rebuild_fraction must be positive, got {rebuild_fraction}")
        if query_chunk < 1:
            raise ValueError(f"query_chunk must be >= 1, got {query_chunk}")
        self.rebuild_fraction = rebuild_fraction
        self.query_chunk = query_chunk
        self._indexed: np.ndarray | None = None
        self._tree: cKDTree | None = None
        self._pending: list[np.ndarray] = []
        self._n_pending = 0
        self._pending_tree: cKDTree | None = None
        # maps caller row order -> spatial (leaf) order of the last build;
        # reused to pre-order the next build's input for cache locality
        self._spatial_perm: np.ndarray | None = None
        self.rebuilds = 0
        self.pending_hits = 0
        self.query_chunks = 0

    @classmethod
    def over(cls, points: np.ndarray, query_chunk: int = 4096) -> "IncrementalKnnIndex":
        """A fully indexed (no pending) throwaway index over ``points``."""
        index = cls(query_chunk=query_chunk)
        index.reset(points)
        return index

    # -------------------------------------------------------------- contents

    @property
    def n_indexed(self) -> int:
        return 0 if self._indexed is None else len(self._indexed)

    @property
    def n_pending(self) -> int:
        return self._n_pending

    def __len__(self) -> int:
        return self.n_indexed + self._n_pending

    @property
    def points(self) -> np.ndarray:
        """Every point the index covers (indexed first, then pending)."""
        blocks = ([] if self._indexed is None else [self._indexed]) + self._pending
        if not blocks:
            return np.zeros((0, 0))
        return np.concatenate(blocks) if len(blocks) > 1 else blocks[0]

    # --------------------------------------------------------------- updates

    def add(self, points: np.ndarray) -> None:
        """Insert points; rebuilds the main tree only past the threshold."""
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if points.size == 0:
            return
        self._pending.append(points.copy())
        self._n_pending += len(points)
        self._pending_tree = None
        if self._tree is None or self._n_pending > self.rebuild_fraction * self.n_indexed:
            self._rebuild()

    def reset(self, points: np.ndarray) -> None:
        """Replace the whole contents (reservoir overwrote indexed rows)."""
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        self._pending = []
        self._n_pending = 0
        self._pending_tree = None
        if points.size == 0:
            self._indexed = None
            self._tree = None
            return
        # Pre-order by the previous build's leaf permutation: under
        # reservoir replacement most rows persist between resets, so the
        # stale permutation still clusters neighbouring points into
        # contiguous memory (the gather doubles as the defensive copy).
        perm = self._spatial_perm
        if perm is not None and len(perm) == len(points):
            pts = points[perm]
        else:
            perm = None
            pts = points.copy()
        self._finish_build(pts, perm)

    def _rebuild(self) -> None:
        blocks = ([] if self._indexed is None else [self._indexed]) + self._pending
        points = np.concatenate(blocks) if len(blocks) > 1 else blocks[0]
        self._pending = []
        self._n_pending = 0
        self._pending_tree = None
        # the indexed prefix already sits in the previous build's leaf
        # order and the pending tail is trajectory-coherent: build directly
        self._finish_build(points, None)

    def _finish_build(self, pts: np.ndarray, perm: np.ndarray | None) -> None:
        """Install ``pts`` (an owned array) as the main tree's backing and
        record the composed caller-order -> leaf-order permutation."""
        self._indexed = pts
        self._tree = cKDTree(pts)
        leaf = np.asarray(self._tree.indices)
        self._spatial_perm = perm[leaf] if perm is not None else leaf.copy()
        self.rebuilds += 1
        _inc("rebuilds")

    # --------------------------------------------------------------- queries

    def query(self, queries: np.ndarray, k: int, exclude_self: bool = False) -> np.ndarray:
        """Distance from each query to its k-th nearest indexed point.

        Bit-identical to ``KnnDensityEstimator(self.points, k)
        .distance(queries, exclude_self)`` — see the module docstring
        for the contract and the small-buffer semantics.
        """
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        total = len(self)
        if total == 0 or (exclude_self and total == 1):
            return np.full(len(queries), 1.0)
        kth = min(k + 1, total) if exclude_self else min(k, total)
        if self._n_pending:
            self.pending_hits += len(queries)
            _inc("pending_hits", len(queries))
        # Walk the tree in spatial order: sorting the queries along their
        # widest axis keeps consecutive tree descents on the same cache
        # lines.  Per-query results are permuted back below, so the output
        # is bit-identical to querying in caller order.
        order = None
        if len(queries) > 1 and queries.shape[1] > 0:
            axis = int(np.argmax(np.ptp(queries, axis=0)))
            order = np.argsort(queries[:, axis], kind="stable")
            queries = queries[order]
        out = np.empty(len(queries))
        n_chunks = 0
        for start in range(0, len(queries), self.query_chunk):
            block = queries[start:start + self.query_chunk]
            out[start:start + len(block)] = self._query_block(block, kth)
            n_chunks += 1
        self.query_chunks += n_chunks
        _inc("query_chunks", n_chunks)
        if order is not None:
            unsorted = np.empty_like(out)
            unsorted[order] = out
            out = unsorted
        return np.maximum(out, _MIN_DISTANCE)

    def _query_block(self, block: np.ndarray, kth: int) -> np.ndarray:
        candidates = []
        if self._tree is not None:
            candidates.append(self._tree_distances(self._tree, block,
                                                   min(kth, self.n_indexed)))
        if self._n_pending:
            if self._pending_tree is None:
                pending = (self._pending[0] if len(self._pending) == 1
                           else np.concatenate(self._pending))
                self._pending = [pending]
                self._pending_tree = cKDTree(pending)
            candidates.append(self._tree_distances(self._pending_tree, block,
                                                   min(kth, self._n_pending)))
        if len(candidates) == 1:
            return candidates[0][:, kth - 1]
        merged = np.sort(np.concatenate(candidates, axis=1), axis=1)
        return merged[:, kth - 1]

    @staticmethod
    def _tree_distances(tree: cKDTree, block: np.ndarray, k: int) -> np.ndarray:
        dists, _ = tree.query(block, k=k)
        if dists.ndim == 1:
            dists = dists[:, None]
        return dists

    # ------------------------------------------------------------ checkpoint

    def state_dict(self) -> dict:
        """Resumable snapshot preserving the indexed/pending partition, so
        a resumed run reproduces the uninterrupted run's rebuild schedule
        and telemetry counters exactly."""
        pending = (None if not self._pending
                   else (self._pending[0] if len(self._pending) == 1
                         else np.concatenate(self._pending)))
        return {
            "rebuild_fraction": self.rebuild_fraction,
            "indexed": None if self._indexed is None else self._indexed.copy(),
            "pending": None if pending is None else pending.copy(),
            "spatial_perm": (None if self._spatial_perm is None
                             else self._spatial_perm.copy()),
            "rebuilds": self.rebuilds,
            "pending_hits": self.pending_hits,
            "query_chunks": self.query_chunks,
        }

    def load_state_dict(self, state: dict) -> None:
        self.rebuild_fraction = float(state["rebuild_fraction"])
        indexed = state["indexed"]
        self._indexed = None if indexed is None else np.asarray(indexed, dtype=np.float64).copy()
        self._tree = None if self._indexed is None else cKDTree(self._indexed)
        pending = state["pending"]
        if pending is None:
            self._pending = []
            self._n_pending = 0
        else:
            pending = np.asarray(pending, dtype=np.float64).copy()
            self._pending = [pending]
            self._n_pending = len(pending)
        self._pending_tree = None
        perm = state.get("spatial_perm")
        self._spatial_perm = None if perm is None else np.asarray(perm).copy()
        self.rebuilds = int(state["rebuilds"])
        self.pending_hits = int(state["pending_hits"])
        self.query_chunks = int(state["query_chunks"])
