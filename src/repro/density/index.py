"""Incremental KNN density index: amortized cKDTree maintenance.

The IMAP regularizers (Section 5.2) query k-th-neighbour distances
against two reference sets every iteration: the fresh buffer ``D`` and
the union buffer ``B`` (up to ``union_buffer_capacity`` states).  The
original estimator rebuilt a :class:`~scipy.spatial.cKDTree` over the
*entire* reference set on every call — an O(n log n) rebuild per
iteration dominated by ``B`` — even though ``B`` only ever grows by one
rollout of states between queries.

:class:`IncrementalKnnIndex` amortizes that maintenance:

* Inserted points land in a small **pending buffer**; the main tree is
  rebuilt over the full set only when the pending size exceeds
  ``rebuild_fraction`` of the indexed set, so rebuilds follow a
  geometric schedule and their amortized cost per insert is O(log n).
* Queries consult the main tree and scan the pending buffer, then merge
  the two candidate lists.  The pending scan runs through a throwaway
  ``cKDTree`` over the pending block (rebuilt per insert batch) rather
  than a NumPy brute-force loop: scipy's distance kernel and vectorized
  NumPy reductions disagree in the last ulp for dim >= 8, and the index
  promises **bit-identical** results to the from-scratch estimator.
* Queries are chunked (``query_chunk`` rows at a time) so a 50k-point
  query against a 50k-point set never materializes a quadratic
  distance matrix.
* The main tree is built over a **spatially pre-ordered** copy of the
  points: each build composes the previous tree's leaf permutation, so
  tree leaves index into near-contiguous memory and queries stop
  cache-missing across a reservoir-shuffled buffer.  Queries are
  likewise sorted along their widest axis before the tree walk and the
  results unsorted afterwards.  Both are pure layout changes — the
  point *set* and every pairwise distance are untouched, so results
  stay bit-identical (the equivalence property test covers them).
* ``background=True`` moves the cKDTree *construction* off the caller's
  critical path: a rebuild or reset snapshots its input (an owned
  array, never a view into a live buffer) and kicks the build on a
  daemon thread — scipy releases the GIL during construction — while
  the caller returns immediately.  This is double buffering with a
  strictly-ordered publish: **every** public entry point
  (``add``/``reset``/``query``/``points``/``n_indexed``/
  ``state_dict``/pickling) first joins any in-flight build and installs
  its result, so the observable sequence of trees, counters, and query
  results is *identical* to synchronous mode — the build simply
  overlaps the caller's rollout collection instead of blocking its
  maintenance step.  In the steady reservoir-replacement regime the
  measured per-iteration maintenance drops from a full O(n log n)
  rebuild to the input gather.

Exact-equivalence contract (property-tested in
``tests/test_density_index.py``): for any interleaving of ``add`` /
``reset`` / ``query`` calls, ``query(q, k, exclude_self)`` returns
bit-identical distances to
``KnnDensityEstimator(all_points, k).distance(q, exclude_self)``.
This holds because a cKDTree reports the same float64 distance for a
given (query, point) pair regardless of tree shape, so merging the
k smallest candidates from two partitions of the reference set yields
exactly the k smallest distances over their union.

Small-buffer semantics match :mod:`repro.density.knn` after the
PR-5 fix: ``exclude_self`` on a singleton reference set returns the
neutral distance 1.0 (the only neighbour is the query itself), and
with fewer than ``k`` non-self neighbours the distance clamps to the
farthest non-self neighbour.

Telemetry: ``density.index.rebuilds``, ``density.index.pending_hits``
and ``density.index.query_chunks`` counters are threaded through the
ambient :func:`~repro.telemetry.current_telemetry` registry whenever
one is installed; the same counts are kept locally (and checkpointed)
so resumed runs report identical totals.
"""

from __future__ import annotations

import threading

import numpy as np
from scipy.spatial import cKDTree

from ..telemetry import current_telemetry
from .knn import _MIN_DISTANCE

__all__ = ["IncrementalKnnIndex"]


def _inc(name: str, amount: int = 1) -> None:
    telemetry = current_telemetry()
    if telemetry is not None:
        telemetry.metrics.counter(f"density.index.{name}").inc(amount)


class IncrementalKnnIndex:
    """Amortized-rebuild KNN index over a growing point set."""

    def __init__(self, rebuild_fraction: float = 0.1, query_chunk: int = 4096,
                 background: bool = False):
        if rebuild_fraction <= 0.0:
            raise ValueError(f"rebuild_fraction must be positive, got {rebuild_fraction}")
        if query_chunk < 1:
            raise ValueError(f"query_chunk must be >= 1, got {query_chunk}")
        self.rebuild_fraction = rebuild_fraction
        self.query_chunk = query_chunk
        self.background = bool(background)
        self._indexed: np.ndarray | None = None
        self._tree: cKDTree | None = None
        self._pending: list[np.ndarray] = []
        self._n_pending = 0
        self._pending_tree: cKDTree | None = None
        # maps caller row order -> spatial (leaf) order of the last build;
        # reused to pre-order the next build's input for cache locality
        self._spatial_perm: np.ndarray | None = None
        # In-flight background build (background=True only): the thread,
        # its (pts, perm) input snapshot, and a one-slot result box the
        # thread fills with the finished cKDTree.
        self._build_thread: threading.Thread | None = None
        self._build_input: tuple | None = None
        self._build_box: list = []
        self.rebuilds = 0
        self.pending_hits = 0
        self.query_chunks = 0

    @classmethod
    def over(cls, points: np.ndarray, query_chunk: int = 4096) -> "IncrementalKnnIndex":
        """A fully indexed (no pending) throwaway index over ``points``."""
        index = cls(query_chunk=query_chunk)
        index.reset(points)
        return index

    # -------------------------------------------------------------- contents

    @property
    def n_indexed(self) -> int:
        self._join_build()
        return 0 if self._indexed is None else len(self._indexed)

    @property
    def n_pending(self) -> int:
        return self._n_pending

    def __len__(self) -> int:
        return self.n_indexed + self._n_pending

    @property
    def points(self) -> np.ndarray:
        """Every point the index covers (indexed first, then pending)."""
        self._join_build()
        blocks = ([] if self._indexed is None else [self._indexed]) + self._pending
        if not blocks:
            return np.zeros((0, 0))
        return np.concatenate(blocks) if len(blocks) > 1 else blocks[0]

    # --------------------------------------------------------------- updates

    def add(self, points: np.ndarray) -> None:
        """Insert points; rebuilds the main tree only past the threshold."""
        self._join_build()
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if points.size == 0:
            return
        self._pending.append(points.copy())
        self._n_pending += len(points)
        self._pending_tree = None
        if self._tree is None or self._n_pending > self.rebuild_fraction * self.n_indexed:
            self._rebuild()

    def reset(self, points: np.ndarray) -> None:
        """Replace the whole contents (reservoir overwrote indexed rows)."""
        self._join_build()
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        self._pending = []
        self._n_pending = 0
        self._pending_tree = None
        if points.size == 0:
            self._indexed = None
            self._tree = None
            return
        # Pre-order by the previous build's leaf permutation: under
        # reservoir replacement most rows persist between resets, so the
        # stale permutation still clusters neighbouring points into
        # contiguous memory (the gather doubles as the defensive copy).
        perm = self._spatial_perm
        if perm is not None and len(perm) == len(points):
            pts = points[perm]
        else:
            perm = None
            pts = points.copy()
        self._finish_build(pts, perm)

    def _rebuild(self) -> None:
        blocks = ([] if self._indexed is None else [self._indexed]) + self._pending
        points = np.concatenate(blocks) if len(blocks) > 1 else blocks[0]
        self._pending = []
        self._n_pending = 0
        self._pending_tree = None
        # the indexed prefix already sits in the previous build's leaf
        # order and the pending tail is trajectory-coherent: build directly
        self._finish_build(points, None)

    def _finish_build(self, pts: np.ndarray, perm: np.ndarray | None) -> None:
        """Build a tree over ``pts`` (an owned array) — inline, or kicked
        onto a background thread when ``background=True``.

        The rebuild is *counted* here, at kick time, in both modes: the
        background build is semantically complete the moment it is
        scheduled (every observer joins it first), so counters and the
        checkpointed rebuild schedule stay bit-identical across modes.
        """
        self.rebuilds += 1
        _inc("rebuilds")
        if self.background:
            self._launch_build(pts, perm)
        else:
            self._install(pts, perm, cKDTree(pts))

    def _launch_build(self, pts: np.ndarray, perm: np.ndarray | None) -> None:
        box: list = []

        def build() -> None:
            box.append(cKDTree(pts))

        self._build_input = (pts, perm)
        self._build_box = box
        thread = threading.Thread(target=build, name="knn-index-rebuild",
                                  daemon=True)
        self._build_thread = thread
        thread.start()

    def _join_build(self) -> None:
        """Install the in-flight background build, if any.

        Called on entry to every public operation, so no caller can ever
        observe pre-build state after a rebuild was scheduled — the
        publish point is deterministic even though the build is not.
        """
        thread = self._build_thread
        if thread is None:
            return
        thread.join()
        pts, perm = self._build_input
        box = self._build_box
        self._build_thread = None
        self._build_input = None
        self._build_box = []
        # A fork during the build leaves the child a dead thread and an
        # empty box; rebuild inline from the snapshot — same bits.
        tree = box[0] if box else cKDTree(pts)
        self._install(pts, perm, tree)

    def _install(self, pts: np.ndarray, perm: np.ndarray | None,
                 tree: cKDTree) -> None:
        """Publish a finished build and compose the spatial permutation."""
        self._indexed = pts
        self._tree = tree
        leaf = np.asarray(tree.indices)
        self._spatial_perm = perm[leaf] if perm is not None else leaf.copy()

    # --------------------------------------------------------------- queries

    def query(self, queries: np.ndarray, k: int, exclude_self: bool = False) -> np.ndarray:
        """Distance from each query to its k-th nearest indexed point.

        Bit-identical to ``KnnDensityEstimator(self.points, k)
        .distance(queries, exclude_self)`` — see the module docstring
        for the contract and the small-buffer semantics.
        """
        self._join_build()
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        total = len(self)
        if total == 0 or (exclude_self and total == 1):
            return np.full(len(queries), 1.0)
        kth = min(k + 1, total) if exclude_self else min(k, total)
        if self._n_pending:
            self.pending_hits += len(queries)
            _inc("pending_hits", len(queries))
        # Walk the tree in spatial order: sorting the queries along their
        # widest axis keeps consecutive tree descents on the same cache
        # lines.  Per-query results are permuted back below, so the output
        # is bit-identical to querying in caller order.
        order = None
        if len(queries) > 1 and queries.shape[1] > 0:
            axis = int(np.argmax(np.ptp(queries, axis=0)))
            order = np.argsort(queries[:, axis], kind="stable")
            queries = queries[order]
        out = np.empty(len(queries))
        n_chunks = 0
        for start in range(0, len(queries), self.query_chunk):
            block = queries[start:start + self.query_chunk]
            out[start:start + len(block)] = self._query_block(block, kth)
            n_chunks += 1
        self.query_chunks += n_chunks
        _inc("query_chunks", n_chunks)
        if order is not None:
            unsorted = np.empty_like(out)
            unsorted[order] = out
            out = unsorted
        return np.maximum(out, _MIN_DISTANCE)

    def _query_block(self, block: np.ndarray, kth: int) -> np.ndarray:
        candidates = []
        if self._tree is not None:
            candidates.append(self._tree_distances(self._tree, block,
                                                   min(kth, self.n_indexed)))
        if self._n_pending:
            if self._pending_tree is None:
                pending = (self._pending[0] if len(self._pending) == 1
                           else np.concatenate(self._pending))
                self._pending = [pending]
                self._pending_tree = cKDTree(pending)
            candidates.append(self._tree_distances(self._pending_tree, block,
                                                   min(kth, self._n_pending)))
        if len(candidates) == 1:
            return candidates[0][:, kth - 1]
        merged = np.sort(np.concatenate(candidates, axis=1), axis=1)
        return merged[:, kth - 1]

    @staticmethod
    def _tree_distances(tree: cKDTree, block: np.ndarray, k: int) -> np.ndarray:
        dists, _ = tree.query(block, k=k)
        if dists.ndim == 1:
            dists = dists[:, None]
        return dists

    # ------------------------------------------------------------ checkpoint

    def state_dict(self) -> dict:
        """Resumable snapshot preserving the indexed/pending partition, so
        a resumed run reproduces the uninterrupted run's rebuild schedule
        and telemetry counters exactly.  A snapshot taken mid-rebuild
        joins the build first, so it is indistinguishable from one taken
        in synchronous mode."""
        self._join_build()
        pending = (None if not self._pending
                   else (self._pending[0] if len(self._pending) == 1
                         else np.concatenate(self._pending)))
        return {
            "rebuild_fraction": self.rebuild_fraction,
            "indexed": None if self._indexed is None else self._indexed.copy(),
            "pending": None if pending is None else pending.copy(),
            "spatial_perm": (None if self._spatial_perm is None
                             else self._spatial_perm.copy()),
            "rebuilds": self.rebuilds,
            "pending_hits": self.pending_hits,
            "query_chunks": self.query_chunks,
        }

    def load_state_dict(self, state: dict) -> None:
        self._join_build()  # discard any in-flight build; state wins
        self._build_thread = None
        self._build_input = None
        self._build_box = []
        self.rebuild_fraction = float(state["rebuild_fraction"])
        indexed = state["indexed"]
        self._indexed = None if indexed is None else np.asarray(indexed, dtype=np.float64).copy()
        self._tree = None if self._indexed is None else cKDTree(self._indexed)
        pending = state["pending"]
        if pending is None:
            self._pending = []
            self._n_pending = 0
        else:
            pending = np.asarray(pending, dtype=np.float64).copy()
            self._pending = [pending]
            self._n_pending = len(pending)
        self._pending_tree = None
        perm = state.get("spatial_perm")
        self._spatial_perm = None if perm is None else np.asarray(perm).copy()
        self.rebuilds = int(state["rebuilds"])
        self.pending_hits = int(state["pending_hits"])
        self.query_chunks = int(state["query_chunks"])

    def __getstate__(self):
        # Pickling (checkpoint blobs, job payloads) must not capture a
        # live thread; joining first also makes the pickled bytes
        # identical whether or not a build was in flight.
        self._join_build()
        state = self.__dict__.copy()
        state["_build_thread"] = None
        state["_build_input"] = None
        state["_build_box"] = []
        return state
