"""Gaussian-kernel (Parzen window) density estimation.

The ablation baseline for the KNN estimator (DESIGN.md "Design choices"):
``d(s) = mean_i exp(-||s - s_i||² / 2h²)``.  Parzen densities are smooth
but O(N) per query and need a bandwidth; the paper argues KNN is the
more efficient, stable nonparametric choice.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ParzenDensityEstimator"]


class ParzenDensityEstimator:
    def __init__(self, references: np.ndarray, bandwidth: float = 0.5,
                 chunk_size: int = 512):
        self.references = np.atleast_2d(np.asarray(references, dtype=np.float64))
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        self.bandwidth = bandwidth
        self.chunk_size = chunk_size

    def density(self, queries: np.ndarray) -> np.ndarray:
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        if len(self.references) == 0:
            return np.ones(len(queries))
        inv = 1.0 / (2.0 * self.bandwidth**2)
        out = np.empty(len(queries))
        for start in range(0, len(queries), self.chunk_size):
            block = queries[start:start + self.chunk_size]
            sq = ((block[:, None, :] - self.references[None, :, :]) ** 2).sum(axis=2)
            out[start:start + self.chunk_size] = np.exp(-sq * inv).mean(axis=1)
        return np.maximum(out, 1e-300)

    def log_density(self, queries: np.ndarray) -> np.ndarray:
        return np.log(self.density(queries))
