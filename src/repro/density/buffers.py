"""Replay buffers for Algorithm 1: the fresh buffer ``D`` and union ``B``.

``D`` holds only the latest iteration's states (the basis for the current
state distribution d^π); ``B`` accumulates every iteration's states (the
policy coverage ρ = Σ_i d^{π_i}).  ``B`` is capped with reservoir
sampling so long runs stay O(capacity) while remaining an unbiased
sample of the historical mixture.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["StateBuffer", "UnionStateBuffer", "ExtendDelta"]


@dataclass
class ExtendDelta:
    """What one :meth:`UnionStateBuffer.extend` call did to the contents.

    Density-index consumers use this to keep an incremental KNN index in
    sync without re-reading the whole buffer: an append-only extend maps
    to ``index.add(delta.appended)``, while any reservoir replacement
    (``mutated=True``) forces a full ``index.reset(buffer.states)``.
    Rows that overflowed but were *dropped* by the reservoir leave the
    contents untouched and do not set ``mutated``.
    """

    appended: np.ndarray   # rows written to fresh slots, in insertion order
    mutated: bool          # True when an existing row was overwritten

    @property
    def append_only(self) -> bool:
        return not self.mutated


class StateBuffer:
    """Fresh-state buffer: replaced wholesale each iteration."""

    def __init__(self):
        self._states: np.ndarray | None = None

    def replace(self, states: np.ndarray) -> None:
        states = np.atleast_2d(np.asarray(states, dtype=np.float64))
        self._states = states.copy()

    @property
    def states(self) -> np.ndarray:
        if self._states is None:
            return np.zeros((0, 0))
        return self._states

    def __len__(self) -> int:
        return 0 if self._states is None else len(self._states)


class UnionStateBuffer:
    """Reservoir-sampled union of all historical state batches."""

    def __init__(self, capacity: int = 50_000, seed: int = 0):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._rng = np.random.default_rng(seed)
        self._storage: np.ndarray | None = None
        self._fill = 0
        self._seen = 0

    def extend(self, states: np.ndarray) -> ExtendDelta:
        states = np.atleast_2d(np.asarray(states, dtype=np.float64))
        if states.size == 0:
            return ExtendDelta(appended=states.copy(), mutated=False)
        if self._storage is None:
            self._storage = np.zeros((self.capacity, states.shape[1]))
        start = self._fill
        mutated = False
        for row in states:
            self._seen += 1
            if self._fill < self.capacity:
                self._storage[self._fill] = row
                self._fill += 1
            else:
                j = int(self._rng.integers(self._seen))
                if j < self.capacity:
                    self._storage[j] = row
                    mutated = True
        return ExtendDelta(appended=self._storage[start:self._fill].copy(),
                           mutated=mutated)

    @property
    def states(self) -> np.ndarray:
        if self._storage is None:
            return np.zeros((0, 0))
        return self._storage[: self._fill]

    def __len__(self) -> int:
        return self._fill

    @property
    def total_seen(self) -> int:
        return self._seen

    def state_dict(self) -> dict:
        """Resumable snapshot: contents, reservoir counters, and RNG state."""
        return {
            "capacity": self.capacity,
            "states": self.states.copy(),
            "seen": self._seen,
            "rng": self._rng.bit_generator.state,
        }

    def load_state_dict(self, state: dict) -> None:
        if int(state["capacity"]) != self.capacity:
            raise ValueError(f"capacity mismatch: stored {state['capacity']} "
                             f"vs configured {self.capacity}")
        states = np.asarray(state["states"], dtype=np.float64)
        if states.size == 0:
            self._storage = None
            self._fill = 0
        else:
            self._storage = np.zeros((self.capacity, states.shape[1]))
            self._storage[: len(states)] = states
            self._fill = len(states)
        self._seen = int(state["seen"])
        self._rng.bit_generator.state = state["rng"]
