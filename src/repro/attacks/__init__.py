"""Adversarial-policy attacks: baselines (SA-RL, AP-MARL, Random) and IMAP."""

from . import imap
from .apmarl import train_apmarl
from .base import AdversaryRollout, AttackConfig, AttackResult
from .gradient import CriticPgdAttack, PgdAttack, StrategicallyTimedAttack
from .imap import REGULARIZER_NAMES, imap_name, train_imap
from .random_attack import RandomAttackPolicy
from .sarl import DenseRewardAdversaryWrapper, train_sarl
from .threat_models import (
    EPSILON_BUDGETS,
    OpponentEnv,
    StatePerturbationEnv,
    default_epsilon,
    project_perturbation,
)
from .trainer import AdversaryTrainer, collect_adversary_rollout

__all__ = [
    "AttackConfig", "AttackResult", "AdversaryRollout",
    "AdversaryTrainer", "collect_adversary_rollout",
    "StatePerturbationEnv", "OpponentEnv",
    "project_perturbation", "EPSILON_BUDGETS", "default_epsilon",
    "train_sarl", "DenseRewardAdversaryWrapper",
    "train_apmarl", "train_imap", "imap_name", "REGULARIZER_NAMES",
    "RandomAttackPolicy",
    "PgdAttack", "CriticPgdAttack", "StrategicallyTimedAttack",
    "imap",
]
