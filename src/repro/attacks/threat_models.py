"""Threat-model MDP adapters (Section 4 of the paper).

* :class:`StatePerturbationEnv` — single-agent threat model: the
  adversary emits an ``l_p``-bounded perturbation that is added to the
  victim's (normalized) observation before the victim acts.
* :class:`OpponentEnv` — multi-agent threat model: the adversary controls
  the opponent body in a two-player zero-sum game against a fixed victim.

Both expose a standard single-agent :class:`~repro.envs.core.Env` whose
reward is the black-box surrogate ``-r̂ = -1(victim succeeds)``.  The
victim's private shaped reward is passed through in
``info["victim_reward"]`` strictly for *evaluation* (Tables 1-3 report
the victim's episode reward), never for attack training.
"""

from __future__ import annotations

import numpy as np

from ..envs.core import Env
from ..envs.multiagent.core import TwoPlayerEnv
from ..envs.spaces import Box
from ..rl.policy import ActorCritic

__all__ = ["project_perturbation", "StatePerturbationEnv", "OpponentEnv", "EPSILON_BUDGETS"]

# Per-task perturbation budgets.  The four dense tasks use the paper's
# published ε (Table 1 row headers); the rest use a common default.
# NOTE: the paper's raw budgets (Hopper 0.075, Walker 0.05, HalfCheetah
# 0.15, Ant 0.15) are calibrated to MuJoCo victims' sensitivity.  Our
# analytic substrate produces smoother victims, so the budgets are
# rescaled (x ~6) while preserving the paper's relative ordering
# (Walker < Hopper < HalfCheetah = Ant).  See DESIGN.md "Substitutions".
EPSILON_BUDGETS: dict[str, float] = {
    "Hopper-v0": 0.6,
    "Walker2d-v0": 0.5,
    "HalfCheetah-v0": 1.0,
    "Ant-v0": 1.0,
    "Humanoid-v0": 1.0,
    "HumanoidStandup-v0": 1.0,
}
DEFAULT_EPSILON = 0.6


def default_epsilon(env_id: str) -> float:
    return EPSILON_BUDGETS.get(env_id, DEFAULT_EPSILON)


def project_perturbation(raw: np.ndarray, epsilon: float, norm: str = "linf") -> np.ndarray:
    """Project a raw adversary action into the ε-ball ``‖a‖_p ≤ ε``."""
    raw = np.asarray(raw, dtype=np.float64)
    if norm == "linf":
        return epsilon * np.clip(raw, -1.0, 1.0)
    if norm == "l2":
        scaled = epsilon * raw
        length = float(np.linalg.norm(scaled))
        if length > epsilon:
            scaled *= epsilon / length
        return scaled
    raise ValueError(f"unsupported norm {norm!r}")


class StatePerturbationEnv(Env):
    """Adversary MDP for observation attacks on a fixed single-agent victim.

    The adversary observes the victim's normalized observation and emits a
    raw action in [-1, 1]^obs_dim that is scaled/projected into the ε-ball
    and added to what the victim sees:
    ``a_v = π_v(normalize(s) + δ)``.
    """

    def __init__(self, env: Env, victim: ActorCritic, epsilon: float,
                 norm: str = "linf", victim_deterministic: bool = True,
                 seed: int = 0):
        super().__init__()
        self.env = env
        self.victim = victim
        self.epsilon = float(epsilon)
        self.norm = norm
        self.victim_deterministic = victim_deterministic
        obs_dim = env.observation_space.shape[0]
        self.observation_space = Box(-np.inf, np.inf, (obs_dim,))
        self.action_space = Box(-1.0, 1.0, (obs_dim,))
        self._victim_rng = np.random.default_rng(seed)
        self._current_normalized: np.ndarray | None = None

    def seed(self, seed: int | None) -> None:
        super().seed(seed)
        self.env.seed(seed)
        self._victim_rng = np.random.default_rng(None if seed is None else seed + 1)

    def _reset(self) -> np.ndarray:
        obs = self.env.reset()
        self._current_normalized = self.victim.normalize(obs)
        return self._current_normalized

    def step(self, action):
        if self._current_normalized is None:
            raise RuntimeError("call reset() before step()")
        delta = project_perturbation(action, self.epsilon, self.norm)
        perturbed = self._current_normalized + delta
        victim_action = self._victim_action(perturbed)
        obs, victim_reward, terminated, truncated, info = self.env.step(victim_action)
        success = bool(info.get("success", False))
        adversary_reward = -1.0 if success else 0.0
        self._current_normalized = self.victim.normalize(obs)
        info = dict(info)
        info["victim_reward"] = victim_reward
        info["perturbation"] = delta
        # Features for the IMAP KNN density estimators: the victim-space
        # state (here identical to the adversary's view).
        info["knn_victim"] = self._current_normalized.copy()
        info["knn_adversary"] = self._current_normalized.copy()
        return self._current_normalized, adversary_reward, terminated, truncated, info

    def _victim_action(self, normalized_obs: np.ndarray) -> np.ndarray:
        from .. import nn  # local import to avoid cycle at module load

        with nn.no_grad():
            dist = self.victim.distribution(normalized_obs)
            if self.victim_deterministic:
                return dist.mode()
            return dist.sample(self._victim_rng)

    def sample_initial_victim_state(self) -> np.ndarray:
        """Victim's normalized initial state (default IMAP-R target s₀^v).

        Note: this resets the wrapped environment; call it before training
        starts, not mid-episode.
        """
        return self.victim.normalize(self.env.reset())


class OpponentEnv(Env):
    """Adversary MDP for controlling the opponent in a two-player game."""

    def __init__(self, game: TwoPlayerEnv, victim: ActorCritic,
                 victim_deterministic: bool = True, seed: int = 0):
        super().__init__()
        self.game = game
        self.victim = victim
        self.victim_deterministic = victim_deterministic
        self.observation_space = game.adversary_observation_space
        self.action_space = game.adversary_action_space
        self._victim_rng = np.random.default_rng(seed)
        self._victim_obs: np.ndarray | None = None

    def seed(self, seed: int | None) -> None:
        super().seed(seed)
        self.game.seed(seed)
        self._victim_rng = np.random.default_rng(None if seed is None else seed + 1)

    def _reset(self) -> np.ndarray:
        victim_obs, adversary_obs = self.game.reset()
        self._victim_obs = victim_obs
        return adversary_obs

    def _body_state(self, info: dict, key: str) -> np.ndarray:
        """``info[key]`` validated as a 1-d float vector, or a clear error.

        ``np.asarray(info.get(key), dtype=np.float64)`` on a game that
        omits the key yields a silent 0-d NaN array (``asarray(None)``)
        that poisons the IMAP KNN density features downstream — the
        regularizer bonuses degrade to garbage without ever crashing.
        """
        value = info.get(key)
        if value is None:
            raise KeyError(
                f"OpponentEnv: {type(self.game).__name__}.step() info is "
                f"missing {key!r} — two-player games must publish per-body "
                "state vectors for the IMAP density features (see "
                "repro.envs.multiagent.core); got info keys "
                f"{sorted(info)}")
        try:
            state = np.asarray(value, dtype=np.float64)
        except (TypeError, ValueError) as exc:
            raise ValueError(
                f"OpponentEnv: info[{key!r}] is not convertible to a float "
                f"vector ({exc})") from None
        if state.ndim != 1 or state.size == 0:
            raise ValueError(
                f"OpponentEnv: info[{key!r}] must be a non-empty 1-d state "
                f"vector, got shape {state.shape}")
        return state

    def step(self, action):
        if self._victim_obs is None:
            raise RuntimeError("call reset() before step()")
        victim_action = self.victim.action(
            self._victim_obs, self._victim_rng, deterministic=self.victim_deterministic
        )
        (victim_obs, adversary_obs), (victim_reward, _), done, info = self.game.step(
            victim_action, action
        )
        self._victim_obs = victim_obs
        victim_win = bool(info.get("victim_win", False))
        adversary_reward = -1.0 if victim_win else 0.0
        info = dict(info)
        info["victim_reward"] = victim_reward
        info["success"] = victim_win  # "the victim succeeds"
        info["knn_victim"] = self._body_state(info, "victim_state")
        info["knn_adversary"] = self._body_state(info, "adversary_state")
        return adversary_obs, adversary_reward, done, False, info
