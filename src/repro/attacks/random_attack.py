"""Random attack baselines: uniform ε-ball noise / a random opponent."""

from __future__ import annotations

import numpy as np

from ..rl.policy import ActorCritic

__all__ = ["RandomAttackPolicy"]


class RandomAttackPolicy:
    """Drop-in "policy" that emits uniform random actions.

    On a :class:`StatePerturbationEnv` this is the paper's *Random*
    column (uniform noise in the ε-ball); on an :class:`OpponentEnv` it
    is a flailing random opponent.
    """

    def __init__(self, action_dim: int, seed: int = 0):
        self.action_dim = action_dim
        self._rng = np.random.default_rng(seed)

    def action(self, obs: np.ndarray, rng: np.random.Generator | None = None,
               deterministic: bool = False) -> np.ndarray:
        del obs, deterministic
        rng = rng or self._rng
        return rng.uniform(-1.0, 1.0, size=self.action_dim)

    @staticmethod
    def for_env(env, seed: int = 0) -> "RandomAttackPolicy":
        return RandomAttackPolicy(env.action_space.shape[0], seed=seed)
