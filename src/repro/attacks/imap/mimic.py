"""Adversarial mimic policy π^{α,m} for the D-driven regularizer.

The mimic imitates the mixture of the adversary's past policies
(minimizing KL(π^{α,m}, {π_i})) by maximum-likelihood regression on a
reservoir of (state, past-policy-mean) snapshots: the mean head matches
the past means and the state-independent log-std widens to cover the
mixture's spread.
"""

from __future__ import annotations

import numpy as np

from ... import nn
from ...nn import MLP, DiagGaussian, Parameter, Tensor

__all__ = ["MimicPolicy"]


class MimicPolicy(nn.Module):
    """Gaussian MLP distilled from past adversary policies."""

    def __init__(self, obs_dim: int, action_dim: int, hidden: tuple[int, ...] = (64, 64),
                 buffer_capacity: int = 20_000, learning_rate: float = 1e-3,
                 batch_size: int = 256, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.net = MLP(obs_dim, hidden, action_dim, output_gain=0.01, rng=rng)
        self.log_std = Parameter(np.full(action_dim, -0.5))
        self.optimizer = nn.Adam(self.parameters(), lr=learning_rate)
        self.batch_size = batch_size
        self.buffer_capacity = buffer_capacity
        self._rng = np.random.default_rng(seed + 1)
        self._obs: list[np.ndarray] = []
        self._means: list[np.ndarray] = []
        self._seen = 0
        self.trained = False

    # ---------------------------------------------------------------- buffer

    def absorb(self, obs_batch: np.ndarray, policy) -> None:
        """Store (state, current-policy-mean) snapshots via reservoir sampling."""
        with nn.no_grad():
            means = policy.distribution(obs_batch).mean.data
        for o, m in zip(obs_batch, means):
            self._seen += 1
            if len(self._obs) < self.buffer_capacity:
                self._obs.append(np.asarray(o, dtype=np.float64))
                self._means.append(np.asarray(m, dtype=np.float64))
            else:
                j = int(self._rng.integers(self._seen))
                if j < self.buffer_capacity:
                    self._obs[j] = np.asarray(o, dtype=np.float64)
                    self._means[j] = np.asarray(m, dtype=np.float64)

    # -------------------------------------------------------------- training

    def fit(self, steps: int = 40) -> float:
        """Regress the mimic onto the stored snapshots; returns final loss."""
        if not self._obs:
            return 0.0
        obs = np.asarray(self._obs)
        means = np.asarray(self._means)
        loss_value = 0.0
        for _ in range(steps):
            idx = self._rng.integers(len(obs), size=min(self.batch_size, len(obs)))
            dist = DiagGaussian(self.net(obs[idx]), self.log_std)
            # Maximum likelihood of the past means under the mimic ≈
            # KL(mixture || mimic) up to the mixture entropy.
            loss = -dist.log_prob(Tensor(means[idx])).mean()
            self.optimizer.zero_grad()
            loss.backward()
            self.optimizer.step()
            loss_value = float(loss.data)
        self.trained = True
        return loss_value

    # ------------------------------------------------------------- inference

    def distribution(self, obs_batch) -> DiagGaussian:
        return DiagGaussian(self.net(obs_batch), self.log_std)

    # ------------------------------------------------------------ checkpoint

    def checkpoint_state(self) -> dict:
        """Resumable snapshot: params, optimizer moments, reservoir, RNG."""
        empty = np.zeros((0, 0))
        return {
            "obs_dim": self.net.hidden[0].in_features if self.net.hidden
                       else self.net.output.in_features,
            "action_dim": self.net.output.out_features,
            "params": self.state_dict(),
            "optimizer": self.optimizer.state_dict(),
            "rng": self._rng.bit_generator.state,
            "obs": np.asarray(self._obs) if self._obs else empty,
            "means": np.asarray(self._means) if self._means else empty,
            "seen": self._seen,
            "trained": self.trained,
        }

    def load_checkpoint_state(self, state: dict) -> None:
        self.load_state_dict(state["params"])
        self.optimizer.load_state_dict(state["optimizer"])
        self._rng.bit_generator.state = state["rng"]
        obs = np.asarray(state["obs"], dtype=np.float64)
        means = np.asarray(state["means"], dtype=np.float64)
        self._obs = [row.copy() for row in obs]
        self._means = [row.copy() for row in means]
        self._seen = int(state["seen"])
        self.trained = bool(state["trained"])
