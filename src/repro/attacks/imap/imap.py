"""IMAP attack assembly (Algorithm 1).

``IMAP = PPO + adversarial intrinsic regularizer (+ optional BR)`` on
top of the shared :class:`~repro.attacks.trainer.AdversaryTrainer`.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from ...envs.core import Env
from ..base import AttackConfig, AttackResult
from ..trainer import AdversaryTrainer
from .regularizers import make_regularizer

__all__ = ["train_imap", "imap_name"]


def imap_name(regularizer: str, use_bias_reduction: bool = False) -> str:
    name = f"IMAP-{regularizer.upper()}"
    return f"{name}+BR" if use_bias_reduction else name


def train_imap(adversary_env: Env, regularizer: str, config: AttackConfig,
               multi_agent: bool = False, use_bias_reduction: bool | None = None,
               risk_target: np.ndarray | None = None, callback=None) -> AttackResult:
    """Train an IMAP adversarial policy on an adversary MDP.

    ``regularizer`` is one of ``sc``/``pc``/``r``/``d``.  ``multi_agent``
    switches the SC/PC regularizers to their ξ-mixed variants (Eq. 7/9).
    ``use_bias_reduction`` overrides ``config.use_bias_reduction``.
    """
    if use_bias_reduction is not None:
        config = replace(config, use_bias_reduction=use_bias_reduction)
    module = make_regularizer(regularizer, config, multi_agent=multi_agent,
                              risk_target=risk_target)
    trainer = AdversaryTrainer(
        adversary_env, config, regularizer=module,
        name=imap_name(regularizer, config.use_bias_reduction),
    )
    return trainer.train(callback=callback)
