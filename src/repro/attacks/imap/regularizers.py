"""The four adversarial intrinsic regularizers (Section 5.2).

Each regularizer turns the Frank–Wolfe gradient of its objective
``J_I(d^π)`` (Eq. 13) into a per-step intrinsic bonus, estimated with
KNN state density over the fresh buffer ``D`` (current iteration) and
the union buffer ``B`` (all iterations):

* **SC**  — ``∇(−Σ d ln d) ∝ −ln d(s)`` → bonus ``ln dist_D(s)``
* **PC**  — ``∇(Σ √(d/ρ)) ∝ 1/√(d·ρ)`` → bonus ``√(dist_D(s)·dist_B(s))``
* **R**   — bonus ``−‖Π_{S^v}(s) − s^{v(α)}‖`` (no density needed)
* **D**   — bonus ``KL(π^α(·|s), π^{α,m}(·|s))`` against a mimic policy

Multi-agent variants (Eq. 7/9) mix the adversary-space and victim-space
bonuses with weight ξ.
"""

from __future__ import annotations

import numpy as np

from ...density import IncrementalKnnIndex, StateBuffer, UnionStateBuffer
from ...nn import no_grad
from ...rl.health import check_finite
from ...rl.policy import ActorCritic
from ..base import AdversaryRollout, AttackConfig
from .mimic import MimicPolicy

__all__ = [
    "IntrinsicRegularizer",
    "StateCoverageRegularizer",
    "PolicyCoverageRegularizer",
    "RiskRegularizer",
    "DivergenceRegularizer",
    "make_regularizer",
    "REGULARIZER_NAMES",
]

REGULARIZER_NAMES = ("sc", "pc", "r", "d")


class IntrinsicRegularizer:
    """Interface: per-rollout intrinsic bonuses + buffer bookkeeping."""

    def __init__(self, config: AttackConfig, multi_agent: bool = False):
        self.config = config
        self.multi_agent = multi_agent

    def compute(self, rollout: AdversaryRollout, policy: ActorCritic) -> np.ndarray:
        raise NotImplementedError

    def after_update(self, rollout: AdversaryRollout, policy: ActorCritic) -> None:
        """Called once per iteration after the PPO update."""

    def state_dict(self) -> dict:
        """Resumable snapshot of the regularizer's cross-iteration state.

        Stateless regularizers (SC) return ``{}``; stateful ones override
        to capture their buffers so a resumed attack run stays
        bit-identical to an uninterrupted one.
        """
        return {}

    def load_state_dict(self, state: dict) -> None:
        if state:
            raise ValueError(f"{type(self).__name__} has no state to load: "
                             f"{sorted(state)}")

    # ------------------------------------------------------------- utilities

    def _checked(self, bonus: np.ndarray) -> np.ndarray:
        """Health guard on the computed bonus: NaN/Inf here (degenerate
        KNN distances, exploding mimic KL) would otherwise poison the
        intrinsic advantages and every checkpoint after them."""
        return check_finite(f"{type(self).__name__}.bonus", bonus)

    def _mix(self, adversary_bonus: np.ndarray, victim_bonus: np.ndarray) -> np.ndarray:
        """ξ-weighted mixture of the two projection spaces (Eq. 7/9)."""
        if not self.multi_agent:
            return adversary_bonus
        xi = self.config.xi
        return (1.0 - xi) * adversary_bonus + xi * victim_bonus


class StateCoverageRegularizer(IntrinsicRegularizer):
    """SC-driven: maximize the entropy of the current state distribution."""

    def _bonus(self, features: np.ndarray) -> np.ndarray:
        # Fresh buffer D changes wholesale every iteration, so this index
        # is throwaway — the win here is the chunked query path.
        index = IncrementalKnnIndex.over(features)
        distances = index.query(features, self.config.knn_k, exclude_self=True)
        return np.log(distances + 1.0)

    def compute(self, rollout: AdversaryRollout, policy: ActorCritic) -> np.ndarray:
        adversary = self._bonus(rollout.knn_adversary)
        if not self.multi_agent:
            return self._checked(adversary)
        return self._checked(self._mix(adversary, self._bonus(rollout.knn_victim)))


class PolicyCoverageRegularizer(IntrinsicRegularizer):
    """PC-driven: visit where the historical coverage ρ = Σ_i d^{π_i} is thin."""

    def __init__(self, config: AttackConfig, multi_agent: bool = False):
        super().__init__(config, multi_agent)
        self._union_adv = UnionStateBuffer(config.union_buffer_capacity, seed=config.seed)
        self._union_vic = UnionStateBuffer(config.union_buffer_capacity, seed=config.seed + 1)
        # Amortized KNN indexes mirroring the union buffers, so compute()
        # never rebuilds the (up to 50k-state) B tree from scratch.
        # background=True: the cKDTree construction triggered by
        # after_update() runs on a worker thread and overlaps the next
        # iteration's rollout collection; compute()'s query joins it, so
        # bonuses stay bit-identical to the synchronous index (the
        # double-buffer property suite in tests/test_density_index.py).
        self._index_adv = IncrementalKnnIndex(background=True)
        self._index_vic = IncrementalKnnIndex(background=True)

    def _bonus(self, features: np.ndarray, index: IncrementalKnnIndex) -> np.ndarray:
        fresh = IncrementalKnnIndex.over(features)
        dist_d = fresh.query(features, self.config.knn_k, exclude_self=True)
        if len(index) == 0:
            dist_b = np.ones_like(dist_d)
        else:
            dist_b = index.query(features, self.config.knn_k)
        return np.sqrt(dist_d * dist_b)

    def compute(self, rollout: AdversaryRollout, policy: ActorCritic) -> np.ndarray:
        adversary = self._bonus(rollout.knn_adversary, self._index_adv)
        if not self.multi_agent:
            bonus = adversary
        else:
            bonus = self._mix(adversary, self._bonus(rollout.knn_victim, self._index_vic))
        return self._checked(bonus)

    @staticmethod
    def _sync(union: UnionStateBuffer, index: IncrementalKnnIndex,
              states: np.ndarray) -> None:
        delta = union.extend(states)
        if delta.append_only:
            index.add(delta.appended)
        else:
            # Reservoir replacement overwrote indexed rows; the index
            # contract is exact, so mirror the buffer wholesale.
            index.reset(union.states)

    def after_update(self, rollout: AdversaryRollout, policy: ActorCritic) -> None:
        # Algorithm 1: B = B ∪ D after the optimizing stage.
        self._sync(self._union_adv, self._index_adv, rollout.knn_adversary)
        if self.multi_agent:
            self._sync(self._union_vic, self._index_vic, rollout.knn_victim)

    def state_dict(self) -> dict:
        return {"union_adv": self._union_adv.state_dict(),
                "union_vic": self._union_vic.state_dict(),
                "index_adv": self._index_adv.state_dict(),
                "index_vic": self._index_vic.state_dict()}

    def load_state_dict(self, state: dict) -> None:
        self._union_adv.load_state_dict(state["union_adv"])
        self._union_vic.load_state_dict(state["union_vic"])
        for key, union, attr in (("index_adv", self._union_adv, "_index_adv"),
                                 ("index_vic", self._union_vic, "_index_vic")):
            index = IncrementalKnnIndex(background=True)
            if state.get(key) is not None:
                index.load_state_dict(state[key])
            elif len(union):
                index.reset(union.states)  # pre-index checkpoint: rebuild
            setattr(self, attr, index)


class RiskRegularizer(IntrinsicRegularizer):
    """R-driven: lure the victim toward the adversarial state s^{v(α)}.

    The default target is the victim's initial state s₀^v (Section 5.2.3),
    captured lazily from the first victim-space feature observed.
    """

    def __init__(self, config: AttackConfig, multi_agent: bool = False,
                 target: np.ndarray | None = None):
        super().__init__(config, multi_agent)
        self.target = None if target is None else np.asarray(target, dtype=np.float64)

    def compute(self, rollout: AdversaryRollout, policy: ActorCritic) -> np.ndarray:
        if len(rollout) == 0:
            # Zero-episode rollout (same guard family as the PR-4
            # empty-rollout fixes): no states to score, and no first
            # victim state to capture a lazy target from.
            return np.zeros(0)
        if self.target is None:
            self.target = rollout.knn_victim[0].copy()
        return self._checked(-np.linalg.norm(rollout.knn_victim - self.target, axis=1))

    def state_dict(self) -> dict:
        return {"target": None if self.target is None else self.target.copy()}

    def load_state_dict(self, state: dict) -> None:
        target = state["target"]
        self.target = None if target is None else np.asarray(target, dtype=np.float64)


class DivergenceRegularizer(IntrinsicRegularizer):
    """D-driven: stay KL-far from a mimic of the adversary's past policies."""

    def __init__(self, config: AttackConfig, multi_agent: bool = False):
        super().__init__(config, multi_agent)
        self._mimic: MimicPolicy | None = None

    def _ensure_mimic(self, policy: ActorCritic) -> MimicPolicy:
        if self._mimic is None:
            self._mimic = MimicPolicy(
                policy.obs_dim, policy.action_dim,
                buffer_capacity=self.config.mimic_buffer_capacity,
                seed=self.config.seed,
            )
        return self._mimic

    def compute(self, rollout: AdversaryRollout, policy: ActorCritic) -> np.ndarray:
        mimic = self._ensure_mimic(policy)
        if not mimic.trained:
            return np.zeros(len(rollout))
        with no_grad():
            current = policy.distribution(rollout.obs)
            past = mimic.distribution(rollout.obs)
            return self._checked(current.kl(past).data.copy())

    def after_update(self, rollout: AdversaryRollout, policy: ActorCritic) -> None:
        mimic = self._ensure_mimic(policy)
        mimic.absorb(rollout.obs, policy)
        mimic.fit(steps=self.config.mimic_train_steps)

    def state_dict(self) -> dict:
        return {"mimic": None if self._mimic is None
                else self._mimic.checkpoint_state()}

    def load_state_dict(self, state: dict) -> None:
        mimic_state = state["mimic"]
        if mimic_state is None:
            self._mimic = None
            return
        self._mimic = MimicPolicy(
            int(mimic_state["obs_dim"]), int(mimic_state["action_dim"]),
            buffer_capacity=self.config.mimic_buffer_capacity,
            seed=self.config.seed,
        )
        self._mimic.load_checkpoint_state(mimic_state)


def make_regularizer(name: str, config: AttackConfig, multi_agent: bool = False,
                     risk_target: np.ndarray | None = None) -> IntrinsicRegularizer:
    """Factory for the four regularizers by short name (sc/pc/r/d)."""
    name = name.lower()
    if name == "sc":
        return StateCoverageRegularizer(config, multi_agent)
    if name == "pc":
        return PolicyCoverageRegularizer(config, multi_agent)
    if name == "r":
        return RiskRegularizer(config, multi_agent, target=risk_target)
    if name == "d":
        return DivergenceRegularizer(config, multi_agent)
    raise ValueError(f"unknown regularizer {name!r}; options: {REGULARIZER_NAMES}")
