"""IMAP: intrinsically motivated adversarial policy learning."""

from .imap import imap_name, train_imap
from .mimic import MimicPolicy
from .regularizers import (
    REGULARIZER_NAMES,
    DivergenceRegularizer,
    IntrinsicRegularizer,
    PolicyCoverageRegularizer,
    RiskRegularizer,
    StateCoverageRegularizer,
    make_regularizer,
)

__all__ = [
    "train_imap", "imap_name",
    "MimicPolicy",
    "IntrinsicRegularizer", "StateCoverageRegularizer", "PolicyCoverageRegularizer",
    "RiskRegularizer", "DivergenceRegularizer", "make_regularizer",
    "REGULARIZER_NAMES",
]
