"""SA-RL baseline (Zhang et al., 2021) under the strict black-box model.

SA-RL is plain PPO on the state-perturbation adversary MDP with trivial
(dithering) exploration — i.e. the shared trainer with no intrinsic
regularizer.  The original SA-RL relaxes the threat model and trains on
the victim's dense reward; for the fair comparison in the paper both
SA-RL and IMAP use the surrogate ``-r̂`` (Section 6.2).  The relaxed
variant is available via ``use_dense_reward=True`` for the ablation
bench.
"""

from __future__ import annotations

import numpy as np

from ..envs.core import Env, Wrapper
from .base import AttackConfig, AttackResult
from .trainer import AdversaryTrainer

__all__ = ["train_sarl", "DenseRewardAdversaryWrapper"]


class DenseRewardAdversaryWrapper(Wrapper):
    """Relaxed threat model: adversary reward = −(victim dense reward)."""

    def __init__(self, env: Env, scale: float = 0.01):
        super().__init__(env)
        self.scale = scale

    def step(self, action):
        obs, _, terminated, truncated, info = self.env.step(action)
        reward = -self.scale * float(info.get("victim_reward", 0.0))
        return obs, reward, terminated, truncated, info


def train_sarl(adversary_env: Env, config: AttackConfig,
               use_dense_reward: bool = False, callback=None) -> AttackResult:
    """Train the SA-RL baseline attack."""
    env = DenseRewardAdversaryWrapper(adversary_env) if use_dense_reward else adversary_env
    name = "SA-RL(dense)" if use_dense_reward else "SA-RL"
    trainer = AdversaryTrainer(env, config, regularizer=None, name=name)
    return trainer.train(callback=callback)
