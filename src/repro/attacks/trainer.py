"""Shared adversarial-policy training loop (Algorithm 1 of the paper).

With ``regularizer=None`` this is exactly the SA-RL / AP-MARL baseline:
PPO on the adversary MDP with the black-box surrogate reward.  With an
:class:`~repro.attacks.imap.regularizers.IntrinsicRegularizer` it becomes
IMAP; with ``use_bias_reduction`` it adds the Lagrangian temperature
schedule (Eq. 15-17).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..envs.core import Env
from ..rl.buffers import RolloutBuffer
from ..rl.health import check_finite
from ..rl.policy import ActorCritic
from ..rl.ppo import PPOUpdater
from ..runtime.vec_env import VectorEnv
from ..telemetry import current_telemetry
from .base import AdversaryRollout, AttackConfig, AttackResult, knn_feature

__all__ = ["collect_adversary_rollout", "AdversaryTrainer", "record_rollout_telemetry"]

CHECKPOINT_KIND = "adversary"


def record_rollout_telemetry(telemetry, rollout: AdversaryRollout,
                             seconds: float, collector: str) -> None:
    """Shared rollout instrumentation for the serial and vectorized collectors.

    The event payload holds only seed-deterministic episode statistics;
    steps/sec and the collector flavour live under ``perf`` so serial and
    ``n_envs=1`` vectorized runs produce identical payloads.
    """
    n = len(rollout)
    telemetry.metrics.observe_duration("rollout.collect", seconds)
    telemetry.metrics.counter("rollout.steps").inc(n)
    telemetry.metrics.counter("rollout.episodes").inc(len(rollout.episode_rewards))
    telemetry.event("rollout.complete", payload={
        "steps": n,
        "episodes": len(rollout.episode_rewards),
        "j_ap": rollout.j_ap,
        "victim_success_rate": rollout.victim_success_rate,
        "mean_victim_reward": (float(np.mean(rollout.episode_victim_rewards))
                               if rollout.episode_victim_rewards else 0.0),
    }, perf={
        "seconds": seconds,
        # None, not inf: an injected zero-elapsed clock would otherwise
        # put "Infinity" in JSONL lines, which RFC 8259 forbids.
        "steps_per_s": n / seconds if seconds > 0 else None,
        "collector": collector,
    })


def collect_adversary_rollout(env: Env, policy: ActorCritic, n_steps: int,
                              rng: np.random.Generator,
                              update_normalizer: bool = True,
                              telemetry=None) -> AdversaryRollout:
    """Collect ``n_steps`` of adversary experience, tracking KNN features."""
    start = telemetry.clock.perf() if telemetry is not None else 0.0
    obs_dim = env.observation_space.shape[0]
    action_dim = env.action_space.shape[0]
    buffer = RolloutBuffer(n_steps, obs_dim, action_dim)
    knn_victim: list[np.ndarray] = []
    knn_adversary: list[np.ndarray] = []
    episode_rewards: list[float] = []
    episode_victim_rewards: list[float] = []
    episode_successes: list[bool] = []

    obs = env.reset()
    ep_reward, ep_victim, ep_success = 0.0, 0.0, False
    while not buffer.full:
        action, log_prob, value_e, value_i, normalized = policy.act(
            obs, rng, update_normalizer=update_normalizer
        )
        next_obs, reward, terminated, truncated, info = env.step(action)
        done = terminated or truncated
        ep_reward += reward
        ep_victim += float(info.get("victim_reward", 0.0))
        ep_success = ep_success or bool(info.get("success", False))
        buffer.add(normalized, action, log_prob, reward, value_e, value_i,
                   done=done, terminated=terminated)
        knn_victim.append(knn_feature(info, "knn_victim", obs_dim))
        knn_adversary.append(knn_feature(info, "knn_adversary", obs_dim))
        index = buffer.ptr - 1
        if done:
            if not terminated:
                _, _, be, bi, _ = policy.act(next_obs, rng,
                                             update_normalizer=update_normalizer)
                buffer.set_bootstrap(index, be, bi)
            episode_rewards.append(ep_reward)
            episode_victim_rewards.append(ep_victim)
            episode_successes.append(ep_success)
            obs = env.reset()
            ep_reward, ep_victim, ep_success = 0.0, 0.0, False
        else:
            obs = next_obs
            if buffer.full:
                _, _, be, bi, _ = policy.act(obs, rng,
                                             update_normalizer=update_normalizer)
                buffer.set_bootstrap(index, be, bi)

    n = buffer.ptr
    rollout = AdversaryRollout(
        obs=buffer.obs[:n].copy(),
        actions=buffer.actions[:n].copy(),
        log_probs=buffer.log_probs[:n].copy(),
        rewards=buffer.rewards_e[:n].copy(),
        values_e=buffer.values_e[:n].copy(),
        values_i=buffer.values_i[:n].copy(),
        dones=buffer.dones[:n].copy(),
        terminated=buffer.terminated[:n].copy(),
        bootstrap_e=buffer.bootstrap_e[:n].copy(),
        bootstrap_i=buffer.bootstrap_i[:n].copy(),
        knn_victim=np.asarray(knn_victim),
        knn_adversary=np.asarray(knn_adversary),
        episode_rewards=episode_rewards,
        episode_victim_rewards=episode_victim_rewards,
        episode_successes=episode_successes,
    )
    if telemetry is not None:
        record_rollout_telemetry(telemetry, rollout,
                                 telemetry.clock.perf() - start, "serial")
    return rollout


def _rollout_to_batch(rollout: AdversaryRollout, intrinsic: np.ndarray | None,
                      gamma: float, lam: float) -> dict[str, np.ndarray]:
    """Rebuild a PPO batch (with GAE) from an AdversaryRollout."""
    from ..rl.buffers import compute_gae

    n = len(rollout)
    boot_e = rollout.bootstrap_e.copy()
    boot_i = rollout.bootstrap_i.copy()
    for t in range(n - 1):
        if rollout.dones[t] < 0.5:
            boot_e[t] = rollout.values_e[t + 1]
            boot_i[t] = rollout.values_i[t + 1]
    boot_e[rollout.terminated >= 0.5] = 0.0
    boot_i[rollout.terminated >= 0.5] = 0.0
    boundary = rollout.dones.copy()
    boundary[-1] = 1.0

    adv_e, ret_e = compute_gae(rollout.rewards, rollout.values_e, boundary, boot_e, gamma, lam)
    rewards_i = intrinsic if intrinsic is not None else np.zeros(n)
    adv_i, ret_i = compute_gae(rewards_i, rollout.values_i, boundary, boot_i, gamma, lam)
    return {
        "obs": rollout.obs,
        "actions": rollout.actions,
        "log_probs": rollout.log_probs,
        "advantages_e": adv_e,
        "advantages_i": adv_i,
        "returns_e": ret_e,
        "returns_i": ret_i,
    }


class AdversaryTrainer:
    """PPO loop over an adversary MDP with optional intrinsic regularizer.

    ``env`` may be a plain :class:`~repro.envs.core.Env` (serial
    collection) or a :class:`~repro.runtime.vec_env.VectorEnv`, in which
    case each iteration's batch is filled from all lanes with batched
    policy forwards (same total sample count per iteration).
    """

    def __init__(self, env: Env | VectorEnv, config: AttackConfig, regularizer=None,
                 name: str = "attack", telemetry=None):
        self.env = env
        self.config = config
        self.regularizer = regularizer
        self.name = name
        self.telemetry = telemetry if telemetry is not None else current_telemetry()
        rng_init = np.random.default_rng(config.seed)
        self.policy = ActorCritic(
            env.observation_space.shape[0],
            env.action_space.shape[0],
            hidden_sizes=config.hidden_sizes,
            dual_value=regularizer is not None and not config.single_value_head,
            rng=rng_init,
        )
        self.updater = PPOUpdater(self.policy, config.ppo, telemetry=self.telemetry)
        self.rng = np.random.default_rng(config.seed + 7)
        self.tau = config.tau0 if regularizer is not None else 0.0
        self._lambda = 0.0
        self._prev_j_ap: float | None = None
        self._best_asr = -1.0
        self._best_state: dict | None = None

    def _collect(self, n_steps: int) -> AdversaryRollout:
        if isinstance(self.env, VectorEnv):
            from ..runtime.collector import collect_adversary_rollout_vec

            return collect_adversary_rollout_vec(self.env, self.policy, n_steps,
                                                 self.rng, telemetry=self.telemetry)
        return collect_adversary_rollout(self.env, self.policy, n_steps, self.rng,
                                         telemetry=self.telemetry)

    def _bias_reduction_step(self, j_ap: float) -> None:
        """λ_{k+1} = max(0, λ_k − η (J_k+1 − J_k)); τ = 1/(1+λ) (Eq. 16-17)."""
        if self._prev_j_ap is not None:
            self._lambda = max(0.0, self._lambda - self.config.br_eta * (j_ap - self._prev_j_ap))
            self.tau = 1.0 / (1.0 + self._lambda)
        self._prev_j_ap = j_ap

    # ------------------------------------------------------------ checkpoint

    def capture_checkpoint(self, iteration: int, history: list[dict]):
        """Full trainer state at an iteration boundary (see module docstring
        of :mod:`repro.store.checkpoint` for the bit-identity contract)."""
        from ..store.checkpoint import TrainingCheckpoint, capture_rng_states

        return TrainingCheckpoint(
            kind=CHECKPOINT_KIND, iteration=iteration, history=list(history),
            state={
                "policy": self.policy.checkpoint_state(),
                "optimizer": self.updater.optimizer.state_dict(),
                "rng": self.rng.bit_generator.state,
                "env_rngs": capture_rng_states(self.env),
                "tau": self.tau,
                "lambda": self._lambda,
                "prev_j_ap": self._prev_j_ap,
                "best_asr": self._best_asr,
                "best_state": self._best_state,
                "regularizer": (self.regularizer.state_dict()
                                if self.regularizer is not None else None),
            },
        )

    def restore_checkpoint(self, ckpt) -> tuple[int, list[dict]]:
        """Load a checkpoint into this trainer; returns (iteration, history).

        The env RNGs are restored here, *after* ``env.seed`` ran inside
        :meth:`train`, so call this only through ``train(checkpoint_path=...)``
        or re-seed the env first.
        """
        from ..store.checkpoint import restore_rng_states

        ckpt.expect_kind(CHECKPOINT_KIND)
        state = ckpt.state
        self.policy.load_checkpoint_state(state["policy"])
        self.updater.optimizer.load_state_dict(state["optimizer"])
        self.rng.bit_generator.state = state["rng"]
        restore_rng_states(self.env, state["env_rngs"])
        self.tau = float(state["tau"])
        self._lambda = float(state["lambda"])
        self._prev_j_ap = (None if state["prev_j_ap"] is None
                           else float(state["prev_j_ap"]))
        self._best_asr = float(state["best_asr"])
        self._best_state = state["best_state"]
        if self.regularizer is not None:
            self.regularizer.load_state_dict(state["regularizer"] or {})
        return ckpt.iteration, list(ckpt.history)

    def train(self, callback=None, checkpoint_path: str | Path | None = None,
              checkpoint_every: int = 0, resume: bool = True) -> AttackResult:
        """Run the attack-training loop.

        ``checkpoint_path`` + ``checkpoint_every=k`` snapshot the full
        trainer state every k completed iterations; with ``resume=True``
        an existing checkpoint at that path is loaded first and training
        continues from it bit-identically (same params, history, and
        telemetry payloads as the uninterrupted run).
        """
        cfg = self.config
        telemetry = self.telemetry
        self.env.seed(cfg.seed)
        start_iteration = 0
        history: list[dict[str, float]] = []
        if checkpoint_path is not None and resume and Path(checkpoint_path).exists():
            from ..store.checkpoint import TrainingCheckpoint

            start_iteration, history = self.restore_checkpoint(
                TrainingCheckpoint.load(checkpoint_path))
        for iteration in range(start_iteration, cfg.iterations):
            rollout = self._collect(cfg.steps_per_iteration)
            check_finite("rewards", rollout.rewards, iteration=iteration)
            intrinsic = None
            if self.regularizer is not None:
                if telemetry is not None:
                    with telemetry.timer("attack.knn_bonus"):
                        intrinsic = self.regularizer.compute(rollout, self.policy)
                else:
                    intrinsic = self.regularizer.compute(rollout, self.policy)
                # KNN-density bonuses are the classic NaN source here (log/
                # sqrt of degenerate distances, exploding mimic KL): catch
                # them before they reach the advantage estimator.
                intrinsic = self._standardize(intrinsic) * cfg.intrinsic_reward_scale
                check_finite("intrinsic_bonus", intrinsic, iteration=iteration)
            if cfg.single_value_head and intrinsic is not None:
                # ablation: one mixed-reward channel instead of Eq. 14's
                # separate Â_E + τ Â_I estimation
                rollout.rewards = rollout.rewards + self.tau * intrinsic
                batch = _rollout_to_batch(rollout, None, cfg.ppo.gamma, cfg.ppo.gae_lambda)
                diag = self.updater.update(batch, tau=0.0, rng=self.rng)
            else:
                batch = _rollout_to_batch(rollout, intrinsic, cfg.ppo.gamma,
                                          cfg.ppo.gae_lambda)
                diag = self.updater.update(batch, tau=self.tau, rng=self.rng)
            if self.regularizer is not None:
                if telemetry is not None:
                    with telemetry.timer("attack.knn_buffers"):
                        self.regularizer.after_update(rollout, self.policy)
                else:
                    self.regularizer.after_update(rollout, self.policy)
            if cfg.use_bias_reduction and self.regularizer is not None:
                self._bias_reduction_step(rollout.j_ap)
            record = {
                "iteration": iteration,
                "samples": float(len(rollout)),
                "j_ap": rollout.j_ap,
                "victim_success_rate": rollout.victim_success_rate,
                "asr": 1.0 - rollout.victim_success_rate,
                "mean_victim_reward": (
                    float(np.mean(rollout.episode_victim_rewards))
                    if rollout.episode_victim_rewards else 0.0
                ),
                "tau": self.tau,
                "lambda": self._lambda,
                **diag,
            }
            history.append(record)
            if telemetry is not None:
                metrics = telemetry.metrics
                metrics.gauge("attack.asr").set(record["asr"])
                metrics.gauge("attack.tau").set(record["tau"])
                telemetry.event("attack.iteration", payload={
                    "name": self.name, **record,
                }, perf={
                    "rollout_s": metrics.ewma("rollout.collect").ewma,
                    "update_s": metrics.ewma("ppo.update").ewma,
                    "knn_bonus_s": (metrics.ewma("attack.knn_bonus").ewma
                                    if self.regularizer is not None else None),
                })
            if cfg.select_best and len(rollout.episode_successes) >= 3:
                asr = record["asr"]
                if asr >= self._best_asr:
                    self._best_asr = asr
                    self._best_state = self.policy.checkpoint_state()
            if callback is not None:
                callback(iteration, self.policy, record)
            if (checkpoint_path is not None and checkpoint_every
                    and (iteration + 1) % checkpoint_every == 0):
                self.capture_checkpoint(iteration + 1, history).save(checkpoint_path)
        if cfg.select_best and self._best_state is not None:
            self.policy.load_checkpoint_state(self._best_state)
        return AttackResult(policy=self.policy, history=history, name=self.name)

    @staticmethod
    def _standardize(values: np.ndarray) -> np.ndarray:
        std = float(values.std())
        if std < 1e-8:
            return values - float(values.mean())
        return (values - float(values.mean())) / std
