"""Common types for adversarial-policy training."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..rl.policy import ActorCritic
from ..rl.ppo import PPOConfig

__all__ = ["AttackConfig", "AttackResult", "AdversaryRollout", "knn_feature"]


def knn_feature(info: dict, key: str, dim: int) -> np.ndarray:
    """KNN feature stream lookup with a zero-vector default.

    Non-IMAP adversary envs (or plain task envs) don't publish
    ``knn_victim``/``knn_adversary``; a zero feature keeps the density
    machinery well-defined instead of raising ``KeyError``.
    """
    value = info.get(key)
    if value is None:
        return np.zeros(dim)
    return np.asarray(value, dtype=np.float64)


@dataclass
class AttackConfig:
    """Budget and hyperparameters for training an adversarial policy."""

    iterations: int = 30
    steps_per_iteration: int = 2048
    hidden_sizes: tuple[int, ...] = (64, 64)
    seed: int = 0
    # "Hot" PPO settings: adversarial-policy learning needs aggressive
    # optimization to escape the all-episodes-succeed plateau (no early
    # KL stop, higher lr, more epochs).
    ppo: PPOConfig = field(default_factory=lambda: PPOConfig(
        learning_rate=1e-3, entropy_coef=1e-4, target_kl=None,
        epochs=10, minibatches=8))
    # IMAP-specific knobs (ignored by the baselines)
    tau0: float = 1.0
    intrinsic_reward_scale: float = 0.1
    knn_k: int = 5
    xi: float = 0.5        # victim-space mixing weight for multi-agent SC/PC
    use_bias_reduction: bool = False
    br_eta: float = 0.5    # Lagrangian step size η (Eq. 17)
    union_buffer_capacity: int = 50_000
    mimic_train_steps: int = 40
    mimic_buffer_capacity: int = 20_000
    # Keep the checkpoint with the best training-time ASR (the paper's
    # attackers train several policies and deploy the best one).
    select_best: bool = True
    # Ablation: fold τ·r_I into the extrinsic channel and use one value
    # head instead of the default dual-head critic (Eq. 14).
    single_value_head: bool = False


@dataclass
class AdversaryRollout:
    """One iteration of adversary experience plus the KNN feature streams."""

    obs: np.ndarray
    actions: np.ndarray
    log_probs: np.ndarray
    rewards: np.ndarray            # surrogate adversary reward -r̂
    values_e: np.ndarray
    values_i: np.ndarray
    dones: np.ndarray
    terminated: np.ndarray
    bootstrap_e: np.ndarray
    bootstrap_i: np.ndarray
    knn_victim: np.ndarray         # Π_{S^v}(s) features per step
    knn_adversary: np.ndarray      # Π_{S^α}(s) features per step
    episode_rewards: list[float]   # adversary episode returns (J^AP samples)
    episode_victim_rewards: list[float]
    episode_successes: list[bool]  # victim succeeded?

    def __len__(self) -> int:
        return len(self.obs)

    @property
    def j_ap(self) -> float:
        """Monte-Carlo estimate of the attack objective J^AP (Eq. 3)."""
        if not self.episode_rewards:
            return 0.0
        return float(np.mean(self.episode_rewards))

    @property
    def victim_success_rate(self) -> float:
        if not self.episode_successes:
            return 0.0
        return float(np.mean(self.episode_successes))


@dataclass
class AttackResult:
    """A trained adversarial policy plus its learning history."""

    policy: ActorCritic
    history: list[dict[str, float]]
    name: str = "attack"

    def curve(self, key: str = "victim_success_rate") -> tuple[np.ndarray, np.ndarray]:
        """(cumulative samples, metric) learning curve for figures."""
        samples = np.cumsum([h["samples"] for h in self.history])
        values = np.array([h[key] for h in self.history])
        return samples, values
