"""White-box gradient-based evasion baselines (paper Section 2 /
Appendix A related work).

These are the FGSM-family attacks the adversarial-policy literature
compares against.  They *break the black-box threat model* (they need
the victim's parameters for input gradients) and are provided as upper
reference points and for building ATLA-style curricula:

* :class:`PgdAttack` — per-step projected gradient descent maximizing
  the KL shift of the victim's action distribution (Zhang et al.'s
  "Maximal Action Difference" flavour);
* :class:`CriticPgdAttack` — PGD minimizing the victim's own value
  estimate (Pattanaik-style);
* :class:`StrategicallyTimedAttack` — Lin et al.'s timing heuristic:
  spend the budget only on steps where the victim's action preference
  is strong.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn import Tensor
from ..rl.policy import ActorCritic

__all__ = ["PgdAttack", "CriticPgdAttack", "StrategicallyTimedAttack"]


class PgdAttack:
    """PGD on KL(π(s) ‖ π(s+δ)) — maximally shift the victim's action."""

    def __init__(self, victim: ActorCritic, steps: int = 5, step_size: float = 0.5,
                 seed: int = 0):
        self.victim = victim
        self.steps = steps
        self.step_size = step_size
        self._rng = np.random.default_rng(seed)

    def _anchor(self, obs: np.ndarray):
        from ..nn import DiagGaussian

        with nn.no_grad():
            mean = self.victim.distribution(obs).mean.data.copy()
        return DiagGaussian(Tensor(mean), Tensor(self.victim.log_std.data.copy()))

    def action(self, obs: np.ndarray, rng: np.random.Generator | None = None,
               deterministic: bool = True) -> np.ndarray:
        """Return a raw action in [-1, 1]^d (the env scales it into the ε-ball).

        The inner PGD works in units of the budget: δ_raw accumulates in
        [-1, 1] and the threat model multiplies by ε.
        """
        anchor = self._anchor(obs)
        delta = self._rng.uniform(-0.25, 0.25, size=obs.shape)
        for _ in range(self.steps):
            x = Tensor(obs + delta, requires_grad=True)
            kl = anchor.kl(self.victim.distribution(x)).mean()
            for p in self.victim.parameters():
                p.zero_grad()
            kl.backward()
            grad = x.grad if x.grad is not None else np.zeros_like(obs)
            delta = np.clip(delta + self.step_size * np.sign(grad), -1.0, 1.0)
        for p in self.victim.parameters():
            p.zero_grad()
        return delta


class CriticPgdAttack:
    """PGD minimizing the victim's value estimate V(s+δ)."""

    def __init__(self, victim: ActorCritic, steps: int = 5, step_size: float = 0.5,
                 seed: int = 0):
        self.victim = victim
        self.steps = steps
        self.step_size = step_size
        self._rng = np.random.default_rng(seed)

    def action(self, obs: np.ndarray, rng: np.random.Generator | None = None,
               deterministic: bool = True) -> np.ndarray:
        delta = self._rng.uniform(-0.25, 0.25, size=obs.shape)
        for _ in range(self.steps):
            x = Tensor(obs + delta, requires_grad=True)
            value = self.victim.critic(x).sum()
            for p in self.victim.parameters():
                p.zero_grad()
            value.backward()
            grad = x.grad if x.grad is not None else np.zeros_like(obs)
            delta = np.clip(delta - self.step_size * np.sign(grad), -1.0, 1.0)
        for p in self.victim.parameters():
            p.zero_grad()
        return delta


class StrategicallyTimedAttack:
    """Attack only at "critical" steps (Lin et al., 2017).

    Criticality is measured by the victim's action-preference strength
    ‖μ(s)‖∞: when the victim is about to act decisively, a perturbation
    is most damaging.  The budget is spent on the top fraction of steps.
    """

    def __init__(self, victim: ActorCritic, inner_attack, attack_fraction: float = 0.3,
                 calibration_obs: np.ndarray | None = None):
        if not 0.0 < attack_fraction <= 1.0:
            raise ValueError("attack_fraction must be in (0, 1]")
        self.victim = victim
        self.inner = inner_attack
        self.attack_fraction = attack_fraction
        self._threshold = 0.0
        if calibration_obs is not None:
            self.calibrate(calibration_obs)

    def preference(self, obs: np.ndarray) -> float:
        with nn.no_grad():
            mean = self.victim.distribution(obs).mean.data
        return float(np.abs(mean).max())

    def calibrate(self, observations: np.ndarray) -> float:
        """Set the criticality threshold from a batch of (normalized) obs."""
        prefs = np.array([self.preference(o) for o in np.atleast_2d(observations)])
        self._threshold = float(np.quantile(prefs, 1.0 - self.attack_fraction))
        return self._threshold

    def action(self, obs: np.ndarray, rng: np.random.Generator | None = None,
               deterministic: bool = True) -> np.ndarray:
        if self.preference(obs) < self._threshold:
            return np.zeros_like(obs)
        return self.inner.action(obs, rng, deterministic=deterministic)
