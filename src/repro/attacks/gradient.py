"""White-box gradient-based evasion baselines (paper Section 2 /
Appendix A related work).

These are the FGSM-family attacks the adversarial-policy literature
compares against.  They *break the black-box threat model* (they need
the victim's parameters for input gradients) and are provided as upper
reference points and for building ATLA-style curricula:

* :class:`PgdAttack` — per-step projected gradient descent maximizing
  the KL shift of the victim's action distribution (Zhang et al.'s
  "Maximal Action Difference" flavour);
* :class:`CriticPgdAttack` — PGD minimizing the victim's own value
  estimate (Pattanaik-style);
* :class:`StrategicallyTimedAttack` — Lin et al.'s timing heuristic:
  spend the budget only on steps where the victim's action preference
  is strong.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn import Tensor
from ..rl.policy import ActorCritic
from ..telemetry import current_telemetry

__all__ = ["PgdAttack", "CriticPgdAttack", "StrategicallyTimedAttack"]


def _input_gradient(x: Tensor, obs: np.ndarray) -> tuple[np.ndarray, bool]:
    """The input gradient and whether it carries any signal.

    A ``None`` gradient means the loss never reached the input — the
    victim's graph was detached (e.g. its forward ran under ``no_grad``
    or rebuilt its inputs as fresh leaves).  An all-zero gradient is the
    same silent no-op one ``np.sign`` later: the PGD step goes nowhere.
    """
    if x.grad is None:
        return np.zeros_like(obs), False
    return x.grad, bool(np.any(x.grad))


def _raise_dead_graph(attack, steps: int) -> None:
    """Record and refuse an attack whose every PGD step had zero gradient.

    Silently returning the random init here is the bug this guards
    against: the "adversarial" evaluation would really measure noise
    while reporting PGD results.  The counter fires before the raise so
    sweep telemetry shows dead-graph matches even when a caller
    swallows the exception.
    """
    telemetry = current_telemetry()
    if telemetry is not None:
        telemetry.metrics.counter("attacks.pgd.dead_graph").inc()
    raise RuntimeError(
        f"{type(attack).__name__}: all {steps} PGD steps produced a zero or "
        "absent input gradient — the victim's graph is detached from the "
        "perturbed observation (forward under no_grad, or inputs rebuilt as "
        "fresh leaves), so the attack would silently degenerate to its "
        "random initialization while still reporting adversarial results")


class PgdAttack:
    """PGD on KL(π(s) ‖ π(s+δ)) — maximally shift the victim's action."""

    def __init__(self, victim: ActorCritic, steps: int = 5, step_size: float = 0.5,
                 seed: int = 0):
        self.victim = victim
        self.steps = steps
        self.step_size = step_size
        self._rng = np.random.default_rng(seed)

    def _anchor(self, obs: np.ndarray):
        from ..nn import DiagGaussian

        with nn.no_grad():
            mean = self.victim.distribution(obs).mean.data.copy()
        return DiagGaussian(Tensor(mean), Tensor(self.victim.log_std.data.copy()))

    def action(self, obs: np.ndarray, rng: np.random.Generator | None = None,
               deterministic: bool = True) -> np.ndarray:
        """Return a raw action in [-1, 1]^d (the env scales it into the ε-ball).

        The inner PGD works in units of the budget: δ_raw accumulates in
        [-1, 1] and the threat model multiplies by ε.
        """
        anchor = self._anchor(obs)
        delta = self._rng.uniform(-0.25, 0.25, size=obs.shape)
        live_steps = 0
        for _ in range(self.steps):
            x = Tensor(obs + delta, requires_grad=True)
            kl = anchor.kl(self.victim.distribution(x)).mean()
            for p in self.victim.parameters():
                p.zero_grad()
            kl.backward()
            grad, live = _input_gradient(x, obs)
            live_steps += live
            delta = np.clip(delta + self.step_size * np.sign(grad), -1.0, 1.0)
        for p in self.victim.parameters():
            p.zero_grad()
        if self.steps > 0 and live_steps == 0:
            _raise_dead_graph(self, self.steps)
        return delta


class CriticPgdAttack:
    """PGD minimizing the victim's value estimate V(s+δ)."""

    def __init__(self, victim: ActorCritic, steps: int = 5, step_size: float = 0.5,
                 seed: int = 0):
        self.victim = victim
        self.steps = steps
        self.step_size = step_size
        self._rng = np.random.default_rng(seed)

    def action(self, obs: np.ndarray, rng: np.random.Generator | None = None,
               deterministic: bool = True) -> np.ndarray:
        delta = self._rng.uniform(-0.25, 0.25, size=obs.shape)
        live_steps = 0
        for _ in range(self.steps):
            x = Tensor(obs + delta, requires_grad=True)
            value = self.victim.critic(x).sum()
            for p in self.victim.parameters():
                p.zero_grad()
            value.backward()
            grad, live = _input_gradient(x, obs)
            live_steps += live
            delta = np.clip(delta - self.step_size * np.sign(grad), -1.0, 1.0)
        for p in self.victim.parameters():
            p.zero_grad()
        if self.steps > 0 and live_steps == 0:
            _raise_dead_graph(self, self.steps)
        return delta


class StrategicallyTimedAttack:
    """Attack only at "critical" steps (Lin et al., 2017).

    Criticality is measured by the victim's action-preference strength
    ‖μ(s)‖∞: when the victim is about to act decisively, a perturbation
    is most damaging.  The budget is spent on the top fraction of steps.

    The threshold comes from :meth:`calibrate` when ``calibration_obs``
    is given.  Without it the attack **self-calibrates lazily**: the
    first ``calibration_steps`` observations it sees (roughly one
    episode) double as the calibration sample, with the running quantile
    deciding attack/skip in the meantime, and the threshold freezing —
    recorded in :attr:`calibration` — once the sample is full.  The old
    behaviour (an uncalibrated instance defaulted its threshold to 0.0,
    below every preference ``‖μ(s)‖∞ ≥ 0``) silently attacked on 100% of
    steps instead of ``attack_fraction``.
    """

    def __init__(self, victim: ActorCritic, inner_attack, attack_fraction: float = 0.3,
                 calibration_obs: np.ndarray | None = None,
                 calibration_steps: int = 128):
        if not 0.0 < attack_fraction <= 1.0:
            raise ValueError("attack_fraction must be in (0, 1]")
        if calibration_steps < 1:
            raise ValueError("calibration_steps must be >= 1")
        self.victim = victim
        self.inner = inner_attack
        self.attack_fraction = attack_fraction
        self.calibration_steps = int(calibration_steps)
        self._threshold: float | None = None
        self._warmup_prefs: list[float] = []
        # Provenance of the active threshold (for reproducibility records):
        # {"threshold", "n_obs", "attack_fraction", "source"} once set.
        self.calibration: dict | None = None
        if calibration_obs is not None:
            self.calibrate(calibration_obs)

    @property
    def threshold(self) -> float | None:
        """The frozen criticality threshold; None while still calibrating."""
        return self._threshold

    def preference(self, obs: np.ndarray) -> float:
        with nn.no_grad():
            mean = self.victim.distribution(obs).mean.data
        return float(np.abs(mean).max())

    def _freeze_threshold(self, prefs, source: str) -> float:
        prefs = np.asarray(prefs, dtype=np.float64)
        self._threshold = float(np.quantile(prefs, 1.0 - self.attack_fraction))
        self.calibration = {
            "threshold": self._threshold,
            "n_obs": int(prefs.size),
            "attack_fraction": self.attack_fraction,
            "source": source,
        }
        return self._threshold

    def calibrate(self, observations: np.ndarray) -> float:
        """Set the criticality threshold from a batch of (normalized) obs."""
        prefs = [self.preference(o) for o in np.atleast_2d(observations)]
        return self._freeze_threshold(prefs, source="explicit")

    def action(self, obs: np.ndarray, rng: np.random.Generator | None = None,
               deterministic: bool = True) -> np.ndarray:
        pref = self.preference(obs)
        if self._threshold is None:
            # Lazy self-calibration: this observation joins the sample,
            # and the running quantile stands in for the threshold so
            # the attack rate tracks attack_fraction even mid-warmup.
            self._warmup_prefs.append(pref)
            if len(self._warmup_prefs) >= self.calibration_steps:
                threshold = self._freeze_threshold(self._warmup_prefs,
                                                   source="lazy")
                self._warmup_prefs = []
            else:
                threshold = float(np.quantile(self._warmup_prefs,
                                              1.0 - self.attack_fraction))
        else:
            threshold = self._threshold
        if pref < threshold:
            return np.zeros_like(obs)
        return self.inner.action(obs, rng, deterministic=deterministic)
