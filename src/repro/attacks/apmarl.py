"""AP-MARL baseline (Gleave et al., 2019).

Policy optimization of the opponent against a fixed victim with the
sparse game outcome as reward and dithering Gaussian exploration — the
shared trainer on an :class:`~repro.attacks.threat_models.OpponentEnv`
with no intrinsic regularizer.
"""

from __future__ import annotations

from .base import AttackConfig, AttackResult
from .threat_models import OpponentEnv
from .trainer import AdversaryTrainer

__all__ = ["train_apmarl"]


def train_apmarl(adversary_env: OpponentEnv, config: AttackConfig,
                 callback=None) -> AttackResult:
    """Train the AP-MARL baseline opponent policy."""
    trainer = AdversaryTrainer(adversary_env, config, regularizer=None, name="AP-MARL")
    return trainer.train(callback=callback)
