"""Victim zoo: cached pretrained victims per (env, defense, budget, seed)."""

from .game_env import VictimGameEnv
from .opponents import WeakBlocker, WeakGoalie
from .train import (
    artifacts_dir,
    get_game_victim,
    get_victim,
    training_env_factory,
    victim_cache_path,
)

__all__ = [
    "get_victim", "get_game_victim", "training_env_factory",
    "victim_cache_path", "artifacts_dir",
    "VictimGameEnv", "WeakBlocker", "WeakGoalie",
]
