"""Scripted opponents used to pretrain the game victims.

The paper's victims come from Bansal et al.'s self-play zoo; ours are
PPO-trained against these scripted proxies of "random old versions of
their opponents" — competent enough to force real skills, weak enough to
leave exploitable blind spots for the adversarial policy to find.
"""

from __future__ import annotations

import numpy as np

__all__ = ["WeakBlocker", "Rammer", "MixtureOpponent", "WeakGoalie"]


class WeakBlocker:
    """YouShallNotPass opponent: drifts toward the runner's lane, slowly.

    It tracks the runner's y-position with limited speed and never
    braces, so a trained runner learns to dodge-and-dash — a habit a
    blocking adversary can later exploit.
    """

    def __init__(self, seed: int = 0, aggressiveness: float = 0.5):
        self._rng = np.random.default_rng(seed)
        self.aggressiveness = aggressiveness

    def action(self, obs: np.ndarray, rng: np.random.Generator | None = None,
               deterministic: bool = False) -> np.ndarray:
        rng = rng or self._rng
        # adversary obs layout: me(6) other(6) delta(2); delta = runner - me
        delta = obs[12:14]
        fx = np.clip(self.aggressiveness * np.sign(delta[0]), -1, 1)
        fy = np.clip(self.aggressiveness * delta[1], -1, 1)
        jitter = rng.normal(0.0, 0.3, size=2)
        return np.array([fx + jitter[0], fy + jitter[1], -1.0])


class Rammer:
    """YouShallNotPass opponent: charges straight at the runner, braced.

    Training against it teaches the runner to dodge contact — the skill
    that later makes dithering adversaries ineffective.
    """

    def __init__(self, seed: int = 0):
        self._rng = np.random.default_rng(seed)

    def action(self, obs: np.ndarray, rng: np.random.Generator | None = None,
               deterministic: bool = False) -> np.ndarray:
        delta = obs[12:14]
        norm = float(np.linalg.norm(delta))
        direction = delta / norm if norm > 1e-6 else np.zeros(2)
        return np.array([direction[0], direction[1], 1.0])


class MixtureOpponent:
    """Samples a sub-opponent per episode (self-play-zoo proxy)."""

    def __init__(self, opponents: list, seed: int = 0):
        if not opponents:
            raise ValueError("MixtureOpponent needs at least one opponent")
        self.opponents = list(opponents)
        self._rng = np.random.default_rng(seed)
        self._current = self.opponents[0]

    def reset(self) -> None:
        self._current = self.opponents[int(self._rng.integers(len(self.opponents)))]

    def action(self, obs: np.ndarray, rng: np.random.Generator | None = None,
               deterministic: bool = False) -> np.ndarray:
        return self._current.action(obs, rng, deterministic=deterministic)


class WeakGoalie:
    """KickAndDefend opponent: tracks the ball's y with lag and noise."""

    def __init__(self, seed: int = 0, gain: float = 0.6):
        self._rng = np.random.default_rng(seed)
        self.gain = gain

    def action(self, obs: np.ndarray, rng: np.random.Generator | None = None,
               deterministic: bool = False) -> np.ndarray:
        rng = rng or self._rng
        # adversary obs layout: me(6) opp(6) ball_pos(2) ball_vel(2) gate_dx(1)
        my_y = obs[1]
        ball_y = obs[13]
        fy = np.clip(self.gain * (ball_y - my_y), -1, 1)
        jitter = float(rng.normal(0.0, 0.25))
        return np.array([0.0, fy + jitter, 0.5])
