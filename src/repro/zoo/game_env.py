"""Single-agent view of a two-player game for victim pretraining."""

from __future__ import annotations

import numpy as np

from ..envs.core import Env
from ..envs.multiagent.core import TwoPlayerEnv

__all__ = ["VictimGameEnv"]


class VictimGameEnv(Env):
    """Expose a game's victim seat as a standard Env vs a fixed opponent."""

    def __init__(self, game: TwoPlayerEnv, opponent, seed: int = 0):
        super().__init__()
        self.game = game
        self.opponent = opponent
        self.observation_space = game.victim_observation_space
        self.action_space = game.victim_action_space
        self._opponent_rng = np.random.default_rng(seed)
        self._adversary_obs: np.ndarray | None = None

    def seed(self, seed: int | None) -> None:
        super().seed(seed)
        self.game.seed(seed)
        self._opponent_rng = np.random.default_rng(None if seed is None else seed + 1)

    def _reset(self) -> np.ndarray:
        victim_obs, adversary_obs = self.game.reset()
        self._adversary_obs = adversary_obs
        if hasattr(self.opponent, "reset"):
            self.opponent.reset()
        return victim_obs

    def step(self, action):
        opp_action = self.opponent.action(self._adversary_obs, self._opponent_rng)
        (victim_obs, adversary_obs), (r_v, _), done, info = self.game.step(action, opp_action)
        self._adversary_obs = adversary_obs
        info = dict(info)
        info["success"] = bool(info.get("victim_win", False))
        return victim_obs, r_v, done, False, info
