"""Victim zoo: train-and-cache victims per (env, defense, config, seed).

Victims live in the content-addressed :class:`~repro.store.ArtifactStore`
(default ``$REPRO_ARTIFACTS/store``), keyed by the SHA-256 of the full
training spec — env id, defense name, the complete
:class:`~repro.defenses.DefenseTrainConfig` (including its nested PPO
config), budget tag, seed, and the code-version tag.  Any change to any
of those fields produces a different key, so a cached victim can never
be served for a request it wasn't trained for.  Sparse tasks train on
their shaped-reward twins (the victim's private reward); evaluation
always runs on the published task.
"""

from __future__ import annotations

import dataclasses
import os
import warnings
from dataclasses import replace
from pathlib import Path

import numpy as np

from ..defenses import DefenseTrainConfig, get_defense
from ..envs import make, make_game
from ..envs.core import TimeLimit
from ..envs.locomotion import LocomotionEnv
from ..envs.manipulation import FetchReachEnv
from ..envs.navigation import Ant4RoomsEnv, AntUMazeEnv
from ..rl.policy import ActorCritic
from ..rl.trainer import TrainConfig, train_ppo
from ..store import CODE_VERSION, ArtifactStore, default_store
from .game_env import VictimGameEnv
from .opponents import MixtureOpponent, Rammer, WeakBlocker, WeakGoalie

__all__ = ["artifacts_dir", "training_env_factory", "get_victim", "get_game_victim",
           "victim_cache_path", "victim_spec", "game_victim_spec"]


def artifacts_dir() -> Path:
    return Path(os.environ.get("REPRO_ARTIFACTS", "artifacts")) / "zoo"


def training_env_factory(env_id: str):
    """Factory for the victim's *training* environment.

    Dense tasks train where they are evaluated.  Sparse tasks train on a
    shaped-reward twin (same body/dynamics/success definition): the
    paper's victims were likewise trained with private shaped rewards the
    adversary never sees.
    """
    if env_id.startswith("Sparse"):
        def factory():
            sparse = make(env_id)
            # unwrap TimeLimit -> SparseLocomotionEnv -> inner dense env config
            inner = sparse.unwrapped
            return TimeLimit(LocomotionEnv(inner.config), 200)
        return factory
    if env_id == "AntUMaze-v0":
        return lambda: AntUMazeEnv(shaped=True)
    if env_id == "Ant4Rooms-v0":
        return lambda: Ant4RoomsEnv(shaped=True)
    if env_id == "FetchReach-v0":
        return lambda: FetchReachEnv(shaped=True)
    return lambda: make(env_id)


def victim_cache_path(env_id: str, defense: str, budget_tag: str, seed: int) -> Path:
    """Legacy pre-store zoo layout; kept for inspecting old artifact dirs.

    The store keys on the full training config — this path does not, which
    is exactly the stale-cache bug the store migration fixed.  New code
    should go through :func:`get_victim` / :class:`~repro.store.ArtifactStore`.
    """
    safe = env_id.replace("/", "_")
    return artifacts_dir() / f"{safe}__{defense}__{budget_tag}__seed{seed}.npz"


def victim_spec(env_id: str, defense: str, config: DefenseTrainConfig,
                budget_tag: str, seed: int) -> dict:
    """Content-address spec for a single-agent victim.

    Includes the *entire* defense config (nested PPO config and all), so
    e.g. two ``sa_ppo`` victims trained with different ``epsilon`` hash to
    different keys.
    """
    return {
        "kind": "victim",
        "env_id": env_id,
        "defense": defense,
        "budget_tag": budget_tag,
        "seed": seed,
        "config": dataclasses.asdict(config),
        "code_version": CODE_VERSION,
    }


def game_victim_spec(game_id: str, iterations: int, steps_per_iteration: int,
                     hidden_sizes: tuple[int, ...], hardening_iterations: int,
                     hardening_attack_iterations: int, budget_tag: str,
                     seed: int) -> dict:
    """Content-address spec for a two-player game victim."""
    return {
        "kind": "game_victim",
        "env_id": game_id,
        "defense": "selfplay",
        "budget_tag": budget_tag,
        "seed": seed,
        "config": {
            "iterations": iterations,
            "steps_per_iteration": steps_per_iteration,
            "hidden_sizes": list(hidden_sizes),
            "hardening_iterations": hardening_iterations,
            "hardening_attack_iterations": hardening_attack_iterations,
        },
        "code_version": CODE_VERSION,
    }


def _load_cached(store: ArtifactStore, spec: dict, *, env_id: str, defense: str,
                 obs_dim: int, action_dim: int,
                 hidden_sizes: tuple[int, ...]) -> ActorCritic | None:
    """Store lookup + metadata validation; None means "retrain".

    The content hash already guarantees the spec matched, but the stored
    *metadata* is re-validated against the request (env id, defense,
    dimensions, architecture) as defense in depth: a corrupted or
    hand-edited sidecar falls back to retraining instead of silently
    serving a mismatched policy.
    """
    hit = store.get(spec)
    if hit is None:
        return None
    state, entry = hit
    expected = {
        "env_id": env_id,
        "defense": defense,
        "obs_dim": obs_dim,
        "action_dim": action_dim,
        "hidden_sizes": list(hidden_sizes),
    }
    for field, want in expected.items():
        got = entry.metadata.get(field)
        if got != want:
            warnings.warn(
                f"zoo: cached victim {entry.key[:12]} metadata mismatch on "
                f"{field!r} (stored {got!r}, requested {want!r}); retraining",
                stacklevel=3,
            )
            return None
    try:
        policy = ActorCritic(obs_dim, action_dim, hidden_sizes=tuple(hidden_sizes))
        params = {k: v for k, v in state.items() if not k.startswith("__norm__")}
        policy.load_state_dict(params)
        norm = {k[len("__norm__"):]: v
                for k, v in state.items() if k.startswith("__norm__")}
        if norm:
            policy.normalizer.load(norm)
    except (KeyError, ValueError) as exc:
        warnings.warn(f"zoo: cached victim {entry.key[:12]} unloadable "
                      f"({exc}); retraining", stacklevel=3)
        return None
    policy.freeze_normalizer()
    return policy


def get_victim(env_id: str, defense: str = "ppo",
               config: DefenseTrainConfig | None = None,
               budget_tag: str = "default", seed: int = 0,
               force_retrain: bool = False,
               store: ArtifactStore | None = None) -> ActorCritic:
    """Return (training if necessary) a cached single-agent victim."""
    config = config or DefenseTrainConfig(seed=seed)
    if config.seed != seed:
        config = replace(config, seed=seed)
    store = store if store is not None else default_store()
    spec = victim_spec(env_id, defense, config, budget_tag, seed)
    factory = training_env_factory(env_id)
    probe = factory()
    obs_dim = probe.observation_space.shape[0]
    action_dim = probe.action_space.shape[0]
    if not force_retrain:
        cached = _load_cached(store, spec, env_id=env_id, defense=defense,
                              obs_dim=obs_dim, action_dim=action_dim,
                              hidden_sizes=config.hidden_sizes)
        if cached is not None:
            return cached
    trainer = get_defense(defense)
    policy = trainer(factory, config)
    store.put(spec, policy.checkpoint_state(), metadata={
        "env_id": env_id,
        "defense": defense,
        "budget_tag": budget_tag,
        "seed": seed,
        "obs_dim": obs_dim,
        "action_dim": action_dim,
        "hidden_sizes": list(config.hidden_sizes),
    })
    return policy


class _PolicyOpponent:
    """Adapter: play a trained (frozen) adversary policy as an opponent."""

    def __init__(self, policy, seed: int = 0):
        self.policy = policy
        self._rng = np.random.default_rng(seed)

    def action(self, obs, rng=None, deterministic: bool = False):
        return self.policy.action(obs, rng or self._rng, deterministic=False)


def get_game_victim(game_id: str, iterations: int = 40, steps_per_iteration: int = 2048,
                    hidden_sizes: tuple[int, ...] = (64, 64),
                    hardening_iterations: int = 30, hardening_attack_iterations: int = 15,
                    budget_tag: str = "default", seed: int = 0,
                    force_retrain: bool = False,
                    store: ArtifactStore | None = None) -> ActorCritic:
    """Return (training if necessary) a cached game victim (runner/kicker).

    The recipe proxies the paper's self-play zoo: (1) PPO against a
    mixture of scripted opponent styles, (2) one adversarial hardening
    phase — train an AP-MARL blocker against the victim, then continue
    victim training against a mixture including that learned opponent.
    Set ``hardening_iterations=0`` to skip phase 2.
    """
    store = store if store is not None else default_store()
    spec = game_victim_spec(game_id, iterations, steps_per_iteration, hidden_sizes,
                            hardening_iterations, hardening_attack_iterations,
                            budget_tag, seed)
    game = make_game(game_id)
    obs_dim = game.victim_observation_space.shape[0]
    action_dim = game.victim_action_space.shape[0]
    if not force_retrain:
        cached = _load_cached(store, spec, env_id=game_id, defense="selfplay",
                              obs_dim=obs_dim, action_dim=action_dim,
                              hidden_sizes=hidden_sizes)
        if cached is not None:
            return cached
    if game_id.startswith("YouShallNotPass"):
        scripted = [WeakBlocker(seed=seed), WeakBlocker(seed=seed + 1, aggressiveness=0.9),
                    Rammer(seed=seed)]
    else:
        scripted = [WeakGoalie(seed=seed), WeakGoalie(seed=seed + 1, gain=1.0)]
    opponent = MixtureOpponent(list(scripted), seed=seed)
    env = VictimGameEnv(game, opponent, seed=seed)
    result = train_ppo(env, TrainConfig(
        iterations=iterations, steps_per_iteration=steps_per_iteration,
        hidden_sizes=hidden_sizes, seed=seed,
    ))
    policy = result.policy

    if hardening_iterations > 0:
        from ..attacks.apmarl import train_apmarl
        from ..attacks.base import AttackConfig
        from ..attacks.threat_models import OpponentEnv

        attack = train_apmarl(
            OpponentEnv(make_game(game_id), policy),
            AttackConfig(iterations=hardening_attack_iterations,
                         steps_per_iteration=steps_per_iteration,
                         hidden_sizes=hidden_sizes, seed=seed + 31),
        )
        hardened_mix = MixtureOpponent(
            list(scripted) + [_PolicyOpponent(attack.policy, seed + 5),
                              _PolicyOpponent(attack.policy, seed + 6)],
            seed=seed + 2,
        )
        env2 = VictimGameEnv(make_game(game_id), hardened_mix, seed=seed + 3)
        result = train_ppo(env2, TrainConfig(
            iterations=hardening_iterations, steps_per_iteration=steps_per_iteration,
            hidden_sizes=hidden_sizes, seed=seed + 4,
        ), policy=policy)
        policy = result.policy

    policy.freeze_normalizer()
    store.put(spec, policy.checkpoint_state(), metadata={
        "env_id": game_id,
        "defense": "selfplay",
        "budget_tag": budget_tag,
        "seed": seed,
        "obs_dim": obs_dim,
        "action_dim": action_dim,
        "hidden_sizes": list(hidden_sizes),
    })
    return policy
