"""Line-delimited JSON server over a Unix domain socket.

One connection may multiplex many submissions: each ``submit`` carries a
client-chosen ``id`` that the server echoes on every event it streams
back for that request, so responses from concurrent evaluations can
interleave on the wire without ambiguity.  All writes for a connection
are funneled through one queue + writer task — event callbacks fire from
many request tasks, and per-message ordering must survive that.

Ops: ``submit`` (stream lifecycle events, ending in ``result`` or
``error``), ``status`` (counters + occupancy), ``ping``, ``shutdown``.
"""

from __future__ import annotations

import asyncio
import contextlib
from pathlib import Path

from .protocol import MAX_LINE_BYTES, ProtocolError, decode_message, encode_message
from .service import EvalService, ServeError

__all__ = ["run_server", "serve_forever"]


class _Connection:
    """One client connection: a send queue and the tasks it spawned."""

    def __init__(self, writer: asyncio.StreamWriter):
        self.writer = writer
        self.queue: asyncio.Queue[dict | None] = asyncio.Queue()
        self.tasks: set[asyncio.Task] = set()

    def send(self, message: dict) -> None:
        self.queue.put_nowait(message)

    async def drain_writes(self) -> None:
        while True:
            message = await self.queue.get()
            if message is None:
                return
            try:
                self.writer.write(encode_message(message))
                await self.writer.drain()
            except (ConnectionError, ProtocolError):
                return


async def _handle_submit(service: EvalService, conn: _Connection,
                         message: dict) -> None:
    request_id = message.get("id")
    request = message.get("request")

    def send(event: dict) -> None:
        conn.send(dict(event, id=request_id))

    if not isinstance(request, dict):
        send({"event": "error", "error": "submit: missing 'request' object",
              "error_kind": "protocol"})
        return
    try:
        await service.submit(request, on_event=send)
    except ProtocolError as exc:
        send({"event": "error", "error": str(exc), "error_kind": "protocol"})
    except ServeError:
        pass  # submit already emitted the error event through on_event
    except Exception as exc:  # noqa: BLE001 — a request must not kill the server
        send({"event": "error", "error": f"{type(exc).__name__}: {exc}",
              "error_kind": "crash"})


async def _handle_connection(service: EvalService, stop: asyncio.Event,
                             handlers: set[asyncio.Task],
                             connections: set["_Connection"],
                             reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
    conn = _Connection(writer)
    handlers.add(asyncio.current_task())
    connections.add(conn)
    writer_task = asyncio.create_task(conn.drain_writes())
    try:
        while True:
            try:
                line = await reader.readline()
            except (ConnectionError, asyncio.LimitOverrunError):
                break
            if not line:
                break
            try:
                message = decode_message(line)
            except ProtocolError as exc:
                conn.send({"event": "error", "error": str(exc),
                           "error_kind": "protocol"})
                continue
            op = message.get("op")
            if op == "submit":
                task = asyncio.create_task(
                    _handle_submit(service, conn, message))
                conn.tasks.add(task)
                task.add_done_callback(conn.tasks.discard)
            elif op == "status":
                conn.send(dict(service.stats(), event="status",
                               id=message.get("id")))
            elif op == "ping":
                conn.send({"event": "pong", "id": message.get("id")})
            elif op == "shutdown":
                conn.send({"event": "shutting_down", "id": message.get("id")})
                stop.set()
            else:
                conn.send({"event": "error", "id": message.get("id"),
                           "error": f"unknown op {op!r}",
                           "error_kind": "protocol"})
    finally:
        connections.discard(conn)
        # Let in-flight submissions finish streaming before closing.
        if conn.tasks:
            await asyncio.gather(*conn.tasks, return_exceptions=True)
        conn.send(None)
        with contextlib.suppress(Exception):
            await writer_task
        # close() without wait_closed(): the transport finishes closing on
        # its own, and awaiting here races loop teardown on shutdown.
        with contextlib.suppress(Exception):
            writer.close()
        handlers.discard(asyncio.current_task())


async def serve_forever(service: EvalService, socket_path: str | Path,
                        ready: asyncio.Event | None = None) -> None:
    """Accept connections on ``socket_path`` until a client asks to stop."""
    socket_path = Path(socket_path)
    socket_path.parent.mkdir(parents=True, exist_ok=True)
    with contextlib.suppress(OSError):
        socket_path.unlink()
    stop = asyncio.Event()
    handlers: set[asyncio.Task] = set()
    connections: set[_Connection] = set()
    server = await asyncio.start_unix_server(
        lambda r, w: _handle_connection(service, stop, handlers,
                                        connections, r, w),
        path=str(socket_path), limit=MAX_LINE_BYTES)
    if ready is not None:
        ready.set()
    try:
        async with server:
            await stop.wait()
            # Feed EOF to every open connection (readline returns b'')
            # and wait for the handlers to unwind on their own — leaving
            # them to be cancelled at loop teardown is noisy on 3.11.
            for conn in list(connections):
                with contextlib.suppress(Exception):
                    conn.writer.close()
            if handlers:
                await asyncio.wait(list(handlers), timeout=10.0)
    finally:
        service.close()  # stop the persistent worker-lane pool
        with contextlib.suppress(OSError):
            socket_path.unlink()


def run_server(service: EvalService, socket_path: str | Path) -> None:
    """Blocking entry point (used by ``python -m repro.serve``)."""
    asyncio.run(serve_forever(service, socket_path))
