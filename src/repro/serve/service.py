"""The evaluation service core: dedup → coalesce → schedule → stream.

:class:`EvalService` is the transport-independent heart of
``repro.serve`` (the socket server wraps it; tests drive it directly).
One submission flows through four layers:

1. **Dedup** — the request is canonicalized to a content address; if the
   store already holds that artifact the stored payload is returned in
   milliseconds without touching a worker.
2. **Coalesce** — N identical requests in flight share one computation:
   the first creates an in-flight future keyed by content address,
   the rest await it.
3. **Schedule** — a genuine miss is computed on one of two lanes that
   produce bit-identical results (both run the canonical batched
   evaluator): the *inline* lane evaluates warm, training-free requests
   in-process with micro-batched forward passes; everything that needs
   training (or fault injection) goes to a persistent
   :class:`~repro.runtime.pool.WorkerPool` worker via
   :func:`~repro.runtime.scheduler.run_parallel` — deadline kills,
   retries, and the ``error_kind`` taxonomy included, without paying a
   process spawn per request.
4. **Stream** — lifecycle events (``queued → cached | coalesced |
   scheduled → progress* → result | error``) are pushed to the caller's
   ``on_event`` callback; worker-lane progress is tailed from the
   worker's JSONL telemetry stream.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

from ..attacks import RandomAttackPolicy
from ..envs import make
from ..rl.policy import ActorCritic
from ..runtime.pool import WorkerPool
from ..runtime.scheduler import Job, run_parallel
from ..runtime.supervisor import classify_exception
from ..store import ArtifactStore, spec_key
from ..telemetry import MetricsRegistry, Telemetry
from ..zoo.train import _load_cached, training_env_factory
from .batcher import batched_evaluate
from .compute import compute_request, victim_store_spec, victim_train_config
from .protocol import ProtocolError, normalize_request, request_spec
from .request_cache import RequestCache

__all__ = ["ServeConfig", "ServeError", "EvalService"]


@dataclass
class ServeConfig:
    """Service policy knobs (transport-independent)."""

    # Evaluate training-free requests with a warm victim in-process,
    # micro-batching their forward passes.  Off → everything is a job.
    inline_eval: bool = True
    # Concurrent supervised worker jobs (each is its own process).
    max_workers: int = 2
    # Per-job wall-clock budget; routes jobs through the watchdog
    # supervisor so a hung evaluation is killed and classified "timeout".
    job_timeout: float | None = 600.0
    # Failed jobs are requeued up to this many extra times.
    retries: int = 1
    retry_backoff: float = 0.0
    # In-process LRU of loaded victim policies for the inline lane.
    policy_cache_size: int = 8
    # Honor the request's "fault" section (chaos tests/CI only).
    allow_fault_injection: bool = False
    # Keep a persistent WorkerPool for the worker lane instead of
    # spawning a fresh supervised process per job: the pool workers are
    # created once (lazily, on the first scheduled job) and reused, so a
    # busy service pays the interpreter/import start-up tax max_workers
    # times total rather than once per request.  Watchdog semantics
    # (job_timeout, heartbeats, error_kind taxonomy) are identical.
    persistent_pool: bool = True
    # Worker progress files are polled at this interval (seconds).
    progress_poll: float = 0.05


class ServeError(RuntimeError):
    """A request failed; ``error_kind`` carries the supervisor taxonomy."""

    def __init__(self, message: str, error_kind: str = "crash"):
        super().__init__(message)
        self.error_kind = error_kind


class EvalService:
    """Async attack-evaluation service over one artifact store."""

    def __init__(self, store: ArtifactStore, config: ServeConfig | None = None,
                 telemetry: Telemetry | None = None):
        self.store = store
        self.config = config or ServeConfig()
        self.telemetry = telemetry
        self.metrics = telemetry.metrics if telemetry is not None else MetricsRegistry()
        self.cache = RequestCache(store)
        self._inflight: dict[str, asyncio.Future] = {}
        self._worker_slots = asyncio.Semaphore(max(1, self.config.max_workers))
        self._policies: OrderedDict[str, ActorCritic] = OrderedDict()
        self._probe_dims: dict[str, tuple[int, int]] = {}
        # Persistent worker-lane pool: created lazily by the first
        # scheduled job (inline-only workloads never fork a worker),
        # shared by every subsequent one.  Guarded by a lock because
        # _schedule runs run_parallel on asyncio worker threads.
        self._pool: WorkerPool | None = None
        self._pool_guard = threading.Lock()

    def _worker_pool(self) -> WorkerPool | None:
        if not self.config.persistent_pool:
            return None
        with self._pool_guard:
            if self._pool is None:
                self._pool = WorkerPool(
                    max_workers=max(1, self.config.max_workers))
            return self._pool

    def close(self) -> None:
        """Release the worker pool (idempotent; the server calls this)."""
        with self._pool_guard:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.close()

    # -------------------------------------------------------------- metrics

    def _count(self, name: str, amount: float = 1.0) -> None:
        self.metrics.counter(name).inc(amount)

    def _event(self, event_type: str, payload: dict) -> None:
        if self.telemetry is not None:
            self.telemetry.event(event_type, payload=payload)

    def stats(self) -> dict:
        """Counter snapshot plus live in-flight occupancy."""
        snapshot = self.metrics.snapshot()
        counters = {name: value for name, value in snapshot.get("counters", {}).items()}
        return {"counters": counters, "inflight": len(self._inflight),
                "policy_cache": len(self._policies)}

    # --------------------------------------------------------------- submit

    async def submit(self, request: dict, on_event=None) -> dict:
        """Serve one request; streams lifecycle events to ``on_event``.

        Returns the result payload (with ``cached``/``coalesced`` flags).
        Raises :class:`ServeError` (carrying ``error_kind``) on failure;
        malformed requests raise
        :class:`~repro.serve.protocol.ProtocolError` before any work.
        """
        def emit(event: dict) -> None:
            if on_event is not None:
                on_event(event)

        normalized = normalize_request(request)
        if "fault" in normalized and not self.config.allow_fault_injection:
            raise ProtocolError(
                "request carries a fault section but fault injection is "
                "disabled on this server")
        spec = request_spec(normalized)
        key = spec_key(spec)
        self._count("serve.requests")
        emit({"event": "queued", "key": key})
        self._event("serve.request", {"key": key})

        start = asyncio.get_running_loop().time()
        payload = self.cache.lookup(spec)
        if payload is not None:
            self._count("serve.cache_hits")
            self._observe_latency(start)
            emit({"event": "cached", "key": key})
            payload = dict(payload, cached=True, coalesced=False)
            emit({"event": "result", "payload": payload})
            return payload
        self._count("serve.cache_misses")

        inflight = self._inflight.get(key)
        if inflight is not None:
            self._count("serve.coalesced")
            emit({"event": "coalesced", "key": key})
            try:
                payload = await asyncio.shield(inflight)
            except Exception as exc:  # noqa: BLE001 — mirror the computing waiter
                raise self._as_serve_error(exc, emit) from exc
            self._observe_latency(start)
            payload = dict(payload, cached=False, coalesced=True)
            emit({"event": "result", "payload": payload})
            return payload

        future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        try:
            payload = await self._compute(normalized, spec, key, emit)
        except BaseException as exc:
            future.set_exception(exc)
            # Consume the exception once so an un-coalesced failure does
            # not warn "exception was never retrieved" at GC time.
            with contextlib.suppress(BaseException):
                future.exception()
            del self._inflight[key]
            if isinstance(exc, Exception):
                raise self._as_serve_error(exc, emit) from exc
            raise
        else:
            future.set_result(payload)
            del self._inflight[key]
        self._count("serve.computed")
        self._observe_latency(start)
        payload = dict(payload, cached=False, coalesced=False)
        emit({"event": "result", "payload": payload})
        return payload

    def _observe_latency(self, start: float) -> None:
        elapsed = asyncio.get_running_loop().time() - start
        self.metrics.observe_duration("serve.latency", elapsed)

    def _as_serve_error(self, exc: Exception, emit) -> ServeError:
        if isinstance(exc, ServeError):
            error = exc
        else:
            error = ServeError(f"{type(exc).__name__}: {exc}",
                               error_kind=classify_exception(exc))
        self._count("serve.errors")
        emit({"event": "error", "error": str(error),
              "error_kind": error.error_kind})
        return error

    # ---------------------------------------------------------------- lanes

    async def _compute(self, normalized: dict, spec: dict, key: str,
                       emit) -> dict:
        if (self.config.inline_eval
                and normalized["attack"]["kind"] in ("none", "random")
                and "fault" not in normalized
                and self._victim_available(normalized)):
            return await self._evaluate_inline(normalized, spec, key, emit)
        return await self._schedule(normalized, key, emit)

    # -- inline lane ---------------------------------------------------------

    def _victim_available(self, normalized: dict) -> bool:
        vkey = spec_key(victim_store_spec(normalized))
        return vkey in self._policies or self.store.entry_by_key(vkey) is not None

    def _probe(self, env_id: str) -> tuple[int, int]:
        dims = self._probe_dims.get(env_id)
        if dims is None:
            probe = training_env_factory(env_id)()
            dims = (probe.observation_space.shape[0],
                    probe.action_space.shape[0])
            self._probe_dims[env_id] = dims
        return dims

    def _victim(self, normalized: dict) -> ActorCritic:
        vkey = spec_key(victim_store_spec(normalized))
        policy = self._policies.get(vkey)
        if policy is not None:
            self._policies.move_to_end(vkey)
            return policy
        obs_dim, action_dim = self._probe(normalized["env_id"])
        config = victim_train_config(normalized)
        policy = _load_cached(
            self.store, victim_store_spec(normalized),
            env_id=normalized["env_id"],
            defense=normalized["victim"]["defense"],
            obs_dim=obs_dim, action_dim=action_dim,
            hidden_sizes=config.hidden_sizes)
        if policy is None:
            raise ServeError("victim artifact vanished or failed validation "
                             "between lookup and load", error_kind="crash")
        self._policies[vkey] = policy
        while len(self._policies) > max(1, self.config.policy_cache_size):
            self._policies.popitem(last=False)
        return policy

    async def _evaluate_inline(self, normalized: dict, spec: dict, key: str,
                               emit) -> dict:
        emit({"event": "scheduled", "lane": "inline", "key": key})
        self._count("serve.inline_evals")
        victim = self._victim(normalized)
        attack_policy = None
        if normalized["attack"]["kind"] == "random":
            obs_dim, _ = self._probe(normalized["env_id"])
            attack_policy = RandomAttackPolicy(obs_dim,
                                               seed=normalized["eval"]["seed"])
        threat = normalized["threat"]
        env_id = normalized["env_id"]

        def on_progress(done: int, total: int) -> None:
            emit({"event": "progress", "key": key,
                  "payload": {"episodes_done": done, "episodes": total}})

        evaluation = await batched_evaluate(
            lambda: make(env_id), victim,
            episodes=normalized["eval"]["episodes"],
            seed=normalized["eval"]["seed"],
            attack_policy=attack_policy,
            epsilon=threat.get("epsilon", 0.0),
            norm=threat.get("norm", "linf"),
            telemetry=self.telemetry,
            on_progress=on_progress)
        return self.cache.store_result(spec, evaluation,
                                       metadata={"lane": "inline"})

    # -- worker lane ---------------------------------------------------------

    def _progress_path(self, key: str) -> Path:
        return self.store.root / "serve" / "progress" / f"{key}.jsonl"

    async def _schedule(self, normalized: dict, key: str, emit) -> dict:
        emit({"event": "scheduled", "lane": "worker", "key": key})
        self._count("serve.scheduled_jobs")
        progress_path = self._progress_path(key)
        progress_path.parent.mkdir(parents=True, exist_ok=True)
        with contextlib.suppress(OSError):
            progress_path.unlink()
        job = Job(fn=compute_request,
                  args=(normalized, str(self.store.root), str(progress_path)),
                  name=f"serve:{key[:12]}",
                  timeout=self.config.job_timeout)
        async with self._worker_slots:
            tail = asyncio.create_task(
                self._tail_progress(progress_path, key, emit))
            try:
                report = await asyncio.to_thread(
                    run_parallel, [job], max_workers=1,
                    retries=self.config.retries,
                    retry_backoff=self.config.retry_backoff,
                    telemetry=self.telemetry,
                    pool=self._worker_pool())
            finally:
                tail.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await tail
        result = report.results[0]
        if not result.ok:
            raise ServeError(result.error or "job failed",
                             error_kind=result.error_kind or "crash")
        return result.value

    async def _tail_progress(self, path: Path, key: str, emit) -> None:
        """Forward the worker's JSONL telemetry stream as progress events."""
        position = 0

        def drain() -> None:
            nonlocal position
            try:
                with open(path, "rb") as fh:
                    fh.seek(position)
                    chunk = fh.read()
            except OSError:
                return
            if not chunk:
                return
            # Only complete lines: a partially flushed line stays for the
            # next poll.
            end = chunk.rfind(b"\n")
            if end < 0:
                return
            position += end + 1
            for line in chunk[:end].splitlines():
                try:
                    event = json.loads(line)
                except json.JSONDecodeError:
                    continue
                emit({"event": "progress", "key": key,
                      "type": event.get("type"),
                      "payload": event.get("payload", {})})

        try:
            while True:
                await asyncio.sleep(self.config.progress_poll)
                drain()
        finally:
            drain()  # the job just finished; flush whatever remains
