"""``python -m repro.serve`` — boot the evaluation service on a socket."""

from __future__ import annotations

import argparse
import os
from pathlib import Path

from ..store import ArtifactStore
from ..telemetry import JsonlEventSink, Telemetry
from .server import run_server
from .service import EvalService, ServeConfig


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Persistent attack-evaluation service (line-delimited "
                    "JSON over a Unix socket).")
    parser.add_argument("--socket", required=True,
                        help="Unix socket path to listen on")
    parser.add_argument("--store-dir", default=None,
                        help="artifact store root (default: $REPRO_ARTIFACTS "
                             "or ./artifacts)")
    parser.add_argument("--workers", type=int, default=2,
                        help="concurrent supervised worker jobs")
    parser.add_argument("--job-timeout", type=float, default=600.0,
                        help="per-job wall-clock budget in seconds")
    parser.add_argument("--retries", type=int, default=1,
                        help="extra attempts for failed jobs")
    parser.add_argument("--no-inline", action="store_true",
                        help="disable the in-process evaluation lane")
    parser.add_argument("--allow-fault-injection", action="store_true",
                        help="honor request 'fault' sections (chaos/CI only)")
    parser.add_argument("--store-cache", type=int, default=32,
                        help="in-process LRU size for store blobs (0=off)")
    parser.add_argument("--telemetry-dir", default=None,
                        help="write server telemetry JSONL under this dir")
    args = parser.parse_args(argv)

    store_root = args.store_dir or os.environ.get("REPRO_ARTIFACTS", "artifacts")
    telemetry = None
    if args.telemetry_dir is not None:
        events = Path(args.telemetry_dir) / "serve_events.jsonl"
        events.parent.mkdir(parents=True, exist_ok=True)
        telemetry = Telemetry(sink=JsonlEventSink(events, buffer_size=1))
    store = ArtifactStore(store_root, telemetry=telemetry,
                          cache_size=args.store_cache)
    config = ServeConfig(
        inline_eval=not args.no_inline,
        max_workers=args.workers,
        job_timeout=args.job_timeout,
        retries=args.retries,
        allow_fault_injection=args.allow_fault_injection,
    )
    service = EvalService(store, config=config, telemetry=telemetry)
    print(f"repro.serve listening on {args.socket} (store: {store.root})",
          flush=True)
    try:
        run_server(service, args.socket)
    except KeyboardInterrupt:
        pass
    finally:
        if telemetry is not None:
            telemetry.sink.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
