"""repro.serve — persistent async attack-evaluation service.

A long-lived front end for robustness evaluation: requests (victim spec
+ threat model + attack budget) are canonicalized to content addresses,
answered from the artifact store when warm, coalesced when identical
requests are in flight, and otherwise scheduled — training-free work on
an in-process micro-batched lane, everything else through the supervised
worker pool with deadlines, retries, and the ``error_kind`` taxonomy.
Progress streams as line-delimited JSON over a local socket; tests use
the in-process :class:`LocalClient`.
"""

from .batcher import MicroBatcher, batched_evaluate, run_batched_evaluate
from .client import LocalClient, ServeClient
from .compute import compute_request
from .protocol import (
    ProtocolError,
    decode_message,
    encode_message,
    normalize_request,
    request_key,
    request_spec,
)
from .request_cache import RequestCache
from .server import run_server
from .service import EvalService, ServeConfig, ServeError

__all__ = [
    "EvalService", "ServeConfig", "ServeError",
    "MicroBatcher", "batched_evaluate", "run_batched_evaluate",
    "ProtocolError", "normalize_request", "request_spec", "request_key",
    "encode_message", "decode_message",
    "RequestCache", "compute_request",
    "ServeClient", "LocalClient", "run_server",
]
