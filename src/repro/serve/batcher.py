"""Micro-batching inference lane with a deterministic composition contract.

Concurrent episode coroutines submit single-observation forward passes;
the :class:`MicroBatcher` holds them until every live member has one
pending, then services each policy's group with a single
:meth:`~repro.rl.policy.ActorCritic.act_batch` call and wakes everyone.

**Why composition is per-request, not per-server:** batched float64
matmul is *not* bit-identical row-wise to single-row forwards (BLAS
blocks differently), and trajectories are chaotic — one low-order action
bit diverges into macroscopically different episode rewards.  If the
batch mixed forwards from whatever requests happened to be in flight,
the number a request gets (and the artifact the store then caches
forever) would depend on server load.  So the batch is defined as *the
request's own live episodes, in episode-index order*: a pure function of
the request, bit-reproducible no matter what else the server is doing,
identical between the in-server lane and a supervisor worker process.

:func:`batched_evaluate` is that canonical evaluator: it runs a
request's episodes as concurrent coroutines (each with its own
``SeedSequence``-derived env seed and RNG, so per-episode randomness is
order-independent), funnels every victim/attacker forward pass through
one batcher, and assembles an :class:`~repro.eval.AttackEvaluation` in
episode order.  It intentionally differs from the sequential
:func:`~repro.eval.evaluate_single_agent` protocol (shared env/RNG,
serial episodes) — the serve result contract is *this* evaluator, in
every lane.
"""

from __future__ import annotations

import asyncio
from typing import Callable

import numpy as np

from ..attacks.threat_models import project_perturbation
from ..envs.core import Env
from ..eval.harness import AttackEvaluation
from ..rl.policy import ActorCritic
from ..runtime.scheduler import derive_job_seeds

__all__ = ["MicroBatcher", "batched_evaluate", "run_batched_evaluate"]

# act_batch requires an rng parameter; mode (deterministic) forwards never
# draw from it, so one shared dummy generator is safe and stateless here.
_MODE_RNG = np.random.default_rng(0)


class MicroBatcher:
    """Collects concurrent forward passes into single ``act_batch`` calls.

    Members (episode indices) :meth:`join` before submitting and
    :meth:`leave` when their episode ends.  A flush happens exactly when
    every current member has a pending submission, so batch contents are
    ``[live episodes, in index order]`` — deterministic for a given
    request regardless of event-loop scheduling.  Groups are formed per
    policy object (attacker and victim forwards flush as separate
    ``act_batch`` calls, which is also what keeps their shapes uniform).
    """

    def __init__(self, telemetry=None):
        self._members: set[int] = set()
        self._pending: dict[int, tuple[object, np.ndarray, asyncio.Future]] = {}
        self._telemetry = telemetry
        # Introspection for tests/benchmarks: forwards requested vs
        # act_batch calls actually issued.
        self.calls = 0
        self.items = 0

    def join(self, member: int) -> None:
        if member in self._members:
            raise ValueError(f"member {member} already joined")
        self._members.add(member)

    def leave(self, member: int) -> None:
        self._members.discard(member)
        pending = self._pending.pop(member, None)
        if pending is not None and not pending[2].done():
            pending[2].cancel()
        self._maybe_flush()

    async def act(self, member: int, policy: ActorCritic,
                  normalized_obs: np.ndarray) -> np.ndarray:
        """Deterministic (mode) action for one member's observation.

        ``normalized_obs`` must already be normalized — batching happens
        below the normalizer, exactly where ``act_batch`` expects it.
        """
        if member not in self._members:
            raise ValueError(f"member {member} must join before submitting")
        if member in self._pending:
            raise ValueError(f"member {member} already has a pending forward")
        future = asyncio.get_running_loop().create_future()
        self._pending[member] = (policy, np.asarray(normalized_obs,
                                                    dtype=np.float64), future)
        self._maybe_flush()
        return await future

    def _maybe_flush(self) -> None:
        if not self._members or set(self._pending) != self._members:
            return
        pending, self._pending = self._pending, {}
        groups: dict[int, tuple[object, list[int]]] = {}
        for member in sorted(pending):
            policy = pending[member][0]
            groups.setdefault(id(policy), (policy, []))[1].append(member)
        for policy, members in groups.values():
            batch = np.stack([pending[m][1] for m in members])
            try:
                actions, _, _, _, _ = policy.act_batch(
                    batch, _MODE_RNG, deterministic=True)
            except Exception as exc:  # noqa: BLE001 — fail the waiters, not the loop
                for m in members:
                    future = pending[m][2]
                    if not future.done():
                        future.set_exception(exc)
                continue
            self.calls += 1
            self.items += len(members)
            if self._telemetry is not None:
                self._telemetry.metrics.counter("serve.batch.calls").inc()
                self._telemetry.metrics.counter("serve.batch.items").inc(len(members))
            for row, m in enumerate(members):
                future = pending[m][2]
                if not future.done():
                    future.set_result(actions[row].copy())


async def batched_evaluate(
    env_factory: Callable[[], Env],
    victim: ActorCritic,
    *,
    episodes: int,
    seed: int,
    attack_policy=None,
    epsilon: float = 0.0,
    norm: str = "linf",
    batcher: MicroBatcher | None = None,
    telemetry=None,
    on_progress: Callable[[int, int], None] | None = None,
) -> AttackEvaluation:
    """Canonical serve-lane evaluation: concurrent episodes, batched forwards.

    ``attack_policy=None`` evaluates the clean victim.  A policy exposing
    ``act_batch`` (a trained adversary) is batched deterministically; any
    other policy (e.g. :class:`~repro.attacks.RandomAttackPolicy`) is
    called per-step with the episode's own RNG.  Per-episode env seeds
    and RNGs come from ``derive_job_seeds(seed, episodes)``, so every
    episode's randomness is independent of scheduling order and the
    result is a pure function of the arguments.
    """
    if episodes <= 0:
        raise ValueError(f"episodes must be positive, got {episodes}")
    batcher = batcher or MicroBatcher(telemetry=telemetry)
    seeds = derive_job_seeds(seed, episodes)
    results: list[tuple[float, bool, int] | None] = [None] * episodes
    done_count = 0
    batchable_attack = attack_policy is not None and hasattr(attack_policy, "act_batch")

    async def episode(i: int) -> None:
        nonlocal done_count
        env = env_factory()
        env.seed(seeds[i])
        rng = np.random.default_rng(seeds[i] + 1)
        ep_reward, ep_len, ep_success = 0.0, 0, False
        try:
            obs = env.reset()
            normalized = victim.normalize(obs)
            done = False
            while not done:
                if attack_policy is None:
                    victim_view = normalized
                else:
                    if batchable_attack:
                        raw = await batcher.act(i, attack_policy, normalized)
                    else:
                        raw = attack_policy.action(normalized, rng)
                    delta = project_perturbation(raw, epsilon, norm)
                    victim_view = normalized + delta
                action = await batcher.act(i, victim, victim_view)
                obs, reward, terminated, truncated, info = env.step(action)
                normalized = victim.normalize(obs)
                done = terminated or truncated
                ep_reward += float(reward)
                ep_len += 1
                ep_success = ep_success or bool(info.get("success", False))
        finally:
            batcher.leave(i)
        results[i] = (ep_reward, ep_success, ep_len)
        done_count += 1
        if on_progress is not None:
            on_progress(done_count, episodes)

    for i in range(episodes):
        batcher.join(i)
    tasks = [asyncio.create_task(episode(i)) for i in range(episodes)]
    try:
        await asyncio.gather(*tasks)
    except BaseException:
        for task in tasks:
            task.cancel()
        await asyncio.gather(*tasks, return_exceptions=True)
        raise

    evaluation = AttackEvaluation()
    for outcome in results:
        assert outcome is not None
        reward, success, length = outcome
        evaluation.episode_rewards.append(reward)
        evaluation.episode_successes.append(success)
        evaluation.episode_lengths.append(length)
    return evaluation


def run_batched_evaluate(*args, **kwargs) -> AttackEvaluation:
    """Synchronous entry to :func:`batched_evaluate` for worker processes."""
    return asyncio.run(batched_evaluate(*args, **kwargs))
