"""Worker-side request computation: train what's missing, evaluate, persist.

This is the function the service schedules through the PR 4 supervisor
(:func:`~repro.runtime.scheduler.run_parallel` with a per-job timeout),
so it must be importable and picklable at module level and entirely
self-contained: it opens its own store, installs its own telemetry (a
line-buffered JSONL sink on ``progress_path`` that the server tails to
stream progress to the client), and returns the JSON-safe payload.

Victims and trained attacks are themselves content-addressed artifacts
(the PR 3 zoo/attack caches), so only genuinely novel work trains
anything; the evaluation phase always runs through the *same* canonical
:func:`~repro.serve.batcher.batched_evaluate` the in-server lane uses,
which is what makes the spec → result mapping lane-independent.
"""

from __future__ import annotations

import contextlib
import time
from dataclasses import replace

from ..attacks import AttackConfig, RandomAttackPolicy
from ..attacks.threat_models import default_epsilon
from ..defenses import DefenseTrainConfig
from ..envs import make
from ..experiments.runner import (
    _load_cached_attack,
    _store_attack,
    attack_spec,
    make_adversary_env,
    parse_attack_name,
)
from ..rl.health import NumericalDivergence
from ..store import ArtifactStore
from ..telemetry import JsonlEventSink, Telemetry, use_telemetry
from ..zoo import get_victim
from .batcher import run_batched_evaluate
from .protocol import normalize_request, request_spec
from .request_cache import RequestCache

__all__ = ["compute_request", "victim_train_config", "victim_store_spec"]


def victim_train_config(normalized: dict) -> DefenseTrainConfig:
    """The victim's training config implied by a normalized request.

    The defense trains for the env's published robustness budget (as the
    experiment runner does), independent of the threat ε being evaluated
    — a victim is one artifact however many budgets it is probed at.
    """
    victim = normalized["victim"]
    config = DefenseTrainConfig(
        iterations=victim["iterations"],
        steps_per_iteration=victim["steps_per_iteration"],
        hidden_sizes=tuple(victim["hidden_sizes"]),
        seed=victim["seed"],
        epsilon=default_epsilon(normalized["env_id"]),
    )
    if config.seed != victim["seed"]:
        config = replace(config, seed=victim["seed"])
    return config


def victim_store_spec(normalized: dict) -> dict:
    """The zoo's content-address spec for this request's victim."""
    from ..zoo.train import victim_spec

    victim = normalized["victim"]
    return victim_spec(normalized["env_id"], victim["defense"],
                       victim_train_config(normalized), victim["budget_tag"],
                       victim["seed"])


def _apply_fault(fault: dict | None) -> None:
    """Deterministic injected failures for chaos coverage of the service.

    ``crash`` exercises the ``error_kind="crash"`` path, ``numerical``
    the health-guard taxonomy, and ``hang`` parks the worker until the
    supervisor's deadline kill (``error_kind="timeout"``).
    """
    if not fault:
        return
    kind = fault["kind"]
    if kind == "crash":
        raise RuntimeError("injected fault: crash")
    if kind == "numerical":
        raise NumericalDivergence("injected fault: numerical divergence")
    if kind == "hang":
        while True:
            time.sleep(60.0)
    raise ValueError(f"unknown fault kind {kind!r}")


def _attack_policy(normalized: dict, victim, store: ArtifactStore,
                   telemetry=None):
    """None (clean), a random-noise policy, or a (cached) trained adversary."""
    kind = normalized["attack"]["kind"]
    if kind == "none":
        return None
    if kind == "random":
        probe = make(normalized["env_id"])
        return RandomAttackPolicy(probe.observation_space.shape[0],
                                  seed=normalized["eval"]["seed"])
    attack = normalized["attack"]
    epsilon = normalized["threat"]["epsilon"]
    config = AttackConfig(iterations=attack["iterations"],
                          steps_per_iteration=attack["steps_per_iteration"],
                          seed=attack["seed"])
    key_spec = attack_spec("attack", normalized["env_id"], kind, config,
                           victim, epsilon=epsilon, n_envs=1)
    cached = _load_cached_attack(store, key_spec)
    if cached is not None:
        return cached.policy
    spec = parse_attack_name(kind)
    adv_env = make_adversary_env(normalized["env_id"], victim, epsilon,
                                 seed=attack["seed"])
    if spec["family"] == "sarl":
        from ..attacks import train_sarl

        result = train_sarl(adv_env, config)
    else:
        from ..attacks import train_imap

        result = train_imap(adv_env, spec["regularizer"], config,
                            use_bias_reduction=spec["use_br"])
    _store_attack(store, key_spec, result, config)
    return result.policy


def compute_request(request: dict, store_root: str,
                    progress_path: str | None = None) -> dict:
    """Compute (or re-serve) one robustness-evaluation request.

    Idempotent: if the artifact already exists — another worker won the
    race, or this is a retry after a mid-evaluation kill — the stored
    payload is returned without recomputation.
    """
    normalized = normalize_request(request)
    spec = request_spec(normalized)
    store = ArtifactStore(store_root)
    cache = RequestCache(store)

    if progress_path is not None:
        telemetry = Telemetry(sink=JsonlEventSink(progress_path, buffer_size=1))
        context = use_telemetry(telemetry)
    else:
        telemetry = None
        context = contextlib.nullcontext()

    with context:
        try:
            _apply_fault(normalized.get("fault"))
            cached = cache.lookup(spec)
            if cached is not None:
                return cached
            if telemetry is not None:
                telemetry.event("serve.phase", payload={"phase": "victim"})
            victim = get_victim(
                normalized["env_id"], normalized["victim"]["defense"],
                config=victim_train_config(normalized),
                budget_tag=normalized["victim"]["budget_tag"],
                seed=normalized["victim"]["seed"], store=store)
            if telemetry is not None:
                telemetry.event("serve.phase", payload={"phase": "attack"})
            attack_policy = _attack_policy(normalized, victim, store,
                                           telemetry=telemetry)

            if telemetry is not None:
                telemetry.event("serve.phase", payload={"phase": "evaluate"})

            def on_progress(done: int, total: int) -> None:
                if telemetry is not None:
                    telemetry.event("serve.progress", payload={
                        "episodes_done": done, "episodes": total})

            threat = normalized["threat"]
            evaluation = run_batched_evaluate(
                lambda: make(normalized["env_id"]), victim,
                episodes=normalized["eval"]["episodes"],
                seed=normalized["eval"]["seed"],
                attack_policy=attack_policy,
                epsilon=threat.get("epsilon", 0.0),
                norm=threat.get("norm", "linf"),
                telemetry=telemetry,
                on_progress=on_progress)
            payload = cache.store_result(spec, evaluation,
                                         metadata={"lane": "worker"})
            if telemetry is not None:
                telemetry.event("serve.phase", payload={"phase": "done"})
            return payload
        finally:
            if telemetry is not None:
                telemetry.sink.close()
