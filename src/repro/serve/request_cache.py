"""Store-backed result cache: evaluation payloads in and out of the store.

A served result is persisted as an ordinary content-addressed artifact —
three named arrays (per-episode rewards, successes, lengths) under the
request's canonical spec — so a warm request is a plain ``store.get``
and the store's own integrity machinery (sidecar commit markers, blob
hashes, the optional in-process LRU) applies unchanged.  Summary
statistics are *recomputed* from the arrays on every load rather than
trusted from metadata: the arrays are the result, the stats are a view.
"""

from __future__ import annotations

import numpy as np

from ..eval.harness import AttackEvaluation
from ..store import ArtifactStore

__all__ = ["RequestCache", "evaluation_state", "payload_from_state",
           "payload_from_evaluation"]


def evaluation_state(evaluation: AttackEvaluation) -> dict[str, np.ndarray]:
    """The arrays that *are* a served result (everything else is derived)."""
    return {
        "episode_rewards": np.asarray(evaluation.episode_rewards,
                                      dtype=np.float64),
        "episode_successes": np.asarray(evaluation.episode_successes,
                                        dtype=np.int64),
        "episode_lengths": np.asarray(evaluation.episode_lengths,
                                      dtype=np.int64),
    }


def payload_from_state(state: dict[str, np.ndarray], key: str) -> dict:
    """JSON-safe client payload reconstructed from stored arrays."""
    rewards = np.asarray(state["episode_rewards"], dtype=np.float64)
    successes = np.asarray(state["episode_successes"], dtype=np.int64)
    lengths = np.asarray(state["episode_lengths"], dtype=np.int64)
    n = int(rewards.shape[0])
    success_rate = float(successes.mean()) if n else 0.0
    return {
        "key": key,
        "episodes": n,
        "mean_reward": float(rewards.mean()) if n else 0.0,
        "std_reward": float(rewards.std()) if n else 0.0,
        "victim_success_rate": success_rate,
        "asr": 1.0 - success_rate,
        "episode_rewards": [float(r) for r in rewards],
        "episode_successes": [bool(s) for s in successes],
        "episode_lengths": [int(length) for length in lengths],
    }


def payload_from_evaluation(evaluation: AttackEvaluation, key: str) -> dict:
    return payload_from_state(evaluation_state(evaluation), key)


class RequestCache:
    """Dedup layer between the service and the artifact store."""

    def __init__(self, store: ArtifactStore):
        self.store = store

    def lookup(self, spec: dict) -> dict | None:
        """The cached payload for ``spec``, or None on miss/corruption."""
        hit = self.store.get(spec)
        if hit is None:
            return None
        state, entry = hit
        try:
            return payload_from_state(state, entry.key)
        except KeyError:
            # An artifact under this key that isn't an evaluation result
            # (or predates the schema) is a miss, not a crash.
            return None

    def store_result(self, spec: dict, evaluation: AttackEvaluation,
                     metadata: dict | None = None) -> dict:
        """Persist ``evaluation`` under ``spec`` and return its payload.

        The payload is built from the same arrays that were written, so a
        cold response and every later warm response are field-identical.
        """
        state = evaluation_state(evaluation)
        payload = payload_from_state(state, self.store.key_for(spec))
        meta = {
            "episodes": payload["episodes"],
            "mean_reward": payload["mean_reward"],
            "asr": payload["asr"],
        }
        if metadata:
            meta.update(metadata)
        entry = self.store.put(spec, state, metadata=meta)
        payload["key"] = entry.key
        return payload
