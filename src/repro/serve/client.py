"""Clients for the evaluation service.

:class:`ServeClient` speaks the line-delimited JSON protocol over the
Unix socket; a background reader task demultiplexes interleaved events
by request ``id`` into per-request queues.  :class:`LocalClient` wraps
an :class:`~repro.serve.service.EvalService` in-process with the same
``evaluate``/``status`` surface, so tests and benchmarks can drive the
full request lifecycle without a socket.
"""

from __future__ import annotations

import asyncio
import contextlib
import itertools
from pathlib import Path
from typing import Callable

from .protocol import MAX_LINE_BYTES, decode_message, encode_message
from .service import EvalService, ServeError

__all__ = ["ServeClient", "LocalClient"]

OnEvent = Callable[[dict], None] | None


def _result_or_raise(events_seen_last: dict) -> dict:
    event = events_seen_last
    if event["event"] == "result":
        return event["payload"]
    raise ServeError(event.get("error", "request failed"),
                     error_kind=event.get("error_kind", "crash"))


class ServeClient:
    """Async socket client; safe for concurrent ``evaluate`` calls."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer
        self._ids = itertools.count(1)
        self._queues: dict[str, asyncio.Queue[dict]] = {}
        self._reader_task = asyncio.create_task(self._read_loop())

    @classmethod
    async def connect(cls, socket_path: str | Path) -> "ServeClient":
        reader, writer = await asyncio.open_unix_connection(
            str(socket_path), limit=MAX_LINE_BYTES)
        return cls(reader, writer)

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                event = decode_message(line)
                queue = self._queues.get(event.get("id"))
                if queue is not None:
                    queue.put_nowait(event)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            # Wake every waiter so nothing blocks on a dead socket.
            for queue in self._queues.values():
                queue.put_nowait({"event": "error",
                                  "error": "connection closed",
                                  "error_kind": "connection"})

    async def _send(self, message: dict) -> None:
        self._writer.write(encode_message(message))
        await self._writer.drain()

    async def _roundtrip(self, op: str, terminal: tuple[str, ...]) -> dict:
        request_id = f"c{next(self._ids)}"
        queue: asyncio.Queue[dict] = asyncio.Queue()
        self._queues[request_id] = queue
        try:
            await self._send({"op": op, "id": request_id})
            while True:
                event = await queue.get()
                if event["event"] in terminal + ("error",):
                    return event
        finally:
            del self._queues[request_id]

    async def evaluate(self, request: dict, on_event: OnEvent = None) -> dict:
        """Submit ``request``; stream events; return the result payload.

        Raises :class:`ServeError` if the server reports failure (the
        supervisor's ``error_kind`` is preserved on the exception).
        """
        request_id = f"c{next(self._ids)}"
        queue: asyncio.Queue[dict] = asyncio.Queue()
        self._queues[request_id] = queue
        try:
            await self._send({"op": "submit", "id": request_id,
                              "request": request})
            while True:
                event = await queue.get()
                if on_event is not None:
                    on_event(event)
                if event["event"] in ("result", "error"):
                    return _result_or_raise(event)
        finally:
            del self._queues[request_id]

    async def status(self) -> dict:
        return await self._roundtrip("status", terminal=("status",))

    async def ping(self) -> dict:
        return await self._roundtrip("ping", terminal=("pong",))

    async def shutdown(self) -> dict:
        return await self._roundtrip("shutdown", terminal=("shutting_down",))

    async def close(self) -> None:
        self._reader_task.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await self._reader_task
        with contextlib.suppress(Exception):
            self._writer.close()
            await self._writer.wait_closed()


class LocalClient:
    """Same surface as :class:`ServeClient`, no socket: for tests/benchmarks."""

    def __init__(self, service: EvalService):
        self.service = service

    async def evaluate(self, request: dict, on_event: OnEvent = None) -> dict:
        return await self.service.submit(request, on_event=on_event)

    async def status(self) -> dict:
        return dict(self.service.stats(), event="status")

    async def ping(self) -> dict:
        return {"event": "pong"}

    async def close(self) -> None:
        return None
