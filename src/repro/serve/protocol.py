"""Request canonicalization and the line-delimited JSON wire protocol.

A robustness-evaluation request names a victim, a threat model, and an
attack budget::

    {"env_id": "Hopper-v0",
     "victim": {"defense": "ppo", "seed": 0, "iterations": 4,
                "steps_per_iteration": 512, "hidden_sizes": [64, 64],
                "budget_tag": "serve"},
     "threat": {"kind": "state_perturbation", "epsilon": 0.6, "norm": "linf"},
     "attack": {"kind": "random"},
     "eval":   {"episodes": 8, "seed": 1234}}

:func:`normalize_request` turns any semantically equivalent spelling of
that request — fields in any order, defaults elided, integral floats
where ints belong — into one canonical dict, so that
:func:`request_key` (the SHA-256 of the canonical spec through the
store's ``spec_key`` machinery) maps equal requests to equal content
addresses and distinct threat models to distinct ones.  Unknown fields
are rejected loudly: a typo'd knob must not silently fork the cache.

The wire format is one JSON object per line (``\\n``-terminated UTF-8)
in both directions.  Client messages carry ``op`` (``submit`` /
``status`` / ``ping`` / ``shutdown``) and, for submissions, a
client-chosen ``id`` echoed on every event the server streams back
(``queued → cached | coalesced | scheduled → progress* → result |
error``).
"""

from __future__ import annotations

import json
import math

from ..attacks.threat_models import default_epsilon
from ..defenses import defense_names
from ..envs import registered_ids
from ..experiments.runner import parse_attack_name
from ..store import CODE_VERSION, spec_key

__all__ = [
    "ProtocolError", "normalize_request", "request_spec", "request_key",
    "encode_message", "decode_message", "MAX_LINE_BYTES",
    "ATTACK_KINDS", "THREAT_KINDS", "FAULT_KINDS",
]

# One wire line must fit a full result payload (episode arrays included).
MAX_LINE_BYTES = 4 << 20

LEARNED_ATTACKS = (
    "sarl",
    "imap-sc", "imap-pc", "imap-r", "imap-d",
    "imap-sc+br", "imap-pc+br", "imap-r+br", "imap-d+br",
)
ATTACK_KINDS = ("none", "random") + LEARNED_ATTACKS
THREAT_KINDS = ("none", "state_perturbation")
NORMS = ("linf", "l2")
# Deterministic fault injection for chaos tests/CI; honored only when the
# service was started with fault injection enabled.
FAULT_KINDS = ("crash", "numerical", "hang")

MAX_EPISODES = 512
MAX_ITERATIONS = 10_000
MAX_STEPS_PER_ITERATION = 1 << 20


class ProtocolError(ValueError):
    """A malformed or unserviceable request/message."""


def _as_int(value, field: str, minimum: int, maximum: int) -> int:
    """Coerce to int; integral floats are accepted (``8.0`` means ``8``).

    This is what keeps an int budget and a float-spelled int budget on
    the same content address — ``spec_key`` itself distinguishes 8 from
    8.0 by design, so the coercion has to happen here.
    """
    if isinstance(value, bool):
        raise ProtocolError(f"{field}: expected an integer, got {value!r}")
    if isinstance(value, float):
        if not value.is_integer():
            raise ProtocolError(f"{field}: expected an integer, got {value!r}")
        value = int(value)
    if not isinstance(value, int):
        raise ProtocolError(f"{field}: expected an integer, got {value!r}")
    if not minimum <= value <= maximum:
        raise ProtocolError(
            f"{field}: {value} outside allowed range [{minimum}, {maximum}]")
    return value


def _as_float(value, field: str, minimum: float | None = None) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError(f"{field}: expected a number, got {value!r}")
    value = float(value)
    if not math.isfinite(value):
        raise ProtocolError(f"{field}: must be finite, got {value!r}")
    if minimum is not None and value < minimum:
        raise ProtocolError(f"{field}: {value} must be >= {minimum}")
    return value


def _as_str(value, field: str, options: tuple[str, ...] | None = None) -> str:
    if not isinstance(value, str):
        raise ProtocolError(f"{field}: expected a string, got {value!r}")
    if options is not None and value not in options:
        raise ProtocolError(f"{field}: {value!r} not one of {sorted(options)}")
    return value


def _section(request: dict, name: str, allowed: tuple[str, ...]) -> dict:
    section = request.get(name, {})
    if not isinstance(section, dict):
        raise ProtocolError(f"{name}: expected an object, got {section!r}")
    unknown = set(section) - set(allowed)
    if unknown:
        raise ProtocolError(f"{name}: unknown fields {sorted(unknown)} "
                            f"(allowed: {sorted(allowed)})")
    return section


def normalize_request(request: dict) -> dict:
    """Validate ``request`` and return its canonical form.

    Idempotent: ``normalize_request(normalize_request(r)) ==
    normalize_request(r)``.  Sections irrelevant to the requested
    computation are reduced to their discriminating fields (a ``none``
    attack has no budget; a ``none`` threat has no ε), so fields that
    cannot affect the result cannot split the cache either.
    """
    if not isinstance(request, dict):
        raise ProtocolError(f"request must be an object, got {type(request).__name__}")
    unknown = set(request) - {"env_id", "victim", "threat", "attack", "eval", "fault"}
    if unknown:
        raise ProtocolError(f"request: unknown fields {sorted(unknown)}")
    if "env_id" not in request:
        raise ProtocolError("request: missing required field 'env_id'")
    env_id = _as_str(request["env_id"], "env_id")
    if env_id not in registered_ids():
        raise ProtocolError(f"env_id: unknown environment {env_id!r}")

    victim = _section(request, "victim", (
        "defense", "seed", "iterations", "steps_per_iteration",
        "hidden_sizes", "budget_tag"))
    hidden = victim.get("hidden_sizes", [64, 64])
    if not isinstance(hidden, (list, tuple)) or not hidden:
        raise ProtocolError(f"victim.hidden_sizes: expected a non-empty list, "
                            f"got {hidden!r}")
    norm_victim = {
        "defense": _as_str(victim.get("defense", "ppo"), "victim.defense",
                           tuple(defense_names())),
        "seed": _as_int(victim.get("seed", 0), "victim.seed", 0, 2**32 - 1),
        "iterations": _as_int(victim.get("iterations", 4), "victim.iterations",
                              1, MAX_ITERATIONS),
        "steps_per_iteration": _as_int(
            victim.get("steps_per_iteration", 512),
            "victim.steps_per_iteration", 32, MAX_STEPS_PER_ITERATION),
        "hidden_sizes": [_as_int(h, "victim.hidden_sizes[]", 1, 4096)
                         for h in hidden],
        "budget_tag": _as_str(victim.get("budget_tag", "serve"),
                              "victim.budget_tag"),
    }

    attack = _section(request, "attack", (
        "kind", "seed", "iterations", "steps_per_iteration"))
    attack_kind = _as_str(attack.get("kind", "none"), "attack.kind", ATTACK_KINDS)
    if attack_kind in LEARNED_ATTACKS:
        parse_attack_name(attack_kind)  # defense in depth: must stay parseable
        norm_attack = {
            "kind": attack_kind,
            "seed": _as_int(attack.get("seed", 0), "attack.seed", 0, 2**32 - 1),
            "iterations": _as_int(attack.get("iterations", 3),
                                  "attack.iterations", 1, MAX_ITERATIONS),
            "steps_per_iteration": _as_int(
                attack.get("steps_per_iteration", 512),
                "attack.steps_per_iteration", 32, MAX_STEPS_PER_ITERATION),
        }
    else:
        # "none" evaluates the clean victim; "random" draws uniform ε-ball
        # noise seeded by the eval seed.  Neither has a training budget,
        # so none of those fields may enter the key.
        for field in ("seed", "iterations", "steps_per_iteration"):
            if field in attack:
                raise ProtocolError(
                    f"attack.{field}: not meaningful for attack kind "
                    f"{attack_kind!r}")
        norm_attack = {"kind": attack_kind}

    threat = _section(request, "threat", ("kind", "epsilon", "norm"))
    default_threat = "none" if attack_kind == "none" else "state_perturbation"
    threat_kind = _as_str(threat.get("kind", default_threat), "threat.kind",
                          THREAT_KINDS)
    if threat_kind == "none":
        if attack_kind != "none":
            raise ProtocolError(
                f"threat.kind 'none' is incompatible with attack kind "
                f"{attack_kind!r} (perturbation attacks need a threat model)")
        for field in ("epsilon", "norm"):
            if field in threat:
                raise ProtocolError(f"threat.{field}: not meaningful for "
                                    "threat kind 'none'")
        norm_threat = {"kind": "none"}
    else:
        epsilon = _as_float(threat.get("epsilon", default_epsilon(env_id)),
                            "threat.epsilon")
        if epsilon <= 0.0:
            raise ProtocolError(f"threat.epsilon: must be > 0, got {epsilon}")
        norm_threat = {
            "kind": "state_perturbation",
            "epsilon": epsilon,
            "norm": _as_str(threat.get("norm", "linf"), "threat.norm", NORMS),
        }

    eval_section = _section(request, "eval", ("episodes", "seed"))
    norm_eval = {
        "episodes": _as_int(eval_section.get("episodes", 8), "eval.episodes",
                            1, MAX_EPISODES),
        "seed": _as_int(eval_section.get("seed", 1234), "eval.seed",
                        0, 2**32 - 1),
    }

    normalized = {
        "env_id": env_id,
        "victim": norm_victim,
        "threat": norm_threat,
        "attack": norm_attack,
        "eval": norm_eval,
    }
    if "fault" in request:
        fault = _section(request, "fault", ("kind",))
        if "kind" not in fault:
            raise ProtocolError("fault: missing required field 'kind'")
        normalized["fault"] = {
            "kind": _as_str(fault["kind"], "fault.kind", FAULT_KINDS)}
    return normalized


def request_spec(normalized: dict) -> dict:
    """The content-address spec for a normalized request's result artifact."""
    return {"kind": "robustness_eval", "code_version": CODE_VERSION,
            "request": normalized}


def request_key(request: dict) -> str:
    """Canonical content address of (the normalization of) ``request``."""
    return spec_key(request_spec(normalize_request(request)))


# ----------------------------------------------------------------- wire form


def encode_message(message: dict) -> bytes:
    """One wire line: compact JSON + newline.  Rejects NaN/Infinity."""
    try:
        line = json.dumps(message, sort_keys=True, separators=(",", ":"),
                          ensure_ascii=True, allow_nan=False)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"unencodable message: {exc}") from exc
    return line.encode("utf-8") + b"\n"


def decode_message(line: bytes | str) -> dict:
    """Parse one wire line into a message dict."""
    if isinstance(line, bytes):
        if len(line) > MAX_LINE_BYTES:
            raise ProtocolError(f"wire line exceeds {MAX_LINE_BYTES} bytes")
        line = line.decode("utf-8", errors="replace")
    line = line.strip()
    if not line:
        raise ProtocolError("empty wire line")
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"malformed JSON on the wire: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(f"wire message must be an object, "
                            f"got {type(message).__name__}")
    return message
