"""Neural-network modules: parameters, linear layers, and MLPs."""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from . import init
from .autograd import Tensor

__all__ = ["Parameter", "Module", "Linear", "MLP", "activation"]


class Parameter(Tensor):
    """A Tensor flagged as trainable."""

    def __init__(self, data):
        super().__init__(data, requires_grad=True)
        self.requires_grad = True  # parameters train even if created under no_grad


class Module:
    """Minimal module container with named-parameter traversal."""

    def __init__(self):
        self._parameters: OrderedDict[str, Parameter] = OrderedDict()
        self._modules: OrderedDict[str, Module] = OrderedDict()

    def __setattr__(self, name, value):
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    def named_parameters(self, prefix: str = ""):
        for name, param in self._parameters.items():
            yield prefix + name, param
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> list[Parameter]:
        return [p for _, p in self.named_parameters()]

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def state_dict(self) -> dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state dict mismatch: missing={sorted(missing)} unexpected={sorted(unexpected)}")
        for name, param in own.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != param.data.shape:
                raise ValueError(f"shape mismatch for {name}: {value.shape} vs {param.data.shape}")
            # In-place copy: keeps the parameter's original memory layout
            # (orthogonal init yields F-contiguous weights for wide layers,
            # and BLAS results depend on layout) so a restored policy is
            # bit-identical to a live one, not just value-identical.
            np.copyto(param.data, value)

    def copy_from(self, other: "Module") -> None:
        self.load_state_dict(other.state_dict())

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):
        raise NotImplementedError


class Linear(Module):
    """Affine layer ``y = x @ W + b`` with orthogonal init."""

    def __init__(self, in_features: int, out_features: int, gain: float = np.sqrt(2.0),
                 rng: np.random.Generator | None = None):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.orthogonal((in_features, out_features), gain=gain, rng=rng))
        self.bias = Parameter(np.zeros(out_features))

    def forward(self, x: Tensor) -> Tensor:
        return x @ self.weight + self.bias


# Module-level (not lambdas) so modules stay picklable — the process-pool
# scheduler ships policies across worker boundaries.
def _tanh(t: Tensor) -> Tensor:
    return t.tanh()


def _relu(t: Tensor) -> Tensor:
    return t.relu()


def _sigmoid(t: Tensor) -> Tensor:
    return t.sigmoid()


def _identity(t: Tensor) -> Tensor:
    return t


_ACTIVATIONS = {
    "tanh": _tanh,
    "relu": _relu,
    "sigmoid": _sigmoid,
    "identity": _identity,
}


def activation(name: str):
    """Look up an activation by name; returns a callable Tensor -> Tensor."""
    if name not in _ACTIVATIONS:
        raise ValueError(f"unknown activation {name!r}; options: {sorted(_ACTIVATIONS)}")
    return _ACTIVATIONS[name]


class MLP(Module):
    """Multi-layer perceptron with configurable hidden sizes and output gain."""

    def __init__(self, in_features: int, hidden_sizes: tuple[int, ...], out_features: int,
                 hidden_activation: str = "tanh", output_gain: float = 0.01,
                 rng: np.random.Generator | None = None):
        super().__init__()
        self.activation = activation(hidden_activation)
        sizes = (in_features, *hidden_sizes)
        self.hidden: list[Linear] = []
        for i, (n_in, n_out) in enumerate(zip(sizes[:-1], sizes[1:])):
            layer = Linear(n_in, n_out, rng=rng)
            setattr(self, f"layer{i}", layer)
            self.hidden.append(layer)
        self.output = Linear(sizes[-1], out_features, gain=output_gain, rng=rng)

    def forward(self, x) -> Tensor:
        h = x if isinstance(x, Tensor) else Tensor(x)
        for layer in self.hidden:
            h = self.activation(layer(h))
        return self.output(h)
