"""Weight initialization schemes used across the reproduction.

PPO implementations conventionally use orthogonal initialization with
layer-dependent gains; this matters for stable on-policy training.
"""

from __future__ import annotations

import numpy as np

__all__ = ["orthogonal", "xavier_uniform", "zeros"]


def orthogonal(shape: tuple[int, int], gain: float = 1.0, rng: np.random.Generator | None = None) -> np.ndarray:
    """Return an orthogonal matrix of ``shape`` scaled by ``gain``."""
    rng = rng or np.random.default_rng()
    rows, cols = shape
    flat = rng.standard_normal((max(rows, cols), min(rows, cols)))
    q, r = np.linalg.qr(flat)
    q = q * np.sign(np.diag(r))  # make the decomposition unique
    if rows < cols:
        q = q.T
    return gain * q[:rows, :cols]


def xavier_uniform(shape: tuple[int, int], rng: np.random.Generator | None = None) -> np.ndarray:
    rng = rng or np.random.default_rng()
    fan_in, fan_out = shape
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def zeros(shape) -> np.ndarray:
    return np.zeros(shape)
