"""Reverse-mode automatic differentiation on numpy arrays.

This is the numerical substrate for the whole repository: PPO policies,
value functions, defense regularizers, and the IMAP mimic policy are all
trained through this tape-based autograd engine.  It intentionally covers
only the operations the reproduction needs, with exact gradients and full
numpy broadcasting support.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Tensor", "as_tensor", "no_grad", "is_grad_enabled"]

_GRAD_ENABLED = True


class no_grad:
    """Context manager that disables graph construction (like torch.no_grad)."""

    def __enter__(self):
        global _GRAD_ENABLED
        self._prev = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, *exc):
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._prev
        return False


def is_grad_enabled() -> bool:
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting."""
    if grad.shape == shape:
        return grad
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array with an optional gradient tape entry."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")
    __array_priority__ = 100  # ensure ndarray + Tensor dispatches to Tensor

    def __init__(self, data, requires_grad: bool = False):
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self._backward = None
        self._parents: tuple = ()

    # ------------------------------------------------------------- structure

    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        return f"Tensor({self.data!r}, requires_grad={self.requires_grad})"

    # With __slots__ there is no __dict__; pickle through an explicit
    # state that drops the gradient tape (closures aren't picklable, and
    # a tensor shipped to another process is detached by construction).
    def __getstate__(self):
        return {"data": self.data, "grad": self.grad,
                "requires_grad": self.requires_grad}

    def __setstate__(self, state) -> None:
        self.data = state["data"]
        self.grad = state.get("grad")
        self.requires_grad = bool(state.get("requires_grad", False))
        self._backward = None
        self._parents = ()

    def numpy(self) -> np.ndarray:
        """Return the underlying array (detached view)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        return Tensor(self.data)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------- autograd

    @staticmethod
    def _make(data, parents, backward) -> "Tensor":
        out = Tensor(data)
        if _GRAD_ENABLED and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = _unbroadcast(np.asarray(grad, dtype=np.float64), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    def backward(self, grad=None) -> None:
        """Backpropagate from this tensor through the tape."""
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() without grad requires a scalar output")
            grad = np.ones_like(self.data)
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited or not node.requires_grad:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                stack.append((parent, False))
        self._accumulate(np.asarray(grad, dtype=np.float64))
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------ arithmetic

    def __add__(self, other):
        other = as_tensor(other)

        def backward(g):
            if self.requires_grad:
                self._accumulate(g)
            if other.requires_grad:
                other._accumulate(g)

        return Tensor._make(self.data + other.data, (self, other), backward)

    __radd__ = __add__

    def __mul__(self, other):
        other = as_tensor(other)

        def backward(g):
            if self.requires_grad:
                self._accumulate(g * other.data)
            if other.requires_grad:
                other._accumulate(g * self.data)

        return Tensor._make(self.data * other.data, (self, other), backward)

    __rmul__ = __mul__

    def __neg__(self):
        def backward(g):
            self._accumulate(-g)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other):
        return self + (-as_tensor(other))

    def __rsub__(self, other):
        return as_tensor(other) + (-self)

    def __truediv__(self, other):
        other = as_tensor(other)

        def backward(g):
            if self.requires_grad:
                self._accumulate(g / other.data)
            if other.requires_grad:
                other._accumulate(-g * self.data / (other.data**2))

        return Tensor._make(self.data / other.data, (self, other), backward)

    def __rtruediv__(self, other):
        return as_tensor(other) / self

    def __pow__(self, exponent: float):
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")

        def backward(g):
            self._accumulate(g * exponent * self.data ** (exponent - 1))

        return Tensor._make(self.data**exponent, (self,), backward)

    def __matmul__(self, other):
        other = as_tensor(other)

        def backward(g):
            if self.requires_grad:
                if self.data.ndim == 1:
                    self._accumulate(g @ other.data.T)
                else:
                    self._accumulate(g @ np.swapaxes(other.data, -1, -2))
            if other.requires_grad:
                if self.data.ndim == 1:
                    other._accumulate(np.outer(self.data, g))
                else:
                    other._accumulate(np.swapaxes(self.data, -1, -2) @ g)

        return Tensor._make(self.data @ other.data, (self, other), backward)

    # ------------------------------------------------------------ comparisons
    # Comparisons return plain boolean arrays; they are not differentiable.

    def __gt__(self, other):
        return self.data > _raw(other)

    def __lt__(self, other):
        return self.data < _raw(other)

    def __ge__(self, other):
        return self.data >= _raw(other)

    def __le__(self, other):
        return self.data <= _raw(other)

    # --------------------------------------------------------------- slicing

    def __getitem__(self, index):
        def backward(g):
            full = np.zeros_like(self.data)
            np.add.at(full, index, g)
            self._accumulate(full)

        return Tensor._make(self.data[index], (self,), backward)

    def reshape(self, *shape):
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])

        def backward(g):
            self._accumulate(g.reshape(self.data.shape))

        return Tensor._make(self.data.reshape(shape), (self,), backward)

    @property
    def T(self):
        def backward(g):
            self._accumulate(g.T)

        return Tensor._make(self.data.T, (self,), backward)

    # ------------------------------------------------------------- reductions

    def sum(self, axis=None, keepdims: bool = False):
        def backward(g):
            grad = np.asarray(g)
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis)
            self._accumulate(np.broadcast_to(grad, self.data.shape))

        return Tensor._make(self.data.sum(axis=axis, keepdims=keepdims), (self,), backward)

    def mean(self, axis=None, keepdims: bool = False):
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False):
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(g):
            grad = np.asarray(g)
            expanded = out_data
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis)
                expanded = np.expand_dims(out_data, axis)
            mask = (self.data == expanded).astype(np.float64)
            mask /= np.maximum(mask.sum(axis=axis, keepdims=True), 1.0)
            self._accumulate(mask * grad)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------- unary functions

    def exp(self):
        out_data = np.exp(self.data)

        def backward(g):
            self._accumulate(g * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self):
        def backward(g):
            self._accumulate(g / self.data)

        return Tensor._make(np.log(self.data), (self,), backward)

    def tanh(self):
        out_data = np.tanh(self.data)

        def backward(g):
            self._accumulate(g * (1.0 - out_data**2))

        return Tensor._make(out_data, (self,), backward)

    def relu(self):
        def backward(g):
            self._accumulate(g * (self.data > 0))

        return Tensor._make(np.maximum(self.data, 0.0), (self,), backward)

    def sigmoid(self):
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(g):
            self._accumulate(g * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward)

    def sqrt(self):
        out_data = np.sqrt(self.data)

        def backward(g):
            self._accumulate(g * 0.5 / out_data)

        return Tensor._make(out_data, (self,), backward)

    def abs(self):
        def backward(g):
            self._accumulate(g * np.sign(self.data))

        return Tensor._make(np.abs(self.data), (self,), backward)

    def clip(self, low: float, high: float):
        """Clamp values; gradient is passed through only inside the interval."""
        inside = (self.data > low) & (self.data < high)

        def backward(g):
            self._accumulate(g * inside)

        return Tensor._make(np.clip(self.data, low, high), (self,), backward)


def as_tensor(value) -> Tensor:
    """Coerce a scalar/array/Tensor into a (non-grad) Tensor."""
    return value if isinstance(value, Tensor) else Tensor(value)


def _raw(value):
    return value.data if isinstance(value, Tensor) else value
