"""Checkpoint (de)serialization for Modules, backed by ``.npz`` archives.

Writes are atomic: the archive is serialized to a sibling temp file and
``os.replace``\\ d into place, so a reader (or a crashed writer) never
observes a half-written checkpoint — the file is either the previous
complete version or the new one.  ``durable=True`` additionally fsyncs
the temp file *before* the rename and the directory after it, closing
the power-loss window where the rename is journaled but the data pages
are not (a committed name over truncated bytes).
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

import numpy as np

from .modules import Module

__all__ = ["save_state", "save_module", "load_state", "load_module"]

_META_KEY = "__meta__"


def _fsync_dir(directory: Path) -> None:
    """Flush a directory entry (the rename itself) to stable storage."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return  # platform/filesystem without dir-fsync: best effort
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def save_state(state: dict[str, np.ndarray], path: str | Path,
               metadata: dict | None = None, durable: bool = False) -> Path:
    """Atomically save a raw state dict (+ optional JSON metadata) to ``path``.

    ``durable=True`` fsyncs the bytes before the rename (and the
    directory after), so a power cut cannot commit the name over
    unwritten data.  Checkpoints default to fast (a torn checkpoint
    just resumes one interval earlier); the artifact store opts in.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    arrays = dict(state)
    arrays[_META_KEY] = np.frombuffer(
        json.dumps(metadata or {}).encode("utf-8"), dtype=np.uint8
    ).copy()
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=path.name,
                                    suffix=".tmp.npz")
    try:
        with os.fdopen(fd, "wb") as fh:
            np.savez(fh, **arrays)
            if durable:
                fh.flush()
                os.fsync(fh.fileno())
        os.replace(tmp_name, path)
        if durable:
            _fsync_dir(path.parent)
    except BaseException:
        if os.path.exists(tmp_name):
            os.unlink(tmp_name)
        raise
    return path


def save_module(module: Module, path: str | Path, metadata: dict | None = None) -> Path:
    """Save a module's parameters (and optional JSON metadata) to ``path``."""
    return save_state(module.state_dict(), path, metadata)


def load_state(path: str | Path) -> tuple[dict[str, np.ndarray], dict]:
    """Load a state dict and its metadata from an ``.npz`` checkpoint."""
    with np.load(Path(path), allow_pickle=False) as archive:
        metadata = {}
        state = {}
        for key in archive.files:
            if key == _META_KEY:
                metadata = json.loads(archive[key].tobytes().decode("utf-8"))
            else:
                state[key] = archive[key]
    return state, metadata


def load_module(module: Module, path: str | Path) -> dict:
    """Load parameters into ``module`` in place; returns the stored metadata."""
    state, metadata = load_state(path)
    module.load_state_dict(state)
    return metadata
