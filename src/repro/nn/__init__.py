"""From-scratch neural-network stack: autograd, modules, distributions, optim.

This package replaces PyTorch for the reproduction (see DESIGN.md,
"Substitutions").  Everything is float64 numpy underneath.
"""

from . import functional, init
from .autograd import Tensor, as_tensor, is_grad_enabled, no_grad
from .distributions import Categorical, DiagGaussian
from .modules import MLP, Linear, Module, Parameter, activation
from .optim import SGD, Adam, Optimizer, clip_grad_norm
from .serialization import load_module, load_state, save_module

__all__ = [
    "Tensor", "as_tensor", "no_grad", "is_grad_enabled",
    "functional", "init",
    "Module", "Parameter", "Linear", "MLP", "activation",
    "DiagGaussian", "Categorical",
    "Optimizer", "SGD", "Adam", "clip_grad_norm",
    "save_module", "load_state", "load_module",
]
