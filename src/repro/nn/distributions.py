"""Probability distributions for stochastic policies.

Both distributions support differentiable ``log_prob``/``entropy``/``kl``
through the autograd engine, plus cheap non-differentiable sampling for
environment rollouts.
"""

from __future__ import annotations

import numpy as np

from .autograd import Tensor, as_tensor
from .functional import log_softmax, softmax

__all__ = ["DiagGaussian", "Categorical"]

_LOG_2PI = float(np.log(2.0 * np.pi))


class DiagGaussian:
    """Diagonal Gaussian over continuous actions.

    Parameters may be Tensors (for differentiable losses) or arrays (for
    rollout-time sampling).  ``mean`` has shape (..., dim); ``log_std``
    broadcasts against it (typically shape (dim,): state-independent).
    """

    def __init__(self, mean, log_std):
        self.mean = as_tensor(mean)
        self.log_std = as_tensor(log_std)

    @property
    def std(self) -> Tensor:
        return self.log_std.exp()

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        mean = self.mean.data
        std = np.broadcast_to(np.exp(self.log_std.data), mean.shape)
        return mean + std * rng.standard_normal(mean.shape)

    def mode(self) -> np.ndarray:
        return self.mean.data.copy()

    def log_prob(self, actions) -> Tensor:
        """Log density, summed over the action dimension."""
        actions = as_tensor(actions)
        z = (actions - self.mean) * (-self.log_std).exp()
        per_dim = z**2 * -0.5 - self.log_std - 0.5 * _LOG_2PI
        return per_dim.sum(axis=-1)

    def entropy(self) -> Tensor:
        per_dim = self.log_std + 0.5 * (1.0 + _LOG_2PI)
        # Broadcast state-independent log_std to the batch shape of mean.
        batch = self.mean * 0.0
        return (per_dim + batch).sum(axis=-1)

    def kl(self, other: "DiagGaussian") -> Tensor:
        """KL(self || other), summed over the action dimension."""
        var_ratio = ((self.log_std - other.log_std) * 2.0).exp()
        mean_term = ((self.mean - other.mean) * (-other.log_std).exp()) ** 2
        per_dim = (var_ratio + mean_term - 1.0) * 0.5 + (other.log_std - self.log_std)
        return per_dim.sum(axis=-1)


class Categorical:
    """Categorical distribution over discrete actions, from logits."""

    def __init__(self, logits):
        self.logits = as_tensor(logits)

    def probs(self) -> Tensor:
        return softmax(self.logits, axis=-1)

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        p = self.probs().data
        if p.ndim == 1:
            return np.asarray(rng.choice(len(p), p=p))
        cumulative = np.cumsum(p, axis=-1)
        draws = rng.random(p.shape[:-1] + (1,))
        return (draws < cumulative).argmax(axis=-1)

    def mode(self) -> np.ndarray:
        return self.logits.data.argmax(axis=-1)

    def log_prob(self, actions) -> Tensor:
        logp = log_softmax(self.logits, axis=-1)
        actions = np.asarray(actions.data if isinstance(actions, Tensor) else actions, dtype=int)
        if logp.data.ndim == 1:
            return logp[int(actions)]
        rows = np.arange(logp.data.shape[0])
        return logp[rows, actions]

    def entropy(self) -> Tensor:
        logp = log_softmax(self.logits, axis=-1)
        return -(logp.exp() * logp).sum(axis=-1)

    def kl(self, other: "Categorical") -> Tensor:
        logp = log_softmax(self.logits, axis=-1)
        logq = log_softmax(other.logits, axis=-1)
        return (logp.exp() * (logp - logq)).sum(axis=-1)
