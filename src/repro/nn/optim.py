"""First-order optimizers operating on Parameter lists."""

from __future__ import annotations

import numpy as np

from .modules import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "clip_grad_norm"]


def clip_grad_norm(parameters, max_norm: float) -> float:
    """Rescale gradients in place so their global l2 norm is at most ``max_norm``."""
    parameters = [p for p in parameters if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad**2).sum()) for p in parameters)))
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for p in parameters:
            p.grad = p.grad * scale
    return total


class Optimizer:
    def __init__(self, parameters, lr: float):
        self.parameters: list[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    def __init__(self, parameters, lr: float = 1e-2, momentum: float = 0.0):
        super().__init__(parameters, lr)
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for p, v in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            v *= self.momentum
            v += p.grad
            p.data = p.data - self.lr * v


class Adam(Optimizer):
    """Adam with bias correction (Kingma & Ba, 2015)."""

    def __init__(self, parameters, lr: float = 3e-4, betas: tuple[float, float] = (0.9, 0.999),
                 eps: float = 1e-8):
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step += 1
        correction1 = 1.0 - self.beta1**self._step
        correction2 = 1.0 - self.beta2**self._step
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None:
                continue
            m *= self.beta1
            m += (1.0 - self.beta1) * p.grad
            v *= self.beta2
            v += (1.0 - self.beta2) * p.grad**2
            m_hat = m / correction1
            v_hat = v / correction2
            p.data = p.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
