"""First-order optimizers operating on Parameter lists."""

from __future__ import annotations

import numpy as np

from .modules import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "clip_grad_norm"]


def clip_grad_norm(parameters, max_norm: float) -> float:
    """Rescale gradients in place so their global l2 norm is at most ``max_norm``."""
    parameters = [p for p in parameters if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad**2).sum()) for p in parameters)))
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for p in parameters:
            p.grad = p.grad * scale
    return total


class Optimizer:
    def __init__(self, parameters, lr: float):
        self.parameters: list[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    def state_dict(self) -> dict:
        """Saveable optimizer state; subclasses add their moment buffers."""
        return {"lr": self.lr}

    def load_state_dict(self, state: dict) -> None:
        self.lr = float(state["lr"])

    def _check_buffers(self, buffers, name: str) -> list[np.ndarray]:
        if len(buffers) != len(self.parameters):
            raise ValueError(
                f"{name} has {len(buffers)} entries for {len(self.parameters)} parameters")
        out = []
        for buf, p in zip(buffers, self.parameters):
            buf = np.asarray(buf, dtype=np.float64)
            if buf.shape != p.data.shape:
                raise ValueError(f"{name} shape {buf.shape} vs parameter {p.data.shape}")
            # Match the parameter's memory layout (zeros_like preserves it):
            # ``p.data - lr * m_hat`` inherits the operands' layout, and BLAS
            # results depend on layout, so C-ordered restored buffers would
            # flip the parameter layout and break bit-identical resume.
            restored = np.zeros_like(p.data)
            np.copyto(restored, buf)
            out.append(restored)
        return out


class SGD(Optimizer):
    def __init__(self, parameters, lr: float = 1e-2, momentum: float = 0.0):
        super().__init__(parameters, lr)
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for p, v in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            v *= self.momentum
            v += p.grad
            p.data = p.data - self.lr * v

    def state_dict(self) -> dict:
        return {**super().state_dict(), "momentum": self.momentum,
                "velocity": [v.copy() for v in self._velocity]}

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self.momentum = float(state["momentum"])
        self._velocity = self._check_buffers(state["velocity"], "velocity")


class Adam(Optimizer):
    """Adam with bias correction (Kingma & Ba, 2015)."""

    def __init__(self, parameters, lr: float = 3e-4, betas: tuple[float, float] = (0.9, 0.999),
                 eps: float = 1e-8):
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def state_dict(self) -> dict:
        return {**super().state_dict(), "betas": [self.beta1, self.beta2],
                "eps": self.eps, "step": self._step,
                "m": [m.copy() for m in self._m], "v": [v.copy() for v in self._v]}

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self.beta1, self.beta2 = (float(b) for b in state["betas"])
        self.eps = float(state["eps"])
        self._step = int(state["step"])
        self._m = self._check_buffers(state["m"], "m")
        self._v = self._check_buffers(state["v"], "v")

    def step(self) -> None:
        self._step += 1
        correction1 = 1.0 - self.beta1**self._step
        correction2 = 1.0 - self.beta2**self._step
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None:
                continue
            m *= self.beta1
            m += (1.0 - self.beta1) * p.grad
            v *= self.beta2
            v += (1.0 - self.beta2) * p.grad**2
            m_hat = m / correction1
            v_hat = v / correction2
            p.data = p.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
