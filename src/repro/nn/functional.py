"""Functional operations built on the autograd engine."""

from __future__ import annotations

import numpy as np

from .autograd import Tensor, as_tensor

__all__ = [
    "minimum",
    "maximum",
    "where",
    "concatenate",
    "stack",
    "softmax",
    "log_softmax",
    "mse_loss",
    "huber_loss",
    "logsumexp",
]


def minimum(a, b) -> Tensor:
    """Elementwise minimum with subgradient split on ties."""
    a, b = as_tensor(a), as_tensor(b)
    take_a = a.data <= b.data

    def backward(g):
        if a.requires_grad:
            a._accumulate(g * take_a)
        if b.requires_grad:
            b._accumulate(g * ~take_a)

    return Tensor._make(np.minimum(a.data, b.data), (a, b), backward)


def maximum(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    take_a = a.data >= b.data

    def backward(g):
        if a.requires_grad:
            a._accumulate(g * take_a)
        if b.requires_grad:
            b._accumulate(g * ~take_a)

    return Tensor._make(np.maximum(a.data, b.data), (a, b), backward)


def where(condition, a, b) -> Tensor:
    """Select ``a`` where ``condition`` holds, ``b`` elsewhere."""
    condition = np.asarray(condition, dtype=bool)
    a, b = as_tensor(a), as_tensor(b)

    def backward(g):
        if a.requires_grad:
            a._accumulate(g * condition)
        if b.requires_grad:
            b._accumulate(g * ~condition)

    return Tensor._make(np.where(condition, a.data, b.data), (a, b), backward)


def concatenate(tensors, axis: int = 0) -> Tensor:
    tensors = [as_tensor(t) for t in tensors]
    sizes = [t.data.shape[axis] for t in tensors]
    splits = np.cumsum(sizes)[:-1]

    def backward(g):
        for t, piece in zip(tensors, np.split(g, splits, axis=axis)):
            if t.requires_grad:
                t._accumulate(piece)

    return Tensor._make(
        np.concatenate([t.data for t in tensors], axis=axis), tuple(tensors), backward
    )


def stack(tensors, axis: int = 0) -> Tensor:
    tensors = [as_tensor(t) for t in tensors]

    def backward(g):
        for i, t in enumerate(tensors):
            if t.requires_grad:
                t._accumulate(np.take(g, i, axis=axis))

    return Tensor._make(np.stack([t.data for t in tensors], axis=axis), tuple(tensors), backward)


def logsumexp(x, axis: int = -1, keepdims: bool = False) -> Tensor:
    x = as_tensor(x)
    shift = np.max(x.data, axis=axis, keepdims=True)
    shifted = x - Tensor(shift)
    out = shifted.exp().sum(axis=axis, keepdims=True).log() + Tensor(shift)
    if not keepdims:
        out = out.reshape(np.squeeze(out.data, axis=axis).shape)
    return out


def softmax(x, axis: int = -1) -> Tensor:
    x = as_tensor(x)
    return (x - logsumexp(x, axis=axis, keepdims=True)).exp()


def log_softmax(x, axis: int = -1) -> Tensor:
    x = as_tensor(x)
    return x - logsumexp(x, axis=axis, keepdims=True)


def mse_loss(prediction, target) -> Tensor:
    prediction, target = as_tensor(prediction), as_tensor(target)
    return ((prediction - target) ** 2).mean()


def huber_loss(prediction, target, delta: float = 1.0) -> Tensor:
    prediction, target = as_tensor(prediction), as_tensor(target)
    error = prediction - target
    small = np.abs(error.data) <= delta
    quadratic = error**2 * 0.5
    linear = error.abs() * delta - 0.5 * delta**2
    return where(small, quadratic, linear).mean()
