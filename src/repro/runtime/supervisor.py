"""Watchdog supervision for scheduled jobs: deadlines, heartbeats, kills.

The plain pool path in :mod:`~repro.runtime.scheduler` calls
``future.result()`` with no timeout, so one hung worker stalls a
multi-hour sweep forever.  When any timeout is configured,
:func:`~repro.runtime.scheduler.run_parallel` routes the batch through a
:class:`Supervisor` instead: every job runs in its *own*
``multiprocessing.Process`` (so a kill takes out exactly one job, never
a shared pool), and the parent polls all workers ``as_completed``-style:

* result pipe readable  → collect the worker's :class:`JobResult`;
* process dead, no result → ``error_kind="crash"`` (exit code recorded);
* per-job ``timeout`` exceeded → SIGTERM, then SIGKILL →
  ``error_kind="timeout"``;
* heartbeat file stale for ``heartbeat_timeout`` seconds → the worker is
  stalled (frozen interpreter, D-state I/O) even though the process is
  alive → same kill path, ``error_kind="timeout"``;
* sweep ``deadline`` exceeded → every running worker is killed and every
  queued job is failed as ``timeout`` — the sweep always terminates.

Workers touch their heartbeat file from a daemon thread every
``heartbeat_interval`` seconds, so a hung *job function* (which still
yields the GIL) keeps beating and is caught by the per-job timeout,
while a wedged *process* stops beating and is caught by the heartbeat
check.  Requeueing of killed jobs is the scheduler's retry loop's
business — a timed-out or crashed job is an ordinary failed
:class:`JobResult` with a taxonomy tag.

:func:`classify_exception` maps exceptions onto the structured
``error_kind`` taxonomy (``crash | timeout | numerical | pickling |
pool_broken | lease_lost | orphaned | queue_corrupt``) shared with the
pool path and the multi-host fabric (the last three only ever originate
from :mod:`repro.fabric` lease churn and queue damage).
"""

from __future__ import annotations

import multiprocessing
import pickle
import tempfile
import threading
import time
import traceback
from collections import deque
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "ERROR_KINDS", "classify_exception", "Supervisor",
    "WorkerCrash", "WorkerTimeout",
]

ERROR_KINDS = ("crash", "timeout", "numerical", "pickling", "pool_broken",
               "lease_lost", "orphaned", "queue_corrupt")

# How often a worker's daemon thread touches its heartbeat file.
DEFAULT_HEARTBEAT_INTERVAL = 0.25
# How long after SIGTERM before escalating to SIGKILL.
_TERM_GRACE = 0.5


class WorkerCrash(RuntimeError):
    """A supervised worker process died without delivering a result."""


class WorkerTimeout(TimeoutError):
    """A supervised job exceeded its per-job timeout or the sweep deadline."""


def classify_exception(exc: BaseException) -> str:
    """Map an exception to the structured ``error_kind`` taxonomy.

    Matching on class *names* as well as classes keeps this usable on
    exceptions that crossed a process boundary or would otherwise drag in
    circular imports (``NumericalDivergence`` lives in ``repro.rl``).
    """
    from concurrent.futures.process import BrokenProcessPool

    name = type(exc).__name__
    if isinstance(exc, BrokenProcessPool) or name == "BrokenProcessPool":
        return "pool_broken"
    if isinstance(exc, pickle.PicklingError) or "pickle" in str(exc).lower():
        return "pickling"
    if name == "NumericalDivergence":
        return "numerical"
    if name == "LeaseLost":  # repro.fabric.lease — fenced mid-execution
        return "lease_lost"
    if name == "QueueCorrupt":  # repro.fabric.queue — damaged entry/payload
        return "queue_corrupt"
    if isinstance(exc, (TimeoutError, WorkerTimeout)):
        return "timeout"
    return "crash"


# --------------------------------------------------------------- worker side

def _touch(path: Path) -> None:
    try:
        path.touch()
    except OSError:
        pass  # heartbeat is advisory; never kill the job over it


def _heartbeat_loop(path: Path, interval: float, stop: threading.Event) -> None:
    while not stop.wait(interval):
        _touch(path)


def _supervised_worker(conn, job, heartbeat_path: str | None,
                       heartbeat_interval: float) -> None:
    """Process target: run one job, beat the heart, send the result back."""
    from .scheduler import JobResult, _execute_job

    stop = threading.Event()
    if heartbeat_path:
        path = Path(heartbeat_path)
        _touch(path)
        threading.Thread(target=_heartbeat_loop,
                         args=(path, heartbeat_interval, stop),
                         daemon=True).start()
    result = _execute_job(job)
    stop.set()
    try:
        conn.send(result)
    except Exception as exc:  # unpicklable job value
        conn.send(JobResult(
            name=job.name, ok=False,
            error=f"{type(exc).__name__}: {exc}",
            traceback=traceback.format_exc(),
            duration=result.duration, error_kind="pickling"))
    conn.close()


# --------------------------------------------------------------- parent side

@dataclass
class _Running:
    index: int
    process: multiprocessing.process.BaseProcess
    conn: object               # parent end of the result pipe
    heartbeat: Path | None
    started: float
    kill_at: float | None      # absolute per-job deadline, None = unbounded


class Supervisor:
    """Run jobs in per-job worker processes under watchdog supervision.

    ``max_workers`` bounds concurrency; ``timeout`` is the default
    per-job budget (``Job.timeout`` overrides per job); ``deadline`` is
    the wall-clock budget for the whole batch; ``heartbeat_timeout``
    (None = disabled) kills workers whose heartbeat file goes stale.
    """

    def __init__(self, max_workers: int = 1, mp_context=None,
                 timeout: float | None = None, deadline: float | None = None,
                 heartbeat_timeout: float | None = None,
                 heartbeat_dir: str | Path | None = None,
                 heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
                 poll_interval: float = 0.02):
        if isinstance(mp_context, str):
            mp_context = multiprocessing.get_context(mp_context)
        self._ctx = mp_context or multiprocessing.get_context()
        self.max_workers = max(1, max_workers)
        self.timeout = timeout
        self.deadline = deadline
        self.heartbeat_timeout = heartbeat_timeout
        self.heartbeat_dir = Path(heartbeat_dir) if heartbeat_dir else None
        self.heartbeat_interval = heartbeat_interval
        self.poll_interval = poll_interval
        # Observed containment actions, for telemetry/tests:
        # list of {"index", "name", "action", "detail"} dicts.
        self.interventions: list[dict] = []

    # ------------------------------------------------------------ internals

    def _heartbeat_path(self, root: Path, index: int) -> Path | None:
        if self.heartbeat_timeout is None:
            return None
        return root / f"job-{index}.heartbeat"

    def _spawn(self, root: Path, index: int, job) -> _Running:
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        heartbeat = self._heartbeat_path(root, index)
        process = self._ctx.Process(
            target=_supervised_worker,
            args=(child_conn, job,
                  str(heartbeat) if heartbeat else None,
                  self.heartbeat_interval),
            daemon=False,
        )
        process.start()
        child_conn.close()
        now = time.monotonic()
        job_timeout = job.timeout if job.timeout is not None else self.timeout
        return _Running(
            index=index, process=process, conn=parent_conn, heartbeat=heartbeat,
            started=now,
            kill_at=None if job_timeout is None else now + job_timeout,
        )

    def _kill(self, running: _Running) -> None:
        process = running.process
        if process.is_alive():
            process.terminate()
            process.join(_TERM_GRACE)
            if process.is_alive():
                process.kill()
                process.join(_TERM_GRACE)
        running.conn.close()

    def _heartbeat_stale(self, running: _Running, now: float) -> bool:
        if running.heartbeat is None or self.heartbeat_timeout is None:
            return False
        # Grace period: the worker may not have beaten yet right after spawn.
        if now - running.started < max(self.heartbeat_timeout,
                                       2 * self.heartbeat_interval):
            return False
        try:
            age = time.time() - running.heartbeat.stat().st_mtime
        except OSError:
            age = now - running.started
        return age > self.heartbeat_timeout

    def _fail(self, jobs, running: _Running, kind: str, error: str,
              action: str) -> "JobResult":
        from .scheduler import JobResult

        self.interventions.append({
            "index": running.index, "name": jobs[running.index].name,
            "action": action, "detail": error,
        })
        return JobResult(
            name=jobs[running.index].name, ok=False, error=error,
            traceback=f"(no worker traceback: {action})",
            duration=time.monotonic() - running.started, error_kind=kind)

    # ------------------------------------------------------------------ run

    def run(self, jobs: list) -> list:
        """Execute ``jobs``; one :class:`JobResult` each, submission order."""
        from .scheduler import JobResult

        results: list[JobResult | None] = [None] * len(jobs)
        queue = deque(range(len(jobs)))
        running: dict[int, _Running] = {}
        start = time.monotonic()
        expire_at = None if self.deadline is None else start + self.deadline

        with tempfile.TemporaryDirectory(
                dir=self.heartbeat_dir, prefix="repro-heartbeat-") as tmp:
            root = Path(tmp)
            if self.heartbeat_dir is not None:
                self.heartbeat_dir.mkdir(parents=True, exist_ok=True)
            while queue or running:
                now = time.monotonic()
                sweep_expired = expire_at is not None and now >= expire_at
                while (queue and len(running) < self.max_workers
                       and not sweep_expired):
                    index = queue.popleft()
                    running[index] = self._spawn(root, index, jobs[index])
                for index, handle in list(running.items()):
                    now = time.monotonic()
                    if handle.conn.poll(0):
                        try:
                            results[index] = handle.conn.recv()
                        except (EOFError, OSError):
                            # EOF without a result: the worker died — its
                            # closed pipe end reads as "ready".
                            handle.process.join(_TERM_GRACE)
                            results[index] = self._fail(
                                jobs, handle, "crash",
                                "WorkerCrash: worker exited with code "
                                f"{handle.process.exitcode} before "
                                "delivering a result", "crash")
                        handle.process.join(_TERM_GRACE)
                        handle.conn.close()
                        del running[index]
                    elif not handle.process.is_alive():
                        code = handle.process.exitcode
                        results[index] = self._fail(
                            jobs, handle, "crash",
                            f"WorkerCrash: worker exited with code {code} "
                            "before delivering a result", "crash")
                        handle.conn.close()
                        del running[index]
                    elif sweep_expired:
                        self._kill(handle)
                        results[index] = self._fail(
                            jobs, handle, "timeout",
                            f"WorkerTimeout: sweep deadline "
                            f"{self.deadline:.1f}s exceeded", "deadline-kill")
                        del running[index]
                    elif handle.kill_at is not None and now >= handle.kill_at:
                        self._kill(handle)
                        budget = handle.kill_at - handle.started
                        results[index] = self._fail(
                            jobs, handle, "timeout",
                            f"WorkerTimeout: job exceeded its {budget:.1f}s "
                            "timeout", "timeout-kill")
                        del running[index]
                    elif self._heartbeat_stale(handle, now):
                        self._kill(handle)
                        results[index] = self._fail(
                            jobs, handle, "timeout",
                            "WorkerTimeout: worker stalled (heartbeat stale "
                            f"for > {self.heartbeat_timeout:.1f}s)",
                            "heartbeat-kill")
                        del running[index]
                if sweep_expired and queue:
                    while queue:
                        index = queue.popleft()
                        results[index] = JobResult(
                            name=jobs[index].name, ok=False,
                            error=f"WorkerTimeout: sweep deadline "
                                  f"{self.deadline:.1f}s exceeded before the "
                                  "job started",
                            traceback="(never started: sweep deadline)",
                            error_kind="timeout")
                        self.interventions.append({
                            "index": index, "name": jobs[index].name,
                            "action": "deadline-drop",
                            "detail": "queued past the sweep deadline",
                        })
                if queue or running:
                    time.sleep(self.poll_interval)
        return [r for r in results if r is not None]


def run_supervised(jobs: list, max_workers: int, mp_context=None,
                   timeout: float | None = None, deadline: float | None = None,
                   heartbeat_timeout: float | None = None,
                   heartbeat_dir=None) -> tuple[list, list[dict]]:
    """One supervised pass over ``jobs``; returns (results, interventions)."""
    supervisor = Supervisor(
        max_workers=max_workers, mp_context=mp_context, timeout=timeout,
        deadline=deadline, heartbeat_timeout=heartbeat_timeout,
        heartbeat_dir=heartbeat_dir)
    return supervisor.run(jobs), supervisor.interventions
