"""Parallel execution runtime: vectorized envs, batched rollout
collection, and a fault-contained process-pool experiment scheduler.

Layering (each layer usable on its own):

1. :mod:`~repro.runtime.vec_env` — ``VectorEnv``/``SyncVectorEnv`` step
   N seeded env copies in lockstep with auto-reset.
2. :mod:`~repro.runtime.collector` — ``collect_adversary_rollout_vec``
   fills one training batch from N lanes with batched policy forwards;
   bit-identical to the serial collector at ``n_envs=1``.
3. :mod:`~repro.runtime.scheduler` — ``run_parallel`` executes whole
   experiment cells on a process pool with structured failure capture,
   a structured ``error_kind`` taxonomy (``ERROR_KINDS``), seeded retry
   backoff, and ``SeedSequence``-derived per-job seeds.
4. :mod:`~repro.runtime.supervisor` — the watchdog behind ``timeout=``/
   ``deadline=``/``heartbeat_timeout=``: per-job worker processes that
   can be killed individually when they hang, stall, or overrun.
5. :mod:`repro.fabric` — ``run_parallel(fabric_dir=...)`` scales the
   same job model across hosts via a shared-directory queue with lease
   fencing; :mod:`~repro.runtime.janitor` sweeps pool/shm debris left
   by SIGKILLed parents.
"""

from .async_vec_env import AsyncVectorEnv
from .collector import collect_adversary_rollout_vec, knn_feature
from .janitor import pid_alive, sweep_stale_pool_dirs, sweep_stale_shm_segments
from .pool import WorkerPool
from .scheduler import (
    ERROR_KINDS,
    Job,
    JobResult,
    ScheduleReport,
    compute_backoff,
    derive_job_seeds,
    run_parallel,
)
from .shm import ShmArena, SlabSpec
from .supervisor import Supervisor, WorkerCrash, WorkerTimeout, classify_exception
from .vec_env import LANE_SEED_STRIDE, SyncVectorEnv, VectorEnv

__all__ = [
    "VectorEnv", "SyncVectorEnv", "AsyncVectorEnv", "LANE_SEED_STRIDE",
    "ShmArena", "SlabSpec",
    "collect_adversary_rollout_vec", "knn_feature",
    "Job", "JobResult", "ScheduleReport", "run_parallel", "derive_job_seeds",
    "compute_backoff", "ERROR_KINDS", "WorkerPool",
    "Supervisor", "WorkerCrash", "WorkerTimeout", "classify_exception",
    "pid_alive", "sweep_stale_pool_dirs", "sweep_stale_shm_segments",
]
