"""Process-pool experiment scheduler.

Experiment grids (attacks × victims × seeds) are embarrassingly
parallel: every cell is a pure function of its arguments and its seed.
:func:`run_parallel` executes a list of :class:`Job`\\ s on a
``ProcessPoolExecutor``, capturing per-job wall clock and turning worker
crashes into structured :class:`JobResult` errors instead of killing the
sweep.  ``max_workers <= 1`` runs the jobs inline in the parent process
(bit-identical to the pre-scheduler sequential code path).

Seed derivation for sweeps uses ``np.random.SeedSequence`` so job seeds
are statistically independent regardless of how the grid is enumerated
(``derive_job_seeds``).  Jobs with an explicit ``seed`` get it injected
as a ``seed=`` keyword argument.
"""

from __future__ import annotations

import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from ..telemetry import current_telemetry

__all__ = ["Job", "JobResult", "ScheduleReport", "run_parallel", "derive_job_seeds"]


def derive_job_seeds(base_seed: int, n_jobs: int) -> list[int]:
    """Independent per-job seeds via ``SeedSequence.spawn`` (not ``base+i``)."""
    children = np.random.SeedSequence(base_seed).spawn(n_jobs)
    return [int(child.generate_state(1)[0]) for child in children]


@dataclass
class Job:
    """One schedulable unit of work: ``fn(*args, **kwargs)`` in a worker."""

    fn: Callable[..., Any]
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    name: str = ""
    seed: int | None = None  # injected as kwargs["seed"] when set


@dataclass
class JobResult:
    """Outcome of one job: either ``value`` or a captured error."""

    name: str
    ok: bool
    value: Any = None
    error: str | None = None
    traceback: str | None = None
    duration: float = 0.0


@dataclass
class ScheduleReport:
    """Ordered job results plus wall-clock/throughput statistics."""

    results: list[JobResult]
    wall_clock: float
    max_workers: int

    @property
    def n_failed(self) -> int:
        return sum(not r.ok for r in self.results)

    @property
    def failures(self) -> list[JobResult]:
        return [r for r in self.results if not r.ok]

    @property
    def total_job_time(self) -> float:
        """Sum of per-job durations (the sequential-equivalent wall clock)."""
        return float(sum(r.duration for r in self.results))

    @property
    def speedup(self) -> float:
        """total_job_time / wall_clock — parallel efficiency × workers."""
        return self.total_job_time / self.wall_clock if self.wall_clock > 0 else 0.0

    def values(self) -> list[Any]:
        """Job values in submission order (``None`` for failed jobs)."""
        return [r.value if r.ok else None for r in self.results]

    def summary(self) -> str:
        ok = len(self.results) - self.n_failed
        return (f"{ok}/{len(self.results)} jobs ok in {self.wall_clock:.1f}s "
                f"wall ({self.total_job_time:.1f}s of work, "
                f"{self.speedup:.2f}x speedup, {self.max_workers} workers)")


def _execute_job(job: Job) -> JobResult:
    """Run one job, converting any exception into a structured error."""
    start = time.perf_counter()
    try:
        kwargs = dict(job.kwargs)
        if job.seed is not None and "seed" not in kwargs:
            kwargs["seed"] = job.seed
        value = job.fn(*job.args, **kwargs)
        return JobResult(name=job.name, ok=True, value=value,
                         duration=time.perf_counter() - start)
    except Exception as exc:  # noqa: BLE001 — a cell failure must not kill the sweep
        return JobResult(name=job.name, ok=False,
                         error=f"{type(exc).__name__}: {exc}",
                         traceback=traceback.format_exc(),
                         duration=time.perf_counter() - start)


def _record_schedule(telemetry, report: ScheduleReport) -> None:
    """Per-job events + crash records into the manifest, in job order.

    Runs in the submitting process after results are gathered, so event
    order is deterministic (submission order) regardless of worker
    completion order.  Worker processes themselves run untelemetered —
    an open JSONL sink does not cross a fork/spawn boundary.
    """
    for result in report.results:
        telemetry.metrics.counter(
            "scheduler.jobs_ok" if result.ok else "scheduler.jobs_failed").inc()
        telemetry.metrics.observe_duration("scheduler.job", result.duration)
        telemetry.event("job.finished", payload={
            "name": result.name, "ok": result.ok, "error": result.error,
        }, perf={"duration": result.duration})
        telemetry.record_job(result.name, result.ok, duration=result.duration,
                             error=result.error, traceback=result.traceback)
    telemetry.event("schedule.complete", payload={
        "n_jobs": len(report.results), "n_failed": report.n_failed,
    }, perf={"wall_clock": report.wall_clock, "speedup": report.speedup,
             "max_workers": report.max_workers})


def run_parallel(jobs: Iterable[Job] | Sequence[Job], max_workers: int = 1,
                 mp_context=None, telemetry=None) -> ScheduleReport:
    """Execute ``jobs`` and return per-job results in submission order.

    ``max_workers <= 1`` (or a single job) runs inline — no processes, no
    pickling, identical to a plain for-loop.  Otherwise jobs are farmed
    out to a process pool; a job that raises, fails to pickle, or loses
    its worker is reported as a failed :class:`JobResult` while the rest
    of the sweep completes.  ``telemetry`` (default: the ambient one)
    receives per-job events and crash records into the run manifest.
    """
    jobs = list(jobs)
    telemetry = telemetry if telemetry is not None else current_telemetry()
    start = time.perf_counter()
    if max_workers <= 1 or len(jobs) <= 1:
        results = [_execute_job(job) for job in jobs]
        report = ScheduleReport(results=results,
                                wall_clock=time.perf_counter() - start,
                                max_workers=1)
        if telemetry is not None:
            _record_schedule(telemetry, report)
        return report

    if isinstance(mp_context, str):
        import multiprocessing

        mp_context = multiprocessing.get_context(mp_context)
    results: list[JobResult | None] = [None] * len(jobs)
    with ProcessPoolExecutor(max_workers=min(max_workers, len(jobs)),
                             mp_context=mp_context) as pool:
        futures = {}
        for i, job in enumerate(jobs):
            try:
                futures[pool.submit(_execute_job, job)] = i
            except Exception as exc:  # unpicklable job, pool already broken, ...
                results[i] = JobResult(name=job.name, ok=False,
                                       error=f"{type(exc).__name__}: {exc}",
                                       traceback=traceback.format_exc())
        for future, i in futures.items():
            try:
                results[i] = future.result()
            except Exception as exc:  # worker death (BrokenProcessPool), pickling
                results[i] = JobResult(name=jobs[i].name, ok=False,
                                       error=f"{type(exc).__name__}: {exc}",
                                       traceback=traceback.format_exc())
    report = ScheduleReport(results=[r for r in results if r is not None],
                            wall_clock=time.perf_counter() - start,
                            max_workers=max_workers)
    if telemetry is not None:
        _record_schedule(telemetry, report)
    return report
