"""Process-pool experiment scheduler.

Experiment grids (attacks × victims × seeds) are embarrassingly
parallel: every cell is a pure function of its arguments and its seed.
:func:`run_parallel` executes a list of :class:`Job`\\ s on a
``ProcessPoolExecutor``, capturing per-job wall clock and turning worker
crashes into structured :class:`JobResult` errors instead of killing the
sweep.  ``max_workers <= 1`` runs the jobs inline in the parent process
(bit-identical to the pre-scheduler sequential code path).

Seed derivation for sweeps uses ``np.random.SeedSequence`` so job seeds
are statistically independent regardless of how the grid is enumerated
(``derive_job_seeds``).  Jobs with an explicit ``seed`` get it injected
as a ``seed=`` keyword argument.
"""

from __future__ import annotations

import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from ..telemetry import current_telemetry

__all__ = ["Job", "JobResult", "ScheduleReport", "run_parallel", "derive_job_seeds"]


def derive_job_seeds(base_seed: int, n_jobs: int) -> list[int]:
    """Independent per-job seeds via ``SeedSequence.spawn`` (not ``base+i``)."""
    children = np.random.SeedSequence(base_seed).spawn(n_jobs)
    return [int(child.generate_state(1)[0]) for child in children]


@dataclass
class Job:
    """One schedulable unit of work: ``fn(*args, **kwargs)`` in a worker."""

    fn: Callable[..., Any]
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    name: str = ""
    seed: int | None = None  # injected as kwargs["seed"] when set
    # When True and run_parallel was given a checkpoint_dir, the scheduler
    # injects checkpoint_path=/checkpoint_every= kwargs so a retried job
    # resumes from its last on-disk checkpoint instead of from scratch.
    # fn must accept those keywords (train_ppo / AdversaryTrainer.train do).
    checkpointable: bool = False


@dataclass
class JobResult:
    """Outcome of one job: either ``value`` or a captured error."""

    name: str
    ok: bool
    value: Any = None
    error: str | None = None
    traceback: str | None = None
    duration: float = 0.0
    attempts: int = 1


@dataclass
class ScheduleReport:
    """Ordered job results plus wall-clock/throughput statistics."""

    results: list[JobResult]
    wall_clock: float
    max_workers: int

    @property
    def n_failed(self) -> int:
        return sum(not r.ok for r in self.results)

    @property
    def failures(self) -> list[JobResult]:
        return [r for r in self.results if not r.ok]

    @property
    def total_job_time(self) -> float:
        """Sum of per-job durations (the sequential-equivalent wall clock)."""
        return float(sum(r.duration for r in self.results))

    @property
    def speedup(self) -> float:
        """total_job_time / wall_clock — parallel efficiency × workers."""
        return self.total_job_time / self.wall_clock if self.wall_clock > 0 else 0.0

    def values(self) -> list[Any]:
        """Job values in submission order (``None`` for failed jobs)."""
        return [r.value if r.ok else None for r in self.results]

    def summary(self) -> str:
        ok = len(self.results) - self.n_failed
        return (f"{ok}/{len(self.results)} jobs ok in {self.wall_clock:.1f}s "
                f"wall ({self.total_job_time:.1f}s of work, "
                f"{self.speedup:.2f}x speedup, {self.max_workers} workers)")


def _execute_job(job: Job) -> JobResult:
    """Run one job, converting any exception into a structured error."""
    start = time.perf_counter()
    try:
        kwargs = dict(job.kwargs)
        if job.seed is not None and "seed" not in kwargs:
            kwargs["seed"] = job.seed
        value = job.fn(*job.args, **kwargs)
        return JobResult(name=job.name, ok=True, value=value,
                         duration=time.perf_counter() - start)
    except Exception as exc:  # noqa: BLE001 — a cell failure must not kill the sweep
        return JobResult(name=job.name, ok=False,
                         error=f"{type(exc).__name__}: {exc}",
                         traceback=traceback.format_exc(),
                         duration=time.perf_counter() - start)


def _record_schedule(telemetry, report: ScheduleReport,
                     retried: list[tuple[int, JobResult]]) -> None:
    """Per-attempt events + per-job crash records, in deterministic order.

    Runs in the submitting process after results are gathered, so event
    order is deterministic (failed attempts in retry order, then final
    results in submission order) regardless of worker completion order.
    Worker processes themselves run untelemetered — an open JSONL sink
    does not cross a fork/spawn boundary.
    """
    for attempt, result in retried:
        telemetry.metrics.counter("scheduler.retries").inc()
        telemetry.event("job.attempt", payload={
            "name": result.name, "attempt": attempt, "ok": False,
            "error": result.error,
        }, perf={"duration": result.duration})
    for result in report.results:
        telemetry.metrics.counter(
            "scheduler.jobs_ok" if result.ok else "scheduler.jobs_failed").inc()
        telemetry.metrics.observe_duration("scheduler.job", result.duration)
        telemetry.event("job.finished", payload={
            "name": result.name, "ok": result.ok, "error": result.error,
            "attempts": result.attempts,
        }, perf={"duration": result.duration})
        telemetry.record_job(result.name, result.ok, duration=result.duration,
                             error=result.error, traceback=result.traceback,
                             attempts=result.attempts)
    telemetry.event("schedule.complete", payload={
        "n_jobs": len(report.results), "n_failed": report.n_failed,
    }, perf={"wall_clock": report.wall_clock, "speedup": report.speedup,
             "max_workers": report.max_workers})


def _job_checkpoint_path(checkpoint_dir: Path, job: Job, index: int) -> Path:
    safe = (job.name or f"job{index}").replace("/", "_").replace(" ", "_")
    return checkpoint_dir / f"{safe}.ckpt.npz"


def _prepare_jobs(jobs: list[Job], checkpoint_dir, checkpoint_every: int) -> list[Job]:
    """Inject checkpoint kwargs into checkpointable jobs (non-destructively)."""
    if checkpoint_dir is None or not checkpoint_every:
        return jobs
    checkpoint_dir = Path(checkpoint_dir)
    checkpoint_dir.mkdir(parents=True, exist_ok=True)
    prepared = []
    for i, job in enumerate(jobs):
        if job.checkpointable and "checkpoint_path" not in job.kwargs:
            kwargs = dict(job.kwargs)
            kwargs["checkpoint_path"] = str(_job_checkpoint_path(checkpoint_dir, job, i))
            kwargs["checkpoint_every"] = checkpoint_every
            job = Job(fn=job.fn, args=job.args, kwargs=kwargs, name=job.name,
                      seed=job.seed, checkpointable=True)
        prepared.append(job)
    return prepared


def _run_batch(jobs: list[Job], max_workers: int, mp_context) -> list[JobResult]:
    """One pass over ``jobs``: inline when serial, else via a process pool."""
    if max_workers <= 1 or len(jobs) <= 1:
        return [_execute_job(job) for job in jobs]
    if isinstance(mp_context, str):
        import multiprocessing

        mp_context = multiprocessing.get_context(mp_context)
    results: list[JobResult | None] = [None] * len(jobs)
    with ProcessPoolExecutor(max_workers=min(max_workers, len(jobs)),
                             mp_context=mp_context) as pool:
        futures = {}
        for i, job in enumerate(jobs):
            try:
                futures[pool.submit(_execute_job, job)] = i
            except Exception as exc:  # unpicklable job, pool already broken, ...
                results[i] = JobResult(name=job.name, ok=False,
                                       error=f"{type(exc).__name__}: {exc}",
                                       traceback=traceback.format_exc())
        for future, i in futures.items():
            try:
                results[i] = future.result()
            except Exception as exc:  # worker death (BrokenProcessPool), pickling
                results[i] = JobResult(name=jobs[i].name, ok=False,
                                       error=f"{type(exc).__name__}: {exc}",
                                       traceback=traceback.format_exc())
    return [r for r in results if r is not None]


def run_parallel(jobs: Iterable[Job] | Sequence[Job], max_workers: int = 1,
                 mp_context=None, telemetry=None, retries: int = 0,
                 checkpoint_dir: str | Path | None = None,
                 checkpoint_every: int = 0) -> ScheduleReport:
    """Execute ``jobs`` and return per-job results in submission order.

    ``max_workers <= 1`` (or a single job) runs inline — no processes, no
    pickling, identical to a plain for-loop.  Otherwise jobs are farmed
    out to a process pool; a job that raises, fails to pickle, or loses
    its worker is reported as a failed :class:`JobResult` while the rest
    of the sweep completes.  ``telemetry`` (default: the ambient one)
    receives per-attempt events and crash records into the run manifest.

    Fault tolerance: ``retries=k`` requeues each failed job up to k more
    times.  With ``checkpoint_dir`` + ``checkpoint_every`` set, jobs
    flagged :attr:`Job.checkpointable` get ``checkpoint_path=`` /
    ``checkpoint_every=`` kwargs injected, so a crashed training job's
    retry resumes from its last on-disk checkpoint instead of restarting
    from scratch; the result is bit-identical to an uninterrupted run.
    """
    jobs = list(jobs)
    telemetry = telemetry if telemetry is not None else current_telemetry()
    start = time.perf_counter()
    prepared = _prepare_jobs(jobs, checkpoint_dir, checkpoint_every)
    results = _run_batch(prepared, max_workers, mp_context)
    attempts = [1] * len(results)
    retried: list[tuple[int, JobResult]] = []
    pending = [i for i, r in enumerate(results) if not r.ok]
    while pending and max(attempts[i] for i in pending) <= retries:
        for i in pending:
            retried.append((attempts[i], results[i]))
        retry_results = _run_batch([prepared[i] for i in pending],
                                   max_workers, mp_context)
        for i, result in zip(pending, retry_results):
            attempts[i] += 1
            results[i] = result
        pending = [i for i in pending if not results[i].ok]
    for i, result in enumerate(results):
        result.attempts = attempts[i]
    report = ScheduleReport(results=results,
                            wall_clock=time.perf_counter() - start,
                            max_workers=1 if max_workers <= 1 else max_workers)
    if telemetry is not None:
        _record_schedule(telemetry, report, retried)
    return report
