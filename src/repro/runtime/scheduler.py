"""Process-pool experiment scheduler with fault containment.

Experiment grids (attacks × victims × seeds) are embarrassingly
parallel: every cell is a pure function of its arguments and its seed.
:func:`run_parallel` executes a list of :class:`Job`\\ s on a
``ProcessPoolExecutor``, capturing per-job wall clock and turning worker
crashes into structured :class:`JobResult` errors instead of killing the
sweep.  ``max_workers <= 1`` runs the jobs inline in the parent process
(bit-identical to the pre-scheduler sequential code path).

Containment layers (each opt-in, so the no-fault fast path is untouched):

* **Deadlines** — per-job ``timeout=`` (or ``Job.timeout``) and a
  sweep-level ``deadline=`` route execution through the
  :class:`~repro.runtime.supervisor.Supervisor` watchdog: hung or
  stalled workers are killed and reported as ``error_kind="timeout"``
  instead of stalling ``future.result()`` forever.
* **Error taxonomy** — every failed :class:`JobResult` carries
  ``error_kind`` ∈ ``crash | timeout | numerical | pickling |
  pool_broken`` so sweep tooling can retry, reroute, or alert per class.
* **Retries with seeded backoff** — ``retries=k`` requeues failures up
  to k more times; ``retry_backoff=b`` sleeps ``b·2^(round-1)`` seconds
  with deterministic ``SeedSequence``-seeded jitter between rounds.
  A ``numerical`` failure (see :mod:`repro.rl.health`) retried with
  checkpointing enabled resumes from its last *healthy* checkpoint —
  the guards fire before a poisoned iteration can checkpoint.
* **Pool degradation** — a ``BrokenProcessPool`` fails innocent queued
  jobs too; those are requeued on a rebuilt pool for free (not charged
  against ``retries``), and a twice-broken pool falls back to inline
  serial execution with a telemetry warning instead of failing the sweep.

Seed derivation for sweeps uses ``np.random.SeedSequence`` so job seeds
are statistically independent regardless of how the grid is enumerated
(``derive_job_seeds``).  Jobs with an explicit ``seed`` get it injected
as a ``seed=`` keyword argument.
"""

from __future__ import annotations

import dataclasses
import pickle
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from ..telemetry import current_telemetry
from .supervisor import ERROR_KINDS, classify_exception, run_supervised

__all__ = [
    "Job", "JobResult", "ScheduleReport", "run_parallel", "derive_job_seeds",
    "compute_backoff", "ERROR_KINDS",
]

# How many times one run_parallel call will rebuild a broken pool before
# giving up on requeueing pool_broken failures.
MAX_POOL_REBUILDS = 3
# Pool breakages after which the sweep degrades to inline serial execution.
DEGRADE_AFTER_POOL_BREAKS = 2


def derive_job_seeds(base_seed: int, n_jobs: int) -> list[int]:
    """Independent per-job seeds via ``SeedSequence.spawn`` (not ``base+i``).

    Inputs are validated here so a bad sweep config fails with a clear
    message instead of an opaque ``SeedSequence`` traceback from deep
    inside numpy.
    """
    if isinstance(base_seed, bool) or not isinstance(base_seed, (int, np.integer)):
        raise TypeError(
            f"derive_job_seeds: base_seed must be an integer, got "
            f"{base_seed!r} ({type(base_seed).__name__})")
    if (isinstance(n_jobs, bool) or not isinstance(n_jobs, (int, np.integer))
            or n_jobs < 0):
        raise ValueError(
            f"derive_job_seeds: n_jobs must be a non-negative integer, got "
            f"{n_jobs!r}")
    children = np.random.SeedSequence(int(base_seed)).spawn(int(n_jobs))
    return [int(child.generate_state(1)[0]) for child in children]


def compute_backoff(base: float, round_index: int,
                    rng: np.random.Generator, cap: float = 60.0) -> float:
    """Seeded exponential backoff with jitter for retry round ``round_index``.

    ``base * 2^(round-1)`` capped at ``cap`` seconds, jittered uniformly
    into ``[0.5, 1.0]ד`` so simultaneous sweeps don't retry in
    lockstep.  ``base <= 0`` disables backoff entirely (and draws nothing
    from ``rng``, keeping the generator untouched for determinism).  The
    exponent is clamped before exponentiation so absurd round counts
    (a fabric job stolen hundreds of times) saturate at ``cap`` instead
    of overflowing ``float``.
    """
    if base <= 0.0:
        return 0.0
    scale = base * (2.0 ** min(63, max(0, round_index - 1)))
    return float(min(cap, scale) * (0.5 + 0.5 * rng.random()))


@dataclass
class Job:
    """One schedulable unit of work: ``fn(*args, **kwargs)`` in a worker."""

    fn: Callable[..., Any]
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    name: str = ""
    seed: int | None = None  # injected as kwargs["seed"] when set
    # When True and run_parallel was given a checkpoint_dir, the scheduler
    # injects checkpoint_path=/checkpoint_every= kwargs so a retried job
    # resumes from its last on-disk checkpoint instead of from scratch.
    # fn must accept those keywords (train_ppo / AdversaryTrainer.train do).
    checkpointable: bool = False
    # Per-job wall-clock budget in seconds; overrides run_parallel's
    # timeout= for this job.  Any timeout routes the batch through the
    # watchdog supervisor (per-job worker processes, kill on expiry).
    timeout: float | None = None
    # Serialized form of this job, filled lazily by payload() and reused
    # verbatim by every retry/requeue — the fix for re-pickling a large
    # policy once per attempt.  Never pickled itself (see __getstate__).
    _payload: bytes | None = field(default=None, init=False, repr=False,
                                   compare=False)

    def payload(self) -> bytes:
        """This job's pickle, serialized exactly once and cached.

        The executor and pool paths ship ``payload()`` bytes instead of
        the job object, so requeues and retries of the same job never
        re-serialize its (possibly policy-sized) arguments.
        """
        if self._payload is None:
            self._payload = pickle.dumps(self)
        return self._payload

    def __getstate__(self):
        # The payload *is* this object's pickle: dropping it keeps the
        # serialized form minimal and non-recursive.
        state = self.__dict__.copy()
        state["_payload"] = None
        return state


@dataclass
class JobResult:
    """Outcome of one job: either ``value`` or a captured, classified error."""

    name: str
    ok: bool
    value: Any = None
    error: str | None = None
    traceback: str | None = None
    duration: float = 0.0
    attempts: int = 1
    # Structured failure taxonomy (None while ok):
    # crash | timeout | numerical | pickling | pool_broken
    # | lease_lost | orphaned | queue_corrupt   (fabric lanes only)
    error_kind: str | None = None


@dataclass
class ScheduleReport:
    """Ordered job results plus wall-clock/throughput statistics."""

    results: list[JobResult]
    wall_clock: float
    max_workers: int
    # Failed attempts that were requeued: (attempt_number, JobResult).
    retried: list[tuple[int, JobResult]] = field(default_factory=list)
    # True if repeated pool breakage (or a worker-less fabric) forced
    # inline serial execution; degraded_reason says which.
    degraded: bool = False
    degraded_reason: str = ""
    # Watchdog actions (kills, deadline drops) taken during the run.
    interventions: list[dict] = field(default_factory=list)

    @property
    def n_failed(self) -> int:
        return sum(not r.ok for r in self.results)

    @property
    def failures(self) -> list[JobResult]:
        return [r for r in self.results if not r.ok]

    def failures_by_kind(self) -> dict[str, list[JobResult]]:
        """Failed results grouped by their ``error_kind`` taxonomy tag."""
        grouped: dict[str, list[JobResult]] = {}
        for result in self.failures:
            grouped.setdefault(result.error_kind or "crash", []).append(result)
        return grouped

    @property
    def total_job_time(self) -> float:
        """Sum of per-job durations (the sequential-equivalent wall clock)."""
        return float(sum(r.duration for r in self.results))

    @property
    def speedup(self) -> float:
        """total_job_time / wall_clock — parallel efficiency × workers.

        A degenerate ``wall_clock == 0`` (manual clocks, sub-resolution
        sweeps) reports a neutral 1.0 rather than a bogus "0.00x".
        """
        if self.wall_clock <= 0.0:
            return 1.0
        return self.total_job_time / self.wall_clock

    def values(self) -> list[Any]:
        """Job values in submission order (``None`` for failed jobs)."""
        return [r.value if r.ok else None for r in self.results]

    def summary(self) -> str:
        ok = len(self.results) - self.n_failed
        speedup = (f", {self.speedup:.2f}x speedup"
                   if self.wall_clock > 0.0 else "")
        degraded = ", degraded to inline" if self.degraded else ""
        return (f"{ok}/{len(self.results)} jobs ok in {self.wall_clock:.1f}s "
                f"wall ({self.total_job_time:.1f}s of work{speedup}, "
                f"{self.max_workers} workers{degraded})")


def _execute_job(job: Job) -> JobResult:
    """Run one job, converting any exception into a structured error."""
    start = time.perf_counter()
    try:
        kwargs = dict(job.kwargs)
        if job.seed is not None and "seed" not in kwargs:
            kwargs["seed"] = job.seed
        value = job.fn(*job.args, **kwargs)
        return JobResult(name=job.name, ok=True, value=value,
                         duration=time.perf_counter() - start)
    except Exception as exc:  # noqa: BLE001 — a cell failure must not kill the sweep
        return JobResult(name=job.name, ok=False,
                         error=f"{type(exc).__name__}: {exc}",
                         traceback=traceback.format_exc(),
                         duration=time.perf_counter() - start,
                         error_kind=classify_exception(exc))


def _execute_payload(payload: bytes) -> JobResult:
    """Worker-side entry: unpickle a cached job payload and execute it."""
    try:
        job = pickle.loads(payload)
    except Exception as exc:  # corrupted/undeserializable payload
        return JobResult(name="", ok=False,
                         error=f"{type(exc).__name__}: {exc}",
                         traceback=traceback.format_exc(),
                         error_kind="pickling")
    return _execute_job(job)


def _record_schedule(telemetry, report: ScheduleReport) -> None:
    """Per-attempt events + per-job crash records, in deterministic order.

    Runs in the submitting process after results are gathered, so event
    order is deterministic (failed attempts in retry order, then final
    results in submission order) regardless of worker completion order.
    Worker processes themselves run untelemetered — an open JSONL sink
    does not cross a fork/spawn boundary.
    """
    for attempt, result in report.retried:
        telemetry.metrics.counter("scheduler.retries").inc()
        telemetry.event("job.attempt", payload={
            "name": result.name, "attempt": attempt, "ok": False,
            "error": result.error, "error_kind": result.error_kind,
        }, perf={"duration": result.duration})
    if report.degraded:
        telemetry.metrics.counter("scheduler.pool_degraded").inc()
        telemetry.event("schedule.degraded", payload={
            "reason": report.degraded_reason
                      or "process pool broke repeatedly; "
                         "falling back to inline serial execution",
        })
    for result in report.results:
        telemetry.metrics.counter(
            "scheduler.jobs_ok" if result.ok else "scheduler.jobs_failed").inc()
        telemetry.metrics.observe_duration("scheduler.job", result.duration)
        telemetry.event("job.finished", payload={
            "name": result.name, "ok": result.ok, "error": result.error,
            "attempts": result.attempts, "error_kind": result.error_kind,
        }, perf={"duration": result.duration})
        telemetry.record_job(result.name, result.ok, duration=result.duration,
                             error=result.error, traceback=result.traceback,
                             attempts=result.attempts,
                             error_kind=result.error_kind)
    telemetry.event("schedule.complete", payload={
        "n_jobs": len(report.results), "n_failed": report.n_failed,
    }, perf={"wall_clock": report.wall_clock, "speedup": report.speedup,
             "max_workers": report.max_workers})


def _job_checkpoint_path(checkpoint_dir: Path, job: Job, index: int) -> Path:
    safe = (job.name or f"job{index}").replace("/", "_").replace(" ", "_")
    return checkpoint_dir / f"{safe}.ckpt.npz"


def _prepare_jobs(jobs: list[Job], checkpoint_dir, checkpoint_every: int) -> list[Job]:
    """Inject checkpoint kwargs into checkpointable jobs (non-destructively)."""
    if checkpoint_dir is None or not checkpoint_every:
        return jobs
    checkpoint_dir = Path(checkpoint_dir)
    checkpoint_dir.mkdir(parents=True, exist_ok=True)
    prepared = []
    for i, job in enumerate(jobs):
        if job.checkpointable and "checkpoint_path" not in job.kwargs:
            kwargs = dict(job.kwargs)
            kwargs["checkpoint_path"] = str(_job_checkpoint_path(checkpoint_dir, job, i))
            kwargs["checkpoint_every"] = checkpoint_every
            job = dataclasses.replace(job, kwargs=kwargs)
        prepared.append(job)
    return prepared


def _run_batch(jobs: list[Job], max_workers: int, mp_context,
               force_pool: bool = False) -> list[JobResult]:
    """One pass over ``jobs``: inline when serial, else via a process pool.

    ``force_pool`` disables the small-batch inline shortcut (it never
    overrides ``max_workers <= 1``): a requeued job whose first attempt
    broke a pool may crash its process again, and inlining it would take
    the parent down with it.
    """
    if max_workers <= 1 or (len(jobs) <= 1 and not force_pool):
        return [_execute_job(job) for job in jobs]
    if isinstance(mp_context, str):
        import multiprocessing

        mp_context = multiprocessing.get_context(mp_context)
    results: list[JobResult | None] = [None] * len(jobs)
    with ProcessPoolExecutor(max_workers=min(max_workers, len(jobs)),
                             mp_context=mp_context) as pool:
        futures = {}
        for i, job in enumerate(jobs):
            try:
                # Ship the cached payload, not the job: a retried job is
                # serialized once for its whole lifetime, not per attempt.
                futures[pool.submit(_execute_payload, job.payload())] = i
            except Exception as exc:  # unpicklable job, pool already broken, ...
                results[i] = JobResult(name=job.name, ok=False,
                                       error=f"{type(exc).__name__}: {exc}",
                                       traceback=traceback.format_exc(),
                                       error_kind=classify_exception(exc))
        for future, i in futures.items():
            try:
                results[i] = future.result()
            except Exception as exc:  # worker death (BrokenProcessPool), pickling
                results[i] = JobResult(name=jobs[i].name, ok=False,
                                       error=f"{type(exc).__name__}: {exc}",
                                       traceback=traceback.format_exc(),
                                       error_kind=classify_exception(exc))
    return [r for r in results if r is not None]


def run_parallel(jobs: Iterable[Job] | Sequence[Job], max_workers: int = 1,
                 mp_context=None, telemetry=None, retries: int = 0,
                 checkpoint_dir: str | Path | None = None,
                 checkpoint_every: int = 0,
                 timeout: float | None = None,
                 deadline: float | None = None,
                 heartbeat_timeout: float | None = None,
                 retry_backoff: float = 0.0,
                 backoff_seed: int = 0,
                 pool=None,
                 fabric_dir: str | Path | None = None) -> ScheduleReport:
    """Execute ``jobs`` and return per-job results in submission order.

    ``max_workers <= 1`` (or a single job) runs inline — no processes, no
    pickling, identical to a plain for-loop.  Otherwise jobs are farmed
    out to a process pool; a job that raises, fails to pickle, or loses
    its worker is reported as a failed :class:`JobResult` while the rest
    of the sweep completes.  ``telemetry`` (default: the ambient one)
    receives per-attempt events and crash records into the run manifest.

    Fault containment (all opt-in; with none of these set the execution
    path — and therefore every result byte — is identical to the plain
    scheduler):

    * ``timeout=`` / ``Job.timeout`` / ``deadline=`` /
      ``heartbeat_timeout=`` switch the batch onto the watchdog
      supervisor: each job gets its own worker process, hung or stalled
      workers are killed and classified ``error_kind="timeout"``, and the
      sweep-level ``deadline`` bounds total wall clock.
    * ``retries=k`` requeues each failed job up to k more times, sleeping
      ``compute_backoff(retry_backoff, round, rng)`` between rounds
      (seeded jitter; ``retry_backoff=0`` disables sleeping).  With
      ``checkpoint_dir`` + ``checkpoint_every`` set, jobs flagged
      :attr:`Job.checkpointable` get ``checkpoint_path=`` /
      ``checkpoint_every=`` kwargs injected, so a crashed, killed, or
      numerically-diverged training job's retry resumes from its last
      healthy on-disk checkpoint instead of restarting from scratch; the
      result is bit-identical to an uninterrupted run.
    * A broken process pool (a worker hard-killed mid-job) fails every
      in-flight job as ``pool_broken``; those are requeued on a rebuilt
      pool without consuming ``retries``, and after
      ``DEGRADE_AFTER_POOL_BREAKS`` breakages the sweep degrades to
      inline serial execution with a telemetry warning rather than
      failing.
    * ``pool=`` (a :class:`~repro.runtime.pool.WorkerPool`) runs every
      batch on persistent, already-warm worker processes instead of
      spawning per attempt; the pool enforces the same ``timeout`` /
      ``deadline`` / ``heartbeat_timeout`` watchdog semantics itself and
      replaces dead workers in place, so ``pool_broken`` never occurs.
      Job payloads are serialized once (``Job.payload``) and reshipped
      as bytes on retries.
    * ``fabric_dir=`` routes every batch through the multi-host job
      fabric (:mod:`repro.fabric`): jobs are enqueued into the shared
      directory and executed by whatever worker daemons are drained from
      it, with lease fencing, checkpoint-resumed steals, and
      store-deduplicated results.  If no live daemon appears within the
      fabric's grace window the batch degrades to inline execution
      (``report.degraded`` + a ``schedule.degraded`` event) — a sweep
      never hangs on an empty fabric.  Checkpointable jobs default their
      ``checkpoint_dir`` into the fabric so a stolen job resumes on
      whichever host re-leased it.
    """
    jobs = list(jobs)
    telemetry = telemetry if telemetry is not None else current_telemetry()
    start = time.perf_counter()
    fabric = None
    if fabric_dir is not None:
        if pool is not None:
            raise ValueError(
                "run_parallel: fabric_dir= and pool= are mutually exclusive "
                "execution lanes")
        from ..fabric import FabricSubmitter

        fabric = FabricSubmitter(fabric_dir, telemetry=telemetry)
        if checkpoint_dir is None and checkpoint_every:
            # Checkpoints must live on the shared directory, or a stolen
            # job cannot resume on the host that re-leased it.
            checkpoint_dir = Path(fabric_dir) / "checkpoints"
    prepared = _prepare_jobs(jobs, checkpoint_dir, checkpoint_every)
    supervised = (pool is None and fabric is None
                  and (timeout is not None or deadline is not None
                       or heartbeat_timeout is not None
                       or any(job.timeout is not None for job in prepared)))
    pool_breaks = 0
    degraded = False
    degraded_reason = ""
    fabric_churn: list[JobResult] = []
    interventions: list[dict] = []
    backoff_rng = np.random.default_rng(np.random.SeedSequence(backoff_seed))

    def deadline_left() -> float | None:
        if deadline is None:
            return None
        return max(0.0, deadline - (time.perf_counter() - start))

    def run_batch(subset: list[Job], requeue: bool = False) -> list[JobResult]:
        if fabric is not None:
            batch, acts, churn = fabric.run_batch(
                subset, timeout=timeout, deadline=deadline_left())
            interventions.extend(acts)
            fabric_churn.extend(churn)
            return batch
        if pool is not None:
            batch, acts = pool.run(subset, timeout=timeout,
                                   deadline=deadline_left(),
                                   heartbeat_timeout=heartbeat_timeout)
            interventions.extend(acts)
            return batch
        if supervised:
            batch, acts = run_supervised(
                subset, max_workers=1 if degraded else max_workers,
                mp_context=mp_context, timeout=timeout,
                deadline=deadline_left(),
                heartbeat_timeout=heartbeat_timeout)
            interventions.extend(acts)
            return batch
        if degraded:
            return [_execute_job(job) for job in subset]
        return _run_batch(subset, max_workers, mp_context, force_pool=requeue)

    results = run_batch(prepared)
    attempts = [1] * len(results)
    retried: list[tuple[int, JobResult]] = []

    # Pool containment: requeue pool_broken casualties on a rebuilt pool
    # (free — the job may never have run), degrading to inline after
    # repeated breakage.  Only the pool path can break a pool.
    rebuilds = 0
    while (pool is None and fabric is None and not supervised
           and rebuilds < MAX_POOL_REBUILDS):
        broken = [i for i, r in enumerate(results)
                  if not r.ok and r.error_kind == "pool_broken"]
        if not broken:
            break
        rebuilds += 1
        pool_breaks += 1
        if pool_breaks >= DEGRADE_AFTER_POOL_BREAKS:
            degraded = True
        for i in broken:
            retried.append((attempts[i], results[i]))
        requeued = run_batch([prepared[i] for i in broken], requeue=True)
        for i, result in zip(broken, requeued):
            attempts[i] += 1
            results[i] = result

    pending = [i for i, r in enumerate(results) if not r.ok]
    retry_round = 0
    while pending and max(attempts[i] for i in pending) <= retries:
        retry_round += 1
        delay = compute_backoff(retry_backoff, retry_round, backoff_rng)
        if delay > 0.0:
            time.sleep(delay)
        for i in pending:
            retried.append((attempts[i], results[i]))
        retry_results = run_batch([prepared[i] for i in pending], requeue=True)
        for i, result in zip(pending, retry_results):
            attempts[i] += 1
            results[i] = result
        pending = [i for i in pending if not results[i].ok]
    for i, result in enumerate(results):
        result.attempts = attempts[i]
    if fabric is not None:
        if fabric.degraded:
            degraded = True
            degraded_reason = ("no live fabric workers within the grace "
                               "window; batch executed inline by the "
                               "submitter")
        # Lease churn (steals, fenced abandonments) surfaces as failed
        # attempt records so report.retried and telemetry show exactly
        # what containment the fabric performed.
        churn_counts: dict[str, int] = {}
        for record in fabric_churn:
            churn_counts[record.name] = churn_counts.get(record.name, 0) + 1
            retried.append((churn_counts[record.name], record))
    effective_workers = (pool.max_workers if pool is not None
                         else 1 if max_workers <= 1 else max_workers)
    report = ScheduleReport(results=results,
                            wall_clock=time.perf_counter() - start,
                            max_workers=effective_workers,
                            retried=retried, degraded=degraded,
                            degraded_reason=degraded_reason,
                            interventions=interventions)
    if telemetry is not None:
        _record_schedule(telemetry, report)
    return report
