"""Asynchronous vectorized env: one process per lane, shared-memory arrays.

:class:`AsyncVectorEnv` is the concurrent counterpart of
:class:`~repro.runtime.vec_env.SyncVectorEnv`: each lane's env lives in
its own worker process and steps while the other lanes step, so one
batched ``act_batch`` forward in the parent serves lanes that are
advancing truly in parallel.  The hot arrays — observations, actions,
rewards, terminated/truncated flags — travel through a
:class:`~repro.runtime.shm.ShmArena` slab per field: the parent writes
the action batch into shared memory, broadcasts one tiny ``step``
command per lane, and reads the observation batch back out of shared
memory.  No array is ever pickled.  Per-step ``info`` dicts (episode
metadata: ``final_obs``, ``victim_reward``, KNN features) are small and
ride back on the command pipe.

Bit-identity contract (asserted by the three-lane suite in
``tests/test_determinism.py``): at matched seeds, ``reset``/``step``
return bit-identical arrays and infos to ``SyncVectorEnv`` over the same
lane envs — same lane seed stride, same auto-reset semantics, same
``info["final_obs"]`` convention — so the vectorized collector and both
trainers can swap one for the other without any numeric change.

A lane worker that dies (crash, OOM kill, SIGKILL) surfaces as
:class:`~repro.runtime.supervisor.WorkerCrash` on the next call; a lane
env that *raises* has its exception re-raised in the parent after all
lanes' acknowledgements drain, so the pipes never desynchronize.
Cleanup is crash-proof: the arena file is unlinked right after every
worker attaches (see :mod:`repro.runtime.shm`), so no shared-memory
segment can outlive the processes no matter how they die.
"""

from __future__ import annotations

import multiprocessing
import weakref
from typing import Callable, Sequence

import numpy as np

from ..envs.core import Env
from .shm import ShmArena, SlabSpec
from .supervisor import WorkerCrash
from .vec_env import LANE_SEED_STRIDE, VectorEnv

__all__ = ["AsyncVectorEnv"]

# How long close() waits for a worker to exit before escalating.
_JOIN_GRACE = 2.0


def _lane_worker(env: Env, lane: int, arena_path: str, slab_args, conn) -> None:
    """Worker loop: attach the arena, ack, then serve commands until close.

    Protocol (parent -> worker): ``("seed", s)``, ``("reset",)``,
    ``("step",)``, ``("rng_states",)``, ``("set_rng_states", states)``,
    ``("close",)``.  Every command is answered with ``("ok", payload)``
    or ``("error", exception)`` — exactly one ack per command, so the
    parent can always drain the pipe even when a lane fails.
    """
    arena = ShmArena.attach(arena_path, slab_args)
    obs_v = arena.view("obs")
    act_v = arena.view("actions")
    rew_v = arena.view("rewards")
    term_v = arena.view("terminated")
    trunc_v = arena.view("truncated")
    conn.send(("ok", None))  # attached: the parent may now unlink the arena
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break  # parent died; nothing to clean up but ourselves
            cmd = msg[0]
            if cmd == "close":
                conn.send(("ok", None))
                break
            try:
                if cmd == "seed":
                    env.seed(msg[1])
                    conn.send(("ok", None))
                elif cmd == "reset":
                    obs_v[lane] = env.reset()
                    conn.send(("ok", None))
                elif cmd == "step":
                    obs, reward, term, trunc, info = env.step(act_v[lane].copy())
                    if term or trunc:
                        info = dict(info)
                        info["final_obs"] = np.asarray(obs, dtype=np.float64).copy()
                        obs = env.reset()
                    obs_v[lane] = obs
                    rew_v[lane] = reward
                    term_v[lane] = bool(term)
                    trunc_v[lane] = bool(trunc)
                    conn.send(("ok", info))
                elif cmd == "rng_states":
                    from ..store.checkpoint import capture_rng_states

                    conn.send(("ok", capture_rng_states(env)))
                elif cmd == "set_rng_states":
                    from ..store.checkpoint import restore_rng_states

                    restore_rng_states(env, msg[1])
                    conn.send(("ok", None))
                else:
                    conn.send(("error", RuntimeError(f"unknown command {cmd!r}")))
            except Exception as exc:  # noqa: BLE001 — must ack to stay in sync
                try:
                    conn.send(("error", exc))
                except Exception:  # exception object itself unpicklable
                    conn.send(("error",
                               RuntimeError(f"{type(exc).__name__}: {exc}")))
    finally:
        del obs_v, act_v, rew_v, term_v, trunc_v
        arena.close()
        conn.close()


class AsyncVectorEnv(VectorEnv):
    """Process-per-lane vectorization over shared-memory batch arrays."""

    def __init__(self, envs: Sequence[Env | Callable[[], Env]], mp_context=None):
        if not envs:
            raise ValueError("AsyncVectorEnv needs at least one env")
        lanes: list[Env] = [e() if callable(e) else e for e in envs]
        self.num_envs = len(lanes)
        self.observation_space = lanes[0].observation_space
        self.action_space = lanes[0].action_space
        for env in lanes[1:]:
            if env.observation_space.shape != self.observation_space.shape:
                raise ValueError("all lanes must share an observation space")
            if env.action_space.shape != self.action_space.shape:
                raise ValueError("all lanes must share an action space")
        if isinstance(mp_context, str):
            mp_context = multiprocessing.get_context(mp_context)
        ctx = mp_context or multiprocessing.get_context()

        # Reclaim arena segments orphaned by a SIGKILLed previous parent
        # before allocating our own (on /dev/shm a leak is RAM, not disk).
        from .janitor import sweep_stale_shm_segments

        sweep_stale_shm_segments()
        n = self.num_envs
        self._arena = ShmArena.create([
            SlabSpec("obs", (n,) + self.observation_space.shape),
            SlabSpec("actions", (n,) + self.action_space.shape),
            SlabSpec("rewards", (n,)),
            SlabSpec("terminated", (n,), "uint8"),
            SlabSpec("truncated", (n,), "uint8"),
        ])
        self._obs = self._arena.view("obs")
        self._actions = self._arena.view("actions")
        self._rewards = self._arena.view("rewards")
        self._terminated = self._arena.view("terminated")
        self._truncated = self._arena.view("truncated")

        self._conns = []
        self._procs = []
        spec_args = self._arena.spec_args()
        for i, env in enumerate(lanes):
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            process = ctx.Process(
                target=_lane_worker,
                args=(env, i, self._arena.path, spec_args, child_conn),
                daemon=False,
            )
            process.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(process)
        self._closed = False
        try:
            self._gather()  # every worker attached …
        except BaseException:
            self._shutdown(self._procs, self._conns)
            self._arena.close()
            raise
        self._arena.unlink()  # … so the segment's name can go away now
        # Safety net: worker processes must not outlive a GC'd parent env.
        self._finalizer = weakref.finalize(
            self, AsyncVectorEnv._shutdown, list(self._procs), list(self._conns))

    @classmethod
    def from_factory(cls, factory: Callable[[], Env], n_envs: int,
                     mp_context=None) -> "AsyncVectorEnv":
        return cls([factory() for _ in range(n_envs)], mp_context=mp_context)

    # ------------------------------------------------------------- plumbing

    def _gather(self) -> list:
        """One ack per lane, in lane order; raise the first failure *after*
        draining every pipe so a lane error never desynchronizes the rest."""
        payloads: list = [None] * self.num_envs
        errors: list[tuple[int, BaseException]] = []
        for i, conn in enumerate(self._conns):
            try:
                status, payload = conn.recv()
            except (EOFError, OSError):
                self._procs[i].join(_JOIN_GRACE)
                errors.append((i, WorkerCrash(
                    f"async env lane {i} worker died (exit code "
                    f"{self._procs[i].exitcode}) before acknowledging")))
                continue
            if status == "error":
                errors.append((i, payload))
            else:
                payloads[i] = payload
        if errors:
            raise errors[0][1]
        return payloads

    def _broadcast(self, msg: tuple) -> list:
        if self._closed:
            raise ValueError("AsyncVectorEnv is closed")
        crashed = []
        for i, conn in enumerate(self._conns):
            try:
                conn.send(msg)
            except (BrokenPipeError, OSError):
                crashed.append(i)
        if crashed:
            i = crashed[0]
            self._procs[i].join(_JOIN_GRACE)
            raise WorkerCrash(
                f"async env lane {i} worker died (exit code "
                f"{self._procs[i].exitcode}); cannot dispatch {msg[0]!r}")
        return self._gather()

    # ------------------------------------------------------------------ api

    def seed(self, seed: int | None) -> None:
        if self._closed:
            raise ValueError("AsyncVectorEnv is closed")
        for i, conn in enumerate(self._conns):
            conn.send(("seed",
                       None if seed is None else seed + LANE_SEED_STRIDE * i))
        self._gather()

    def reset(self, seed: int | None = None) -> np.ndarray:
        if seed is not None:
            self.seed(seed)
        self._broadcast(("reset",))
        return self._obs.copy()

    def step(self, actions: np.ndarray):
        actions = np.asarray(actions)
        if len(actions) != self.num_envs:
            raise ValueError(f"expected {self.num_envs} actions, got {len(actions)}")
        self._actions[...] = actions
        infos = self._broadcast(("step",))
        return (self._obs.copy(), self._rewards.copy(),
                self._terminated.astype(bool), self._truncated.astype(bool),
                infos)

    # ------------------------------------------------------------ rng state

    def rng_states(self) -> dict[str, dict]:
        """Per-lane RNG bit-generator states, keyed ``lanes[i].<path>``.

        Mirrors :func:`repro.store.checkpoint.capture_rng_states` for the
        in-process case — each worker captures its env's generator graph
        locally and the parent prefixes the lane index, so checkpoints
        taken with an async env restore bit-identically.
        """
        states: dict[str, dict] = {}
        for i, lane_states in enumerate(self._broadcast(("rng_states",))):
            for path, state in lane_states.items():
                states[f"lanes[{i}].{path}"] = state
        return states

    def set_rng_states(self, states: dict[str, dict]) -> None:
        per_lane: list[dict] = [{} for _ in range(self.num_envs)]
        for key, state in states.items():
            if not key.startswith("lanes["):
                raise KeyError(f"not an AsyncVectorEnv rng path: {key!r}")
            lane_s, _, path = key[len("lanes["):].partition("].")
            per_lane[int(lane_s)][path] = state
        if self._closed:
            raise ValueError("AsyncVectorEnv is closed")
        for i, conn in enumerate(self._conns):
            conn.send(("set_rng_states", per_lane[i]))
        self._gather()

    # ------------------------------------------------------------- shutdown

    def close(self) -> None:
        """Stop every worker and release the arena.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        self._finalizer.detach()
        for conn in self._conns:
            try:
                conn.send(("close",))
            except Exception:
                pass  # already dead
        self._shutdown(self._procs, self._conns)
        # Drop our views before unmapping so close() can free the pages.
        del self._obs, self._actions, self._rewards
        del self._terminated, self._truncated
        self._arena.close()

    @staticmethod
    def _shutdown(procs, conns) -> None:
        for process in procs:
            process.join(_JOIN_GRACE)
            if process.is_alive():
                process.terminate()
                process.join(_JOIN_GRACE)
            if process.is_alive():
                process.kill()
                process.join(_JOIN_GRACE)
        for conn in conns:
            try:
                conn.close()
            except Exception:
                pass
