"""Sweep temp-dir debris left by SIGKILLed *parent* processes.

The pool and the async vector env both clean up after their own dead
children, and ``weakref.finalize`` covers graceful parent exit — but a
SIGKILLed parent runs no finalizers, leaving ``repro-pool-*`` heartbeat
directories and ``repro-shm-*`` arena segments on disk (a real leak on
``/dev/shm``, which is RAM).  The fix is ownership stamps plus a sweep
at the next opportunity:

* every :class:`~repro.runtime.pool.WorkerPool` writes its pid into
  ``owner.pid`` inside its heartbeat directory, and every
  :class:`~repro.runtime.shm.ShmArena` bakes the creating pid into the
  segment's filename (``repro-shm-<pid>-…``);
* the next pool / async env constructed in the same temp dir removes any
  entry whose recorded owner pid is **dead**.

Only provably-orphaned entries are touched: an unreadable or missing
owner stamp means the entry is skipped (it may belong to a different
layout or a process we cannot see), and ``PermissionError`` from
``kill(pid, 0)`` counts as *alive* — another user's pid is not ours to
judge.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from pathlib import Path

from .shm import default_shm_dir

__all__ = ["pid_alive", "sweep_stale_pool_dirs", "sweep_stale_shm_segments"]

OWNER_FILE = "owner.pid"


def pid_alive(pid: int) -> bool:
    """True when ``pid`` exists (even if owned by someone else)."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, not ours — treat as alive
    except OSError:
        return True  # unknowable: never sweep on doubt
    return True


def _read_owner_pid(path: Path) -> int | None:
    try:
        return int(path.read_text(encoding="utf-8").strip())
    except (OSError, ValueError):
        return None


def sweep_stale_pool_dirs(root: str | Path | None = None) -> list[Path]:
    """Remove ``repro-pool-*`` heartbeat dirs whose owner pid is dead."""
    root = Path(root) if root is not None else Path(tempfile.gettempdir())
    removed: list[Path] = []
    try:
        candidates = sorted(root.glob("repro-pool-*"))
    except OSError:
        return removed
    for candidate in candidates:
        if not candidate.is_dir():
            continue
        pid = _read_owner_pid(candidate / OWNER_FILE)
        if pid is None or pid_alive(pid):
            continue
        shutil.rmtree(candidate, ignore_errors=True)
        if not candidate.exists():
            removed.append(candidate)
    return removed


def sweep_stale_shm_segments(dir: str | None = None) -> list[Path]:
    """Remove ``repro-shm-<pid>-*`` segments whose creator pid is dead."""
    root = Path(dir or default_shm_dir())
    removed: list[Path] = []
    try:
        candidates = sorted(root.glob("repro-shm-*"))
    except OSError:
        return removed
    for candidate in candidates:
        parts = candidate.name.split("-")
        # repro-shm-<pid>-<mkstemp suffix>; older unstamped names are
        # skipped — without a pid there is no safe ownership claim.
        if len(parts) < 4 or not parts[2].isdigit():
            continue
        if pid_alive(int(parts[2])):
            continue
        try:
            candidate.unlink()
            removed.append(candidate)
        except OSError:
            continue
    return removed
