"""Vectorized rollout collection: N lanes filling one training batch.

Drop-in replacement for
:func:`repro.attacks.trainer.collect_adversary_rollout` that drives a
:class:`~repro.runtime.vec_env.VectorEnv` with batched policy calls.
Each lane keeps its own :class:`~repro.rl.buffers.RolloutBuffer` and
episode accounting; the final batch is assembled lane-major (lane 0's
block first) so GAE's flow-through bootstrap stays within one
trajectory.  Lane boundaries that don't coincide with an episode end are
marked as truncations with an explicitly bootstrapped value — exactly
how the serial collector treats the end of its buffer.

Parity guarantee: with ``n_envs == 1`` and the same seeds, the returned
:class:`~repro.attacks.base.AdversaryRollout` is bit-identical to the
serial collector's (policy forwards, RNG draws, and normalizer updates
happen in the same order on the same shapes).
"""

from __future__ import annotations

import numpy as np

from ..attacks.base import AdversaryRollout, knn_feature
from ..rl.buffers import RolloutBuffer
from ..rl.policy import ActorCritic
from .vec_env import VectorEnv

__all__ = ["collect_adversary_rollout_vec", "knn_feature"]


class _Lane:
    """Per-lane rollout storage and episode accounting."""

    __slots__ = ("buffer", "knn_victim", "knn_adversary", "episode_rewards",
                 "episode_victim_rewards", "episode_successes",
                 "ep_reward", "ep_victim", "ep_success")

    def __init__(self, capacity: int, obs_dim: int, action_dim: int):
        self.buffer = RolloutBuffer(capacity, obs_dim, action_dim)
        self.knn_victim: list[np.ndarray] = []
        self.knn_adversary: list[np.ndarray] = []
        self.episode_rewards: list[float] = []
        self.episode_victim_rewards: list[float] = []
        self.episode_successes: list[bool] = []
        self.ep_reward = 0.0
        self.ep_victim = 0.0
        self.ep_success = False

    def finish_episode(self) -> None:
        self.episode_rewards.append(self.ep_reward)
        self.episode_victim_rewards.append(self.ep_victim)
        self.episode_successes.append(self.ep_success)
        self.ep_reward, self.ep_victim, self.ep_success = 0.0, 0.0, False


def collect_adversary_rollout_vec(vec_env: VectorEnv, policy: ActorCritic,
                                  n_steps: int, rng: np.random.Generator,
                                  update_normalizer: bool = True,
                                  telemetry=None) -> AdversaryRollout:
    """Collect ``n_steps`` of experience split evenly across the lanes."""
    start = telemetry.clock.perf() if telemetry is not None else 0.0
    n_envs = vec_env.num_envs
    if n_steps % n_envs != 0:
        raise ValueError(
            f"n_steps={n_steps} must be divisible by n_envs={n_envs} "
            "so every lane contributes a full block")
    steps_per_lane = n_steps // n_envs
    obs_dim = vec_env.observation_space.shape[0]
    action_dim = vec_env.action_space.shape[0]
    lanes = [_Lane(steps_per_lane, obs_dim, action_dim) for _ in range(n_envs)]

    obs = vec_env.reset()
    for _ in range(steps_per_lane):
        actions, log_probs, values_e, values_i, normalized = policy.act_batch(
            obs, rng, update_normalizer=update_normalizer
        )
        next_obs, rewards, terminated, truncated, infos = vec_env.step(actions)
        for i, lane in enumerate(lanes):
            done = bool(terminated[i] or truncated[i])
            lane.ep_reward += float(rewards[i])
            lane.ep_victim += float(infos[i].get("victim_reward", 0.0))
            lane.ep_success = lane.ep_success or bool(infos[i].get("success", False))
            lane.buffer.add(normalized[i], actions[i], log_probs[i], rewards[i],
                            values_e[i], values_i[i],
                            done=done, terminated=bool(terminated[i]))
            lane.knn_victim.append(knn_feature(infos[i], "knn_victim", obs_dim))
            lane.knn_adversary.append(knn_feature(infos[i], "knn_adversary", obs_dim))
            if done:
                lane.finish_episode()
        # Bootstrap truncated episodes from their final (pre-reset) obs in
        # one batched call, in lane order (matches the serial RNG order).
        trunc_lanes = [i for i in range(n_envs) if truncated[i] and not terminated[i]]
        if trunc_lanes:
            final_obs = np.stack([infos[i]["final_obs"] for i in trunc_lanes])
            _, _, boot_e, boot_i, _ = policy.act_batch(
                final_obs, rng, update_normalizer=update_normalizer)
            for j, i in enumerate(trunc_lanes):
                lanes[i].buffer.set_bootstrap(lanes[i].buffer.ptr - 1,
                                              boot_e[j], boot_i[j])
        obs = next_obs

    # Lanes whose last step didn't end an episode bootstrap from the
    # current observation (the serial collector's buffer-end bootstrap).
    open_lanes = [i for i in range(n_envs)
                  if lanes[i].buffer.dones[steps_per_lane - 1] < 0.5]
    if open_lanes:
        _, _, boot_e, boot_i, _ = policy.act_batch(
            obs[open_lanes], rng, update_normalizer=update_normalizer)
        for j, i in enumerate(open_lanes):
            lanes[i].buffer.set_bootstrap(steps_per_lane - 1, boot_e[j], boot_i[j])

    rollout = _assemble(lanes, steps_per_lane)
    if telemetry is not None:
        from ..attacks.trainer import record_rollout_telemetry

        record_rollout_telemetry(telemetry, rollout,
                                 telemetry.clock.perf() - start,
                                 f"vec{n_envs}")
    return rollout


def _assemble(lanes: list[_Lane], steps_per_lane: int) -> AdversaryRollout:
    """Concatenate lane blocks into one flat AdversaryRollout."""
    dones_blocks = []
    for i, lane in enumerate(lanes):
        dones = lane.buffer.dones[:steps_per_lane].copy()
        # Interior lane boundaries become truncations so GAE never flows
        # from one lane's block into the next.  The last lane's end is
        # left untouched: downstream GAE forces a boundary there anyway,
        # which also keeps the n_envs=1 arrays bit-identical to serial.
        if i < len(lanes) - 1 and dones[-1] < 0.5:
            dones[-1] = 1.0
        dones_blocks.append(dones)

    def cat(field: str) -> np.ndarray:
        return np.concatenate([getattr(l.buffer, field)[:steps_per_lane] for l in lanes])

    return AdversaryRollout(
        obs=cat("obs").copy(),
        actions=cat("actions").copy(),
        log_probs=cat("log_probs").copy(),
        rewards=cat("rewards_e").copy(),
        values_e=cat("values_e").copy(),
        values_i=cat("values_i").copy(),
        dones=np.concatenate(dones_blocks),
        terminated=cat("terminated").copy(),
        bootstrap_e=cat("bootstrap_e").copy(),
        bootstrap_i=cat("bootstrap_i").copy(),
        knn_victim=np.asarray([f for l in lanes for f in l.knn_victim]),
        knn_adversary=np.asarray([f for l in lanes for f in l.knn_adversary]),
        episode_rewards=[r for l in lanes for r in l.episode_rewards],
        episode_victim_rewards=[r for l in lanes for r in l.episode_victim_rewards],
        episode_successes=[s for l in lanes for s in l.episode_successes],
    )
