"""File-backed shared-memory slab arenas for zero-copy IPC.

:class:`ShmArena` maps one file (in ``/dev/shm`` when available, so the
"file" never touches a disk) into every process that needs it and hands
out NumPy array views over named, 64-byte-aligned **slabs** inside the
mapping.  A producer writes into its slab rows; consumers see the bytes
immediately — no pickling, no pipes, no copies.

Ownership contract (enforced by the async vector env and documented in
DESIGN.md):

* The **parent** creates the arena (:meth:`ShmArena.create`) and is the
  only process that ever unlinks it.
* **Workers** attach by path (:meth:`ShmArena.attach`) and acknowledge;
  once every worker has attached, the parent calls :meth:`unlink` so the
  name disappears from the filesystem while the shared mapping lives on.
  From that point no crash — worker *or* parent, graceful or SIGKILL —
  can leak a segment: the kernel frees the pages when the last mapping
  goes away.
* :meth:`close` is idempotent and also unlinks (owner side) in case the
  attach handshake never completed.

This deliberately avoids :mod:`multiprocessing.shared_memory`: its
resource tracker is a third process with its own lifetime and produces
spurious leak warnings when workers are SIGKILLed, which the chaos
battery would trip over.
"""

from __future__ import annotations

import mmap
import os
import tempfile
import weakref
from dataclasses import dataclass

import numpy as np

__all__ = ["SlabSpec", "ShmArena", "default_shm_dir"]

# Slabs start on cache-line boundaries so lanes writing adjacent slabs
# never share a line with another slab's hot rows.
_ALIGN = 64


def default_shm_dir() -> str:
    """``/dev/shm`` when writable (Linux ramdisk), else the tempdir."""
    if os.path.isdir("/dev/shm") and os.access("/dev/shm", os.W_OK):
        return "/dev/shm"
    return tempfile.gettempdir()


@dataclass(frozen=True)
class SlabSpec:
    """One named array region: ``name``, ``shape``, numpy ``dtype`` string."""

    name: str
    shape: tuple
    dtype: str = "float64"

    @property
    def nbytes(self) -> int:
        return int(np.dtype(self.dtype).itemsize * int(np.prod(self.shape, dtype=np.int64)))


def _layout(slabs: tuple[SlabSpec, ...]) -> tuple[dict[str, int], int]:
    """Deterministic (offset table, total size) for a slab sequence."""
    offsets: dict[str, int] = {}
    cursor = 0
    for spec in slabs:
        if spec.name in offsets:
            raise ValueError(f"duplicate slab name {spec.name!r}")
        offsets[spec.name] = cursor
        cursor += -(-spec.nbytes // _ALIGN) * _ALIGN  # round up to alignment
    return offsets, max(cursor, _ALIGN)


class ShmArena:
    """A shared mapping carved into named, aligned numpy-viewable slabs."""

    def __init__(self, path: str, slabs: tuple[SlabSpec, ...], mm: mmap.mmap,
                 owner: bool):
        self.path = path
        self.slabs = slabs
        self._offsets, self.nbytes = _layout(slabs)
        self._mm: mmap.mmap | None = mm
        self._owner = owner
        self._unlinked = False
        # Crash safety: if the owner is garbage collected (or the
        # interpreter exits) before close(), the name still disappears.
        if owner:
            self._finalizer = weakref.finalize(self, ShmArena._unlink_path, path)
        else:
            self._finalizer = None

    # ------------------------------------------------------------- lifecycle

    @classmethod
    def create(cls, slabs, dir: str | None = None) -> "ShmArena":
        """Allocate a zero-filled arena; the caller owns (and unlinks) it."""
        slabs = tuple(slabs)
        _, total = _layout(slabs)
        # The creator pid rides in the filename so the janitor can sweep
        # segments orphaned by a SIGKILLed owner (no finalizer ran).
        fd, path = tempfile.mkstemp(prefix=f"repro-shm-{os.getpid()}-",
                                    dir=dir or default_shm_dir())
        try:
            os.ftruncate(fd, total)
            mm = mmap.mmap(fd, total)
        except BaseException:
            os.close(fd)
            os.unlink(path)
            raise
        os.close(fd)
        return cls(path, slabs, mm, owner=True)

    @classmethod
    def attach(cls, path: str, slabs) -> "ShmArena":
        """Map an existing arena by path (worker side; never unlinks)."""
        slabs = tuple(SlabSpec(*s) if not isinstance(s, SlabSpec) else s
                      for s in slabs)
        _, total = _layout(slabs)
        fd = os.open(path, os.O_RDWR)
        try:
            mm = mmap.mmap(fd, total)
        finally:
            os.close(fd)
        return cls(path, slabs, mm, owner=False)

    def unlink(self) -> None:
        """Remove the filesystem name (owner only; idempotent).

        Existing mappings — the parent's and every attached worker's —
        stay valid; the kernel reclaims the pages when the last one dies.
        """
        if self._unlinked or not self._owner:
            return
        self._unlinked = True
        if self._finalizer is not None:
            self._finalizer.detach()
        self._unlink_path(self.path)

    def close(self) -> None:
        """Unlink (owner) and drop this process's mapping.  Idempotent."""
        self.unlink()
        mm, self._mm = self._mm, None
        if mm is not None:
            try:
                mm.close()
            except BufferError:
                # numpy views still alive somewhere; the mapping is freed
                # when they are collected.  Nothing leaks either way: the
                # name is already gone.
                pass

    @staticmethod
    def _unlink_path(path: str) -> None:
        try:
            os.unlink(path)
        except OSError:
            pass

    # ----------------------------------------------------------------- views

    def view(self, name: str) -> np.ndarray:
        """Writable array over slab ``name`` — shared, not a copy."""
        if self._mm is None:
            raise ValueError("arena is closed")
        spec = next(s for s in self.slabs if s.name == name)
        flat = np.frombuffer(self._mm, dtype=np.dtype(spec.dtype),
                             count=int(np.prod(spec.shape, dtype=np.int64)),
                             offset=self._offsets[name])
        return flat.reshape(spec.shape)

    # ------------------------------------------------------------------ misc

    def spec_args(self) -> list[tuple]:
        """Picklable ``(name, shape, dtype)`` tuples for :meth:`attach`."""
        return [(s.name, s.shape, s.dtype) for s in self.slabs]

    def __enter__(self) -> "ShmArena":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._mm is None else f"{self.nbytes}B"
        return (f"<ShmArena {os.path.basename(self.path)} "
                f"slabs={[s.name for s in self.slabs]} {state}>")
