"""Vectorized environments: step N seeded env copies in lockstep.

:class:`SyncVectorEnv` is the synchronous reference implementation — it
steps each lane in-process and auto-resets finished episodes, exposing
the final observation of an ended episode via ``info["final_obs"]`` (the
gym convention).  The batched observation array it returns lets one
policy forward pass serve every lane.

Seeding: ``seed(s)`` gives lane ``i`` the seed ``s + LANE_SEED_STRIDE*i``
so lane 0 reproduces a single env seeded with ``s`` exactly (the
n_envs=1 parity guarantee) while other lanes get well-separated streams.
Scheduler-level seed derivation (for independent *jobs* rather than
lanes) uses ``np.random.SeedSequence`` instead — see
:mod:`repro.runtime.scheduler`.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..envs.core import Env
from ..envs.spaces import Space

__all__ = ["VectorEnv", "SyncVectorEnv", "LANE_SEED_STRIDE"]

# Large odd stride keeps lane seeds disjoint from the +1 offsets some
# envs use internally for auxiliary generators (e.g. victim rngs).
LANE_SEED_STRIDE = 9973


class VectorEnv:
    """Batched environment API over ``num_envs`` lanes.

    ``observation_space``/``action_space`` describe a *single* lane, so a
    VectorEnv can be dropped in wherever code only inspects the spaces.
    """

    num_envs: int
    observation_space: Space
    action_space: Space

    def seed(self, seed: int | None) -> None:
        raise NotImplementedError

    def reset(self, seed: int | None = None) -> np.ndarray:
        """Reset every lane; returns observations of shape (num_envs, obs_dim)."""
        raise NotImplementedError

    def step(self, actions: np.ndarray):
        """Step every lane with ``actions[i]``; auto-resets finished lanes.

        Returns ``(obs, rewards, terminated, truncated, infos)`` where the
        first four are batched arrays and ``infos`` is a list of dicts.
        For a lane whose episode just ended, ``obs[i]`` is the *new*
        episode's initial observation and ``infos[i]["final_obs"]`` holds
        the last observation of the finished episode.
        """
        raise NotImplementedError

    def __len__(self) -> int:
        return self.num_envs

    def __repr__(self) -> str:
        return f"<{type(self).__name__} num_envs={self.num_envs}>"


class SyncVectorEnv(VectorEnv):
    """Synchronous vectorization: N env copies stepped in a loop."""

    def __init__(self, envs: Sequence[Env | Callable[[], Env]]):
        if not envs:
            raise ValueError("SyncVectorEnv needs at least one env")
        self.envs: list[Env] = [e() if callable(e) else e for e in envs]
        self.num_envs = len(self.envs)
        self.observation_space = self.envs[0].observation_space
        self.action_space = self.envs[0].action_space
        for env in self.envs[1:]:
            if env.observation_space.shape != self.observation_space.shape:
                raise ValueError("all lanes must share an observation space")
            if env.action_space.shape != self.action_space.shape:
                raise ValueError("all lanes must share an action space")

    @classmethod
    def from_factory(cls, factory: Callable[[], Env], n_envs: int) -> "SyncVectorEnv":
        return cls([factory() for _ in range(n_envs)])

    def seed(self, seed: int | None) -> None:
        for i, env in enumerate(self.envs):
            env.seed(None if seed is None else seed + LANE_SEED_STRIDE * i)

    def reset(self, seed: int | None = None) -> np.ndarray:
        if seed is not None:
            self.seed(seed)
        return np.stack([env.reset() for env in self.envs])

    def step(self, actions: np.ndarray):
        actions = np.asarray(actions)
        if len(actions) != self.num_envs:
            raise ValueError(f"expected {self.num_envs} actions, got {len(actions)}")
        obs_batch = np.empty((self.num_envs,) + self.observation_space.shape)
        rewards = np.zeros(self.num_envs)
        terminated = np.zeros(self.num_envs, dtype=bool)
        truncated = np.zeros(self.num_envs, dtype=bool)
        infos: list[dict] = []
        for i, env in enumerate(self.envs):
            obs, reward, term, trunc, info = env.step(actions[i])
            if term or trunc:
                info = dict(info)
                info["final_obs"] = np.asarray(obs, dtype=np.float64).copy()
                obs = env.reset()
            obs_batch[i] = obs
            rewards[i] = reward
            terminated[i] = term
            truncated[i] = trunc
            infos.append(info)
        return obs_batch, rewards, terminated, truncated, infos
