"""Persistent worker pool: long-lived processes reused across sweeps.

The plain scheduler path spawns a fresh process per job attempt (the
``ProcessPoolExecutor`` is rebuilt per :func:`~repro.runtime.scheduler.
run_parallel` call, and the supervisor spawns one process per job), so a
grid of short cells pays a fork + import + policy-unpickle tax on every
attempt.  :class:`WorkerPool` keeps ``max_workers`` worker processes
alive across *any number* of ``run_parallel(pool=...)`` calls: each job
is shipped once as cached pickle bytes (:meth:`~repro.runtime.scheduler.
Job.payload`) over an always-open duplex pipe, executed, and the worker
goes back to the idle set.

Supervision matches the PR 4 watchdog exactly — same heartbeat files,
same ``error_kind`` taxonomy, same SIGTERM→SIGKILL escalation:

* worker dead without a result → ``error_kind="crash"`` (exit code
  recorded) and the worker is **replaced** without losing the pool;
* per-job ``timeout`` / sweep ``deadline`` exceeded → kill + replace,
  ``error_kind="timeout"``;
* heartbeat file stale for ``heartbeat_timeout`` → the worker process is
  wedged (SIGSTOP, D-state I/O) → same kill path.

Replacement is observable (:attr:`WorkerPool.replacements` and the
interventions list) but results are not affected: a job is a pure
function of its payload, so a re-dispatched job returns bit-identical
values no matter which worker ran it — the pool-vs-spawn determinism
suite in ``tests/test_determinism.py`` asserts this, including across a
replacement.

Heartbeat files live in one pool-owned temporary directory that is
removed on :meth:`close`; a worker killed mid-job has its file removed
at replacement time, so neither graceful shutdown nor SIGKILL leaves
stale heartbeat files behind (chaos-tested).

``run()`` is thread-safe: concurrent calls check workers out of a
shared idle set under a condition variable, so e.g. the serve lane can
schedule independent single-job sweeps onto one warm pool.
"""

from __future__ import annotations

import os
import tempfile
import threading
import time
import weakref
from collections import deque
from dataclasses import dataclass
from pathlib import Path

import multiprocessing

from .supervisor import (
    DEFAULT_HEARTBEAT_INTERVAL,
    _TERM_GRACE,
    _heartbeat_loop,
    _touch,
)

__all__ = ["WorkerPool"]

# Give up on a job whose dispatch keeps landing on dead workers (each
# failed dispatch already replaced the worker, so >2 means something is
# systematically wrong with the pool, not with one worker).
_MAX_DISPATCH_ATTEMPTS = 3


def _pool_worker(conn, heartbeat_path: str, heartbeat_interval: float) -> None:
    """Process target: serve ``("job", index, payload)`` requests forever.

    The payload is the job's cached pickle (see ``Job.payload``); the
    worker unpickles and executes it, answering ``(index, JobResult)``.
    A ``("stop",)`` message or a closed pipe ends the loop.
    """
    import threading as _threading

    from .scheduler import JobResult, _execute_payload

    stop = _threading.Event()
    path = Path(heartbeat_path)
    _touch(path)
    _threading.Thread(target=_heartbeat_loop,
                      args=(path, heartbeat_interval, stop),
                      daemon=True).start()
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break  # parent gone
            if msg[0] == "stop":
                break
            _, index, payload = msg
            result = _execute_payload(payload)
            try:
                conn.send((index, result))
            except (BrokenPipeError, OSError):
                break  # parent gone mid-job
            except Exception as exc:  # unpicklable job value
                import traceback

                conn.send((index, JobResult(
                    name=result.name, ok=False,
                    error=f"{type(exc).__name__}: {exc}",
                    traceback=traceback.format_exc(),
                    duration=result.duration, error_kind="pickling")))
    finally:
        stop.set()
        conn.close()


@dataclass
class _Worker:
    wid: int
    process: multiprocessing.process.BaseProcess
    conn: object
    heartbeat: Path


@dataclass
class _Busy:
    worker: _Worker
    started: float
    kill_at: float | None


class WorkerPool:
    """``max_workers`` persistent supervised workers shared across sweeps."""

    def __init__(self, max_workers: int = 2, mp_context=None,
                 heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
                 poll_interval: float = 0.02):
        if isinstance(mp_context, str):
            mp_context = multiprocessing.get_context(mp_context)
        self._ctx = mp_context or multiprocessing.get_context()
        self.max_workers = max(1, int(max_workers))
        self.heartbeat_interval = heartbeat_interval
        self.poll_interval = poll_interval
        # Before claiming our own heartbeat dir, sweep ones orphaned by a
        # SIGKILLed parent — TemporaryDirectory's finalizer never ran there.
        from .janitor import OWNER_FILE, sweep_stale_pool_dirs

        sweep_stale_pool_dirs()
        self._tmp = tempfile.TemporaryDirectory(prefix="repro-pool-")
        self._root = Path(self._tmp.name)
        (self._root / OWNER_FILE).write_text(f"{os.getpid()}\n", encoding="utf-8")
        self._cond = threading.Condition()
        self._idle: list[_Worker] = []
        self._live: list[_Worker] = []  # every not-yet-discarded worker
        self._next_wid = 0
        self._closed = False
        # Observability: how many workers were killed and respawned, and
        # how many jobs this pool has executed across all run() calls.
        self.replacements = 0
        self.jobs_run = 0
        for _ in range(self.max_workers):
            self._idle.append(self._spawn())
        # Workers are non-daemon (jobs may spawn their own children, e.g.
        # async vector envs), so an unclosed pool would hang interpreter
        # exit on multiprocessing's child join.  The finalizer stops them.
        self._finalizer = weakref.finalize(
            self, WorkerPool._shutdown, self._live, self._tmp)

    # ------------------------------------------------------- worker lifecycle

    def _spawn(self) -> _Worker:
        wid, self._next_wid = self._next_wid, self._next_wid + 1
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        heartbeat = self._root / f"worker-{wid}.heartbeat"
        process = self._ctx.Process(
            target=_pool_worker,
            args=(child_conn, str(heartbeat), self.heartbeat_interval),
            daemon=False)
        process.start()
        child_conn.close()
        worker = _Worker(wid, process, parent_conn, heartbeat)
        self._live.append(worker)
        return worker

    def _discard(self, worker: _Worker) -> None:
        """SIGTERM→SIGKILL the worker and remove its heartbeat file."""
        process = worker.process
        if process.is_alive():
            process.terminate()
            process.join(_TERM_GRACE)
            if process.is_alive():
                process.kill()
                process.join(_TERM_GRACE)
        try:
            worker.conn.close()
        except Exception:
            pass
        try:
            worker.heartbeat.unlink()
        except OSError:
            pass
        if worker in self._live:
            self._live.remove(worker)

    def _replace(self, worker: _Worker) -> _Worker:
        self._discard(worker)
        self.replacements += 1
        return self._spawn()

    # --------------------------------------------------------- idle checkout

    def _checkout(self, want: int, block: bool) -> list[_Worker]:
        with self._cond:
            while block and not self._idle and not self._closed:
                self._cond.wait(0.05)
            if self._closed:
                raise RuntimeError("WorkerPool is closed")
            take = min(want, len(self._idle))
            return [self._idle.pop() for _ in range(take)]

    def _checkin(self, workers: list[_Worker]) -> None:
        if not workers:
            return
        with self._cond:
            self._idle.extend(workers)
            self._cond.notify_all()

    # ------------------------------------------------------------------- run

    def run(self, jobs, timeout: float | None = None,
            deadline: float | None = None,
            heartbeat_timeout: float | None = None) -> tuple[list, list[dict]]:
        """Execute ``jobs`` on the pool; ``(results, interventions)``.

        Same semantics as :meth:`repro.runtime.supervisor.Supervisor.run`
        — per-job ``timeout`` (``Job.timeout`` overrides), batch
        ``deadline``, stale-heartbeat kills — except workers are reused
        instead of spawned, and a killed or crashed worker is replaced so
        the pool never shrinks.
        """
        from .scheduler import JobResult

        jobs = list(jobs)
        results: list[JobResult | None] = [None] * len(jobs)
        interventions: list[dict] = []
        queue = deque(range(len(jobs)))
        dispatch_attempts = [0] * len(jobs)
        busy: dict[int, _Busy] = {}
        held: list[_Worker] = []  # idle workers checked out by this call
        start = time.monotonic()
        expire_at = None if deadline is None else start + deadline

        def fail(index: int, busy_entry: _Busy | None, kind: str, error: str,
                 action: str) -> JobResult:
            interventions.append({"index": index, "name": jobs[index].name,
                                  "action": action, "detail": error})
            duration = (0.0 if busy_entry is None
                        else time.monotonic() - busy_entry.started)
            return JobResult(name=jobs[index].name, ok=False, error=error,
                            traceback=f"(no worker traceback: {action})",
                            duration=duration, error_kind=kind)

        try:
            while queue or busy:
                now = time.monotonic()
                sweep_expired = expire_at is not None and now >= expire_at
                if sweep_expired and queue:
                    while queue:
                        index = queue.popleft()
                        results[index] = fail(
                            index, None, "timeout",
                            f"WorkerTimeout: sweep deadline {deadline:.1f}s "
                            "exceeded before the job started", "deadline-drop")
                # Dispatch queued jobs onto idle workers (ours or newly
                # checked out); block for one only when nothing is running.
                while queue and not sweep_expired:
                    if not held:
                        held.extend(self._checkout(
                            min(len(queue), self.max_workers) - len(busy),
                            block=not busy))
                        if not held:
                            break
                    index = queue.popleft()
                    job = jobs[index]
                    try:
                        payload = job.payload()
                    except Exception as exc:
                        import traceback as tb

                        results[index] = JobResult(
                            name=job.name, ok=False,
                            error=f"{type(exc).__name__}: {exc}",
                            traceback=tb.format_exc(), error_kind="pickling")
                        continue
                    worker = held.pop()
                    try:
                        worker.conn.send(("job", index, payload))
                    except Exception:
                        # Worker died while idle; replace it and retry the
                        # dispatch (the job never started).
                        held.append(self._replace(worker))
                        dispatch_attempts[index] += 1
                        if dispatch_attempts[index] >= _MAX_DISPATCH_ATTEMPTS:
                            results[index] = fail(
                                index, None, "crash",
                                "WorkerCrash: job could not be dispatched "
                                f"after {dispatch_attempts[index]} attempts",
                                "dispatch-failed")
                        else:
                            queue.appendleft(index)
                        continue
                    now = time.monotonic()
                    job_timeout = (job.timeout if job.timeout is not None
                                   else timeout)
                    busy[index] = _Busy(
                        worker=worker, started=now,
                        kill_at=None if job_timeout is None
                        else now + job_timeout)
                # Poll the running jobs, supervisor-style.
                for index, entry in list(busy.items()):
                    now = time.monotonic()
                    worker = entry.worker
                    if worker.conn.poll(0):
                        try:
                            _, result = worker.conn.recv()
                            results[index] = result
                            held.append(worker)
                        except (EOFError, OSError):
                            worker.process.join(_TERM_GRACE)
                            results[index] = fail(
                                index, entry, "crash",
                                "WorkerCrash: pool worker exited with code "
                                f"{worker.process.exitcode} before delivering "
                                "a result", "crash")
                            held.append(self._replace(worker))
                        del busy[index]
                    elif not worker.process.is_alive():
                        results[index] = fail(
                            index, entry, "crash",
                            "WorkerCrash: pool worker exited with code "
                            f"{worker.process.exitcode} before delivering "
                            "a result", "crash")
                        held.append(self._replace(worker))
                        del busy[index]
                    elif sweep_expired:
                        results[index] = fail(
                            index, entry, "timeout",
                            f"WorkerTimeout: sweep deadline {deadline:.1f}s "
                            "exceeded", "deadline-kill")
                        held.append(self._replace(worker))
                        del busy[index]
                    elif entry.kill_at is not None and now >= entry.kill_at:
                        budget = entry.kill_at - entry.started
                        results[index] = fail(
                            index, entry, "timeout",
                            f"WorkerTimeout: job exceeded its {budget:.1f}s "
                            "timeout", "timeout-kill")
                        held.append(self._replace(worker))
                        del busy[index]
                    elif self._heartbeat_stale(entry, heartbeat_timeout, now):
                        results[index] = fail(
                            index, entry, "timeout",
                            "WorkerTimeout: worker stalled (heartbeat stale "
                            f"for > {heartbeat_timeout:.1f}s)",
                            "heartbeat-kill")
                        held.append(self._replace(worker))
                        del busy[index]
                if queue or busy:
                    time.sleep(self.poll_interval)
        finally:
            self._checkin(held)
        self.jobs_run += len(jobs)
        return [r for r in results if r is not None], interventions

    def _heartbeat_stale(self, entry: _Busy, heartbeat_timeout: float | None,
                         now: float) -> bool:
        if heartbeat_timeout is None:
            return False
        # Grace period from dispatch, matching the supervisor's spawn grace.
        if now - entry.started < max(heartbeat_timeout,
                                     2 * self.heartbeat_interval):
            return False
        try:
            age = time.time() - entry.worker.heartbeat.stat().st_mtime
        except OSError:
            age = now - entry.started
        return age > heartbeat_timeout

    # -------------------------------------------------------------- shutdown

    def close(self) -> None:
        """Stop every worker and remove the heartbeat directory.  Idempotent.

        Workers busy in a concurrent :meth:`run` are killed like any
        other — close the pool only once in-flight sweeps are done.
        """
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._idle = []
            self._cond.notify_all()
        self._finalizer.detach()
        self._shutdown(self._live, self._tmp)

    @staticmethod
    def _shutdown(live: list[_Worker], tmp) -> None:
        for worker in list(live):
            try:
                worker.conn.send(("stop",))
            except Exception:
                pass
        for worker in list(live):
            worker.process.join(_TERM_GRACE)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(_TERM_GRACE)
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join(_TERM_GRACE)
            try:
                worker.conn.close()
            except Exception:
                pass
        live.clear()
        try:
            tmp.cleanup()
        except OSError:
            pass

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else f"{len(self._idle)} idle"
        return (f"<WorkerPool max_workers={self.max_workers} {state} "
                f"replacements={self.replacements} jobs_run={self.jobs_run}>")
