"""Rollout storage with dual-channel Generalized Advantage Estimation."""

from __future__ import annotations

import numpy as np

__all__ = ["RolloutBuffer", "compute_gae"]


def compute_gae(rewards: np.ndarray, values: np.ndarray, terminated: np.ndarray,
                bootstrap: np.ndarray, gamma: float, lam: float) -> tuple[np.ndarray, np.ndarray]:
    """GAE(λ) over a flat rollout with episode boundaries.

    ``bootstrap[t]`` must hold V(s_{t+1}) for every step (0 where the
    episode terminated).  Episode ends (terminated or truncated) stop the
    advantage recursion.  Returns ``(advantages, returns)``.
    """
    n = len(rewards)
    advantages = np.zeros(n)
    last_adv = 0.0
    for t in range(n - 1, -1, -1):
        next_value = bootstrap[t]
        delta = rewards[t] + gamma * next_value - values[t]
        if terminated[t] >= 0.5:  # episode boundary: no flow-through
            last_adv = delta
        else:
            last_adv = delta + gamma * lam * last_adv
        advantages[t] = last_adv
    returns = advantages + values
    return advantages, returns


class RolloutBuffer:
    """Fixed-size on-policy rollout with extrinsic + intrinsic channels.

    Intrinsic rewards may be filled in *after* collection (IMAP computes
    the bonus from KNN density over the finished batch) via
    :meth:`set_intrinsic_rewards`.
    """

    def __init__(self, capacity: int, obs_dim: int, action_dim: int):
        self.capacity = capacity
        self.obs = np.zeros((capacity, obs_dim))
        self.actions = np.zeros((capacity, action_dim))
        self.log_probs = np.zeros(capacity)
        self.rewards_e = np.zeros(capacity)
        self.rewards_i = np.zeros(capacity)
        self.values_e = np.zeros(capacity)
        self.values_i = np.zeros(capacity)
        # done[t]: 1 if the episode ended after step t (either way);
        # terminated[t]: 1 only for true environment termination.
        self.dones = np.zeros(capacity)
        self.terminated = np.zeros(capacity)
        self.bootstrap_e = np.zeros(capacity)
        self.bootstrap_i = np.zeros(capacity)
        self.ptr = 0

    def __len__(self) -> int:
        return self.ptr

    @property
    def full(self) -> bool:
        return self.ptr >= self.capacity

    def add(self, obs, action, log_prob, reward_e, value_e, value_i=0.0,
            reward_i=0.0, done=False, terminated=False) -> None:
        if self.full:
            raise RuntimeError("rollout buffer is full")
        i = self.ptr
        self.obs[i] = obs
        self.actions[i] = action
        self.log_probs[i] = log_prob
        self.rewards_e[i] = reward_e
        self.rewards_i[i] = reward_i
        self.values_e[i] = value_e
        self.values_i[i] = value_i
        self.dones[i] = float(done)
        self.terminated[i] = float(terminated)
        self.ptr += 1

    def set_intrinsic_rewards(self, rewards: np.ndarray) -> None:
        rewards = np.asarray(rewards, dtype=np.float64)
        if rewards.shape != (self.ptr,):
            raise ValueError(f"expected shape ({self.ptr},), got {rewards.shape}")
        self.rewards_i[: self.ptr] = rewards

    def set_bootstrap(self, index: int, value_e: float, value_i: float = 0.0) -> None:
        """Record V(s_{t+1}) for a step (used at truncations and buffer end)."""
        self.bootstrap_e[index] = value_e
        self.bootstrap_i[index] = value_i

    def finish(self, gamma: float, lam: float) -> dict[str, np.ndarray]:
        """Compute per-channel advantages/returns; returns the training batch."""
        n = self.ptr
        # Default bootstrap: next stored value (same trajectory); zero at
        # terminations; explicit values at truncations/buffer end were set
        # via set_bootstrap.
        boot_e = self.bootstrap_e[:n].copy()
        boot_i = self.bootstrap_i[:n].copy()
        for t in range(n - 1):
            if self.dones[t] < 0.5:
                boot_e[t] = self.values_e[t + 1]
                boot_i[t] = self.values_i[t + 1]
        boot_e[self.terminated[:n] >= 0.5] = 0.0
        boot_i[self.terminated[:n] >= 0.5] = 0.0

        # Treat the end of the buffer / truncations as boundaries for the
        # recursion (terminated OR truncated stops flow-through).
        boundary = self.dones[:n].copy()
        boundary[-1] = 1.0
        adv_e, ret_e = compute_gae(self.rewards_e[:n], self.values_e[:n], boundary,
                                   boot_e, gamma, lam)
        adv_i, ret_i = compute_gae(self.rewards_i[:n], self.values_i[:n], boundary,
                                   boot_i, gamma, lam)
        return {
            "obs": self.obs[:n],
            "actions": self.actions[:n],
            "log_probs": self.log_probs[:n],
            "advantages_e": adv_e,
            "advantages_i": adv_i,
            "returns_e": ret_e,
            "returns_i": ret_i,
        }

    def reset(self) -> None:
        self.ptr = 0
        self.bootstrap_e[:] = 0.0
        self.bootstrap_i[:] = 0.0
