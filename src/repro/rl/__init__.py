"""On-policy RL machinery: PPO, GAE buffers, rollouts, normalization."""

from .buffers import RolloutBuffer, compute_gae
from .health import NumericalDivergence, array_health, check_finite, check_gradients
from .normalize import ObservationNormalizer, RewardNormalizer, RunningMeanStd
from .policy import ActorCritic
from .ppo import PPOConfig, PPOUpdater
from .rollout import EpisodeStats, collect_rollout, evaluate_policy
from .trainer import TrainConfig, TrainResult, quick_eval, train_ppo

__all__ = [
    "RolloutBuffer", "compute_gae",
    "NumericalDivergence", "array_health", "check_finite", "check_gradients",
    "RunningMeanStd", "ObservationNormalizer", "RewardNormalizer",
    "ActorCritic",
    "PPOConfig", "PPOUpdater",
    "EpisodeStats", "collect_rollout", "evaluate_policy",
    "TrainConfig", "TrainResult", "train_ppo", "quick_eval",
]
