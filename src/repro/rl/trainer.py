"""Generic PPO training loop over a single-agent Env."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..envs.core import Env
from ..telemetry import current_telemetry
from .buffers import RolloutBuffer
from .health import check_finite
from .policy import ActorCritic
from .ppo import PPOConfig, PPOUpdater
from .rollout import collect_rollout, evaluate_policy

__all__ = ["TrainConfig", "TrainResult", "train_ppo"]

CHECKPOINT_KIND = "train_ppo"


@dataclass
class TrainConfig:
    iterations: int = 40
    steps_per_iteration: int = 2048
    hidden_sizes: tuple[int, ...] = (64, 64)
    seed: int = 0
    ppo: PPOConfig = field(default_factory=PPOConfig)
    log_every: int = 0  # 0 = silent


@dataclass
class TrainResult:
    policy: ActorCritic
    history: list[dict[str, float]]

    @property
    def final_return(self) -> float:
        """Mean return of the last training iteration.

        ``nan`` (not 0.0) when the history is empty — a zero-iteration
        run is "no data", which must stay distinguishable from a genuine
        zero return.  Compare via ``math.isnan`` before ordering on it.
        """
        return self.history[-1]["mean_return"] if self.history else float("nan")


def _capture_train_ppo_checkpoint(iteration, history, policy, updater, rng, env):
    from ..store.checkpoint import TrainingCheckpoint, capture_rng_states

    return TrainingCheckpoint(
        kind=CHECKPOINT_KIND, iteration=iteration, history=list(history),
        state={
            "policy": policy.checkpoint_state(),
            "optimizer": updater.optimizer.state_dict(),
            "rng": rng.bit_generator.state,
            "env_rngs": capture_rng_states(env),
        },
    )


def train_ppo(env: Env, config: TrainConfig | None = None,
              policy: ActorCritic | None = None, extra_loss=None,
              callback=None, telemetry=None,
              checkpoint_path: str | Path | None = None,
              checkpoint_every: int = 0, resume: bool = True) -> TrainResult:
    """Train an actor-critic with PPO on ``env``.

    ``extra_loss(policy, obs, dist) -> Tensor`` lets defenses add their
    regularizer; ``callback(iteration, policy, stats)`` supports
    adversarial-training loops (ATLA) and curve recording.  ``telemetry``
    (a :class:`repro.telemetry.Telemetry`, default: the ambient one, or
    none) records per-iteration events plus rollout/update timings.

    ``checkpoint_path`` + ``checkpoint_every=k`` write a full-state
    :class:`~repro.store.checkpoint.TrainingCheckpoint` every k completed
    iterations (atomic; the previous checkpoint survives a mid-write
    crash).  With ``resume=True`` (default) an existing checkpoint at
    that path is loaded and training continues from it, bit-identically
    to an uninterrupted run.  The checkpoint covers the policy,
    optimizer, normalizer, loop RNG, and env RNGs — ``extra_loss``
    closures must be stateless across iterations for resume to hold
    (the built-in defenses' regularizers are).
    """
    from ..store.checkpoint import TrainingCheckpoint, restore_rng_states

    config = config or TrainConfig()
    telemetry = telemetry if telemetry is not None else current_telemetry()
    rng = np.random.default_rng(config.seed)
    env.seed(config.seed)
    obs_dim = env.observation_space.shape[0]
    action_dim = env.action_space.shape[0]
    if policy is None:
        policy = ActorCritic(obs_dim, action_dim, hidden_sizes=config.hidden_sizes,
                             rng=np.random.default_rng(config.seed))
    updater = PPOUpdater(policy, config.ppo, extra_loss=extra_loss,
                         telemetry=telemetry)
    buffer = RolloutBuffer(config.steps_per_iteration, obs_dim, action_dim)

    start_iteration = 0
    history: list[dict[str, float]] = []
    if checkpoint_path is not None and resume and Path(checkpoint_path).exists():
        ckpt = TrainingCheckpoint.load(checkpoint_path).expect_kind(CHECKPOINT_KIND)
        policy.load_checkpoint_state(ckpt.state["policy"])
        updater.optimizer.load_state_dict(ckpt.state["optimizer"])
        rng.bit_generator.state = ckpt.state["rng"]
        restore_rng_states(env, ckpt.state["env_rngs"])
        start_iteration = ckpt.iteration
        history = list(ckpt.history)

    for iteration in range(start_iteration, config.iterations):
        if telemetry is not None:
            with telemetry.timer("ppo.rollout") as rollout_timer:
                stats = collect_rollout(env, policy, buffer, rng)
            telemetry.metrics.counter("ppo.env_steps").inc(config.steps_per_iteration)
        else:
            stats = collect_rollout(env, policy, buffer, rng)
        batch = buffer.finish(config.ppo.gamma, config.ppo.gae_lambda)
        # Divergence raised here (or inside the update's own guards) fires
        # before this iteration checkpoints, so the last on-disk checkpoint
        # is always healthy and a retry can roll back to it.
        check_finite("returns", batch["returns_e"], iteration=iteration)
        diag = updater.update(batch, rng=rng)
        record = {
            "iteration": iteration,
            "mean_return": stats.mean_return if len(stats) else 0.0,
            "success_rate": stats.success_rate if len(stats) else 0.0,
            "episodes": float(len(stats)),
            **diag,
        }
        history.append(record)
        if telemetry is not None:
            rollout_s = rollout_timer.seconds
            telemetry.event("ppo.iteration", payload=record, perf={
                "rollout_s": rollout_s,
                "update_s": telemetry.metrics.ewma("ppo.update").ewma,
                # None, not inf: "Infinity" is not valid RFC 8259 JSON
                "steps_per_s": (config.steps_per_iteration / rollout_s
                                if rollout_s > 0 else None),
            })
        if config.log_every and iteration % config.log_every == 0:
            print(
                f"[ppo] iter {iteration:3d} return {record['mean_return']:9.2f} "
                f"success {record['success_rate']:5.2f} kl {diag['approx_kl']:.4f}"
            )
        if callback is not None:
            callback(iteration, policy, record)
        if (checkpoint_path is not None and checkpoint_every
                and (iteration + 1) % checkpoint_every == 0):
            _capture_train_ppo_checkpoint(
                iteration + 1, history, policy, updater, rng, env,
            ).save(checkpoint_path)
    return TrainResult(policy=policy, history=history)


def quick_eval(env: Env, policy: ActorCritic, episodes: int = 20, seed: int = 123):
    """Deterministic evaluation helper returning EpisodeStats.

    ``episodes`` must be >= 1: a zero-episode evaluation has no
    statistics, and silently returning zeros would be indistinguishable
    from a genuinely zero-reward policy.
    """
    if episodes < 1:
        raise ValueError(
            f"quick_eval needs episodes >= 1, got {episodes}: an empty "
            "evaluation has no reward statistics to aggregate")
    rng = np.random.default_rng(seed)
    env.seed(seed)
    return evaluate_policy(env, policy, episodes, rng)
