"""Generic PPO training loop over a single-agent Env."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..envs.core import Env
from .buffers import RolloutBuffer
from .policy import ActorCritic
from .ppo import PPOConfig, PPOUpdater
from .rollout import collect_rollout, evaluate_policy

__all__ = ["TrainConfig", "TrainResult", "train_ppo"]


@dataclass
class TrainConfig:
    iterations: int = 40
    steps_per_iteration: int = 2048
    hidden_sizes: tuple[int, ...] = (64, 64)
    seed: int = 0
    ppo: PPOConfig = field(default_factory=PPOConfig)
    log_every: int = 0  # 0 = silent


@dataclass
class TrainResult:
    policy: ActorCritic
    history: list[dict[str, float]]

    @property
    def final_return(self) -> float:
        return self.history[-1]["mean_return"] if self.history else 0.0


def train_ppo(env: Env, config: TrainConfig | None = None,
              policy: ActorCritic | None = None, extra_loss=None,
              callback=None) -> TrainResult:
    """Train an actor-critic with PPO on ``env``.

    ``extra_loss(policy, obs, dist) -> Tensor`` lets defenses add their
    regularizer; ``callback(iteration, policy, stats)`` supports
    adversarial-training loops (ATLA) and curve recording.
    """
    config = config or TrainConfig()
    rng = np.random.default_rng(config.seed)
    env.seed(config.seed)
    obs_dim = env.observation_space.shape[0]
    action_dim = env.action_space.shape[0]
    if policy is None:
        policy = ActorCritic(obs_dim, action_dim, hidden_sizes=config.hidden_sizes,
                             rng=np.random.default_rng(config.seed))
    updater = PPOUpdater(policy, config.ppo, extra_loss=extra_loss)
    buffer = RolloutBuffer(config.steps_per_iteration, obs_dim, action_dim)

    history: list[dict[str, float]] = []
    for iteration in range(config.iterations):
        stats = collect_rollout(env, policy, buffer, rng)
        batch = buffer.finish(config.ppo.gamma, config.ppo.gae_lambda)
        diag = updater.update(batch, rng=rng)
        record = {
            "iteration": iteration,
            "mean_return": stats.mean_return,
            "success_rate": stats.success_rate,
            "episodes": float(len(stats)),
            **diag,
        }
        history.append(record)
        if config.log_every and iteration % config.log_every == 0:
            print(
                f"[ppo] iter {iteration:3d} return {stats.mean_return:9.2f} "
                f"success {stats.success_rate:5.2f} kl {diag['approx_kl']:.4f}"
            )
        if callback is not None:
            callback(iteration, policy, record)
    return TrainResult(policy=policy, history=history)


def quick_eval(env: Env, policy: ActorCritic, episodes: int = 20, seed: int = 123):
    """Deterministic evaluation helper returning EpisodeStats."""
    rng = np.random.default_rng(seed)
    env.seed(seed)
    return evaluate_policy(env, policy, episodes, rng)
