"""Numerical-health guards for training loops.

Adversarial training is a reliable NaN factory: KNN-density intrinsic
bonuses can explode advantages (Gleave et al., "Adversarial Policies:
Attacking Deep RL"), a diverging value head sends losses to ``inf``, and
one poisoned update silently corrupts every later checkpoint, golden,
and table cell.  The guards here turn that silent poisoning into a
structured, *retryable* failure: :func:`check_finite` /
:func:`check_gradients` raise :class:`NumericalDivergence` the moment a
loss, gradient, return, or intrinsic bonus goes NaN/Inf (or exceeds an
explicit magnitude bound), **before** the bad state reaches the
optimizer step's checkpoint — so the last on-disk checkpoint is healthy
by construction and the scheduler can classify the failure as
``error_kind="numerical"`` and retry from it (see
:mod:`repro.runtime.supervisor`).

The checks are single ``np.isfinite(...).all()`` reductions over arrays
the loop already holds; their cost is noise next to a forward/backward
pass, so they are always on.
"""

from __future__ import annotations

import numpy as np

__all__ = ["NumericalDivergence", "array_health", "check_finite", "check_gradients"]


class NumericalDivergence(RuntimeError):
    """A monitored quantity went NaN/Inf or exceeded its magnitude bound.

    Structured so the scheduler (and humans reading crash records) can
    tell *what* diverged and *when* without parsing prose:

    * ``what`` — the monitored quantity (``"loss"``, ``"gradients"``,
      ``"returns"``, ``"intrinsic_bonus"``, ...)
    * ``stats`` — NaN/Inf counts and max magnitude at detection time
    * ``iteration`` — training iteration, when the caller knows it
    """

    def __init__(self, what: str, stats: dict | None = None,
                 iteration: int | None = None, detail: str = ""):
        self.what = what
        self.stats = dict(stats or {})
        self.iteration = iteration
        self.detail = detail
        where = f" at iteration {iteration}" if iteration is not None else ""
        described = ", ".join(f"{k}={v}" for k, v in self.stats.items())
        extra = f" ({detail})" if detail else ""
        super().__init__(
            f"numerical divergence in {what}{where}: {described}{extra}")


def array_health(values: np.ndarray) -> dict:
    """NaN/Inf counts and max finite magnitude of ``values`` (flattened)."""
    flat = np.asarray(values, dtype=np.float64).ravel()
    finite = flat[np.isfinite(flat)]
    return {
        "n": int(flat.size),
        "nan": int(np.isnan(flat).sum()),
        "inf": int(np.isinf(flat).sum()),
        "max_abs": float(np.abs(finite).max()) if finite.size else 0.0,
    }


def check_finite(what: str, values, max_abs: float | None = None,
                 iteration: int | None = None):
    """Return ``values`` unchanged, or raise :class:`NumericalDivergence`.

    Fails when any element is NaN/Inf, or — with ``max_abs`` set — when
    any magnitude exceeds the bound (catching "not NaN *yet*" blow-ups
    while they are still representable).
    """
    arr = np.asarray(values, dtype=np.float64)
    if not np.isfinite(arr).all():
        raise NumericalDivergence(what, stats=array_health(arr),
                                  iteration=iteration)
    if max_abs is not None and arr.size and float(np.abs(arr).max()) > max_abs:
        raise NumericalDivergence(
            what, stats=array_health(arr), iteration=iteration,
            detail=f"magnitude exceeds bound {max_abs:g}")
    return values


def check_gradients(parameters, what: str = "gradients",
                    iteration: int | None = None) -> None:
    """Raise :class:`NumericalDivergence` if any parameter gradient is
    non-finite.  Call between ``backward()`` and ``optimizer.step()`` —
    the optimizer moments (and therefore every later checkpoint) stay
    clean."""
    for param in parameters:
        grad = getattr(param, "grad", None)
        if grad is None:
            continue
        if not np.isfinite(grad).all():
            raise NumericalDivergence(what, stats=array_health(grad),
                                      iteration=iteration)
