"""Running statistics and observation/reward normalization."""

from __future__ import annotations

import numpy as np

__all__ = ["RunningMeanStd", "ObservationNormalizer", "RewardNormalizer"]


class RunningMeanStd:
    """Numerically stable streaming mean/variance (Chan et al. parallel form)."""

    def __init__(self, shape: tuple[int, ...] = ()):
        self.mean = np.zeros(shape)
        self.var = np.ones(shape)
        self.count = 1e-4

    def update(self, batch: np.ndarray) -> None:
        batch = np.asarray(batch, dtype=np.float64)
        if batch.ndim == len(self.mean.shape):
            batch = batch[None]
        batch_mean = batch.mean(axis=0)
        batch_var = batch.var(axis=0)
        batch_count = batch.shape[0]

        delta = batch_mean - self.mean
        total = self.count + batch_count
        new_mean = self.mean + delta * batch_count / total
        m_a = self.var * self.count
        m_b = batch_var * batch_count
        m2 = m_a + m_b + delta**2 * self.count * batch_count / total
        self.mean = new_mean
        self.var = m2 / total
        self.count = total

    @property
    def std(self) -> np.ndarray:
        return np.sqrt(self.var + 1e-8)

    def state(self) -> dict[str, np.ndarray]:
        return {"mean": self.mean.copy(), "var": self.var.copy(), "count": np.array(self.count)}

    def load(self, state: dict[str, np.ndarray]) -> None:
        self.mean = np.asarray(state["mean"], dtype=np.float64).copy()
        self.var = np.asarray(state["var"], dtype=np.float64).copy()
        self.count = float(np.asarray(state["count"]))


class ObservationNormalizer:
    """Normalize observations to ~N(0, 1) with clipping.

    The normalizer is part of the deployed policy: attacks that perturb
    "the inputs of the victim policy network" operate in this normalized
    space (as in SA-RL).
    """

    def __init__(self, shape: tuple[int, ...], clip: float = 10.0):
        self.rms = RunningMeanStd(shape)
        self.clip = clip
        self.frozen = False

    def __call__(self, obs: np.ndarray, update: bool = True) -> np.ndarray:
        obs = np.asarray(obs, dtype=np.float64)
        if update and not self.frozen:
            self.rms.update(obs)
        return np.clip((obs - self.rms.mean) / self.rms.std, -self.clip, self.clip)

    def freeze(self) -> None:
        self.frozen = True

    def state(self) -> dict[str, np.ndarray]:
        return self.rms.state()

    def load(self, state: dict[str, np.ndarray]) -> None:
        self.rms.load(state)


class RewardNormalizer:
    """Scale rewards by the running std of the discounted return."""

    def __init__(self, gamma: float = 0.99, clip: float = 10.0):
        self.rms = RunningMeanStd(())
        self.gamma = gamma
        self.clip = clip
        self._ret = 0.0

    def __call__(self, reward: float, done: bool) -> float:
        self._ret = self.gamma * self._ret + reward
        self.rms.update(np.array([self._ret]))
        if done:
            self._ret = 0.0
        return float(np.clip(reward / float(self.rms.std), -self.clip, self.clip))

    def state(self) -> dict[str, np.ndarray]:
        return {**self.rms.state(), "ret": np.array(self._ret)}

    def load(self, state: dict[str, np.ndarray]) -> None:
        self.rms.load(state)
        self._ret = float(np.asarray(state["ret"]))
