"""Actor-critic policies with optional dual value heads.

The extrinsic head estimates ``V_E`` and the (optional) intrinsic head
``V_I``; IMAP optimizes the combined advantage ``Â_E + τ_k Â_I``
(paper Eq. 14).
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn import MLP, DiagGaussian, Parameter, Tensor
from .normalize import ObservationNormalizer

__all__ = ["ActorCritic"]


class ActorCritic(nn.Module):
    """Gaussian MLP policy + one or two value heads + obs normalizer."""

    def __init__(self, obs_dim: int, action_dim: int,
                 hidden_sizes: tuple[int, ...] = (64, 64),
                 log_std_init: float = -0.5,
                 dual_value: bool = False,
                 normalize_obs: bool = True,
                 rng: np.random.Generator | None = None):
        super().__init__()
        self.obs_dim = obs_dim
        self.action_dim = action_dim
        self.dual_value = dual_value
        self.actor = MLP(obs_dim, hidden_sizes, action_dim, output_gain=0.01, rng=rng)
        self.log_std = Parameter(np.full(action_dim, log_std_init))
        self.critic = MLP(obs_dim, hidden_sizes, 1, output_gain=1.0, rng=rng)
        if dual_value:
            self.critic_intrinsic = MLP(obs_dim, hidden_sizes, 1, output_gain=1.0, rng=rng)
        self.normalizer = ObservationNormalizer((obs_dim,)) if normalize_obs else None

    # ------------------------------------------------------------ observation

    def normalize(self, obs: np.ndarray, update: bool = False) -> np.ndarray:
        if self.normalizer is None:
            return np.asarray(obs, dtype=np.float64)
        return self.normalizer(obs, update=update)

    def freeze_normalizer(self) -> None:
        if self.normalizer is not None:
            self.normalizer.freeze()

    # ----------------------------------------------------------- distribution

    def distribution(self, normalized_obs) -> DiagGaussian:
        """Policy distribution over actions; input must already be normalized."""
        return DiagGaussian(self.actor(normalized_obs), self.log_std)

    def act(self, obs: np.ndarray, rng: np.random.Generator,
            deterministic: bool = False, update_normalizer: bool = False):
        """Single-step rollout action.

        Returns ``(action, log_prob, value_e, value_i, normalized_obs)``.
        """
        normalized = self.normalize(obs, update=update_normalizer)
        with nn.no_grad():
            dist = self.distribution(normalized)
            action = dist.mode() if deterministic else dist.sample(rng)
            log_prob = float(dist.log_prob(action).data.item())
            value_e = float(self.critic(normalized).data.item())
            value_i = (
                float(self.critic_intrinsic(normalized).data.item()) if self.dual_value else 0.0
            )
        return action, log_prob, value_e, value_i, normalized

    def act_batch(self, obs: np.ndarray, rng: np.random.Generator,
                  deterministic: bool = False, update_normalizer: bool = False):
        """Batched rollout action for vectorized envs.

        ``obs`` has shape (n_envs, obs_dim); returns ``(actions,
        log_probs, values_e, values_i, normalized_obs)`` with a leading
        n_envs axis each.  A batch of one routes through :meth:`act` so
        the forward pass and RNG draws are bit-identical to the serial
        rollout path (the n_envs=1 parity guarantee).
        """
        obs = np.asarray(obs, dtype=np.float64)
        if obs.ndim != 2:
            raise ValueError(f"act_batch expects (n_envs, obs_dim), got {obs.shape}")
        if obs.shape[0] == 1:
            action, log_prob, value_e, value_i, normalized = self.act(
                obs[0], rng, deterministic=deterministic,
                update_normalizer=update_normalizer)
            return (action[None].copy(), np.array([log_prob]),
                    np.array([value_e]), np.array([value_i]), normalized[None].copy())
        normalized = self.normalize(obs, update=update_normalizer)
        with nn.no_grad():
            dist = self.distribution(normalized)
            actions = dist.mode() if deterministic else dist.sample(rng)
            log_probs = dist.log_prob(actions).data.copy()
            values_e = self.critic(normalized).data.reshape(-1).copy()
            values_i = (
                self.critic_intrinsic(normalized).data.reshape(-1).copy()
                if self.dual_value else np.zeros(obs.shape[0])
            )
        return actions, log_probs, values_e, values_i, normalized

    def action(self, obs: np.ndarray, rng: np.random.Generator,
               deterministic: bool = False) -> np.ndarray:
        """Convenience: just the action (used for deployed/fixed policies)."""
        return self.act(obs, rng, deterministic=deterministic)[0]

    # ----------------------------------------------------------------- values

    def value(self, normalized_obs) -> Tensor:
        return self.critic(normalized_obs).reshape((-1,))

    def value_intrinsic(self, normalized_obs) -> Tensor:
        if not self.dual_value:
            raise RuntimeError("policy was built without an intrinsic value head")
        return self.critic_intrinsic(normalized_obs).reshape((-1,))

    # ------------------------------------------------------------- checkpoint

    def checkpoint_state(self) -> dict[str, np.ndarray]:
        state = self.state_dict()
        if self.normalizer is not None:
            for key, value in self.normalizer.state().items():
                state[f"__norm__{key}"] = value
        return state

    def load_checkpoint_state(self, state: dict[str, np.ndarray]) -> None:
        params = {k: v for k, v in state.items() if not k.startswith("__norm__")}
        self.load_state_dict(params)
        norm = {k[len("__norm__"):]: v for k, v in state.items() if k.startswith("__norm__")}
        if norm and self.normalizer is not None:
            self.normalizer.load(norm)
