"""Proximal Policy Optimization (clip variant) on the autograd stack.

Implements Eq. 1 / Eq. 14 of the paper: the clipped surrogate objective
over the combined advantage ``Â_E + τ_k Â_I``, plus value regression for
the extrinsic (and, when present, intrinsic) heads and an entropy bonus.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import nn
from ..nn import Tensor
from ..nn import functional as F
from ..telemetry import profiled
from .health import check_finite, check_gradients
from .policy import ActorCritic

__all__ = ["PPOConfig", "PPOUpdater"]


@dataclass
class PPOConfig:
    learning_rate: float = 3e-4
    clip_epsilon: float = 0.2
    epochs: int = 8
    minibatches: int = 4
    gamma: float = 0.99
    gae_lambda: float = 0.95
    entropy_coef: float = 0.003
    value_coef: float = 0.5
    max_grad_norm: float = 0.5
    target_kl: float | None = 0.05
    normalize_advantages: bool = True
    extra_loss_weight: float = 1.0  # weight for defense regularizer terms
    # Health guard: any |loss| above this raises NumericalDivergence even
    # before it turns into an actual NaN/Inf.  None disables the bound
    # (the NaN/Inf check itself is always on).
    max_loss_magnitude: float | None = 1e6
    extra_kwargs: dict = field(default_factory=dict)


class PPOUpdater:
    """Performs PPO updates on an :class:`ActorCritic`.

    ``extra_loss`` hooks let the defense methods (SA / RADIAL / WocaR)
    add their regularizers to the PPO loss without subclassing.
    """

    def __init__(self, policy: ActorCritic, config: PPOConfig | None = None,
                 extra_loss=None, telemetry=None):
        self.policy = policy
        self.config = config or PPOConfig()
        self.optimizer = nn.Adam(policy.parameters(), lr=self.config.learning_rate)
        self.extra_loss = extra_loss
        # Optional repro.telemetry.Telemetry; @profiled reads it per call.
        self.telemetry = telemetry

    @profiled("ppo.update")
    def update(self, batch: dict[str, np.ndarray], tau: float = 0.0,
               rng: np.random.Generator | None = None) -> dict[str, float]:
        """Run minibatch epochs on a finished rollout batch.

        ``tau`` is the intrinsic temperature τ_k; 0 recovers vanilla PPO.
        Returns diagnostics (mean losses, approximate KL).
        """
        cfg = self.config
        rng = rng or np.random.default_rng()
        n = len(batch["obs"])
        check_finite("returns", batch["returns_e"])
        advantages = batch["advantages_e"] + tau * batch["advantages_i"]
        check_finite("advantages", advantages)
        if cfg.normalize_advantages and n > 1:
            advantages = (advantages - advantages.mean()) / (advantages.std() + 1e-8)

        stats = {"policy_loss": 0.0, "value_loss": 0.0, "entropy": 0.0,
                 "approx_kl": 0.0, "clip_fraction": 0.0, "extra_loss": 0.0}
        updates = 0
        early_stop = False
        for _ in range(cfg.epochs):
            if early_stop:
                break
            perm = rng.permutation(n)
            for chunk in np.array_split(perm, cfg.minibatches):
                if len(chunk) == 0:
                    continue
                diag = self._update_minibatch(batch, advantages, chunk, tau)
                for key, value in diag.items():
                    stats[key] += value
                updates += 1
                if cfg.target_kl is not None and diag["approx_kl"] > 1.5 * cfg.target_kl:
                    early_stop = True
                    break
        if updates:
            stats = {k: v / updates for k, v in stats.items()}
        stats["updates"] = updates
        if self.telemetry is not None:
            metrics = self.telemetry.metrics
            for key in ("policy_loss", "value_loss", "approx_kl", "clip_fraction"):
                metrics.gauge(f"ppo.{key}").set(stats[key])
            metrics.counter("ppo.minibatch_updates").inc(updates)
        return stats

    def _update_minibatch(self, batch, advantages, idx, tau) -> dict[str, float]:
        cfg = self.config
        obs = batch["obs"][idx]
        actions = batch["actions"][idx]
        old_log_probs = batch["log_probs"][idx]
        adv = Tensor(advantages[idx])

        dist = self.policy.distribution(obs)
        log_probs = dist.log_prob(actions)
        ratio = (log_probs - Tensor(old_log_probs)).exp()
        clipped = ratio.clip(1.0 - cfg.clip_epsilon, 1.0 + cfg.clip_epsilon)
        policy_loss = -F.minimum(ratio * adv, clipped * adv).mean()

        value_loss = F.mse_loss(self.policy.value(obs), batch["returns_e"][idx])
        if self.policy.dual_value:
            value_loss = value_loss + F.mse_loss(
                self.policy.value_intrinsic(obs), batch["returns_i"][idx]
            )

        entropy = dist.entropy().mean()
        loss = policy_loss + cfg.value_coef * value_loss - cfg.entropy_coef * entropy

        extra_value = 0.0
        if self.extra_loss is not None:
            extra = self.extra_loss(self.policy, obs, dist)
            extra_value = float(extra.data)
            loss = loss + cfg.extra_loss_weight * extra

        # Guards run before the optimizer mutates any state, so a diverged
        # minibatch leaves parameters and moments exactly as checkpointed.
        check_finite("loss", float(loss.data), max_abs=cfg.max_loss_magnitude)
        self.optimizer.zero_grad()
        loss.backward()
        check_gradients(self.policy.parameters())
        nn.clip_grad_norm(self.policy.parameters(), cfg.max_grad_norm)
        self.optimizer.step()

        with nn.no_grad():
            log_ratio = log_probs.data - old_log_probs
            approx_kl = float(np.mean(np.exp(log_ratio) - 1.0 - log_ratio))
            clip_fraction = float(np.mean(np.abs(ratio.data - 1.0) > cfg.clip_epsilon))
        return {
            "policy_loss": float(policy_loss.data),
            "value_loss": float(value_loss.data),
            "entropy": float(entropy.data),
            "approx_kl": approx_kl,
            "clip_fraction": clip_fraction,
            "extra_loss": extra_value,
        }
