"""Rollout collection and policy evaluation for single-agent Envs."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..envs.core import Env
from .buffers import RolloutBuffer
from .policy import ActorCritic

__all__ = ["EpisodeStats", "collect_rollout", "evaluate_policy"]


@dataclass
class EpisodeStats:
    """Aggregates over the episodes finished during a rollout.

    Aggregating zero episodes raises :class:`ValueError` rather than
    dividing by zero (or silently returning 0.0, which is
    indistinguishable from a genuinely zero-return policy).  Callers
    that may legitimately see an empty rollout — e.g. a training batch
    that ends mid-first-episode — should branch on ``len(stats)`` first.
    """

    returns: list[float] = field(default_factory=list)
    lengths: list[int] = field(default_factory=list)
    successes: list[bool] = field(default_factory=list)

    def add(self, ep_return: float, length: int, success: bool) -> None:
        self.returns.append(ep_return)
        self.lengths.append(length)
        self.successes.append(success)

    def _require_episodes(self, what: str) -> None:
        if not self.returns:
            raise ValueError(
                f"cannot aggregate {what} over zero finished episodes; "
                "check len(stats) before aggregating")

    @property
    def mean_return(self) -> float:
        self._require_episodes("mean_return")
        return float(np.mean(self.returns))

    @property
    def std_return(self) -> float:
        self._require_episodes("std_return")
        return float(np.std(self.returns))

    @property
    def success_rate(self) -> float:
        self._require_episodes("success_rate")
        return float(np.mean(self.successes))

    def __len__(self) -> int:
        return len(self.returns)


def collect_rollout(env: Env, policy: ActorCritic, buffer: RolloutBuffer,
                    rng: np.random.Generator, update_normalizer: bool = True,
                    ) -> EpisodeStats:
    """Fill ``buffer`` with on-policy experience from ``env``.

    The buffer stores *normalized* observations (the exact inputs the
    policy saw), so PPO updates are consistent even while the normalizer
    statistics move.
    """
    stats = EpisodeStats()
    obs = env.reset()
    ep_return, ep_length, ep_success = 0.0, 0, False
    buffer.reset()
    while not buffer.full:
        action, log_prob, value_e, value_i, normalized = policy.act(
            obs, rng, update_normalizer=update_normalizer
        )
        next_obs, reward, terminated, truncated, info = env.step(action)
        done = terminated or truncated
        ep_return += reward
        ep_length += 1
        ep_success = ep_success or bool(info.get("success", False))
        buffer.add(normalized, action, log_prob, reward, value_e, value_i,
                   done=done, terminated=terminated)
        index = buffer.ptr - 1
        if done:
            if not terminated:  # truncation: bootstrap with V(s_next)
                _, _, be, bi, _ = policy.act(next_obs, rng,
                                             update_normalizer=update_normalizer)
                buffer.set_bootstrap(index, be, bi)
            stats.add(ep_return, ep_length, ep_success)
            obs = env.reset()
            ep_return, ep_length, ep_success = 0.0, 0, False
        else:
            obs = next_obs
            if buffer.full:  # buffer ends mid-episode: bootstrap
                _, _, be, bi, _ = policy.act(obs, rng,
                                             update_normalizer=update_normalizer)
                buffer.set_bootstrap(index, be, bi)
    return stats


def evaluate_policy(env: Env, policy: ActorCritic, episodes: int,
                    rng: np.random.Generator, deterministic: bool = True,
                    ) -> EpisodeStats:
    """Run ``episodes`` evaluation episodes (no learning side effects)."""
    if episodes < 1:
        raise ValueError(
            f"evaluate_policy needs episodes >= 1, got {episodes}: an empty "
            "evaluation has no statistics to aggregate")
    stats = EpisodeStats()
    for _ in range(episodes):
        obs = env.reset()
        done = False
        ep_return, ep_length, ep_success = 0.0, 0, False
        while not done:
            action = policy.action(obs, rng, deterministic=deterministic)
            obs, reward, terminated, truncated, info = env.step(action)
            done = terminated or truncated
            ep_return += reward
            ep_length += 1
            ep_success = ep_success or bool(info.get("success", False))
        stats.add(ep_return, ep_length, ep_success)
    return stats
