"""Defense registry: name -> victim trainer.

Every trainer has the signature
``train(env_factory, config: DefenseTrainConfig) -> ActorCritic`` and
returns a deployment-ready victim (normalizer frozen).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..rl.policy import ActorCritic
from ..rl.ppo import PPOConfig

__all__ = ["DefenseTrainConfig", "register_defense", "get_defense", "defense_names"]


@dataclass
class DefenseTrainConfig:
    """Budget shared by all defense trainers."""

    iterations: int = 40
    steps_per_iteration: int = 2048
    hidden_sizes: tuple[int, ...] = (64, 64)
    seed: int = 0
    epsilon: float = 0.6           # robustness budget the defense trains for
    regularizer_weight: float = 0.3
    ppo: PPOConfig = field(default_factory=PPOConfig)
    # ATLA-specific
    atla_adversary_iterations: int = 6
    atla_phases: int = 3


DefenseTrainer = Callable[[Callable[[], object], DefenseTrainConfig], ActorCritic]

_DEFENSES: dict[str, DefenseTrainer] = {}


def register_defense(name: str):
    def decorator(fn: DefenseTrainer) -> DefenseTrainer:
        if name in _DEFENSES:
            raise ValueError(f"defense {name!r} already registered")
        _DEFENSES[name] = fn
        return fn
    return decorator


def get_defense(name: str) -> DefenseTrainer:
    if name not in _DEFENSES:
        raise KeyError(f"unknown defense {name!r}; known: {defense_names()}")
    return _DEFENSES[name]


def defense_names() -> list[str]:
    return sorted(_DEFENSES)
