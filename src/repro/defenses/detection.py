"""Active detection of observation attacks (Section 7 of the paper).

The paper surveys detection defenses that compare predicted and observed
inputs (Lin et al.'s "visual foresight").  This module implements that
idea for our vector observations: a learned one-step dynamics model
predicts the next normalized observation; an observation whose
prediction error exceeds a clean-calibrated quantile is flagged as
adversarial.  The paper argues such defenses sacrifice natural
performance; the detector here is evaluation-only (it flags, it does not
filter), so it can be used to *measure* attack detectability.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import nn
from ..nn import MLP, Tensor
from ..nn import functional as F
from ..rl.policy import ActorCritic

__all__ = ["DynamicsModel", "ForesightDetector", "DetectionReport"]


class DynamicsModel(nn.Module):
    """One-step predictor: (normalized obs, action) -> next normalized obs."""

    def __init__(self, obs_dim: int, action_dim: int, hidden: tuple[int, ...] = (64, 64),
                 learning_rate: float = 1e-3, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.net = MLP(obs_dim + action_dim, hidden, obs_dim, output_gain=0.1, rng=rng)
        self.optimizer = nn.Adam(self.parameters(), lr=learning_rate)

    def predict(self, obs: np.ndarray, action: np.ndarray) -> np.ndarray:
        """Predicted *delta* added to the current observation."""
        x = np.concatenate([np.atleast_2d(obs), np.atleast_2d(action)], axis=1)
        with nn.no_grad():
            delta = self.net(x).data
        return np.atleast_2d(obs) + delta

    def fit(self, obs: np.ndarray, actions: np.ndarray, next_obs: np.ndarray,
            epochs: int = 20, batch_size: int = 256,
            rng: np.random.Generator | None = None) -> float:
        rng = rng or np.random.default_rng()
        inputs = np.concatenate([obs, actions], axis=1)
        targets = next_obs - obs
        loss_value = 0.0
        for _ in range(epochs):
            idx = rng.permutation(len(inputs))
            for chunk in np.array_split(idx, max(1, len(idx) // batch_size)):
                pred = self.net(inputs[chunk])
                loss = F.mse_loss(pred, Tensor(targets[chunk]))
                self.optimizer.zero_grad()
                loss.backward()
                self.optimizer.step()
                loss_value = float(loss.data)
        return loss_value


@dataclass
class DetectionReport:
    false_positive_rate: float
    detection_rate: float
    threshold: float


class ForesightDetector:
    """Flags observations inconsistent with the learned clean dynamics."""

    def __init__(self, victim: ActorCritic, quantile: float = 0.99, seed: int = 0):
        if not 0.5 < quantile < 1.0:
            raise ValueError("quantile must be in (0.5, 1)")
        self.victim = victim
        self.quantile = quantile
        self.model = DynamicsModel(victim.obs_dim, victim.action_dim, seed=seed)
        self.threshold: float | None = None
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------ fit

    def _collect_clean(self, env, steps: int):
        obs_list, act_list, next_list = [], [], []
        obs = env.reset()
        normalized = self.victim.normalize(obs)
        while len(obs_list) < steps:
            action = self.victim.action(obs, self._rng, deterministic=False)
            next_obs, _, terminated, truncated, _ = env.step(action)
            next_normalized = self.victim.normalize(next_obs)
            obs_list.append(normalized)
            act_list.append(np.clip(action, -1.0, 1.0))
            next_list.append(next_normalized)
            if terminated or truncated:
                obs = env.reset()
                normalized = self.victim.normalize(obs)
            else:
                obs = next_obs
                normalized = next_normalized
        return np.asarray(obs_list), np.asarray(act_list), np.asarray(next_list)

    def fit(self, env, steps: int = 4096, epochs: int = 15) -> float:
        """Train the dynamics model on clean victim play and calibrate the
        flagging threshold at the configured quantile of clean errors."""
        obs, actions, next_obs = self._collect_clean(env, steps)
        split = int(0.8 * len(obs))
        self.model.fit(obs[:split], actions[:split], next_obs[:split],
                       epochs=epochs, rng=self._rng)
        errors = self.errors(obs[split:], actions[split:], next_obs[split:])
        self.threshold = float(np.quantile(errors, self.quantile))
        return self.threshold

    # ---------------------------------------------------------------- scoring

    def errors(self, obs: np.ndarray, actions: np.ndarray,
               observed_next: np.ndarray) -> np.ndarray:
        predicted = self.model.predict(obs, actions)
        return np.linalg.norm(predicted - np.atleast_2d(observed_next), axis=1)

    def flags(self, obs, actions, observed_next) -> np.ndarray:
        if self.threshold is None:
            raise RuntimeError("call fit() before flagging")
        return self.errors(obs, actions, observed_next) > self.threshold

    # -------------------------------------------------------------- evaluate

    def evaluate(self, env_factory, attack_policy, epsilon: float,
                 episodes: int = 10, seed: int = 0) -> DetectionReport:
        """Per-step detection rate under attack vs clean false positives."""
        from ..attacks.threat_models import StatePerturbationEnv

        if self.threshold is None:
            raise RuntimeError("call fit() before evaluate()")
        rng = np.random.default_rng(seed)

        def run(attacked: bool) -> float:
            flagged = total = 0
            for ep in range(episodes):
                adv_env = StatePerturbationEnv(env_factory(), self.victim,
                                               epsilon=epsilon, seed=seed + ep)
                adv_env.seed(seed + ep)
                obs = adv_env.reset()
                seen_prev = None
                victim_action_prev = None
                done = False
                while not done:
                    raw = (attack_policy.action(obs, rng, deterministic=True)
                           if attacked else np.zeros_like(obs))
                    prev = obs
                    obs, _, term, trunc, info = adv_env.step(raw)
                    done = term or trunc
                    # The defender monitors exactly what the victim's network
                    # consumed: the perturbed observation stream.
                    seen_now = prev + info["perturbation"]
                    if seen_prev is not None:
                        error = self.errors(seen_prev[None], victim_action_prev[None],
                                            seen_now[None])[0]
                        flagged += int(error > self.threshold)
                        total += 1
                    seen_prev = seen_now
                    with nn.no_grad():
                        victim_action_prev = np.clip(
                            self.victim.distribution(seen_now).mode(), -1.0, 1.0)
            return flagged / max(total, 1)

        return DetectionReport(
            false_positive_rate=run(attacked=False),
            detection_rate=run(attacked=True),
            threshold=self.threshold,
        )
