"""RADIAL defense (Oikarinen et al., 2021): adversarial-loss training.

Realized as training on randomly perturbed observations (slightly
inflated budget) plus a mild adversarial (random-start FGSM) KL loss —
the empirical surrogate of RADIAL's output bound.  The adversarial term
is kept small: on this substrate a strong output-smoothness pressure
removes the stabilizing feedback the task requires (DESIGN.md).
"""

from __future__ import annotations

import numpy as np

from ..rl.policy import ActorCritic
from .base import DefenseTrainConfig, register_defense
from .perturbed_training import RandomNoisePerturbation, train_with_perturbation
from .smoothing import adversarial_smoothness_loss

__all__ = ["train_radial", "make_radial_loss"]


def make_radial_loss(epsilon: float, weight: float, seed: int = 0):
    rng = np.random.default_rng(seed)

    def extra_loss(policy, obs, dist):
        return adversarial_smoothness_loss(policy, obs, dist, epsilon, rng=rng) * weight

    return extra_loss


RADIAL_BUDGET_INFLATION = 1.15
RADIAL_LOSS_WEIGHT = 0.1


@register_defense("radial")
def train_radial(env_factory, config: DefenseTrainConfig) -> ActorCritic:
    inflated = RADIAL_BUDGET_INFLATION * config.epsilon
    return train_with_perturbation(
        env_factory, config,
        perturbation_builder=lambda rng: RandomNoisePerturbation(inflated, rng),
        extra_loss=make_radial_loss(config.epsilon, RADIAL_LOSS_WEIGHT, config.seed),
    )
