"""Shared smoothness machinery for the robust-regularizer defenses.

Two perturbation models over the policy's (normalized) inputs:

* random smoothing — δ uniform in the l∞ ε-ball (used by SA's
  regularizer; the original solves a convex relaxation, we use its
  sampling approximation, see DESIGN.md);
* FGSM smoothing — δ = ε · sign(∂KL/∂obs), a one-step worst-case
  perturbation (used by RADIAL / WocaR's bound-based losses).
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn import Tensor
from ..rl.policy import ActorCritic

__all__ = ["random_smoothness_loss", "fgsm_perturbation", "adversarial_smoothness_loss"]


def random_smoothness_loss(policy: ActorCritic, obs: np.ndarray, dist,
                           epsilon: float, rng: np.random.Generator) -> Tensor:
    """E_δ KL(π(·|s) ‖ π(·|s+δ)) with uniform δ in the ε-ball."""
    delta = rng.uniform(-epsilon, epsilon, size=obs.shape)
    perturbed_dist = policy.distribution(obs + delta)
    return dist.kl(perturbed_dist).mean()


def fgsm_perturbation(policy: ActorCritic, obs: np.ndarray, epsilon: float,
                      rng: np.random.Generator | None = None) -> np.ndarray:
    """Random-start + one sign-gradient step maximizing the policy's KL shift.

    KL(π(s) ‖ π(s+δ)) has zero gradient at δ = 0, so (as in PGD practice)
    we start from a random δ₀ in the half-ball and take one FGSM step,
    projecting back into the ε-ball.
    """
    obs = np.asarray(obs, dtype=np.float64)
    rng = rng or np.random.default_rng()
    delta0 = rng.uniform(-0.5 * epsilon, 0.5 * epsilon, size=obs.shape)
    x = Tensor(obs + delta0, requires_grad=True)
    dist = policy.distribution(x)
    with nn.no_grad():
        anchor_mean = policy.distribution(obs).mean.data.copy()
    anchor = type(dist)(Tensor(anchor_mean), Tensor(policy.log_std.data.copy()))
    kl = anchor.kl(dist).mean()
    for p in policy.parameters():
        p.zero_grad()
    kl.backward()
    grad = x.grad if x.grad is not None else np.zeros_like(obs)
    for p in policy.parameters():
        p.zero_grad()
    return np.clip(delta0 + epsilon * np.sign(grad), -epsilon, epsilon)


def adversarial_smoothness_loss(policy: ActorCritic, obs: np.ndarray, dist,
                                epsilon: float, rng: np.random.Generator | None = None
                                ) -> Tensor:
    """KL(π(·|s) ‖ π(·|s+δ*)) with δ* from a one-step FGSM attack."""
    delta = fgsm_perturbation(policy, obs, epsilon, rng=rng)
    perturbed_dist = policy.distribution(obs + delta)
    return dist.kl(perturbed_dist).mean()
