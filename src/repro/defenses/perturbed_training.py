"""Perturbation-aware victim training.

In this substrate, output-smoothness alone *weakens* the stabilizing
feedback the victim needs (see DESIGN.md), so each robust-regularizer
defense is realized as the combination the original method's *intent*
implies: train on perturbed observations (its perturbation model) plus
its loss term.  The perturbation models:

* ``RandomNoisePerturbation``  — uniform δ in the ε-ball (SA's smoothed
  neighbourhood);
* ``FgsmPerturbation``         — per-state one-step worst case (RADIAL /
  WocaR's bound surrogate);
* ``PolicyPerturbation``       — a learned SA-RL attacker (ATLA).
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..attacks.threat_models import project_perturbation
from ..rl.buffers import RolloutBuffer
from ..rl.policy import ActorCritic
from ..rl.ppo import PPOUpdater
from .base import DefenseTrainConfig

__all__ = [
    "RandomNoisePerturbation",
    "FgsmPerturbation",
    "PolicyPerturbation",
    "collect_rollout_with_perturbation",
    "train_with_perturbation",
]


class RandomNoisePerturbation:
    """Uniform observation noise in the l∞ ε-ball."""

    def __init__(self, epsilon: float, rng: np.random.Generator):
        self.epsilon = epsilon
        self._rng = rng

    def __call__(self, victim: ActorCritic, normalized_obs: np.ndarray) -> np.ndarray:
        return self._rng.uniform(-self.epsilon, self.epsilon, size=normalized_obs.shape)


class FgsmPerturbation:
    """Per-state one-step worst-case perturbation of the victim policy."""

    def __init__(self, epsilon: float, rng: np.random.Generator):
        self.epsilon = epsilon
        self._rng = rng

    def __call__(self, victim: ActorCritic, normalized_obs: np.ndarray) -> np.ndarray:
        from .smoothing import fgsm_perturbation

        return fgsm_perturbation(victim, normalized_obs, self.epsilon, rng=self._rng)


class PolicyPerturbation:
    """A (frozen) learned adversary policy generating the perturbation."""

    def __init__(self, adversary, epsilon: float, rng: np.random.Generator):
        self.adversary = adversary
        self.epsilon = epsilon
        self._rng = rng

    def __call__(self, victim: ActorCritic, normalized_obs: np.ndarray) -> np.ndarray:
        raw = self.adversary.action(normalized_obs, self._rng, deterministic=False)
        return project_perturbation(raw, self.epsilon)


def collect_rollout_with_perturbation(env, victim: ActorCritic, perturbation,
                                      buffer: RolloutBuffer,
                                      rng: np.random.Generator) -> float:
    """On-policy collection where the victim sees perturbed observations.

    Stores the perturbed inputs (what the network consumed), keeping the
    PPO update on-policy.  Returns the mean episode return.
    """
    obs = env.reset()
    returns, ep_return = [], 0.0
    buffer.reset()
    while not buffer.full:
        normalized = victim.normalize(obs, update=True)
        if perturbation is not None:
            normalized = normalized + perturbation(victim, normalized)
        with nn.no_grad():
            dist = victim.distribution(normalized)
            action = dist.sample(rng)
            log_prob = float(dist.log_prob(action).data.item())
            value = float(victim.critic(normalized).data.item())
        next_obs, reward, terminated, truncated, info = env.step(action)
        done = terminated or truncated
        ep_return += reward
        buffer.add(normalized, action, log_prob, reward, value,
                   done=done, terminated=terminated)
        index = buffer.ptr - 1
        if done:
            if not terminated:
                nxt = victim.normalize(next_obs)
                with nn.no_grad():
                    buffer.set_bootstrap(index, float(victim.critic(nxt).data.item()))
            returns.append(ep_return)
            ep_return = 0.0
            obs = env.reset()
        else:
            obs = next_obs
            if buffer.full:
                nxt = victim.normalize(obs)
                with nn.no_grad():
                    buffer.set_bootstrap(index, float(victim.critic(nxt).data.item()))
    return float(np.mean(returns)) if returns else ep_return


def train_with_perturbation(env_factory, config: DefenseTrainConfig,
                            perturbation_builder, extra_loss=None) -> ActorCritic:
    """PPO victim training on perturbed observations (+ optional loss term).

    ``perturbation_builder(rng) -> callable | None`` builds the
    perturbation model once training starts.
    """
    rng = np.random.default_rng(config.seed)
    env = env_factory()
    env.seed(config.seed)
    obs_dim = env.observation_space.shape[0]
    action_dim = env.action_space.shape[0]
    victim = ActorCritic(obs_dim, action_dim, hidden_sizes=config.hidden_sizes,
                         rng=np.random.default_rng(config.seed))
    updater = PPOUpdater(victim, config.ppo, extra_loss=extra_loss)
    buffer = RolloutBuffer(config.steps_per_iteration, obs_dim, action_dim)
    perturbation = perturbation_builder(rng)
    for _ in range(config.iterations):
        collect_rollout_with_perturbation(env, victim, perturbation, buffer, rng)
        batch = buffer.finish(config.ppo.gamma, config.ppo.gae_lambda)
        updater.update(batch, rng=rng)
    victim.freeze_normalizer()
    return victim
