"""WocaR defense (Liang et al., 2022): worst-case-aware robust training.

WocaR estimates the worst-case value under bounded perturbation and
optimizes it alongside the task objective, without training an attacker.
Realized here as training on randomly perturbed observations at an
*inflated* budget (1.3 ε — worst-case awareness means optimizing a
stronger bound than the attack budget) plus a worst-case value hinge:
states whose value collapses under a one-step worst-case perturbation
are penalized.
"""

from __future__ import annotations

import numpy as np

from ..nn import functional as F
from ..rl.policy import ActorCritic
from .base import DefenseTrainConfig, register_defense
from .perturbed_training import RandomNoisePerturbation, train_with_perturbation
from .smoothing import fgsm_perturbation

__all__ = ["train_wocar", "make_wocar_loss"]


def make_wocar_loss(epsilon: float, weight: float, seed: int = 0):
    rng = np.random.default_rng(seed)

    def extra_loss(policy, obs, dist):
        delta = fgsm_perturbation(policy, obs, epsilon, rng=rng)
        value_gap = policy.value(obs) - policy.value(obs + delta)
        return F.maximum(value_gap, 0.0).mean() * weight

    return extra_loss


WOCAR_BUDGET_INFLATION = 1.3


@register_defense("wocar")
def train_wocar(env_factory, config: DefenseTrainConfig) -> ActorCritic:
    inflated = WOCAR_BUDGET_INFLATION * config.epsilon
    return train_with_perturbation(
        env_factory, config,
        perturbation_builder=lambda rng: RandomNoisePerturbation(inflated, rng),
        extra_loss=make_wocar_loss(config.epsilon, config.regularizer_weight, config.seed),
    )
