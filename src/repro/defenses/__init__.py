"""Victim training with robustness defenses.

Registered defenses (Table 1 rows): ``ppo`` (vanilla), ``sa``,
``radial``, ``wocar`` (robust regularizers), ``atla``, ``atla_sa``
(adversarial training).
"""

from . import atla, radial, sa_regularizer, vanilla, wocar  # noqa: F401  (register)
from .base import DefenseTrainConfig, defense_names, get_defense, register_defense
from .detection import DetectionReport, DynamicsModel, ForesightDetector
from .perturbed_training import (
    FgsmPerturbation,
    PolicyPerturbation,
    RandomNoisePerturbation,
    collect_rollout_with_perturbation,
    train_with_perturbation,
)
from .smoothing import adversarial_smoothness_loss, fgsm_perturbation, random_smoothness_loss

__all__ = [
    "DefenseTrainConfig", "get_defense", "register_defense", "defense_names",
    "random_smoothness_loss", "adversarial_smoothness_loss", "fgsm_perturbation",
    "RandomNoisePerturbation", "FgsmPerturbation", "PolicyPerturbation",
    "collect_rollout_with_perturbation", "train_with_perturbation",
    "ForesightDetector", "DynamicsModel", "DetectionReport",
]
