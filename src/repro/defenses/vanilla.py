"""Vanilla PPO victim (the "PPO (va.)" rows of Table 1)."""

from __future__ import annotations

from ..rl.policy import ActorCritic
from ..rl.trainer import TrainConfig, train_ppo
from .base import DefenseTrainConfig, register_defense

__all__ = ["train_vanilla"]


@register_defense("ppo")
def train_vanilla(env_factory, config: DefenseTrainConfig) -> ActorCritic:
    result = train_ppo(
        env_factory(),
        TrainConfig(
            iterations=config.iterations,
            steps_per_iteration=config.steps_per_iteration,
            hidden_sizes=config.hidden_sizes,
            seed=config.seed,
            ppo=config.ppo,
        ),
    )
    result.policy.freeze_normalizer()
    return result.policy
