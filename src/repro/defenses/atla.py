"""ATLA / ATLA-SA defenses (Zhang et al., 2021): alternating training of
the victim and a learned RL attacker.

Each phase first trains an SA-RL attacker against the current victim,
then trains the victim on observations perturbed by that attacker.
ATLA-SA additionally applies the SA smoothness regularizer to the victim
(the original also swaps in an LSTM; we keep MLPs — see DESIGN.md).
"""

from __future__ import annotations

import numpy as np

from ..attacks.base import AttackConfig
from ..attacks.sarl import train_sarl
from ..attacks.threat_models import StatePerturbationEnv
from ..rl.buffers import RolloutBuffer
from ..rl.policy import ActorCritic
from ..rl.ppo import PPOUpdater
from .base import DefenseTrainConfig, register_defense
from .perturbed_training import PolicyPerturbation, collect_rollout_with_perturbation
from .sa_regularizer import make_sa_loss

__all__ = ["train_atla", "train_atla_sa", "collect_perturbed_rollout"]


def collect_perturbed_rollout(env, victim: ActorCritic, adversary, epsilon: float,
                              buffer: RolloutBuffer, rng: np.random.Generator) -> float:
    """Collect victim experience with a learned adversary corrupting
    observations (thin wrapper over the shared perturbed-rollout collector)."""
    perturbation = (
        PolicyPerturbation(adversary, epsilon, rng) if adversary is not None else None
    )
    return collect_rollout_with_perturbation(env, victim, perturbation, buffer, rng)


def _train_atla_impl(env_factory, config: DefenseTrainConfig, use_sa: bool) -> ActorCritic:
    rng = np.random.default_rng(config.seed)
    env = env_factory()
    env.seed(config.seed)
    obs_dim = env.observation_space.shape[0]
    action_dim = env.action_space.shape[0]
    victim = ActorCritic(obs_dim, action_dim, hidden_sizes=config.hidden_sizes,
                         rng=np.random.default_rng(config.seed))
    extra = make_sa_loss(config.epsilon, config.regularizer_weight, config.seed) if use_sa else None
    updater = PPOUpdater(victim, config.ppo, extra_loss=extra)
    buffer = RolloutBuffer(config.steps_per_iteration, obs_dim, action_dim)

    phases = max(1, config.atla_phases)
    victim_iters = max(1, config.iterations // phases)
    adversary = None
    for phase in range(phases):
        # Victim phase: learn under the current attacker's perturbations.
        for _ in range(victim_iters):
            collect_perturbed_rollout(env, victim, adversary, config.epsilon, buffer, rng)
            batch = buffer.finish(config.ppo.gamma, config.ppo.gae_lambda)
            updater.update(batch, rng=rng)
        # Attacker phase: retrain SA-RL against the updated victim.
        attack_cfg = AttackConfig(
            iterations=config.atla_adversary_iterations,
            steps_per_iteration=config.steps_per_iteration,
            hidden_sizes=config.hidden_sizes,
            seed=config.seed + 100 + phase,
        )
        adv_env = StatePerturbationEnv(env_factory(), victim, epsilon=config.epsilon,
                                       victim_deterministic=False)
        adversary = train_sarl(adv_env, attack_cfg).policy
    victim.freeze_normalizer()
    return victim


@register_defense("atla")
def train_atla(env_factory, config: DefenseTrainConfig) -> ActorCritic:
    return _train_atla_impl(env_factory, config, use_sa=False)


@register_defense("atla_sa")
def train_atla_sa(env_factory, config: DefenseTrainConfig) -> ActorCritic:
    return _train_atla_impl(env_factory, config, use_sa=True)
