"""SA defense (Zhang et al., 2020): smooth-policy regularization.

Realized on this substrate as training on randomly perturbed
observations (the smoothed neighbourhood the convex relaxation bounds)
plus the KL smoothness term E_δ KL(π(·|s) ‖ π(·|s+δ)).  See DESIGN.md
"Substitutions" for why the loss term alone is insufficient here.
"""

from __future__ import annotations

import numpy as np

from ..rl.policy import ActorCritic
from .base import DefenseTrainConfig, register_defense
from .perturbed_training import RandomNoisePerturbation, train_with_perturbation
from .smoothing import random_smoothness_loss

__all__ = ["train_sa", "make_sa_loss"]


def make_sa_loss(epsilon: float, weight: float, seed: int = 0):
    rng = np.random.default_rng(seed)

    def extra_loss(policy, obs, dist):
        return random_smoothness_loss(policy, obs, dist, epsilon, rng) * weight

    return extra_loss


@register_defense("sa")
def train_sa(env_factory, config: DefenseTrainConfig) -> ActorCritic:
    return train_with_perturbation(
        env_factory, config,
        perturbation_builder=lambda rng: RandomNoisePerturbation(config.epsilon, rng),
        extra_loss=make_sa_loss(config.epsilon, config.regularizer_weight, config.seed),
    )
