"""Seeded, context-managed fault injection for envs, workers, and blobs.

The harness is deliberately boring: faults fire at *specified* step
counts or with a ``SeedSequence``-seeded Bernoulli, never from ambient
randomness, so a chaos test that fails replays bit-identically under
``pytest -x``.  Cross-process faults (worker crashes/hangs) count their
firings through ``O_CREAT|O_EXCL`` marker files, the only atomic
"fire exactly N times" primitive that survives fork/spawn boundaries
and scheduler retries.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..envs.core import Env, Wrapper

__all__ = [
    "FAULT_KINDS", "FaultInjectionError", "FaultSpec", "FaultInjector",
    "FaultyEnv", "WorkerFault", "truncate_blob", "truncate_queue_entry",
    "skew_lease",
]

FAULT_KINDS = ("raise", "hang", "nan")


class FaultInjectionError(RuntimeError):
    """The exception deliberately raised by a ``raise``-kind fault."""


@dataclass
class FaultSpec:
    """One fault to inject into ``env.step``.

    ``kind`` — ``raise`` (throw :class:`FaultInjectionError`), ``hang``
    (sleep ``hang_seconds``; pair with a supervisor timeout), or ``nan``
    (poison the returned observation and reward with NaN, the input the
    numerical-health guards must catch).

    Triggering: ``at_step`` fires on that 1-indexed global step count;
    ``probability`` fires per-step from the injector's seeded stream.
    ``once=True`` (default) disarms the spec after its first firing.
    """

    kind: str
    at_step: int | None = None
    probability: float = 0.0
    once: bool = True
    hang_seconds: float = 3600.0
    fired: int = field(default=0, init=False)

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"options: {FAULT_KINDS}")
        if self.at_step is None and self.probability <= 0.0:
            raise ValueError("a FaultSpec needs at_step or probability > 0, "
                             "otherwise it can never fire")

    @property
    def armed(self) -> bool:
        return not (self.once and self.fired > 0)


class FaultInjector:
    """Context manager owning the seeded randomness behind every fault.

    All probabilistic triggers draw from one ``SeedSequence``-derived
    generator, so a given (seed, env trajectory) fires faults at
    identical steps on every run.  Faults only fire while the context is
    active — wrapped envs pass through untouched outside ``with``.
    """

    def __init__(self, seed: int = 0):
        self._rng = np.random.default_rng(np.random.SeedSequence(seed))
        self.active = False
        # Chronological (step, kind) log of every fault fired.
        self.fired: list[tuple[int, str]] = []

    def __enter__(self) -> "FaultInjector":
        self.active = True
        return self

    def __exit__(self, *exc_info) -> None:
        self.active = False

    def wrap_env(self, env: Env, *specs: FaultSpec) -> "FaultyEnv":
        return FaultyEnv(env, self, list(specs))

    def should_fire(self, spec: FaultSpec, step: int) -> bool:
        if not self.active or not spec.armed:
            return False
        if spec.at_step is not None:
            return step == spec.at_step
        return bool(self._rng.random() < spec.probability)

    def record(self, spec: FaultSpec, step: int) -> None:
        spec.fired += 1
        self.fired.append((step, spec.kind))


class FaultyEnv(Wrapper):
    """Env wrapper that perpetrates its injector's faults on ``step``.

    The step counter is global (not per-episode) and 1-indexed: the
    first ``step`` call after construction is step 1.  ``reset`` does
    not reset the counter, so ``at_step`` addresses a unique point in
    the whole trajectory.
    """

    def __init__(self, env: Env, injector: FaultInjector,
                 specs: list[FaultSpec]):
        super().__init__(env)
        self.injector = injector
        self.specs = list(specs)
        self.steps = 0

    def step(self, action):
        self.steps += 1
        obs, reward, terminated, truncated, info = self.env.step(action)
        for spec in self.specs:
            if not self.injector.should_fire(spec, self.steps):
                continue
            self.injector.record(spec, self.steps)
            if spec.kind == "raise":
                raise FaultInjectionError(
                    f"injected env fault at step {self.steps}")
            if spec.kind == "hang":
                time.sleep(spec.hang_seconds)
            elif spec.kind == "nan":
                obs = np.asarray(obs, dtype=np.float64).copy()
                obs[...] = np.nan
                reward = float("nan")
        return obs, reward, terminated, truncated, info


# ------------------------------------------------------------ process faults

def _claim_fire(marker: str, times: int) -> bool:
    """Atomically claim one of ``times`` firing slots for ``marker``.

    ``O_CREAT|O_EXCL`` makes each slot a cross-process compare-and-swap:
    exactly ``times`` claims succeed no matter how many workers race.
    """
    for slot in range(times):
        try:
            os.close(os.open(f"{marker}.fire{slot}",
                             os.O_CREAT | os.O_EXCL | os.O_WRONLY))
            return True
        except FileExistsError:
            continue
    return False


@dataclass
class WorkerFault:
    """Picklable job-function wrapper that sabotages the worker process.

    ``kind``: ``crash`` (``os._exit(exit_code)`` — the process dies with
    no exception, no result; under a pool this breaks the whole pool),
    ``hang`` (sleep before running; pair with a timeout), or ``raise``
    (ordinary in-band exception).  The fault fires on the first
    ``times`` calls *across all processes* (marker-file claimed), after
    which calls run ``fn`` normally — so a scheduler retry of a spent
    fault succeeds.
    """

    fn: callable
    kind: str
    marker: str
    times: int = 1
    hang_seconds: float = 3600.0
    exit_code: int = 13

    def __post_init__(self):
        if self.kind not in ("crash", "hang", "raise"):
            raise ValueError(f"unknown worker fault kind {self.kind!r}; "
                             "options: ('crash', 'hang', 'raise')")

    def __call__(self, *args, **kwargs):
        if _claim_fire(self.marker, self.times):
            if self.kind == "crash":
                os._exit(self.exit_code)
            elif self.kind == "hang":
                time.sleep(self.hang_seconds)
            else:
                raise FaultInjectionError(
                    f"injected worker fault ({self.marker})")
        return self.fn(*args, **kwargs)


# --------------------------------------------------------------- blob faults

def truncate_blob(store, key: str, keep_bytes: int = 16) -> Path:
    """Truncate the blob behind ``key`` to ``keep_bytes``, sidecar intact.

    Simulates a crash or disk-full mid-write that escaped the atomic
    rename: the sidecar still declares the artifact committed while the
    ``.npz`` is garbage.  Returns the truncated blob path.
    """
    blob_path, sidecar_path = store._paths(key)
    if not sidecar_path.exists():
        raise FileNotFoundError(f"no committed artifact for key {key[:12]}…")
    with open(blob_path, "r+b") as fh:
        fh.truncate(keep_bytes)
    return blob_path


# ------------------------------------------------------------- fabric faults

def truncate_queue_entry(queue, job_id: str, keep_bytes: int = 8) -> Path:
    """Truncate a committed fabric queue entry's JSON to ``keep_bytes``.

    Simulates an enqueue commit marker damaged after the fact (bit rot,
    a non-atomic network filesystem): scans must classify the job
    ``queue_corrupt`` and quarantine it rather than wedge on it.
    """
    path = queue._entry_path(job_id)
    if not path.exists():
        raise FileNotFoundError(f"no queue entry for job {job_id}")
    with open(path, "r+b") as fh:
        fh.truncate(keep_bytes)
    return path


def skew_lease(queue, job_id: str, seconds: float) -> Path:
    """Age a job's current lease token by ``seconds`` (mtime into the past).

    Simulates clock skew between hosts: to everyone else the (healthy)
    owner's heartbeat looks ``seconds`` stale, inviting a steal.  The
    fencing protocol must make the *owner* abandon its result — the
    split-brain case where both sides are alive.
    """
    from ..fabric.lease import highest_token

    top = highest_token(queue.lease_dir(job_id))
    if top is None:
        raise FileNotFoundError(f"no lease tokens for job {job_id}")
    _, path = top
    stat = path.stat()
    os.utime(path, (stat.st_atime - seconds, stat.st_mtime - seconds))
    return path
