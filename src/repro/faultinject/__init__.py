"""Deterministic fault-injection harness (chaos testing for the runtime).

Everything the fault-containment layer defends against can be produced
on demand, reproducibly:

* :class:`FaultyEnv` / :class:`FaultSpec` — make ``env.step`` raise,
  hang, or emit NaN observations at exact step counts (or with a
  ``SeedSequence``-seeded per-step probability).
* :class:`WorkerFault` — a picklable job-function wrapper that crashes
  the worker process (``os._exit``), hangs it, or raises, a bounded
  number of times across *all* processes (marker-file claimed, so
  retried attempts see the fault already spent and succeed).
* :func:`truncate_blob` — corrupt an artifact-store blob behind its
  valid sidecar, the failure mode ``ArtifactStore.verify``/``get`` must
  catch.
* :func:`truncate_queue_entry` / :func:`skew_lease` — damage a fabric
  queue entry (→ ``queue_corrupt`` quarantine) or age a healthy lease's
  heartbeat into the past (→ a clock-skew steal the fenced owner must
  survive by abandoning its result).

``tests/test_chaos.py`` drives the scheduler, supervisor, health
guards, and store through these faults.
"""

from .injector import (
    FAULT_KINDS,
    FaultInjectionError,
    FaultInjector,
    FaultSpec,
    FaultyEnv,
    WorkerFault,
    skew_lease,
    truncate_blob,
    truncate_queue_entry,
)

__all__ = [
    "FAULT_KINDS",
    "FaultInjectionError",
    "FaultInjector",
    "FaultSpec",
    "FaultyEnv",
    "WorkerFault",
    "skew_lease",
    "truncate_blob",
    "truncate_queue_entry",
]
