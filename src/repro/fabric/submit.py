"""Submit side of the fabric: enqueue a batch, wait, degrade gracefully.

:class:`FabricSubmitter` is what ``run_parallel(fabric_dir=...)`` routes
batches through.  Each batch is enqueued under fresh unique job ids (the
payload's SHA-256 plus a nonce — ids never collide, *dedup* is the
content-addressed store's job), then polled until every job has a
committed result envelope.

Degradation contract: if the fabric has **no live worker daemon** for
``grace`` consecutive seconds while jobs are pending, the submitter
becomes a worker itself — it drains *its own* job ids inline through the
very same lease/fencing protocol (so a daemon that comes back mid-drain
cannot double-run anything), and the schedule is flagged ``degraded``
with a ``schedule.degraded`` telemetry event.  A sweep never hangs on an
empty fabric.

Lease churn (stolen or abandoned attempts recorded by workers) is
surfaced back to the scheduler as failed-attempt records so telemetry
and ``ScheduleReport.retried`` show exactly what the fabric contained.
"""

from __future__ import annotations

import hashlib
import os
import time
from pathlib import Path

from .queue import FabricConfig, FabricQueue, worker_identity
from .worker import FabricWorker

__all__ = ["FabricSubmitter"]


class FabricSubmitter:
    """Run batches of scheduler Jobs on a shared fabric directory."""

    def __init__(self, fabric_dir: str | Path,
                 config: FabricConfig | None = None, telemetry=None):
        self.queue = FabricQueue(fabric_dir, config=config, telemetry=telemetry)
        self.identity = worker_identity(os.urandom(3).hex())
        self._seq = 0
        # Filled per run_batch: attempt records harvested from the queue,
        # in (job_name, record) form for the scheduler's retried list.
        self.degraded = False

    # -------------------------------------------------------------- enqueue

    def _job_id(self, job, payload: bytes) -> str:
        self._seq += 1
        digest = hashlib.sha256(payload).hexdigest()[:12]
        safe = (job.name or "job").replace("/", "_").replace(" ", "_")[:48]
        return f"{self._seq:06d}-{safe}-{digest}-{os.urandom(3).hex()}"

    # ------------------------------------------------------------ run batch

    def run_batch(self, jobs: list, timeout: float | None = None,
                  deadline: float | None = None) -> tuple[list, list[dict], list]:
        """Execute ``jobs`` on the fabric; ``(results, interventions, churn)``.

        ``churn`` is a list of failed :class:`~repro.runtime.scheduler.
        JobResult` records for lease-level containment events
        (``orphaned`` steals, ``lease_lost`` abandonments) — they are
        *attempts*, not final results, and feed ``report.retried``.
        """
        from ..runtime.scheduler import JobResult

        jobs = list(jobs)
        results: list = [None] * len(jobs)
        interventions: list[dict] = []
        pending: dict[str, int] = {}  # job_id -> index
        for i, job in enumerate(jobs):
            payload = job.payload()
            sha = hashlib.sha256(payload).hexdigest()
            cached = self.queue.cached_success(sha)
            if cached is not None:
                # Another submitter (or a previous round, possibly on
                # another host) already ran this exact spec: the store is
                # the dedup point, no entry is even enqueued.
                results[i] = cached
                continue
            job_id = self._job_id(job, payload)
            self.queue.enqueue(job, job_id, payload, timeout=timeout,
                               submitter=self.identity)
            pending[job_id] = i

        start = time.monotonic()
        last_live = start
        degraded_this_batch = False
        drain: FabricWorker | None = None
        while pending:
            for job_id in list(pending):
                envelope = self.queue.result_envelope(job_id)
                if envelope is None:
                    continue
                index = pending.pop(job_id)
                results[index] = self.queue.load_result(job_id, envelope)
                if envelope.get("dedup"):
                    interventions.append({
                        "index": index, "name": jobs[index].name,
                        "action": "fabric-dedup",
                        "detail": "served from the content-addressed store "
                                  "without re-running",
                    })
            if not pending:
                break
            now = time.monotonic()
            if deadline is not None and now - start >= deadline:
                for job_id, index in sorted(pending.items()):
                    results[index] = JobResult(
                        name=jobs[index].name, ok=False,
                        error=f"WorkerTimeout: fabric batch deadline "
                              f"{deadline:.1f}s exceeded with the job still "
                              "pending", traceback="(no worker traceback: "
                              "fabric deadline)", error_kind="timeout")
                    interventions.append({
                        "index": index, "name": jobs[index].name,
                        "action": "deadline-drop",
                        "detail": "fabric batch deadline exceeded",
                    })
                pending.clear()
                break
            if self.queue.live_workers():
                last_live = now
            elif not degraded_this_batch and now - last_live >= self.queue.config.grace:
                # No live daemon for a full grace window: this sweep runs
                # inline.  The drain claims leases like any worker, so a
                # daemon that revives mid-drain stays safe.
                degraded_this_batch = True
                self.degraded = True
                interventions.append({
                    "index": -1, "name": "",
                    "action": "fabric-degraded",
                    "detail": f"no live fabric workers for "
                              f"{self.queue.config.grace:.1f}s; executing "
                              "this batch inline",
                })
                drain = FabricWorker(
                    self.queue, worker_id=f"{self.identity}-inline",
                    supervise=False, job_filter=set(pending))
            if drain is not None:
                if not drain.scan_once():
                    time.sleep(self.queue.config.poll_interval)
            else:
                time.sleep(self.queue.config.poll_interval)
        return [r for r in results if r is not None], interventions, self._collect_churn()

    # --------------------------------------------------------------- churn

    def _collect_churn(self) -> list:
        """Harvest lease-containment attempt records for telemetry.

        Records accumulate in ``attempts/`` across the whole fabric; we
        only report each one once per submitter (tracked by filename).
        """
        import json

        from ..runtime.scheduler import JobResult

        if not hasattr(self, "_seen_attempts"):
            self._seen_attempts: set[str] = set()
        churn = []
        for path in sorted(self.queue.attempts_dir.glob("*.json")):
            if path.name in self._seen_attempts:
                continue
            self._seen_attempts.add(path.name)
            job_id = path.name.rsplit(".t", 1)[0]
            try:
                with open(path, encoding="utf-8") as fh:
                    record = json.load(fh)
            except (OSError, json.JSONDecodeError):
                continue
            churn.append(JobResult(
                name=record.get("name", job_id), ok=False,
                error=record.get("error", "fabric lease churn"),
                traceback="(no worker traceback: "
                          f"{record.get('error_kind', 'lease churn')})",
                duration=float(record.get("duration", 0.0)),
                error_kind=record.get("error_kind", "orphaned")))
        return churn
