"""Fault-tolerant multi-host job fabric: leases, fencing, work stealing.

The sweep grid is bigger than one machine; everything the scheduler
already relies on — heartbeat files, checkpoint requeue, the
content-addressed store, O_EXCL marker files — is filesystem-mediated,
so the fabric promotes a shared directory into a job queue that any
number of worker daemons on any number of hosts drain together:

* :mod:`~repro.fabric.lease` — O_EXCL token files with monotonically
  increasing **fencing tokens**: exactly one owner per token, stealers
  take token N+1 once token N's heartbeat goes stale, and a fenced
  zombie abandons its result instead of publishing it.
* :mod:`~repro.fabric.queue` — the directory layout: payload+entry
  commits, token-stamped result envelopes (highest token wins; a stale
  writer physically cannot clobber a re-run), attempt records for
  ``orphaned``/``lease_lost`` churn, worker heartbeats, and successful
  results deduplicated through the content-addressed store.
* :mod:`~repro.fabric.worker` — the daemon
  (``python -m repro.fabric.worker SHARED_DIR``): claim → execute under
  the PR 4 supervisor (same ``error_kind`` taxonomy) → fencing-checked
  commit.
* :mod:`~repro.fabric.submit` — the ``run_parallel(fabric_dir=)`` side:
  enqueue, poll, and degrade to inline execution (through the same
  lease protocol) when no live worker appears within a grace window.

Checkpoints live inside the fabric directory, so a stolen job resumes
from its last healthy :class:`~repro.store.TrainingCheckpoint` on
whatever host re-leased it and completes **bit-identically** to an
uninterrupted run — the chaos battery in ``tests/test_chaos.py``
asserts this for SIGKILL, SIGSTOP-zombie, and clock-skew steals.
"""

from .lease import Lease, LeaseLost, highest_token, try_acquire
from .queue import FabricConfig, FabricQueue, JobEntry, QueueCorrupt, worker_identity
from .submit import FabricSubmitter
from .worker import FabricWorker

__all__ = [
    "FabricConfig", "FabricQueue", "FabricSubmitter", "FabricWorker",
    "JobEntry", "Lease", "LeaseLost", "QueueCorrupt",
    "highest_token", "try_acquire", "worker_identity",
]
