"""Fabric worker: claim, execute, commit — on any host that sees the dir.

Run as a daemon::

    python -m repro.fabric.worker SHARED_DIR [--max-jobs N] [--idle-exit S]

Any number of daemons on any number of hosts drain one queue.  Each
scan walks the sorted entries and tries to claim the first job that has
no committed result and no live lease (:func:`repro.fabric.lease.
try_acquire` — O_EXCL token files, so every claim race has exactly one
winner).  While a job runs, a **keeper thread** renews the lease token's
mtime every ``renew_interval`` and re-checks fencing; the daemon's own
liveness heartbeat (``workers/<id>``) is renewed by a second thread so
submitters can tell "workers exist but are busy" from "no workers".

Execution reuses the PR 4 supervisor verbatim: the job runs in a child
process under :func:`~repro.runtime.supervisor.run_supervised` with the
entry's per-job ``timeout``, so a hung cell is killed and classified
``error_kind="timeout"`` on whatever host it ran.  Results are committed
through :class:`~repro.fabric.queue.FabricQueue` — successes into the
content-addressed store (identical specs from racing hosts converge to
one artifact), failures as queue-local envelopes so retries re-run.

The split-brain cases:

* **We stole the lease** from an expired token whose recorded owner's
  daemon heartbeat is also stale → that attempt is recorded with
  ``error_kind="orphaned"`` (the owner is presumed dead; it cannot
  report for itself).
* **Our lease was stolen** (we were SIGSTOPped past the heartbeat
  timeout, our clock is skewed, the filesystem stalled) → the keeper
  thread or the final pre-commit check trips, the result is **abandoned**
  and recorded with ``error_kind="lease_lost"``.  A zombie never
  publishes: the committed result always belongs to the highest token.
"""

from __future__ import annotations

import argparse
import os
import pickle
import signal
import threading
import time
import traceback

from .lease import Lease, try_acquire
from .queue import FabricConfig, FabricQueue, JobEntry, QueueCorrupt, worker_identity

__all__ = ["FabricWorker", "main"]


class _LeaseKeeper(threading.Thread):
    """Renew one lease until stopped; flag the lease lost when fenced."""

    def __init__(self, lease: Lease, interval: float):
        super().__init__(daemon=True)
        self.lease = lease
        self.interval = interval
        # N.B. not `_stop` — that would shadow threading.Thread._stop().
        self._halt = threading.Event()

    def run(self) -> None:
        while not self._halt.wait(self.interval):
            if not self.lease.renew():
                return  # fenced: lease.lost is set; nothing left to renew

    def stop(self) -> None:
        self._halt.set()
        self.join(timeout=5.0)


class FabricWorker:
    """One claim-execute-commit loop over a :class:`FabricQueue`.

    ``job_filter`` restricts claims to a set of job ids — the degraded
    submitter uses it to drain only its own batch.  ``supervise=False``
    executes jobs inline in this process (no per-job child, no timeout
    enforcement); the daemon default is supervised.
    """

    def __init__(self, queue: FabricQueue, worker_id: str | None = None,
                 supervise: bool = True, job_filter=None, telemetry=None):
        self.queue = queue
        self.worker_id = worker_id or worker_identity(os.urandom(3).hex())
        self.supervise = supervise
        self.job_filter = set(job_filter) if job_filter is not None else None
        self.telemetry = telemetry
        self.jobs_completed = 0
        self.attempts_abandoned = 0

    # ------------------------------------------------------------ liveness

    def _heartbeat_thread(self, stop: threading.Event) -> threading.Thread:
        interval = self.queue.config.renew_interval

        def beat() -> None:
            self.queue.touch_worker(self.worker_id)
            while not stop.wait(interval):
                self.queue.touch_worker(self.worker_id)

        thread = threading.Thread(target=beat, daemon=True)
        thread.start()
        return thread

    # ---------------------------------------------------------------- scan

    def scan_once(self) -> bool:
        """Try to claim and finish one job; True if any progress was made."""
        for job_id in self.queue.entries():
            if self.job_filter is not None and job_id not in self.job_filter:
                continue
            if self.queue.result_envelope(job_id) is not None:
                continue
            try:
                entry = self.queue.read_entry(job_id)
            except QueueCorrupt as exc:
                self._contain_corrupt(job_id, str(exc))
                return True
            lease = try_acquire(self.queue.lease_dir(job_id), job_id,
                                self.worker_id,
                                self.queue.config.lease_timeout)
            if lease is None:
                continue  # live lease elsewhere, or we lost the claim race
            self._record_supersede(job_id, lease)
            self._execute(entry, lease)
            return True
        return False

    def work(self, max_jobs: int | None = None, idle_exit: float | None = None,
             deadline: float | None = None, stop_event=None) -> int:
        """Drain the queue; returns the number of jobs this worker completed.

        Exits when ``max_jobs`` jobs are done, the queue stays idle for
        ``idle_exit`` seconds, ``deadline`` (absolute seconds from now)
        passes, or ``stop_event`` is set.  With all four None it serves
        forever — the daemon mode.
        """
        stop = threading.Event()
        heartbeat = self._heartbeat_thread(stop)
        start = time.monotonic()
        last_progress = start
        completed_at_entry = self.jobs_completed
        try:
            while True:
                if stop_event is not None and stop_event.is_set():
                    break
                if (max_jobs is not None
                        and self.jobs_completed - completed_at_entry >= max_jobs):
                    break
                if deadline is not None and time.monotonic() - start >= deadline:
                    break
                if self.scan_once():
                    last_progress = time.monotonic()
                    continue
                if (idle_exit is not None
                        and time.monotonic() - last_progress >= idle_exit):
                    break
                time.sleep(self.queue.config.poll_interval)
        finally:
            stop.set()
            heartbeat.join(timeout=5.0)
            self.queue.retire_worker(self.worker_id)
        return self.jobs_completed - completed_at_entry

    # ------------------------------------------------------------- execute

    def _record_supersede(self, job_id: str, lease: Lease) -> None:
        """A steal from a dead owner is the orphaned-job case; log it."""
        if lease.superseded_token is None:
            return
        owner = lease.superseded_owner or "<unknown>"
        if (lease.superseded_owner is not None
                and self.queue.worker_live(lease.superseded_owner)):
            # Owner is alive (clock skew / stall): it will fence itself
            # and report lease_lost on its own — don't double-record.
            return
        self.queue.record_attempt(job_id, lease.superseded_token, {
            "ok": False, "error_kind": "orphaned",
            "error": f"lease t{lease.superseded_token} held by {owner} "
                     "expired with its worker heartbeat stale; job stolen "
                     f"by {self.worker_id} with fencing token t{lease.token}",
            "owner": owner, "stolen_by": self.worker_id,
        })

    def _contain_corrupt(self, job_id: str, reason: str) -> None:
        """Quarantine a damaged entry and answer it with a classified
        failure, under a lease so racing workers contain it exactly once."""
        lease = try_acquire(self.queue.lease_dir(job_id), job_id,
                            self.worker_id, self.queue.config.lease_timeout)
        if lease is None:
            return
        self.queue.quarantine(job_id, reason)
        self.queue.commit_result(job_id, lease.token, {
            "job_id": job_id, "ok": False, "name": "",
            "error": f"QueueCorrupt: {reason}",
            "traceback": "(no traceback: entry failed validation)",
            "error_kind": "queue_corrupt", "worker": self.worker_id,
        })
        self.jobs_completed += 1

    def _run_payload(self, entry: JobEntry, payload: bytes):
        """Execute the payload exactly as the scheduler's lanes would."""
        from ..runtime.scheduler import JobResult, _execute_payload
        from ..runtime.supervisor import run_supervised

        if not self.supervise:
            return _execute_payload(payload)
        try:
            job = pickle.loads(payload)
        except Exception as exc:  # noqa: BLE001 — classify, don't crash the daemon
            return JobResult(name=entry.name, ok=False,
                             error=f"{type(exc).__name__}: {exc}",
                             traceback=traceback.format_exc(),
                             error_kind="pickling")
        results, _ = run_supervised([job], max_workers=1, timeout=entry.timeout)
        return results[0]

    def _execute(self, entry: JobEntry, lease: Lease) -> None:
        keeper = _LeaseKeeper(lease, self.queue.config.renew_interval)
        keeper.start()
        start = time.monotonic()
        dedup = False
        try:
            try:
                payload = self.queue.read_payload(entry)
            except QueueCorrupt as exc:
                keeper.stop()
                if lease.is_supreme():
                    self.queue.quarantine(entry.job_id, str(exc))
                    self.queue.commit_result(entry.job_id, lease.token, {
                        "job_id": entry.job_id, "ok": False, "name": entry.name,
                        "error": f"QueueCorrupt: {exc}",
                        "traceback": "(no traceback: payload failed validation)",
                        "error_kind": "queue_corrupt", "worker": self.worker_id,
                    })
                    self.jobs_completed += 1
                return
            result = self.queue.cached_success(entry.payload_sha256)
            if result is not None:
                dedup = True  # another host already ran this exact spec
            else:
                result = self._run_payload(entry, payload)
        finally:
            keeper.stop()
        duration = time.monotonic() - start
        if not lease.is_supreme():
            # Fenced mid-flight: we are the zombie.  Abandon the result —
            # whoever holds the newer token owns this job now.
            self.attempts_abandoned += 1
            self.queue.record_attempt(entry.job_id, lease.token, {
                "ok": False, "error_kind": "lease_lost", "name": entry.name,
                "error": f"lease t{lease.token} on {entry.job_id} was "
                         f"superseded while {self.worker_id} was running the "
                         "job; result abandoned",
                "duration": duration, "owner": self.worker_id,
            })
            return
        envelope = {
            "job_id": entry.job_id, "name": entry.name, "ok": bool(result.ok),
            "worker": self.worker_id, "duration": result.duration,
            "dedup": dedup, "payload_sha256": entry.payload_sha256,
        }
        if result.ok:
            envelope["store_key"] = self.queue.store_success(
                entry.payload_sha256, result)
        else:
            envelope.update(error=result.error, traceback=result.traceback,
                            error_kind=result.error_kind or "crash")
        if not lease.is_supreme():  # final fencing check before publishing
            self.attempts_abandoned += 1
            self.queue.record_attempt(entry.job_id, lease.token, {
                "ok": False, "error_kind": "lease_lost", "name": entry.name,
                "error": "lease superseded between execution and commit; "
                         "result abandoned", "owner": self.worker_id,
            })
            return
        self.queue.commit_result(entry.job_id, lease.token, envelope)
        self.jobs_completed += 1


# ------------------------------------------------------------------ CLI

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fabric.worker",
        description="Fabric worker daemon: claim and run jobs from a "
                    "shared queue directory.")
    parser.add_argument("fabric_dir", help="the shared fabric directory")
    parser.add_argument("--max-jobs", type=int, default=None,
                        help="exit after completing this many jobs")
    parser.add_argument("--idle-exit", type=float, default=None,
                        metavar="SECONDS",
                        help="exit after the queue stays idle this long "
                             "(default: serve forever)")
    parser.add_argument("--worker-id", default=None,
                        help="override the <host>-<pid>-<nonce> identity")
    parser.add_argument("--no-supervise", action="store_true",
                        help="run jobs inline instead of in a supervised "
                             "child process (disables per-job timeouts)")
    parser.add_argument("--lease-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="lease staleness before stealing; only applied "
                             "when this worker creates a fresh fabric.json "
                             "(an existing one wins)")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    config = None
    if args.lease_timeout is not None:
        config = FabricConfig(lease_timeout=args.lease_timeout,
                              renew_interval=min(1.0, args.lease_timeout / 4))
    queue = FabricQueue(args.fabric_dir, config=config)
    worker = FabricWorker(queue, worker_id=args.worker_id,
                          supervise=not args.no_supervise)
    stop = threading.Event()

    def _graceful(signum, frame):  # noqa: ARG001 — signal handler signature
        stop.set()

    signal.signal(signal.SIGTERM, _graceful)
    signal.signal(signal.SIGINT, _graceful)
    completed = worker.work(max_jobs=args.max_jobs, idle_exit=args.idle_exit,
                            stop_event=stop)
    print(f"[fabric.worker {worker.worker_id}] completed {completed} jobs, "
          f"abandoned {worker.attempts_abandoned} fenced attempts")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
