"""Directory-backed job queue shared by every host that can see it.

Layout under one shared directory (NFS, a bind mount, anything with
POSIX ``O_EXCL`` and ``rename`` semantics)::

    <fabric>/fabric.json                 # agreed timing config (first writer wins)
    <fabric>/jobs/<job_id>.payload       # pickled Job bytes (written first)
    <fabric>/jobs/<job_id>.json          # entry metadata = the enqueue commit marker
    <fabric>/leases/<job_id>/tNNNNNNNN   # fencing tokens (see repro.fabric.lease)
    <fabric>/results/<job_id>.tN.json    # token-stamped result envelopes
    <fabric>/attempts/<job_id>.tN.json   # abandoned/superseded attempt records
    <fabric>/workers/<worker_id>         # worker daemon heartbeats (mtime)
    <fabric>/checkpoints/<job_id>.ckpt.npz  # shared TrainingCheckpoints
    <fabric>/quarantine/                 # corrupt entries, moved aside
    <fabric>/store/                      # ArtifactStore for successful results

Every multi-byte write follows the sidecar-as-commit-marker idiom from
:mod:`repro.store`: payload before entry, tmp+rename for every JSON, so
a reader never parses a half-written file.  Entries that *are* damaged
anyway (truncation, bit rot, a writer that died inside ``write``) are
classified ``error_kind="queue_corrupt"``, moved to ``quarantine/`` and
answered with a failed result envelope instead of wedging the sweep.

Successful results are persisted through the **content-addressed
store**: the spec is the SHA-256 of the job payload, so two hosts that
race on the same spec converge on one artifact (``put`` of identical
content is idempotent) and a re-submitted sweep — or a second submitter
on another host — is served without re-running anything.  Failures stay
queue-local (JSON envelopes only), so retries genuinely re-run.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import socket
import tempfile
import time
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from ..store import ArtifactStore
from .lease import highest_token

__all__ = ["FabricConfig", "FabricQueue", "JobEntry", "QueueCorrupt",
           "worker_identity"]

_CONFIG_NAME = "fabric.json"


class QueueCorrupt(RuntimeError):
    """A queue entry or payload failed validation (truncated, garbled)."""


def worker_identity(nonce: str | None = None) -> str:
    """``<host>-<pid>[-<nonce>]`` — unique across the hosts sharing a dir."""
    base = f"{socket.gethostname()}-{os.getpid()}"
    return f"{base}-{nonce}" if nonce else base


@dataclass(frozen=True)
class FabricConfig:
    """Timing contract every participant must agree on.

    The first process to touch a fabric directory writes these values to
    ``fabric.json``; everyone else reads them back.  Agreement matters:
    a stealer whose ``lease_timeout`` is shorter than an owner's
    ``renew_interval`` would steal healthy leases constantly (fencing
    keeps even that *correct*, but it wastes every stolen attempt).
    """

    lease_timeout: float = 15.0    # heartbeat staleness before a steal
    renew_interval: float = 1.0    # how often an owner freshens its token
    poll_interval: float = 0.25    # worker/submitter scan cadence
    worker_timeout: float = 15.0   # worker-daemon heartbeat staleness
    grace: float = 5.0             # submitter: no live workers for this long
                                   # after submit → degrade to inline

    def validate(self) -> "FabricConfig":
        if self.lease_timeout <= 0 or self.poll_interval <= 0:
            raise ValueError("fabric timings must be positive")
        if self.renew_interval >= self.lease_timeout:
            raise ValueError(
                f"renew_interval ({self.renew_interval}) must be shorter than "
                f"lease_timeout ({self.lease_timeout}) or every lease expires "
                "between renewals")
        return self


@dataclass
class JobEntry:
    """Metadata for one queued job (the ``.json`` half of an entry)."""

    job_id: str
    name: str
    payload_sha256: str
    payload_bytes: int
    timeout: float | None = None
    checkpointable: bool = False
    submitted_at: float = 0.0
    submitter: str = ""


class FabricQueue:
    """One fabric directory: entries, leases, results, worker heartbeats."""

    def __init__(self, root: str | Path, config: FabricConfig | None = None,
                 telemetry=None):
        self.root = Path(root)
        self.jobs_dir = self.root / "jobs"
        self.leases_dir = self.root / "leases"
        self.results_dir = self.root / "results"
        self.attempts_dir = self.root / "attempts"
        self.workers_dir = self.root / "workers"
        self.checkpoints_dir = self.root / "checkpoints"
        self.quarantine_dir = self.root / "quarantine"
        for directory in (self.jobs_dir, self.leases_dir, self.results_dir,
                          self.attempts_dir, self.workers_dir,
                          self.checkpoints_dir, self.quarantine_dir):
            directory.mkdir(parents=True, exist_ok=True)
        self.store = ArtifactStore(self.root / "store", telemetry=telemetry)
        self.config = self._load_or_init_config(config)

    # -------------------------------------------------------------- config

    def _load_or_init_config(self, config: FabricConfig | None) -> FabricConfig:
        path = self.root / _CONFIG_NAME
        if path.exists():
            try:
                with open(path, encoding="utf-8") as fh:
                    doc = json.load(fh)
                return FabricConfig(**doc).validate()
            except (OSError, json.JSONDecodeError, TypeError, ValueError):
                pass  # unreadable config: fall through and rewrite it
        config = (config or FabricConfig()).validate()
        self._write_json(path, asdict(config))
        return config

    # ------------------------------------------------------------ plumbing

    @staticmethod
    def _write_json(path: Path, doc: dict) -> None:
        """tmp+rename JSON write — readers see old, new, or nothing."""
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=path.name,
                                        suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(doc, fh, indent=2, sort_keys=True)
                fh.write("\n")
            os.replace(tmp_name, path)
        except BaseException:
            if os.path.exists(tmp_name):
                os.unlink(tmp_name)
            raise

    def _entry_path(self, job_id: str) -> Path:
        return self.jobs_dir / f"{job_id}.json"

    def _payload_path(self, job_id: str) -> Path:
        return self.jobs_dir / f"{job_id}.payload"

    def lease_dir(self, job_id: str) -> Path:
        return self.leases_dir / job_id

    def checkpoint_path(self, job_id: str) -> Path:
        return self.checkpoints_dir / f"{job_id}.ckpt.npz"

    # ------------------------------------------------------------- enqueue

    def enqueue(self, job, job_id: str, payload: bytes,
                timeout: float | None = None,
                submitter: str = "") -> JobEntry:
        """Publish one job: payload bytes first, entry JSON as the marker."""
        payload_path = self._payload_path(job_id)
        fd, tmp_name = tempfile.mkstemp(dir=payload_path.parent,
                                        prefix=payload_path.name, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(payload)
            os.replace(tmp_name, payload_path)
        except BaseException:
            if os.path.exists(tmp_name):
                os.unlink(tmp_name)
            raise
        entry = JobEntry(
            job_id=job_id, name=job.name,
            payload_sha256=hashlib.sha256(payload).hexdigest(),
            payload_bytes=len(payload),
            timeout=job.timeout if job.timeout is not None else timeout,
            checkpointable=bool(job.checkpointable),
            submitted_at=time.time(), submitter=submitter)
        self._write_json(self._entry_path(job_id), asdict(entry))
        return entry

    # ---------------------------------------------------------------- scan

    def entries(self) -> list[str]:
        """Sorted job ids with a committed entry (quarantined ones gone)."""
        return sorted(path.stem for path in self.jobs_dir.glob("*.json"))

    def read_entry(self, job_id: str) -> JobEntry:
        """Parse one entry; :class:`QueueCorrupt` on any damage."""
        try:
            with open(self._entry_path(job_id), encoding="utf-8") as fh:
                doc = json.load(fh)
            entry = JobEntry(**doc)
        except (OSError, json.JSONDecodeError, TypeError) as exc:
            raise QueueCorrupt(
                f"queue entry {job_id} is unreadable: "
                f"{type(exc).__name__}: {exc}") from exc
        if entry.job_id != job_id:
            raise QueueCorrupt(
                f"queue entry {job_id} records job_id {entry.job_id!r}")
        return entry

    def read_payload(self, entry: JobEntry) -> bytes:
        """The entry's payload bytes, verified against the recorded hash."""
        try:
            payload = self._payload_path(entry.job_id).read_bytes()
        except OSError as exc:
            raise QueueCorrupt(
                f"payload for {entry.job_id} is unreadable: {exc}") from exc
        if len(payload) != entry.payload_bytes:
            raise QueueCorrupt(
                f"payload for {entry.job_id} is {len(payload)} bytes, entry "
                f"records {entry.payload_bytes} (truncated)")
        digest = hashlib.sha256(payload).hexdigest()
        if digest != entry.payload_sha256:
            raise QueueCorrupt(
                f"payload for {entry.job_id} hashes to {digest[:12]}…, entry "
                f"records {entry.payload_sha256[:12]}… (corrupt)")
        return payload

    def quarantine(self, job_id: str, reason: str) -> None:
        """Move a damaged entry aside so scans stop tripping over it."""
        for path in (self._entry_path(job_id), self._payload_path(job_id)):
            if path.exists():
                try:
                    os.replace(path, self.quarantine_dir / path.name)
                except OSError:
                    pass
        self._write_json(self.quarantine_dir / f"{job_id}.reason.json",
                         {"job_id": job_id, "reason": reason,
                          "quarantined_at": time.time()})

    # -------------------------------------------------------------- results

    def _envelopes(self, job_id: str) -> list[tuple[int, Path]]:
        out = []
        for path in self.results_dir.glob(f"{job_id}.t*.json"):
            token_part = path.name[len(job_id) + 2:-len(".json")]
            if token_part.isdigit():
                out.append((int(token_part), path))
        return sorted(out)

    def result_envelope(self, job_id: str) -> dict | None:
        """The committed result with the **highest** fencing token.

        Lower-token envelopes — a fenced zombie that won the final
        check-vs-rename race — are physically present but never
        believed; the token stamp in the filename is what makes a stale
        writer unable to clobber a re-run.
        """
        for token, path in reversed(self._envelopes(job_id)):
            try:
                with open(path, encoding="utf-8") as fh:
                    doc = json.load(fh)
            except (OSError, json.JSONDecodeError):
                continue  # half-written by a dying writer; lower token wins
            doc["token"] = token
            return doc
        return None

    def commit_result(self, job_id: str, token: int, envelope: dict) -> Path:
        path = self.results_dir / f"{job_id}.t{token}.json"
        self._write_json(path, envelope)
        return path

    # Successful JobResults ride in the content-addressed store, keyed by
    # the payload hash: identical specs from any host share one artifact.

    def _result_spec(self, payload_sha256: str) -> dict:
        return {"kind": "fabric_result", "payload_sha256": payload_sha256}

    def store_success(self, payload_sha256: str, result) -> str:
        blob = np.frombuffer(pickle.dumps(result), dtype=np.uint8).copy()
        entry = self.store.put(self._result_spec(payload_sha256),
                               {"pickle": blob},
                               metadata={"name": result.name})
        return entry.key

    def cached_success(self, payload_sha256: str):
        """A previously committed success for this payload, or None."""
        hit = self.store.get(self._result_spec(payload_sha256))
        if hit is None:
            return None
        state, _ = hit
        try:
            result = pickle.loads(state["pickle"].tobytes())
        except Exception:  # noqa: BLE001 — damaged blob == miss, like the store
            return None
        return result if getattr(result, "ok", False) else None

    def load_result(self, job_id: str, envelope: dict):
        """Materialize a JobResult from a committed envelope."""
        from ..runtime.scheduler import JobResult

        if envelope.get("ok"):
            result = self.cached_success(envelope["payload_sha256"])
            if result is not None:
                return result
            return JobResult(
                name=envelope.get("name", ""), ok=False,
                error="queue result blob missing or corrupt behind a "
                      "committed envelope",
                traceback="(no traceback: store blob unreadable)",
                error_kind="queue_corrupt")
        return JobResult(
            name=envelope.get("name", ""), ok=False,
            error=envelope.get("error", "unknown fabric failure"),
            traceback=envelope.get("traceback", ""),
            duration=float(envelope.get("duration", 0.0)),
            error_kind=envelope.get("error_kind", "crash"))

    # ------------------------------------------------------------- attempts

    def record_attempt(self, job_id: str, token: int, record: dict) -> None:
        """Log one abandoned/superseded attempt (token-stamped, no clobber).

        The error kind rides in the filename too: a SIGSTOPped zombie's
        ``lease_lost`` self-report and its thief's ``orphaned`` record
        both concern the same superseded token and must coexist.
        """
        record = dict(record, job_id=job_id, recorded_at=time.time())
        kind = record.get("error_kind", "attempt")
        self._write_json(
            self.attempts_dir / f"{job_id}.t{token}.{kind}.json", record)

    def attempts(self, job_id: str) -> list[dict]:
        out = []
        for path in sorted(self.attempts_dir.glob(f"{job_id}.t*.json")):
            try:
                with open(path, encoding="utf-8") as fh:
                    out.append(json.load(fh))
            except (OSError, json.JSONDecodeError):
                continue
        return out

    # -------------------------------------------------------------- workers

    def touch_worker(self, worker_id: str) -> None:
        path = self.workers_dir / worker_id
        try:
            path.touch()
        except OSError:
            pass  # advisory, like job heartbeats

    def retire_worker(self, worker_id: str) -> None:
        try:
            (self.workers_dir / worker_id).unlink()
        except OSError:
            pass

    def live_workers(self, now: float | None = None) -> list[str]:
        """Worker ids whose heartbeat is fresher than ``worker_timeout``."""
        now = time.time() if now is None else now
        live = []
        for path in self.workers_dir.iterdir():
            try:
                if now - path.stat().st_mtime <= self.config.worker_timeout:
                    live.append(path.name)
            except OSError:
                continue
        return sorted(live)

    def worker_live(self, worker_id: str, now: float | None = None) -> bool:
        now = time.time() if now is None else now
        try:
            age = now - (self.workers_dir / worker_id).stat().st_mtime
        except OSError:
            return False
        return age <= self.config.worker_timeout

    # ------------------------------------------------------------- pruning

    def prune_leases(self, now: float | None = None) -> list[Path]:
        """Delete lease files that can no longer fence anything.

        Removable: every token below the current highest (they are
        already superseded — fencing only ever consults the top), and
        the entire lease directory of a job with a committed result
        (the lease is moot once an envelope exists).  Stale worker
        heartbeats are swept on the same pass.  The *current* token of
        an unfinished job is never touched, expired or not — deleting it
        would reset the monotonic counter.
        """
        now = time.time() if now is None else now
        removed: list[Path] = []
        for lease_dir in sorted(self.leases_dir.iterdir()):
            if not lease_dir.is_dir():
                continue
            job_id = lease_dir.name
            done = self.result_envelope(job_id) is not None
            top = highest_token(lease_dir)
            for path in sorted(lease_dir.iterdir()):
                if done or (top is not None and path != top[1]):
                    try:
                        path.unlink()
                        removed.append(path)
                    except OSError:
                        pass
            if done:
                try:
                    lease_dir.rmdir()
                except OSError:
                    pass
        for path in sorted(self.workers_dir.iterdir()):
            try:
                if now - path.stat().st_mtime > self.config.worker_timeout:
                    path.unlink()
                    removed.append(path)
            except OSError:
                continue
        return removed
