"""Importable self-test jobs for fabric smoke tests and CI.

Fabric daemons unpickle job payloads by *reference*, so job functions
must live in an importable module on every host.  ``probe_job`` is the
canonical one: a seeded Hopper rollout whose return value is a pure
function of its arguments — bit-identical no matter which host, daemon,
or stolen-lease re-run produced it.  The optional marker arguments let
chaos harnesses observe "the job started" and hold it open long enough
to SIGKILL/SIGSTOP the worker mid-lease, without introducing any
nondeterminism into the returned bits.
"""

from __future__ import annotations

import os
import time

import numpy as np

__all__ = ["probe_job"]

# How long a held probe waits for its release marker before giving up;
# bounds chaos harnesses that die before releasing.
_HOLD_LIMIT = 120.0


def probe_job(steps: int = 64, start_marker: str | None = None,
              hold_until: str | None = None, seed: int = 7) -> dict:
    """Deterministic rollout cell; optionally announce start and hold.

    ``start_marker``: touch this path when execution begins (lets a
    harness know the job is mid-lease).  ``hold_until``: poll until this
    path exists before returning (lets the harness control *when* the
    job finishes).  Neither affects the returned value.
    """
    from .. import envs

    if start_marker:
        open(start_marker, "a").close()
    if hold_until:
        deadline = time.monotonic() + _HOLD_LIMIT
        while not os.path.exists(hold_until):
            if time.monotonic() >= deadline:
                raise TimeoutError(f"probe hold marker {hold_until} never "
                                   f"appeared within {_HOLD_LIMIT:.0f}s")
            time.sleep(0.05)
    env = envs.make("Hopper-v0")
    env.seed(seed)
    rng = np.random.default_rng(np.random.SeedSequence(seed))
    obs = env.reset()
    total = 0.0
    for _ in range(steps):
        obs, reward, terminated, truncated, _ = env.step(
            rng.uniform(-1.0, 1.0, size=env.action_space.shape))
        total += float(reward)
        if terminated or truncated:
            obs = env.reset()
    return {"total": total, "final_obs": np.asarray(obs).tolist(),
            "steps": steps, "seed": seed}
