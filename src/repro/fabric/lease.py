"""O_EXCL lease files with monotonic fencing tokens.

A job's lease directory (``<fabric>/leases/<job_id>/``) holds zero or
more **token files** named ``t00000001``, ``t00000002``, … — each
created with ``O_CREAT|O_EXCL``, so allocation of a given token number
is a cross-process (and, on a shared filesystem, cross-host)
compare-and-swap: exactly one claimant ever owns token N.  The *highest*
token is the current lease; its file's mtime is the lease heartbeat,
renewed by the owner (:meth:`Lease.renew` → ``os.utime``).  A claimant
may create token N+1 only once token N's mtime is older than the
fabric's ``lease_timeout`` — that is the steal.

Fencing is the part that makes split brain safe.  Tokens only ever go
up, so a worker can always answer "am I still the owner?" by checking
whether a token newer than its own exists (:meth:`Lease.is_supreme`).
Every renewal performs that check, and the commit path performs it one
final time before publishing a result; a worker whose lease was stolen
— because it was SIGSTOPped past the heartbeat timeout, because its
host's clock is skewed, because the filesystem was slow — **abandons**
its result and reports ``error_kind="lease_lost"``.  Even the residual
race (steal lands between the final check and the rename) cannot
clobber anything: results are committed under token-stamped filenames
and readers only believe the highest token, so a stale writer's bytes
are simply ignored.  And because jobs resume from checkpoints
bit-identically, a stale result and a stolen re-run hold identical
bytes anyway — the fencing protocol is the guarantee, determinism is
the backstop.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["Lease", "LeaseLost", "try_acquire", "highest_token", "TOKEN_WIDTH"]

TOKEN_WIDTH = 8  # t00000001 … zero-padded so lexical sort == numeric sort


class LeaseLost(RuntimeError):
    """This worker's lease was superseded by a higher fencing token."""


def _token_path(lease_dir: Path, token: int) -> Path:
    return lease_dir / f"t{token:0{TOKEN_WIDTH}d}"


def _parse_token(path: Path) -> int | None:
    name = path.name
    if not name.startswith("t") or not name[1:].isdigit():
        return None
    return int(name[1:])


def highest_token(lease_dir: Path) -> tuple[int, Path] | None:
    """``(token, path)`` of the current (highest) token file, or None."""
    best: tuple[int, Path] | None = None
    try:
        names = os.listdir(lease_dir)
    except OSError:
        return None
    for name in names:
        token = _parse_token(Path(name))
        if token is not None and (best is None or token > best[0]):
            best = (token, lease_dir / name)
    return best


@dataclass
class Lease:
    """Ownership of one fencing token for one job.

    ``renew()`` is called from the owner's keeper thread; it both
    freshens the lease heartbeat (token-file mtime) and checks fencing.
    Once ``lost`` is True the lease never recovers — the owner must
    abandon its in-flight result.
    """

    lease_dir: Path
    job_id: str
    token: int
    path: Path
    owner: str
    # Filled when this acquisition stole an expired lease: the token and
    # recorded owner id it superseded (None for a fresh first claim).
    superseded_token: int | None = None
    superseded_owner: str | None = None
    lost: bool = field(default=False, init=False)

    def is_supreme(self) -> bool:
        """True while no newer token exists (and ours still does)."""
        if self.lost:
            return False
        top = highest_token(self.lease_dir)
        if top is None or top[0] != self.token:
            self.lost = True
            return False
        return True

    def renew(self) -> bool:
        """Refresh the heartbeat mtime; False (and ``lost``) if fenced."""
        if not self.is_supreme():
            return False
        try:
            os.utime(self.path)
        except OSError:
            # Token file vanished (pruned, dir removed): treat as fenced
            # — continuing without a renewable lease is exactly the
            # zombie behaviour fencing exists to stop.
            self.lost = True
            return False
        return True

    def check(self) -> None:
        """Raise :class:`LeaseLost` unless this lease is still supreme."""
        if not self.is_supreme():
            raise LeaseLost(
                f"lease t{self.token} on {self.job_id} was superseded by a "
                "newer fencing token; abandoning result")


def _read_owner(path: Path) -> str | None:
    try:
        return path.read_text(encoding="utf-8").strip() or None
    except OSError:
        return None


def try_acquire(lease_dir: Path, job_id: str, owner: str,
                lease_timeout: float, now: float | None = None) -> Lease | None:
    """Attempt to claim the next fencing token for ``job_id``.

    Returns None when the current lease is still live (its heartbeat is
    fresher than ``lease_timeout``) or when another claimant won the
    O_EXCL race for the same token number.  Callers just retry on their
    next scan — losing this race is normal, not an error.
    """
    now = time.time() if now is None else now
    lease_dir.mkdir(parents=True, exist_ok=True)
    top = highest_token(lease_dir)
    if top is None:
        next_token, superseded_token, superseded_owner = 1, None, None
    else:
        token, path = top
        try:
            age = now - path.stat().st_mtime
        except OSError:
            age = float("inf")  # token vanished mid-look; treat as expired
        if age <= lease_timeout:
            return None  # live lease — nothing to steal yet
        next_token = token + 1
        superseded_token, superseded_owner = token, _read_owner(path)
    token_path = _token_path(lease_dir, next_token)
    try:
        fd = os.open(token_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return None  # someone else won token next_token
    except OSError:
        return None  # lease dir racing with pruning; retry next scan
    with os.fdopen(fd, "w", encoding="utf-8") as fh:
        fh.write(owner + "\n")
    return Lease(lease_dir=lease_dir, job_id=job_id, token=next_token,
                 path=token_path, owner=owner,
                 superseded_token=superseded_token,
                 superseded_owner=superseded_owner)
