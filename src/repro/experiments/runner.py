"""Shared experiment plumbing: victims, attacks, and cell evaluation.

Learned attacks are cached in the content-addressed artifact store keyed
by (env, attack name, full attack config, victim parameter fingerprint,
code version): re-running a completed sweep retrains nothing, while any
change to the victim or the attack budget produces fresh keys.
"""

from __future__ import annotations

import dataclasses
from dataclasses import replace

import numpy as np

from ..attacks import (
    AttackConfig,
    AttackResult,
    OpponentEnv,
    RandomAttackPolicy,
    StatePerturbationEnv,
    default_epsilon,
    train_apmarl,
    train_imap,
    train_sarl,
)
from ..defenses import DefenseTrainConfig
from ..envs import make, make_game
from ..eval import AttackEvaluation, evaluate_game, evaluate_single_agent
from ..rl.policy import ActorCritic
from ..runtime import AsyncVectorEnv, SyncVectorEnv
from ..store import CODE_VERSION, ArtifactStore, default_store, state_fingerprint
from ..zoo import get_game_victim, get_victim
from .config import ExperimentScale

__all__ = [
    "ATTACK_NAMES", "parse_attack_name", "victim_for", "victim_config_for",
    "game_victim_for", "attack_config_for", "make_adversary_env",
    "train_single_agent_attack", "train_game_attack", "evaluate_cell",
]

ATTACK_NAMES = [
    "random", "sarl",
    "imap-sc", "imap-pc", "imap-r", "imap-d",
    "imap-sc+br", "imap-pc+br", "imap-r+br", "imap-d+br",
]


def parse_attack_name(name: str) -> dict:
    """Split an attack name into its family and options."""
    name = name.lower()
    if name in ("random", "sarl", "apmarl"):
        return {"family": name}
    if name.startswith("imap-"):
        rest = name[len("imap-"):]
        use_br = rest.endswith("+br")
        regularizer = rest[:-3] if use_br else rest
        if regularizer not in ("sc", "pc", "r", "d"):
            raise ValueError(f"unknown IMAP regularizer in {name!r}")
        return {"family": "imap", "regularizer": regularizer, "use_br": use_br}
    raise ValueError(f"unknown attack {name!r}; options: {ATTACK_NAMES + ['apmarl']}")


def victim_config_for(env_id: str, scale: ExperimentScale, seed: int = 0) -> DefenseTrainConfig:
    """The defense training config :func:`victim_for` uses for this cell.

    Exposed separately so callers that only need the victim's
    content-address spec (e.g. league match keys) can compute it without
    training — the config *is* the victim's identity.
    """
    return DefenseTrainConfig(
        iterations=scale.victim_iterations,
        steps_per_iteration=scale.steps_per_iteration,
        seed=seed,
        epsilon=default_epsilon(env_id),
    )


def victim_for(env_id: str, defense: str, scale: ExperimentScale, seed: int = 0,
               store: ArtifactStore | None = None) -> ActorCritic:
    config = victim_config_for(env_id, scale, seed=seed)
    return get_victim(env_id, defense, config=config, budget_tag=scale.budget_tag,
                      seed=seed, store=store)


def game_victim_for(game_id: str, scale: ExperimentScale, seed: int = 0) -> ActorCritic:
    return get_game_victim(
        game_id,
        iterations=scale.game_victim_iterations,
        steps_per_iteration=scale.steps_per_iteration,
        hardening_iterations=scale.game_hardening_iterations,
        hardening_attack_iterations=max(1, scale.game_attack_iterations // 2),
        budget_tag=scale.budget_tag,
        seed=seed,
    )


def attack_config_for(scale: ExperimentScale, seed: int, **overrides) -> AttackConfig:
    config = AttackConfig(
        iterations=scale.attack_iterations,
        steps_per_iteration=scale.steps_per_iteration,
        seed=seed,
    )
    return replace(config, **overrides) if overrides else config


def make_adversary_env(env_id: str, victim: ActorCritic, epsilon: float,
                       seed: int = 0, n_envs: int = 1, vec: str = "sync"):
    """Single-agent adversary MDP; ``n_envs > 1`` returns a vector env.

    ``vec`` selects the backend for the multi-lane case: ``"sync"``
    steps lanes serially in-process, ``"async"`` gives every lane its
    own worker process over shared-memory batch arrays
    (:class:`~repro.runtime.AsyncVectorEnv`) — bit-identical results,
    concurrent stepping.  Async envs own worker processes; call
    ``close()`` when done (``train_single_agent_attack`` does).

    Lane seeds are derived from ``seed`` inside the vector env (see
    :mod:`repro.runtime.vec_env`); the trainer re-seeds it with the
    attack config's seed before collecting.
    """
    def one(lane_seed: int) -> StatePerturbationEnv:
        return StatePerturbationEnv(make(env_id), victim, epsilon=epsilon, seed=lane_seed)

    if vec not in ("sync", "async"):
        raise ValueError(f"vec must be 'sync' or 'async', got {vec!r}")
    if n_envs <= 1:
        return one(seed)
    lanes = [one(seed + i) for i in range(n_envs)]
    if vec == "async":
        return AsyncVectorEnv(lanes)
    return SyncVectorEnv(lanes)


def attack_spec(kind: str, env_id: str, attack: str, config: AttackConfig,
                victim: ActorCritic, **extra) -> dict:
    """Content-address spec for a trained attack artifact.

    The victim enters via a fingerprint of its parameters (not its
    training recipe): a retrained or differently-configured victim
    changes the fingerprint and therefore the key.
    """
    return {
        "kind": kind,
        "env_id": env_id,
        "attack": attack,
        "config": dataclasses.asdict(config),
        "victim": state_fingerprint(victim.checkpoint_state()),
        "code_version": CODE_VERSION,
        **extra,
    }


def _load_cached_attack(store: ArtifactStore, spec: dict) -> AttackResult | None:
    hit = store.get(spec)
    if hit is None:
        return None
    state, entry = hit
    meta = entry.metadata
    try:
        policy = ActorCritic(int(meta["obs_dim"]), int(meta["action_dim"]),
                             hidden_sizes=tuple(meta["hidden_sizes"]),
                             dual_value=bool(meta["dual_value"]))
        policy.load_checkpoint_state(state)
    except (KeyError, ValueError, TypeError):
        return None
    return AttackResult(policy=policy, history=list(meta["history"]),
                        name=str(meta["name"]))


def _store_attack(store: ArtifactStore, spec: dict, result: AttackResult,
                  config: AttackConfig) -> None:
    policy = result.policy
    store.put(spec, policy.checkpoint_state(), metadata={
        "env_id": spec["env_id"],
        "attack": spec["attack"],
        "obs_dim": policy.obs_dim,
        "action_dim": policy.action_dim,
        "hidden_sizes": list(config.hidden_sizes),
        "dual_value": policy.dual_value,
        "history": result.history,
        "name": result.name,
    })


def train_single_agent_attack(env_id: str, victim: ActorCritic, attack: str,
                              scale: ExperimentScale, seed: int = 0,
                              epsilon: float | None = None, n_envs: int = 1,
                              vec: str = "sync",
                              callback=None, store: ArtifactStore | None = None,
                              use_cache: bool = True,
                              **config_overrides) -> AttackResult | None:
    """Train one attack against one victim; None for non-learned attacks.

    ``n_envs > 1`` collects each PPO batch from that many env copies via
    the vectorized rollout collector (same samples per iteration);
    ``vec="async"`` steps those copies in concurrent worker processes
    over shared memory.  The two backends are bit-identical, so ``vec``
    deliberately does **not** enter the cache key — an async-trained
    result serves sync requests and vice versa.

    Results are cached in the artifact store; a cache hit skips training
    entirely.  Passing a ``callback`` disables the cache — a callback
    observes training as it happens, which a cached result cannot replay.
    """
    spec = parse_attack_name(attack)
    epsilon = default_epsilon(env_id) if epsilon is None else epsilon
    if spec["family"] == "random":
        return None
    config = attack_config_for(scale, seed, **config_overrides)
    cacheable = use_cache and callback is None
    if cacheable:
        store = store if store is not None else default_store()
        key_spec = attack_spec("attack", env_id, attack, config, victim,
                               epsilon=epsilon, n_envs=n_envs)
        cached = _load_cached_attack(store, key_spec)
        if cached is not None:
            return cached
    adv_env = make_adversary_env(env_id, victim, epsilon, seed=seed,
                                 n_envs=n_envs, vec=vec)
    try:
        if spec["family"] == "sarl":
            result = train_sarl(adv_env, config, callback=callback)
        elif spec["family"] == "apmarl":
            # AP-MARL is the shared trainer with no regularizer; on a
            # StatePerturbationEnv it doubles as a policy-optimization
            # perturbation baseline (the league's population uses it).
            result = train_apmarl(adv_env, config, callback=callback)
        else:
            result = train_imap(adv_env, spec["regularizer"], config,
                                use_bias_reduction=spec["use_br"], callback=callback)
    finally:
        close = getattr(adv_env, "close", None)
        if callable(close):
            close()  # async backend: stop the lane worker processes
    if cacheable:
        _store_attack(store, key_spec, result, config)
    return result


def train_game_attack(game_id: str, victim: ActorCritic, attack: str,
                      scale: ExperimentScale, seed: int = 0,
                      callback=None, store: ArtifactStore | None = None,
                      use_cache: bool = True, **config_overrides) -> AttackResult:
    spec = parse_attack_name(attack)
    overrides = {"iterations": scale.game_attack_iterations,
                 "intrinsic_reward_scale": 0.05, **config_overrides}
    config = attack_config_for(scale, seed, **overrides)
    cacheable = use_cache and callback is None
    if cacheable:
        store = store if store is not None else default_store()
        key_spec = attack_spec("game_attack", game_id, attack, config, victim)
        cached = _load_cached_attack(store, key_spec)
        if cached is not None:
            return cached
    adv_env = OpponentEnv(make_game(game_id), victim, seed=seed)
    if spec["family"] in ("sarl", "apmarl"):
        result = train_apmarl(adv_env, config, callback=callback)
    else:
        result = train_imap(adv_env, spec["regularizer"], config, multi_agent=True,
                            use_bias_reduction=spec["use_br"], callback=callback)
    if cacheable:
        _store_attack(store, key_spec, result, config)
    return result


def evaluate_cell(env_id: str, victim: ActorCritic, attack: str,
                  result: AttackResult | None, scale: ExperimentScale,
                  seed: int = 1000, epsilon: float | None = None) -> AttackEvaluation:
    """Evaluate a (victim, attack) pair on the published task."""
    epsilon = default_epsilon(env_id) if epsilon is None else epsilon
    spec = parse_attack_name(attack) if attack != "none" else {"family": "none"}
    env = make(env_id)
    if spec["family"] == "none":
        return evaluate_single_agent(env, victim, None, episodes=scale.eval_episodes, seed=seed)
    if spec["family"] == "random":
        policy = RandomAttackPolicy(env.observation_space.shape[0], seed=seed)
        return evaluate_single_agent(env, victim, policy, epsilon=epsilon,
                                     episodes=scale.eval_episodes, seed=seed,
                                     attack_deterministic=False)
    assert result is not None, "learned attacks need a trained AttackResult"
    return evaluate_single_agent(env, victim, result.policy, epsilon=epsilon,
                                 episodes=scale.eval_episodes, seed=seed)


def evaluate_game_cell(game_id: str, victim: ActorCritic, result: AttackResult,
                       scale: ExperimentScale, seed: int = 1000) -> AttackEvaluation:
    return evaluate_game(make_game(game_id), victim, result.policy,
                         episodes=scale.eval_episodes, seed=seed)
