"""Shared experiment plumbing: victims, attacks, and cell evaluation."""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from ..attacks import (
    AttackConfig,
    AttackResult,
    OpponentEnv,
    RandomAttackPolicy,
    StatePerturbationEnv,
    default_epsilon,
    train_apmarl,
    train_imap,
    train_sarl,
)
from ..defenses import DefenseTrainConfig
from ..envs import make, make_game
from ..eval import AttackEvaluation, evaluate_game, evaluate_single_agent
from ..rl.policy import ActorCritic
from ..runtime import SyncVectorEnv
from ..zoo import get_game_victim, get_victim
from .config import ExperimentScale

__all__ = [
    "ATTACK_NAMES", "parse_attack_name", "victim_for", "game_victim_for",
    "attack_config_for", "make_adversary_env", "train_single_agent_attack",
    "train_game_attack", "evaluate_cell",
]

ATTACK_NAMES = [
    "random", "sarl",
    "imap-sc", "imap-pc", "imap-r", "imap-d",
    "imap-sc+br", "imap-pc+br", "imap-r+br", "imap-d+br",
]


def parse_attack_name(name: str) -> dict:
    """Split an attack name into its family and options."""
    name = name.lower()
    if name in ("random", "sarl", "apmarl"):
        return {"family": name}
    if name.startswith("imap-"):
        rest = name[len("imap-"):]
        use_br = rest.endswith("+br")
        regularizer = rest[:-3] if use_br else rest
        if regularizer not in ("sc", "pc", "r", "d"):
            raise ValueError(f"unknown IMAP regularizer in {name!r}")
        return {"family": "imap", "regularizer": regularizer, "use_br": use_br}
    raise ValueError(f"unknown attack {name!r}; options: {ATTACK_NAMES + ['apmarl']}")


def victim_for(env_id: str, defense: str, scale: ExperimentScale, seed: int = 0) -> ActorCritic:
    config = DefenseTrainConfig(
        iterations=scale.victim_iterations,
        steps_per_iteration=scale.steps_per_iteration,
        seed=seed,
        epsilon=default_epsilon(env_id),
    )
    return get_victim(env_id, defense, config=config, budget_tag=scale.budget_tag, seed=seed)


def game_victim_for(game_id: str, scale: ExperimentScale, seed: int = 0) -> ActorCritic:
    return get_game_victim(
        game_id,
        iterations=scale.game_victim_iterations,
        steps_per_iteration=scale.steps_per_iteration,
        hardening_iterations=scale.game_hardening_iterations,
        hardening_attack_iterations=max(1, scale.game_attack_iterations // 2),
        budget_tag=scale.budget_tag,
        seed=seed,
    )


def attack_config_for(scale: ExperimentScale, seed: int, **overrides) -> AttackConfig:
    config = AttackConfig(
        iterations=scale.attack_iterations,
        steps_per_iteration=scale.steps_per_iteration,
        seed=seed,
    )
    return replace(config, **overrides) if overrides else config


def make_adversary_env(env_id: str, victim: ActorCritic, epsilon: float,
                       seed: int = 0, n_envs: int = 1):
    """Single-agent adversary MDP; ``n_envs > 1`` returns a SyncVectorEnv.

    Lane seeds are derived from ``seed`` inside the vector env (see
    :mod:`repro.runtime.vec_env`); the trainer re-seeds it with the
    attack config's seed before collecting.
    """
    def one(lane_seed: int) -> StatePerturbationEnv:
        return StatePerturbationEnv(make(env_id), victim, epsilon=epsilon, seed=lane_seed)

    if n_envs <= 1:
        return one(seed)
    return SyncVectorEnv([one(seed + i) for i in range(n_envs)])


def train_single_agent_attack(env_id: str, victim: ActorCritic, attack: str,
                              scale: ExperimentScale, seed: int = 0,
                              epsilon: float | None = None, n_envs: int = 1,
                              callback=None, **config_overrides) -> AttackResult | None:
    """Train one attack against one victim; None for non-learned attacks.

    ``n_envs > 1`` collects each PPO batch from that many env copies via
    the vectorized rollout collector (same samples per iteration).
    """
    spec = parse_attack_name(attack)
    epsilon = default_epsilon(env_id) if epsilon is None else epsilon
    if spec["family"] == "random":
        return None
    adv_env = make_adversary_env(env_id, victim, epsilon, seed=seed, n_envs=n_envs)
    config = attack_config_for(scale, seed, **config_overrides)
    if spec["family"] == "sarl":
        return train_sarl(adv_env, config, callback=callback)
    return train_imap(adv_env, spec["regularizer"], config,
                      use_bias_reduction=spec["use_br"], callback=callback)


def train_game_attack(game_id: str, victim: ActorCritic, attack: str,
                      scale: ExperimentScale, seed: int = 0,
                      callback=None, **config_overrides) -> AttackResult:
    spec = parse_attack_name(attack)
    adv_env = OpponentEnv(make_game(game_id), victim, seed=seed)
    overrides = {"iterations": scale.game_attack_iterations,
                 "intrinsic_reward_scale": 0.05, **config_overrides}
    config = attack_config_for(scale, seed, **overrides)
    if spec["family"] in ("sarl", "apmarl"):
        return train_apmarl(adv_env, config, callback=callback)
    return train_imap(adv_env, spec["regularizer"], config, multi_agent=True,
                      use_bias_reduction=spec["use_br"], callback=callback)


def evaluate_cell(env_id: str, victim: ActorCritic, attack: str,
                  result: AttackResult | None, scale: ExperimentScale,
                  seed: int = 1000, epsilon: float | None = None) -> AttackEvaluation:
    """Evaluate a (victim, attack) pair on the published task."""
    epsilon = default_epsilon(env_id) if epsilon is None else epsilon
    spec = parse_attack_name(attack) if attack != "none" else {"family": "none"}
    env = make(env_id)
    if spec["family"] == "none":
        return evaluate_single_agent(env, victim, None, episodes=scale.eval_episodes, seed=seed)
    if spec["family"] == "random":
        policy = RandomAttackPolicy(env.observation_space.shape[0], seed=seed)
        return evaluate_single_agent(env, victim, policy, epsilon=epsilon,
                                     episodes=scale.eval_episodes, seed=seed,
                                     attack_deterministic=False)
    assert result is not None, "learned attacks need a trained AttackResult"
    return evaluate_single_agent(env, victim, result.policy, epsilon=epsilon,
                                 episodes=scale.eval_episodes, seed=seed)


def evaluate_game_cell(game_id: str, victim: ActorCritic, result: AttackResult,
                       scale: ExperimentScale, seed: int = 1000) -> AttackEvaluation:
    return evaluate_game(make_game(game_id), victim, result.policy,
                         episodes=scale.eval_episodes, seed=seed)
