"""Table 1 — dense-reward locomotion: victim reward under every attack.

Rows: (env, defense) pairs; columns: No Attack, Random, SA-RL and the
four IMAP variants.  Reproduces the paper's claims that the best IMAP
variant beats SA-RL on most rows and that IMAP-PC has the best average.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..envs.registry import DENSE_TASKS
from ..eval.metrics import format_mean_std
from ..eval.tables import bold_min_per_row, render_table
from .config import ExperimentScale, current_scale
from .runner import evaluate_cell, train_single_agent_attack, victim_for

__all__ = ["TABLE1_ATTACKS", "TABLE1_DEFENSES", "Table1Cell", "Table1Result", "run_table1"]

TABLE1_ATTACKS = ["none", "random", "sarl", "imap-sc", "imap-pc", "imap-r", "imap-d"]
TABLE1_DEFENSES = ["ppo", "atla", "sa", "atla_sa", "radial", "wocar"]


@dataclass
class Table1Cell:
    env_id: str
    defense: str
    attack: str
    mean_reward: float
    std_reward: float
    asr: float


@dataclass
class Table1Result:
    cells: list[Table1Cell] = field(default_factory=list)

    def cell(self, env_id: str, defense: str, attack: str) -> Table1Cell:
        for c in self.cells:
            if (c.env_id, c.defense, c.attack) == (env_id, defense, attack):
                return c
        raise KeyError((env_id, defense, attack))

    def render(self, attacks: list[str] | None = None) -> str:
        attacks = attacks or TABLE1_ATTACKS
        envs = sorted({c.env_id for c in self.cells})
        rows = []
        for env_id in envs:
            defenses = [c.defense for c in self.cells
                        if c.env_id == env_id and c.attack == attacks[0]]
            for defense in dict.fromkeys(defenses):
                formatted, values = [], []
                for attack in attacks:
                    c = self.cell(env_id, defense, attack)
                    formatted.append(format_mean_std(c.mean_reward, c.std_reward, 0))
                    values.append(c.mean_reward)
                # bold the strongest *attack* (skip the No Attack column)
                marked = formatted[:1] + bold_min_per_row(values[1:], formatted[1:])
                rows.append([env_id, defense] + marked)
        return render_table(
            ["Env", "Victim"] + [a.upper() for a in attacks], rows,
            title="Table 1 — victim episode reward under attack (dense tasks)",
        )

    def best_imap_beats_sarl_fraction(self) -> float:
        """Fraction of rows where min(IMAP-*) <= SA-RL (the 15/22 claim)."""
        wins = total = 0
        keys = {(c.env_id, c.defense) for c in self.cells}
        for env_id, defense in keys:
            try:
                sarl = self.cell(env_id, defense, "sarl").mean_reward
                imap = min(self.cell(env_id, defense, f"imap-{r}").mean_reward
                           for r in ("sc", "pc", "r", "d"))
            except KeyError:
                continue
            total += 1
            wins += int(imap <= sarl)
        return wins / total if total else 0.0


def run_table1(env_ids: list[str] | None = None, defenses: list[str] | None = None,
               attacks: list[str] | None = None, scale: ExperimentScale | None = None,
               seed: int = 0, verbose: bool = True) -> Table1Result:
    scale = scale or current_scale()
    env_ids = env_ids or DENSE_TASKS
    defenses = defenses or TABLE1_DEFENSES
    attacks = attacks or TABLE1_ATTACKS
    result = Table1Result()
    for env_id in env_ids:
        for defense in defenses:
            victim = victim_for(env_id, defense, scale, seed=seed)
            for attack in attacks:
                trained = None
                if attack not in ("none", "random"):
                    trained = train_single_agent_attack(env_id, victim, attack, scale,
                                                        seed=seed)
                ev = evaluate_cell(env_id, victim, attack, trained, scale)
                result.cells.append(Table1Cell(
                    env_id=env_id, defense=defense, attack=attack,
                    mean_reward=ev.mean_reward, std_reward=ev.std_reward, asr=ev.asr,
                ))
                if verbose:
                    print(f"[table1] {env_id} {defense:8s} {attack:10s} "
                          f"{ev.mean_reward:9.1f} ± {ev.std_reward:7.1f}  ASR {ev.asr:.0%}",
                          flush=True)
    return result
