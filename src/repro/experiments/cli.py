"""Command-line entry point: ``python -m repro.experiments <what>``.

Examples::

    python -m repro.experiments table1 --scale short --envs Hopper-v0
    python -m repro.experiments table2 --scale short
    python -m repro.experiments fig5 --scale short --games YouShallNotPass-v0
    python -m repro.experiments fig6 fig7 --scale smoke
    python -m repro.experiments table1 fig4 fig6 --jobs 3
    python -m repro.experiments league --rounds 2 --jobs 4

``league`` is a subcommand with its own flag surface (rosters, rounds,
counter-training, ``--resume``); see :mod:`repro.league.cli`.

``--jobs N`` runs the requested experiments as independent cells on the
process-pool scheduler (:mod:`repro.runtime.scheduler`); output is still
printed in request order, and a crashed experiment is reported without
aborting the others.  ``--job-timeout SECONDS`` adds a per-experiment
wall-clock budget enforced by the watchdog supervisor: a hung cell is
killed and reported with ``error_kind="timeout"`` instead of stalling
the whole invocation.

``--telemetry-dir DIR`` records the run: ``DIR/manifest.json`` (config,
seeds, package versions, wall clock, exit status, per-job crash records,
artifact hashes consumed/produced) plus ``DIR/events.jsonl``
(per-iteration training events with rollout/update/KNN timings).  Off by
default — without the flag the hot paths run uninstrumented at full
speed.  With ``--jobs > 1`` worker processes run untelemetered; the
parent still records per-job events.

``--resume RUN_DIR`` re-launches the run recorded in
``RUN_DIR/manifest.json``: experiment selection and filters are read
back from the manifest (explicit flags still win), telemetry goes to
RUN_DIR again, and every already-completed cell is served from the
artifact store instead of retraining.  ``--store-dir DIR`` points the
artifact store somewhere other than ``$REPRO_ARTIFACTS/store`` (it is
exported as ``$REPRO_STORE`` so pool workers inherit it).
"""

from __future__ import annotations

import argparse
import contextlib
import os
from pathlib import Path

from ..runtime import Job, WorkerPool, run_parallel
from ..telemetry import MANIFEST_NAME, RunManifest, Telemetry, use_telemetry
from .config import SCALES
from .fig4 import run_fig4
from .fig5 import run_fig5
from .fig6 import run_fig6
from .fig7 import run_fig7
from .table1 import run_table1
from .table2 import run_table2
from .table3 import br_improvement_count, render_table3, run_table3

__all__ = ["main", "build_parser", "run_experiment", "apply_resume"]

EXPERIMENT_NAMES = ["table1", "table2", "table3", "fig4", "fig5", "fig6", "fig7"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    # No argparse ``choices`` here: with ``nargs="*"`` argparse validates
    # the empty default against the choice list and rejects a bare
    # ``--resume RUN_DIR`` invocation; apply_resume validates instead.
    parser.add_argument("what", nargs="*", default=[], metavar="what",
                        help="which experiments to run: "
                             f"{', '.join(EXPERIMENT_NAMES)} "
                             "(optional with --resume)")
    parser.add_argument("--scale", default="smoke", choices=sorted(SCALES),
                        help="budget preset (default: smoke)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--jobs", type=int, default=1,
                        help="run the requested experiments on a process pool "
                             "of this many workers (default 1: sequential)")
    parser.add_argument("--job-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-experiment wall-clock budget; a hung or "
                             "overrunning experiment is killed and reported "
                             "as a timeout instead of stalling the sweep "
                             "(default: unbounded)")
    parser.add_argument("--pool", action="store_true",
                        help="run the sweep on a persistent worker pool "
                             "(--jobs workers, spawned once and reused for "
                             "every experiment and retry) instead of "
                             "spawning a fresh process per job")
    parser.add_argument("--fabric", default=None, metavar="DIR",
                        help="run the sweep on the multi-host job fabric "
                             "rooted at DIR: jobs are executed by whatever "
                             "`python -m repro.fabric.worker DIR` daemons "
                             "share the directory (falling back to inline "
                             "execution if none are alive)")
    parser.add_argument("--envs", nargs="*", default=None,
                        help="restrict single-agent experiments to these env ids")
    parser.add_argument("--games", nargs="*", default=None,
                        help="restrict game experiments to these game ids")
    parser.add_argument("--attacks", nargs="*", default=None,
                        help="restrict to these attack names")
    parser.add_argument("--telemetry-dir", default=None, metavar="DIR",
                        help="write a run manifest (manifest.json) and JSONL "
                             "event log (events.jsonl) under DIR; default off")
    parser.add_argument("--resume", default=None, metavar="RUN_DIR",
                        help="re-launch the run recorded in RUN_DIR/manifest.json; "
                             "completed cells are served from the artifact store")
    parser.add_argument("--store-dir", default=None, metavar="DIR",
                        help="artifact store location (default: "
                             "$REPRO_STORE or $REPRO_ARTIFACTS/store)")
    return parser


def apply_resume(args: argparse.Namespace,
                 parser: argparse.ArgumentParser) -> argparse.Namespace:
    """Fill unset args from the manifest recorded at ``--resume RUN_DIR``.

    "Unset" means the parsed value equals the parser default — explicit
    flags override the recorded run.  Telemetry is redirected back into
    RUN_DIR so the resumed run extends the same record.
    """
    unknown = [w for w in args.what if w not in EXPERIMENT_NAMES]
    if unknown:
        parser.error(f"unknown experiment(s) {unknown}; options: {EXPERIMENT_NAMES}")
    if args.resume is None:
        if not args.what:
            parser.error("specify at least one experiment (or --resume RUN_DIR)")
        return args
    manifest_path = Path(args.resume) / MANIFEST_NAME
    if not manifest_path.exists():
        parser.error(f"--resume: no {MANIFEST_NAME} under {args.resume}")
    recorded = RunManifest.load(manifest_path).experiment
    for name in ("what", "scale", "seed", "jobs", "job_timeout", "envs",
                 "games", "attacks", "store_dir"):
        if name in recorded and getattr(args, name) == parser.get_default(name):
            setattr(args, name, recorded[name])
    if args.telemetry_dir is None:
        args.telemetry_dir = args.resume
    if not args.what:
        parser.error("--resume: recorded manifest names no experiments")
    return args


def run_experiment(what: str, scale_name: str, seed: int = 0,
                   envs: list[str] | None = None, games: list[str] | None = None,
                   attacks: list[str] | None = None) -> str:
    """Run one experiment and return its rendered text output.

    Top-level and string-in/string-out so the process-pool scheduler can
    ship it to a worker.
    """
    scale = SCALES[scale_name]
    if what == "table1":
        result = run_table1(env_ids=envs, attacks=attacks, scale=scale, seed=seed)
        return result.render(attacks=attacks) if attacks else result.render()
    if what == "table2":
        result = run_table2(env_ids=envs, attacks=attacks, scale=scale, seed=seed)
        return result.render()
    if what == "table3":
        result = run_table3(env_ids=envs, scale=scale, seed=seed)
        improved, total = br_improvement_count(result)
        return (render_table3(result)
                + f"\nBR improves some IMAP variant on {improved}/{total} tasks")
    if what == "fig4":
        figures = run_fig4(env_ids=envs, attacks=attacks, scale=scale, seed=seed)
        return "\n".join(figure.render(y_name="victim success")
                         for figure in figures.values())
    if what == "fig5":
        out = run_fig5(game_ids=games, scale=scale, seed=seed)
        return "\n".join(data["curves"].render(y_name="asr") for data in out.values())
    if what == "fig6":
        out = run_fig6(scale=scale, seed=seed)
        return out["curves"].render(y_name="victim success")
    if what == "fig7":
        out = run_fig7(scale=scale, seed=seed)
        return out["curves"].render(y_name="asr")
    raise ValueError(f"unknown experiment {what!r}; options: {EXPERIMENT_NAMES}")


def _make_telemetry(args) -> Telemetry | None:
    if args.telemetry_dir is None:
        return None
    return Telemetry.to_dir(
        args.telemetry_dir,
        run_id=f"{'-'.join(args.what)}-{args.scale}-seed{args.seed}",
        experiment={
            "what": args.what, "scale": args.scale, "seed": args.seed,
            "jobs": args.jobs, "job_timeout": args.job_timeout,
            "envs": args.envs, "games": args.games,
            "attacks": args.attacks, "store_dir": args.store_dir,
        },
        seeds=[args.seed],
    )


def main(argv: list[str] | None = None) -> int:
    import sys

    argv = sys.argv[1:] if argv is None else list(argv)
    if argv and argv[0] == "league":
        # The league has its own flag surface (rosters, rounds,
        # counter-training); delegate before argparse sees the rest.
        from ..league.cli import main as league_main

        return league_main(argv[1:])
    parser = build_parser()
    args = apply_resume(parser.parse_args(argv), parser)
    if args.fabric is not None and args.pool:
        parser.error("--fabric and --pool are mutually exclusive "
                     "execution lanes")
    if args.store_dir is not None:
        # Environment, not a parameter: pool workers inherit it on spawn.
        os.environ["REPRO_STORE"] = str(args.store_dir)
    scale = SCALES[args.scale]
    telemetry = _make_telemetry(args)
    # Ambient installation: trainers and collectors buried under the
    # run_* functions pick the telemetry up via current_telemetry().
    context = use_telemetry(telemetry) if telemetry else contextlib.nullcontext()
    try:
        with context:
            # A --job-timeout also routes a sequential run through the
            # scheduler: the watchdog needs its own worker process to kill.
            if ((args.jobs > 1 and len(args.what) > 1)
                    or args.job_timeout is not None or args.pool
                    or args.fabric is not None):
                jobs = [Job(fn=run_experiment,
                            args=(what, args.scale, args.seed,
                                  args.envs, args.games, args.attacks),
                            name=what)
                        for what in args.what]
                with contextlib.ExitStack() as stack:
                    pool = None
                    if args.pool:
                        pool = stack.enter_context(
                            WorkerPool(max_workers=max(1, args.jobs)))
                    report = run_parallel(jobs, max_workers=args.jobs,
                                          timeout=args.job_timeout, pool=pool,
                                          fabric_dir=args.fabric)
                for what, result in zip(args.what, report.results):
                    print(f"\n##### {what} (scale={scale.name}) #####\n", flush=True)
                    if result.ok:
                        print(result.value)
                    else:
                        print(f"FAILED: {result.error}\n{result.traceback}")
                print(f"\n[scheduler] {report.summary()}", flush=True)
                exit_code = 1 if report.n_failed else 0
            else:
                exit_code = 0
                for what in args.what:
                    print(f"\n##### {what} (scale={scale.name}) #####\n", flush=True)
                    if telemetry is not None:
                        telemetry.event("experiment.start", payload={"what": what})
                    print(run_experiment(what, args.scale, seed=args.seed,
                                         envs=args.envs, games=args.games,
                                         attacks=args.attacks))
                    if telemetry is not None:
                        telemetry.event("experiment.end",
                                        payload={"what": what, "ok": True})
    except BaseException as exc:
        if telemetry is not None:
            telemetry.finalize("failed", error=f"{type(exc).__name__}: {exc}")
        raise
    if telemetry is not None:
        telemetry.finalize("ok" if exit_code == 0 else "failed")
    return exit_code
