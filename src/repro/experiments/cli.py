"""Command-line entry point: ``python -m repro.experiments <what>``.

Examples::

    python -m repro.experiments table1 --scale short --envs Hopper-v0
    python -m repro.experiments table2 --scale short
    python -m repro.experiments fig5 --scale short --games YouShallNotPass-v0
    python -m repro.experiments fig6 fig7 --scale smoke
"""

from __future__ import annotations

import argparse

from .config import SCALES
from .fig4 import run_fig4
from .fig5 import run_fig5
from .fig6 import run_fig6
from .fig7 import run_fig7
from .table1 import run_table1
from .table2 import run_table2
from .table3 import br_improvement_count, render_table3, run_table3

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("what", nargs="+",
                        choices=["table1", "table2", "table3",
                                 "fig4", "fig5", "fig6", "fig7"],
                        help="which experiments to run")
    parser.add_argument("--scale", default="smoke", choices=sorted(SCALES),
                        help="budget preset (default: smoke)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--envs", nargs="*", default=None,
                        help="restrict single-agent experiments to these env ids")
    parser.add_argument("--games", nargs="*", default=None,
                        help="restrict game experiments to these game ids")
    parser.add_argument("--attacks", nargs="*", default=None,
                        help="restrict to these attack names")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    scale = SCALES[args.scale]
    for what in args.what:
        print(f"\n##### {what} (scale={scale.name}) #####\n", flush=True)
        if what == "table1":
            result = run_table1(env_ids=args.envs, attacks=args.attacks,
                                scale=scale, seed=args.seed)
            print(result.render(attacks=args.attacks) if args.attacks
                  else result.render())
        elif what == "table2":
            result = run_table2(env_ids=args.envs, attacks=args.attacks,
                                scale=scale, seed=args.seed)
            print(result.render())
        elif what == "table3":
            result = run_table3(env_ids=args.envs, scale=scale, seed=args.seed)
            print(render_table3(result))
            improved, total = br_improvement_count(result)
            print(f"BR improves some IMAP variant on {improved}/{total} tasks")
        elif what == "fig4":
            figures = run_fig4(env_ids=args.envs, attacks=args.attacks,
                               scale=scale, seed=args.seed)
            for figure in figures.values():
                print(figure.render(y_name="victim success"))
        elif what == "fig5":
            out = run_fig5(game_ids=args.games, scale=scale, seed=args.seed)
            for data in out.values():
                print(data["curves"].render(y_name="asr"))
        elif what == "fig6":
            out = run_fig6(scale=scale, seed=args.seed)
            print(out["curves"].render(y_name="victim success"))
        elif what == "fig7":
            out = run_fig7(scale=scale, seed=args.seed)
            print(out["curves"].render(y_name="asr"))
    return 0
