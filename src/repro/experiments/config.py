"""Experiment scaling presets.

The paper trains victims for millions of steps and attacks for 5-20M
samples.  This reproduction exposes three budgets:

* ``smoke`` — seconds per cell; only checks that the pipeline runs.
* ``short`` — the default; minutes per cell, enough for the tables'
  qualitative shape (who wins, roughly by how much).
* ``paper`` — tens of minutes per cell; closest to the published
  training curves this substrate supports.

Select via the ``REPRO_SCALE`` environment variable or function args.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = ["ExperimentScale", "SCALES", "current_scale"]


@dataclass(frozen=True)
class ExperimentScale:
    name: str
    victim_iterations: int
    attack_iterations: int
    steps_per_iteration: int
    eval_episodes: int
    game_victim_iterations: int
    game_hardening_iterations: int
    game_attack_iterations: int

    @property
    def budget_tag(self) -> str:
        return self.name


SCALES: dict[str, ExperimentScale] = {
    "smoke": ExperimentScale(
        name="smoke",
        victim_iterations=4,
        attack_iterations=3,
        steps_per_iteration=512,
        eval_episodes=8,
        game_victim_iterations=4,
        game_hardening_iterations=0,
        game_attack_iterations=3,
    ),
    "short": ExperimentScale(
        name="short",
        victim_iterations=30,
        attack_iterations=60,
        steps_per_iteration=2048,
        eval_episodes=30,
        game_victim_iterations=40,
        game_hardening_iterations=30,
        game_attack_iterations=24,
    ),
    "paper": ExperimentScale(
        name="paper",
        victim_iterations=80,
        attack_iterations=120,
        steps_per_iteration=4096,
        eval_episodes=100,
        game_victim_iterations=100,
        game_hardening_iterations=60,
        game_attack_iterations=80,
    ),
}


def current_scale(override: str | None = None) -> ExperimentScale:
    name = override or os.environ.get("REPRO_SCALE", "smoke")
    if name not in SCALES:
        raise KeyError(f"unknown scale {name!r}; options: {sorted(SCALES)}")
    return SCALES[name]
