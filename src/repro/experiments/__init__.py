"""Per-table / per-figure experiment runners (see DESIGN.md index)."""

from .config import SCALES, ExperimentScale, current_scale
from .fig4 import FIG4_ATTACKS, FIG4_TASKS, run_fig4
from .fig5 import FIG5_ATTACKS, run_fig5
from .fig6 import FIG6_ETAS, run_fig6
from .fig7 import FIG7_XIS, run_fig7
from .runner import (
    ATTACK_NAMES,
    attack_config_for,
    evaluate_cell,
    game_victim_for,
    make_adversary_env,
    parse_attack_name,
    train_game_attack,
    train_single_agent_attack,
    victim_for,
)
from .multiseed import MultiSeedOutcome, train_best_of_seeds
from .table1 import TABLE1_ATTACKS, TABLE1_DEFENSES, Table1Result, run_table1
from .table2 import TABLE2_ATTACKS, Table2Result, run_table2
from .table3 import br_improvement_count, render_table3, run_table3

__all__ = [
    "ExperimentScale", "SCALES", "current_scale",
    "ATTACK_NAMES", "parse_attack_name",
    "victim_for", "game_victim_for", "attack_config_for",
    "make_adversary_env",
    "train_single_agent_attack", "train_game_attack", "evaluate_cell",
    "run_table1", "Table1Result", "TABLE1_ATTACKS", "TABLE1_DEFENSES",
    "run_table2", "Table2Result", "TABLE2_ATTACKS",
    "run_table3", "render_table3", "br_improvement_count",
    "run_fig4", "FIG4_TASKS", "FIG4_ATTACKS",
    "run_fig5", "FIG5_ATTACKS",
    "run_fig6", "FIG6_ETAS",
    "run_fig7", "FIG7_XIS",
    "MultiSeedOutcome", "train_best_of_seeds",
]
