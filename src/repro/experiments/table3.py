"""Table 3 (appendix) — the full IMAP × BR grid on the sparse tasks.

Same machinery as Table 2 but always runs all four IMAP variants both
with and without BR, so the per-regularizer effect of bias reduction is
visible (the paper's underlined cells).
"""

from __future__ import annotations

from ..envs.registry import SPARSE_TASKS
from ..eval.metrics import format_mean_std
from ..eval.tables import render_table
from .config import ExperimentScale, current_scale
from .table2 import Table2Result, run_table2

__all__ = ["TABLE3_ATTACKS", "run_table3", "render_table3", "br_improvement_count"]

TABLE3_ATTACKS = [
    "none", "sarl",
    "imap-sc", "imap-pc", "imap-r", "imap-d",
]


def run_table3(env_ids: list[str] | None = None, scale: ExperimentScale | None = None,
               seed: int = 0, verbose: bool = True) -> Table2Result:
    scale = scale or current_scale()
    return run_table2(env_ids=env_ids or SPARSE_TASKS, attacks=TABLE3_ATTACKS,
                      include_br=True, scale=scale, seed=seed, verbose=verbose)


def br_improvement_count(result: Table2Result) -> tuple[int, int]:
    """(tasks where some IMAP+BR beats its base IMAP, total tasks)."""
    improved = total = 0
    for env_id in dict.fromkeys(c.env_id for c in result.cells):
        pairs = []
        for reg in ("sc", "pc", "r", "d"):
            try:
                base = result.cell(env_id, f"imap-{reg}").mean_reward
                br = result.cell(env_id, f"imap-{reg}+br").mean_reward
                pairs.append((base, br))
            except KeyError:
                continue
        if not pairs:
            continue
        total += 1
        improved += int(any(br < base for base, br in pairs))
    return improved, total


def render_table3(result: Table2Result) -> str:
    env_ids = list(dict.fromkeys(c.env_id for c in result.cells))
    attacks = ["sarl"] + [f"imap-{r}" for r in ("sc", "pc", "r", "d")] + \
              [f"imap-{r}+br" for r in ("sc", "pc", "r", "d")]
    rows = []
    for env_id in env_ids:
        row = [env_id]
        for attack in attacks:
            try:
                c = result.cell(env_id, attack)
                row.append(format_mean_std(c.mean_reward, c.std_reward))
            except KeyError:
                row.append("-")
        rows.append(row)
    return render_table(["Env"] + [a.upper() for a in attacks], rows,
                        title="Table 3 — full IMAP x BR grid (sparse tasks)")
