"""Figure 6 — ablation over the BR step size η (Eq. 17).

Runs IMAP-PC+BR with several η values on a representative task and
reports final attack performance: the paper finds IMAP insensitive to η,
with larger steps slightly better.
"""

from __future__ import annotations

from ..eval.curves import CurveSet
from .config import ExperimentScale, current_scale
from .runner import evaluate_cell, train_single_agent_attack, victim_for

__all__ = ["FIG6_ETAS", "run_fig6"]

FIG6_ETAS = [0.01, 0.1, 0.5, 1.0]


def run_fig6(env_id: str = "SparseHopper-v0", etas: list[float] | None = None,
             regularizer: str = "pc", scale: ExperimentScale | None = None,
             seed: int = 0, verbose: bool = True) -> dict:
    scale = scale or current_scale()
    etas = etas or FIG6_ETAS
    victim = victim_for(env_id, "ppo", scale, seed=seed)
    figure = CurveSet(f"Figure 6 — η ablation on {env_id} (IMAP-{regularizer.upper()}+BR)")
    finals = {}
    for eta in etas:
        result = train_single_agent_attack(
            env_id, victim, f"imap-{regularizer}+br", scale, seed=seed, br_eta=eta,
        )
        samples, success = result.curve("victim_success_rate")
        label = f"eta={eta}"
        for x, y in zip(samples, success):
            figure.curve(label).add(x, y)
        ev = evaluate_cell(env_id, victim, f"imap-{regularizer}+br", result, scale)
        finals[eta] = ev.mean_reward
        if verbose:
            print(f"[fig6] {env_id} eta={eta:<5} victim reward {ev.mean_reward:.2f} "
                  f"ASR {ev.asr:.0%}", flush=True)
    return {"curves": figure, "final_reward": finals}
