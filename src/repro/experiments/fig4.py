"""Figure 4 — attack learning curves on the sparse locomotion tasks.

For each task, plot the victim's success probability (training-time
estimate) versus attack training samples for SA-RL and the four IMAP
variants.  Reproduces the sample-efficiency claim: IMAP variants reach
low victim success with a fraction of SA-RL's samples.
"""

from __future__ import annotations

from ..eval.curves import CurveSet
from .config import ExperimentScale, current_scale
from .runner import train_single_agent_attack, victim_for

__all__ = ["FIG4_TASKS", "FIG4_ATTACKS", "run_fig4"]

FIG4_TASKS = [
    "SparseHopper-v0", "SparseWalker2d-v0", "SparseHalfCheetah-v0",
    "SparseAnt-v0", "SparseHumanoidStandup-v0", "SparseHumanoid-v0",
]
FIG4_ATTACKS = ["sarl", "imap-sc", "imap-pc", "imap-r", "imap-d"]


def run_fig4(env_ids: list[str] | None = None, attacks: list[str] | None = None,
             scale: ExperimentScale | None = None, seed: int = 0,
             verbose: bool = True) -> dict[str, CurveSet]:
    scale = scale or current_scale()
    env_ids = env_ids or FIG4_TASKS
    attacks = attacks or FIG4_ATTACKS
    figures: dict[str, CurveSet] = {}
    for env_id in env_ids:
        victim = victim_for(env_id, "ppo", scale, seed=seed)
        figure = CurveSet(f"Figure 4 — {env_id}: victim success vs attack samples")
        for attack in attacks:
            result = train_single_agent_attack(env_id, victim, attack, scale, seed=seed)
            samples, success = result.curve("victim_success_rate")
            for x, y in zip(samples, success):
                figure.curve(attack.upper()).add(x, y)
            if verbose:
                final = success[-1] if len(success) else float("nan")
                print(f"[fig4] {env_id:26s} {attack:9s} final victim success {final:.2f}",
                      flush=True)
        figures[env_id] = figure
    return figures
