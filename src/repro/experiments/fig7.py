"""Figure 7 — ablation over the mixing weight ξ (Eq. 7/9).

Runs multi-agent IMAP-PC+BR with several ξ values on YouShallNotPass.
The paper's insight: the adversary-space coverage term (1−ξ) is critical
— ξ = 1 (victim-space only) underperforms — while a moderate victim-space
share helps.
"""

from __future__ import annotations

from ..eval.curves import CurveSet
from .config import ExperimentScale, current_scale
from .runner import evaluate_game_cell, game_victim_for, train_game_attack

__all__ = ["FIG7_XIS", "run_fig7"]

FIG7_XIS = [0.0, 0.25, 0.5, 0.75, 1.0]


def run_fig7(game_id: str = "YouShallNotPass-v0", xis: list[float] | None = None,
             scale: ExperimentScale | None = None, seed: int = 0,
             verbose: bool = True) -> dict:
    scale = scale or current_scale()
    xis = xis or FIG7_XIS
    victim = game_victim_for(game_id, scale, seed=seed)
    figure = CurveSet(f"Figure 7 — ξ ablation on {game_id} (IMAP-PC+BR)")
    finals = {}
    for xi in xis:
        result = train_game_attack(game_id, victim, "imap-pc+br", scale, seed=seed, xi=xi)
        samples, asr = result.curve("asr")
        label = f"xi={xi}"
        for x, y in zip(samples, asr):
            figure.curve(label).add(x, y)
        ev = evaluate_game_cell(game_id, victim, result, scale)
        finals[xi] = ev.asr
        if verbose:
            print(f"[fig7] {game_id} xi={xi:<5} ASR {ev.asr:.2%}", flush=True)
    return {"curves": figure, "final_asr": finals}
