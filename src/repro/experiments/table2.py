"""Table 2 — sparse-reward tasks: nine tasks under SA-RL, the four IMAPs,
and the best IMAP+BR.

Claims reproduced: IMAP dominates SA-RL on all nine tasks; the winning
regularizer is task-dependent; BR helps on a subset of tasks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..envs.registry import SPARSE_TASKS
from ..eval.metrics import format_mean_std
from ..eval.tables import bold_min_per_row, render_table
from .config import ExperimentScale, current_scale
from .runner import evaluate_cell, train_single_agent_attack, victim_for

__all__ = ["TABLE2_ATTACKS", "Table2Cell", "Table2Result", "run_table2"]

TABLE2_ATTACKS = ["none", "random", "sarl", "imap-sc", "imap-pc", "imap-r", "imap-d"]
BR_ATTACKS = ["imap-sc+br", "imap-pc+br", "imap-r+br", "imap-d+br"]


@dataclass
class Table2Cell:
    env_id: str
    attack: str
    mean_reward: float
    std_reward: float
    asr: float


@dataclass
class Table2Result:
    cells: list[Table2Cell] = field(default_factory=list)
    include_br: bool = False

    def cell(self, env_id: str, attack: str) -> Table2Cell:
        for c in self.cells:
            if (c.env_id, c.attack) == (env_id, attack):
                return c
        raise KeyError((env_id, attack))

    def attacks_present(self) -> list[str]:
        seen = dict.fromkeys(c.attack for c in self.cells)
        return list(seen)

    def best_br(self, env_id: str) -> Table2Cell | None:
        brs = [c for c in self.cells if c.env_id == env_id and c.attack.endswith("+br")]
        return min(brs, key=lambda c: c.mean_reward) if brs else None

    def render(self) -> str:
        attacks = [a for a in self.attacks_present() if not a.endswith("+br")]
        env_ids = list(dict.fromkeys(c.env_id for c in self.cells))
        headers = ["Env"] + [a.upper() for a in attacks]
        if self.include_br:
            headers.append("IMAP+BR (best)")
        rows = []
        for env_id in env_ids:
            formatted, values = [], []
            for attack in attacks:
                c = self.cell(env_id, attack)
                formatted.append(format_mean_std(c.mean_reward, c.std_reward))
                values.append(c.mean_reward)
            marked = formatted[:1] + bold_min_per_row(values[1:], formatted[1:])
            row = [env_id] + marked
            if self.include_br:
                best = self.best_br(env_id)
                row.append(
                    f"{format_mean_std(best.mean_reward, best.std_reward)} "
                    f"({best.attack.split('-')[1].split('+')[0].upper()})"
                    if best else "-"
                )
            rows.append(row)
        return render_table(headers, rows,
                            title="Table 2 — victim episode reward (sparse tasks)")

    def imap_dominates_sarl_count(self) -> tuple[int, int]:
        """(rows where best IMAP <= SA-RL, total rows) — the paper's 9/9."""
        wins = total = 0
        for env_id in dict.fromkeys(c.env_id for c in self.cells):
            try:
                sarl = self.cell(env_id, "sarl").mean_reward
                imaps = [self.cell(env_id, f"imap-{r}").mean_reward
                         for r in ("sc", "pc", "r", "d")]
            except KeyError:
                continue
            total += 1
            wins += int(min(imaps) <= sarl)
        return wins, total


def run_table2(env_ids: list[str] | None = None, attacks: list[str] | None = None,
               include_br: bool = True, scale: ExperimentScale | None = None,
               seed: int = 0, verbose: bool = True) -> Table2Result:
    scale = scale or current_scale()
    env_ids = env_ids or SPARSE_TASKS
    attacks = list(attacks or TABLE2_ATTACKS)
    if include_br:
        attacks += BR_ATTACKS
    result = Table2Result(include_br=include_br)
    for env_id in env_ids:
        victim = victim_for(env_id, "ppo", scale, seed=seed)
        for attack in attacks:
            trained = None
            if attack not in ("none", "random"):
                trained = train_single_agent_attack(env_id, victim, attack, scale, seed=seed)
            ev = evaluate_cell(env_id, victim, attack, trained, scale)
            result.cells.append(Table2Cell(
                env_id=env_id, attack=attack,
                mean_reward=ev.mean_reward, std_reward=ev.std_reward, asr=ev.asr,
            ))
            if verbose:
                print(f"[table2] {env_id:26s} {attack:12s} "
                      f"{ev.mean_reward:6.2f} ± {ev.std_reward:5.2f}  ASR {ev.asr:.0%}",
                      flush=True)
    return result
