"""Figure 5 — ASR learning curves in the two competitive games:
AP-MARL versus IMAP-PC+BR.

The preserved shape: IMAP-PC+BR discovers winning (blocking/saving)
behaviour in substantially fewer samples and reaches a higher ASR at the
fixed training budget.
"""

from __future__ import annotations

from ..envs.registry import GAME_TASKS
from ..eval.curves import CurveSet
from .config import ExperimentScale, current_scale
from .runner import evaluate_game_cell, game_victim_for, train_game_attack

__all__ = ["FIG5_ATTACKS", "run_fig5"]

FIG5_ATTACKS = ["apmarl", "imap-pc+br"]


def run_fig5(game_ids: list[str] | None = None, attacks: list[str] | None = None,
             scale: ExperimentScale | None = None, seed: int = 0,
             verbose: bool = True) -> dict[str, dict]:
    scale = scale or current_scale()
    game_ids = game_ids or GAME_TASKS
    attacks = attacks or FIG5_ATTACKS
    out: dict[str, dict] = {}
    for game_id in game_ids:
        victim = game_victim_for(game_id, scale, seed=seed)
        figure = CurveSet(f"Figure 5 — {game_id}: ASR vs attack samples")
        finals = {}
        for attack in attacks:
            result = train_game_attack(game_id, victim, attack, scale, seed=seed)
            samples, asr = result.curve("asr")
            for x, y in zip(samples, asr):
                figure.curve(attack.upper()).add(x, y)
            ev = evaluate_game_cell(game_id, victim, result, scale)
            finals[attack] = ev.asr
            if verbose:
                print(f"[fig5] {game_id:22s} {attack:12s} final ASR {ev.asr:.2%}",
                      flush=True)
        out[game_id] = {"curves": figure, "final_asr": finals}
    return out
