"""Multi-seed attack training (the paper's variance discussion,
Section 6.3.1: "attackers can train multiple APs using various seeds and
select the best one").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..attacks.base import AttackResult
from ..eval.harness import AttackEvaluation
from ..rl.policy import ActorCritic
from .config import ExperimentScale
from .runner import evaluate_cell, train_single_agent_attack

__all__ = ["MultiSeedOutcome", "train_best_of_seeds"]


@dataclass
class MultiSeedOutcome:
    """Per-seed evaluations plus the deployed (best) attack."""

    attack: str
    evaluations: list[AttackEvaluation] = field(default_factory=list)
    results: list[AttackResult] = field(default_factory=list)

    @property
    def best_index(self) -> int:
        return int(np.argmin([e.mean_reward for e in self.evaluations]))

    @property
    def best(self) -> AttackEvaluation:
        return self.evaluations[self.best_index]

    @property
    def best_result(self) -> AttackResult:
        return self.results[self.best_index]

    @property
    def median_reward(self) -> float:
        return float(np.median([e.mean_reward for e in self.evaluations]))

    @property
    def seed_spread(self) -> float:
        """Max-min victim reward across seeds (the paper's large-std point)."""
        rewards = [e.mean_reward for e in self.evaluations]
        return float(max(rewards) - min(rewards))


def train_best_of_seeds(env_id: str, victim: ActorCritic, attack: str,
                        scale: ExperimentScale, seeds: tuple[int, ...] = (0, 1, 2),
                        epsilon: float | None = None) -> MultiSeedOutcome:
    """Train ``attack`` with several seeds and keep the strongest one."""
    outcome = MultiSeedOutcome(attack=attack)
    for seed in seeds:
        result = train_single_agent_attack(env_id, victim, attack, scale,
                                           seed=seed, epsilon=epsilon)
        evaluation = evaluate_cell(env_id, victim, attack, result, scale,
                                   seed=1000 + seed, epsilon=epsilon)
        outcome.results.append(result)
        outcome.evaluations.append(evaluation)
    return outcome
