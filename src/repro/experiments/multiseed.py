"""Multi-seed attack training (the paper's variance discussion,
Section 6.3.1: "attackers can train multiple APs using various seeds and
select the best one").

``train_best_of_seeds(..., max_workers=N)`` farms the per-seed training
runs out to the process-pool scheduler; each seed's run is a pure
function of ``(env_id, victim, attack, scale, seed)``, so the parallel
path selects exactly the same best seed as the sequential one.  A seed
whose worker crashes is recorded in ``MultiSeedOutcome.errors`` and
dropped from the selection instead of killing the sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..attacks.base import AttackResult
from ..eval.harness import AttackEvaluation
from ..rl.policy import ActorCritic
from ..runtime import Job, run_parallel
from .config import ExperimentScale
from .runner import evaluate_cell, train_single_agent_attack

__all__ = ["MultiSeedOutcome", "train_best_of_seeds"]


@dataclass
class MultiSeedOutcome:
    """Per-seed evaluations plus the deployed (best) attack."""

    attack: str
    evaluations: list[AttackEvaluation] = field(default_factory=list)
    results: list[AttackResult] = field(default_factory=list)
    seeds: list[int] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)

    @property
    def best_index(self) -> int:
        return int(np.argmin([e.mean_reward for e in self.evaluations]))

    @property
    def best(self) -> AttackEvaluation:
        return self.evaluations[self.best_index]

    @property
    def best_result(self) -> AttackResult:
        return self.results[self.best_index]

    @property
    def median_reward(self) -> float:
        return float(np.median([e.mean_reward for e in self.evaluations]))

    @property
    def seed_spread(self) -> float:
        """Max-min victim reward across seeds (the paper's large-std point)."""
        rewards = [e.mean_reward for e in self.evaluations]
        return float(max(rewards) - min(rewards))


def _train_and_evaluate_seed(env_id: str, victim: ActorCritic, attack: str,
                             scale: ExperimentScale, seed: int,
                             epsilon: float | None):
    """One multiseed cell (top-level so the process pool can pickle it)."""
    result = train_single_agent_attack(env_id, victim, attack, scale,
                                       seed=seed, epsilon=epsilon)
    evaluation = evaluate_cell(env_id, victim, attack, result, scale,
                               seed=1000 + seed, epsilon=epsilon)
    return result, evaluation


def train_best_of_seeds(env_id: str, victim: ActorCritic, attack: str,
                        scale: ExperimentScale, seeds: tuple[int, ...] = (0, 1, 2),
                        epsilon: float | None = None,
                        max_workers: int = 1, pool=None) -> MultiSeedOutcome:
    """Train ``attack`` with several seeds and keep the strongest one.

    ``max_workers > 1`` runs the seeds on a process pool; results come
    back in seed order, so best-seed selection matches the sequential
    path exactly.  ``pool=`` (a :class:`~repro.runtime.WorkerPool`)
    reuses persistent warm workers instead of spawning per sweep —
    same results, no per-attack process-start tax across a grid.
    """
    outcome = MultiSeedOutcome(attack=attack)
    if max_workers <= 1 and pool is None:
        for seed in seeds:
            result, evaluation = _train_and_evaluate_seed(
                env_id, victim, attack, scale, seed, epsilon)
            outcome.results.append(result)
            outcome.evaluations.append(evaluation)
            outcome.seeds.append(seed)
        return outcome

    jobs = [Job(fn=_train_and_evaluate_seed,
                args=(env_id, victim, attack, scale, seed, epsilon),
                name=f"{attack}@{env_id}/seed{seed}")
            for seed in seeds]
    report = run_parallel(jobs, max_workers=max_workers, pool=pool)
    for seed, job_result in zip(seeds, report.results):
        if not job_result.ok:
            outcome.errors.append(f"seed {seed}: {job_result.error}")
            continue
        result, evaluation = job_result.value
        outcome.results.append(result)
        outcome.evaluations.append(evaluation)
        outcome.seeds.append(seed)
    if not outcome.evaluations:
        raise RuntimeError(
            f"all {len(seeds)} multiseed workers failed for {attack}@{env_id}: "
            + "; ".join(outcome.errors))
    return outcome
