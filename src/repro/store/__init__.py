"""Checkpoint/resume subsystem on a content-addressed artifact store.

* :mod:`repro.store.keys` — canonical-JSON specs hashed to SHA-256 keys.
* :mod:`repro.store.artifact_store` — atomic, immutable, content-addressed
  blobs with JSON sidecars and ``list``/``prune``/``verify`` maintenance.
* :mod:`repro.store.checkpoint` — full-state training snapshots that make
  resumed runs bit-identical to uninterrupted ones.

``CODE_VERSION`` tags every spec produced by this tree: bumping
``repro.__version__`` invalidates all content addresses at once, so
artifacts trained by old code are never silently reused by new code.
"""

from __future__ import annotations

import repro

from .artifact_store import (
    ArtifactEntry,
    ArtifactStore,
    default_store,
    default_store_root,
)
from .checkpoint import (
    TrainingCheckpoint,
    capture_rng_states,
    join_tree,
    restore_rng_states,
    split_tree,
)
from .keys import canonical_json, canonicalize, spec_key, state_fingerprint

__all__ = [
    "CODE_VERSION",
    "ArtifactEntry",
    "ArtifactStore",
    "default_store",
    "default_store_root",
    "TrainingCheckpoint",
    "capture_rng_states",
    "restore_rng_states",
    "split_tree",
    "join_tree",
    "canonicalize",
    "canonical_json",
    "spec_key",
    "state_fingerprint",
]

CODE_VERSION = getattr(repro, "__version__", "unknown")
