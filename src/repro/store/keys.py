"""Content-addressed keys: canonical JSON specs hashed with SHA-256.

A *spec* is a JSON-able description of how an artifact was produced
(env id, defense/attack config, code-version tag, seed, ...).  Two specs
that describe the same computation must produce the same key regardless
of dict insertion order, tuple-vs-list container choice, or numpy scalar
types, so canonicalization normalizes all of those before hashing.

Floats are rendered with ``repr`` (shortest round-trip form), which is
deterministic across platforms for IEEE-754 doubles; NaN/Infinity are
rejected because they have no canonical JSON form.  ``1`` and ``1.0``
hash differently by design — an int budget and a float budget are
different configurations.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math

import numpy as np

__all__ = ["canonicalize", "canonical_json", "spec_key", "state_fingerprint"]


def canonicalize(obj):
    """Normalize ``obj`` into plain JSON types with deterministic structure."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return canonicalize(dataclasses.asdict(obj))
    if isinstance(obj, dict):
        out = {}
        for key in sorted(obj, key=str):
            if not isinstance(key, str):
                raise TypeError(f"spec keys must be strings, got {key!r}")
            out[key] = canonicalize(obj[key])
        return out
    if isinstance(obj, (list, tuple)):
        return [canonicalize(item) for item in obj]
    if isinstance(obj, np.ndarray):
        return canonicalize(obj.tolist())
    if isinstance(obj, (np.generic,)):
        return canonicalize(obj.item())
    if isinstance(obj, bool) or obj is None or isinstance(obj, (int, str)):
        return obj
    if isinstance(obj, float):
        if not math.isfinite(obj):
            raise ValueError(f"spec floats must be finite, got {obj!r}")
        return obj
    raise TypeError(f"cannot canonicalize {type(obj).__name__} for a spec key")


def canonical_json(obj) -> str:
    """The canonical serialized form: sorted keys, no whitespace, no NaN."""
    return json.dumps(canonicalize(obj), sort_keys=True, separators=(",", ":"),
                      ensure_ascii=True, allow_nan=False)


def spec_key(spec) -> str:
    """SHA-256 (hex) of the canonical JSON form of ``spec``."""
    return hashlib.sha256(canonical_json(spec).encode("utf-8")).hexdigest()


def state_fingerprint(state: dict[str, np.ndarray]) -> str:
    """SHA-256 (hex) over a named array dict (e.g. a policy state dict).

    Used to pin artifacts to the exact parameters they depend on — an
    attack trained against a victim embeds the victim's fingerprint in
    its spec, so retraining the victim invalidates the attack cache.
    """
    digest = hashlib.sha256()
    for name in sorted(state):
        value = np.ascontiguousarray(np.asarray(state[name], dtype=np.float64))
        digest.update(name.encode("utf-8"))
        digest.update(str(value.shape).encode("utf-8"))
        digest.update(value.tobytes())
    return digest.hexdigest()
