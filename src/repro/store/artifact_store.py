"""Content-addressed artifact store: specs in, immutable ``.npz`` blobs out.

Layout (two-hex fan-out keeps directory sizes bounded at scale)::

    <root>/objects/<key[:2]>/<key>.npz    # named arrays (atomic tmp+rename)
    <root>/objects/<key[:2]>/<key>.json   # sidecar: spec + metadata + stats

where ``key = sha256(canonical_json(spec))``.  The sidecar is written
*after* the blob, so it doubles as the commit marker: ``list``/``get``
only believe artifacts whose sidecar exists, and a crash between the two
writes leaves an orphan blob that ``verify`` reports and ``prune``
removes.  Artifacts are immutable — a changed config changes the spec,
which changes the key, which is a different artifact (this is what fixes
the stale-victim-cache bug: the old filename convention ignored the
training config entirely).

Every ``get``/``put`` is reported to the ambient telemetry (when one is
installed) so run manifests record exactly which artifact hashes a run
consumed and produced.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
import time
import zipfile
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..nn.serialization import _fsync_dir, load_state, save_state
from ..telemetry import current_telemetry
from .keys import canonicalize, spec_key

__all__ = ["ArtifactEntry", "ArtifactStore", "default_store_root", "default_store"]


def default_store_root() -> Path:
    """``$REPRO_STORE`` if set, else ``$REPRO_ARTIFACTS/store`` (default
    ``artifacts/store``)."""
    override = os.environ.get("REPRO_STORE")
    if override:
        return Path(override)
    return Path(os.environ.get("REPRO_ARTIFACTS", "artifacts")) / "store"


def default_store() -> "ArtifactStore":
    return ArtifactStore(default_store_root())


def _file_sha256(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


@dataclass
class ArtifactEntry:
    """One committed artifact: its key, provenance spec, and file locations."""

    key: str
    spec: dict
    metadata: dict = field(default_factory=dict)
    created_at: float = 0.0
    nbytes: int = 0
    # SHA-256 of the blob file itself (the key hashes the *spec*, not the
    # bytes); None on sidecars written before integrity tracking existed.
    blob_sha256: str | None = None
    path: Path | None = None      # the .npz blob
    sidecar: Path | None = None   # the .json commit marker

    @property
    def group(self) -> str:
        """Coarse identity used by ``prune(keep_latest=)``: same group =
        same logical artifact family, differing only in config/seed."""
        spec = self.spec
        return ":".join(str(spec.get(field, "")) for field in
                        ("kind", "env_id", "game_id", "defense", "attack"))


class ArtifactStore:
    """Filesystem-backed content-addressed store (see module docstring).

    ``cache_size > 0`` enables an in-process LRU of the last N
    *deserialized* blobs, so a serving hot path answering the same spec
    repeatedly doesn't re-read and re-parse the same ``.npz`` from disk
    on every hit.  The cache is keyed by content address, so immutability
    makes staleness impossible within one process; ``put``/``remove``
    still invalidate defensively (a re-put of the same key is the only
    way bytes behind a key can legally change, and only to equal
    content).  Cached arrays are shared between callers and must be
    treated as read-only; callers that mutate must copy (the policy
    loaders already do — ``load_state_dict`` copies into place).

    Every ``get`` outcome bumps a telemetry counter (when a telemetry is
    ambient or injected): ``store.hits`` / ``store.misses`` for the
    overall result, plus ``store.memcache_hits`` when the LRU answered
    without touching disk.
    """

    def __init__(self, root: str | Path, telemetry=None, cache_size: int = 0):
        self.root = Path(root)
        self._telemetry = telemetry
        self.cache_size = max(0, int(cache_size))
        self._cache: OrderedDict[str, tuple[dict, ArtifactEntry]] = OrderedDict()
        self._cache_lock = threading.Lock()

    # ------------------------------------------------------------- plumbing

    @property
    def objects_dir(self) -> Path:
        return self.root / "objects"

    def key_for(self, spec: dict) -> str:
        return spec_key(spec)

    def _paths(self, key: str) -> tuple[Path, Path]:
        shard = self.objects_dir / key[:2]
        return shard / f"{key}.npz", shard / f"{key}.json"

    def _record(self, role: str, entry: ArtifactEntry) -> None:
        telemetry = self._telemetry if self._telemetry is not None else current_telemetry()
        if telemetry is not None:
            telemetry.record_artifact(entry.key, role, kind=entry.spec.get("kind"))

    def _count(self, name: str) -> None:
        telemetry = self._telemetry if self._telemetry is not None else current_telemetry()
        if telemetry is not None:
            telemetry.metrics.counter(name).inc()

    # ----------------------------------------------------------- blob cache

    def _cache_lookup(self, key: str) -> tuple[dict, ArtifactEntry] | None:
        if self.cache_size <= 0:
            return None
        with self._cache_lock:
            hit = self._cache.get(key)
            if hit is not None:
                self._cache.move_to_end(key)
            return hit

    def _cache_insert(self, key: str, state: dict, entry: ArtifactEntry) -> None:
        if self.cache_size <= 0:
            return
        with self._cache_lock:
            self._cache[key] = (state, entry)
            self._cache.move_to_end(key)
            while len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)

    def _cache_invalidate(self, key: str) -> None:
        with self._cache_lock:
            self._cache.pop(key, None)

    # ------------------------------------------------------------ write path

    def put(self, spec: dict, state: dict[str, np.ndarray],
            metadata: dict | None = None) -> ArtifactEntry:
        """Commit ``state`` under the content address of ``spec``.

        Re-putting an existing key overwrites atomically with identical
        content (the spec *is* the identity), so concurrent writers of
        the same cell are idempotent rather than corrupting.  Both the
        blob and its sidecar are fsynced before their renames (and the
        containing directory after): a power cut can lose an in-flight
        put entirely, but can never commit a name over unwritten bytes —
        artifacts may be expensive multi-hour training results, and a
        torn one *looks* committed until ``verify`` runs.
        """
        spec = canonicalize(spec)
        key = spec_key(spec)
        blob_path, sidecar_path = self._paths(key)
        save_state(state, blob_path, metadata={"key": key, "spec": spec},
                   durable=True)
        entry = ArtifactEntry(
            key=key, spec=spec, metadata=canonicalize(metadata or {}),
            created_at=time.time(), nbytes=blob_path.stat().st_size,
            blob_sha256=_file_sha256(blob_path),
            path=blob_path, sidecar=sidecar_path,
        )
        payload = json.dumps({
            "key": key, "spec": spec, "metadata": entry.metadata,
            "created_at": entry.created_at, "nbytes": entry.nbytes,
            "blob_sha256": entry.blob_sha256,
        }, indent=2, sort_keys=True)
        fd, tmp_name = tempfile.mkstemp(dir=sidecar_path.parent,
                                        prefix=sidecar_path.name, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(payload + "\n")
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp_name, sidecar_path)
            _fsync_dir(sidecar_path.parent)
        except BaseException:
            if os.path.exists(tmp_name):
                os.unlink(tmp_name)
            raise
        self._cache_invalidate(key)
        self._record("produced", entry)
        return entry

    # ------------------------------------------------------------- read path

    def entry(self, spec: dict) -> ArtifactEntry | None:
        """The committed entry for ``spec``, or None."""
        return self.entry_by_key(spec_key(canonicalize(spec)))

    def entry_by_key(self, key: str) -> ArtifactEntry | None:
        blob_path, sidecar_path = self._paths(key)
        if not sidecar_path.exists() or not blob_path.exists():
            return None
        try:
            with open(sidecar_path, encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None
        return ArtifactEntry(
            key=doc.get("key", key), spec=doc.get("spec", {}),
            metadata=doc.get("metadata", {}),
            created_at=float(doc.get("created_at", 0.0)),
            nbytes=int(doc.get("nbytes", 0)),
            blob_sha256=doc.get("blob_sha256"),
            path=blob_path, sidecar=sidecar_path,
        )

    def contains(self, spec: dict) -> bool:
        return self.entry(spec) is not None

    def _blob_corruption(self, entry: ArtifactEntry) -> str | None:
        """Why the blob behind ``entry``'s valid sidecar can't be trusted.

        A truncated or bit-flipped ``.npz`` behind an intact sidecar is
        the nastiest store corruption: the artifact *looks* committed.
        Size first (one stat), then the recorded content hash.  Sidecars
        from before integrity tracking (no ``blob_sha256``) only get the
        checks their fields allow.
        """
        try:
            actual = entry.path.stat().st_size
        except OSError as exc:
            return f"blob unreadable ({exc})"
        if entry.nbytes and actual != entry.nbytes:
            return (f"blob is {actual} bytes, sidecar records "
                    f"{entry.nbytes} (truncated or overwritten)")
        if entry.blob_sha256 is not None:
            actual_hash = _file_sha256(entry.path)
            if actual_hash != entry.blob_sha256:
                return (f"blob sha256 {actual_hash[:12]}… does not match "
                        f"sidecar's {entry.blob_sha256[:12]}… (corrupt)")
        return None

    def get(self, spec: dict) -> tuple[dict[str, np.ndarray], ArtifactEntry] | None:
        """Load ``(state, entry)`` for ``spec``; None on miss or corrupt blob.

        A corrupt/truncated blob is treated exactly like a cache miss so
        callers fall back to retraining instead of crashing on (or worse,
        silently serving) damaged arrays.  With ``cache_size > 0`` a
        repeat ``get`` of a recently loaded key is answered from the
        in-process LRU without touching disk; the returned dict is a
        fresh shallow copy either way, but the *arrays* are shared —
        treat them as read-only.
        """
        key = spec_key(canonicalize(spec))
        cached = self._cache_lookup(key)
        if cached is not None:
            state, entry = cached
            self._count("store.hits")
            self._count("store.memcache_hits")
            self._record("consumed", entry)
            return dict(state), entry
        entry = self.entry_by_key(key)
        if entry is None:
            self._count("store.misses")
            return None
        if self._blob_corruption(entry) is not None:
            self._count("store.misses")
            return None
        try:
            state, _ = load_state(entry.path)
        except (OSError, ValueError, zipfile.BadZipFile):
            self._count("store.misses")
            return None
        self._cache_insert(key, state, entry)
        self._count("store.hits")
        self._record("consumed", entry)
        return dict(state), entry

    # ---------------------------------------------------------- maintenance

    def list(self) -> list[ArtifactEntry]:
        """All committed artifacts, newest first (then by key for ties)."""
        entries = []
        for sidecar in sorted(self.objects_dir.glob("*/*.json")):
            entry = self.entry_by_key(sidecar.stem)
            if entry is not None:
                entries.append(entry)
        return sorted(entries, key=lambda e: (-e.created_at, e.key))

    def __len__(self) -> int:
        return len(self.list())

    def total_bytes(self) -> int:
        return sum(entry.nbytes for entry in self.list())

    def remove(self, key: str) -> bool:
        self._cache_invalidate(key)
        blob_path, sidecar_path = self._paths(key)
        removed = False
        # Sidecar first: an interrupted remove leaves an orphan blob
        # (invisible, reported by verify), never a sidecar with no blob.
        for path in (sidecar_path, blob_path):
            if path.exists():
                path.unlink()
                removed = True
        return removed

    def prune(self, keep_latest: int | None = None, predicate=None) -> list[ArtifactEntry]:
        """Delete artifacts; returns the removed entries.

        ``keep_latest=N`` keeps the N newest artifacts *per group* (kind
        + env/game + defense/attack — i.e. per logical cell family) and
        removes older ones.  ``predicate(entry) -> bool`` removes the
        entries it selects.  Orphan blobs (no sidecar) are always swept.
        """
        removed: list[ArtifactEntry] = []
        if keep_latest is not None:
            if keep_latest < 0:
                raise ValueError("keep_latest must be >= 0")
            by_group: dict[str, list[ArtifactEntry]] = {}
            for entry in self.list():  # newest first
                by_group.setdefault(entry.group, []).append(entry)
            for entries in by_group.values():
                for entry in entries[keep_latest:]:
                    self.remove(entry.key)
                    removed.append(entry)
        if predicate is not None:
            for entry in self.list():
                if predicate(entry):
                    self.remove(entry.key)
                    removed.append(entry)
        for blob in self.objects_dir.glob("*/*.npz"):
            if not blob.with_suffix(".json").exists():
                blob.unlink()
        return removed

    def verify(self) -> list[str]:
        """Integrity scan; returns human-readable problem descriptions.

        Checks: sidecar parses, its recorded key matches the spec's
        content address *and* the filename, the blob exists, matches the
        sidecar's recorded size and SHA-256, and loads, and no orphan
        blobs are lying around.
        """
        problems: list[str] = []
        if not self.objects_dir.exists():
            return problems
        for sidecar in sorted(self.objects_dir.glob("*/*.json")):
            key = sidecar.stem
            try:
                with open(sidecar, encoding="utf-8") as fh:
                    doc = json.load(fh)
            except (OSError, json.JSONDecodeError) as exc:
                problems.append(f"{key}: unreadable sidecar ({exc})")
                continue
            recorded = doc.get("key")
            if recorded != key:
                problems.append(f"{key}: sidecar records key {recorded!r}")
            recomputed = spec_key(doc.get("spec", {}))
            if recomputed != key:
                problems.append(f"{key}: spec hashes to {recomputed[:12]}… "
                                "(spec/key mismatch)")
            blob = sidecar.with_suffix(".npz")
            if not blob.exists():
                problems.append(f"{key}: blob missing")
                continue
            entry = self.entry_by_key(key)
            if entry is not None:
                corruption = self._blob_corruption(entry)
                if corruption is not None:
                    problems.append(f"{key}: {corruption}")
                    continue
            try:
                load_state(blob)
            except Exception as exc:  # noqa: BLE001 — report, don't crash the scan
                problems.append(f"{key}: blob unreadable ({exc})")
        for blob in sorted(self.objects_dir.glob("*/*.npz")):
            if not blob.with_suffix(".json").exists():
                problems.append(f"{blob.stem}: orphan blob (no sidecar)")
        return problems
