"""Full-state training checkpoints for bit-identical resume.

A :class:`TrainingCheckpoint` captures everything a training loop needs
to continue *exactly* where it stopped: module parameters, optimizer
moment buffers, observation/reward normalizer statistics, every
``np.random.Generator`` reachable from the environment graph, iteration
counters, and the training history so far.  The contract (verified by
``tests/test_resume.py`` against the PR-2 determinism battery): a run
resumed from a checkpoint produces bit-identical parameters, history
records, and telemetry event payloads versus the same run uninterrupted.

Checkpoints serialize through :func:`repro.nn.serialization.save_state`
(atomic tmp+rename ``.npz``): arrays are flattened out of the nested
state tree into named npz entries while scalars, RNG bit-generator
states, and the history ride in the JSON metadata sidecar.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..nn.serialization import load_state, save_state

__all__ = [
    "TrainingCheckpoint", "split_tree", "join_tree",
    "capture_rng_states", "restore_rng_states",
]

_ARRAY_MARKER = "__ndarray__"
_FORMAT_VERSION = 1


# --------------------------------------------------------------- state trees

def split_tree(tree):
    """Flatten a nested state tree into (arrays, json_tree).

    ``tree`` may nest dicts, lists/tuples, numpy arrays, scalars, bools,
    strings, and ``None``.  Arrays are pulled into a flat ``{path:
    ndarray}`` dict (npz-ready) and replaced in the JSON tree by a
    ``{"__ndarray__": path}`` marker; everything else stays in place.
    """
    arrays: dict[str, np.ndarray] = {}

    def walk(node, path: str):
        if isinstance(node, np.ndarray):
            arrays[path] = node
            return {_ARRAY_MARKER: path}
        if isinstance(node, dict):
            out = {}
            for key, value in node.items():
                if not isinstance(key, str) or "/" in key:
                    raise TypeError(f"state tree keys must be '/'-free strings: {key!r}")
                out[key] = walk(value, f"{path}/{key}" if path else key)
            return out
        if isinstance(node, (list, tuple)):
            return [walk(item, f"{path}/{i}") for i, item in enumerate(node)]
        if isinstance(node, np.generic):
            return node.item()
        return node

    return arrays, walk(tree, "")


def join_tree(json_tree, arrays: dict[str, np.ndarray]):
    """Reverse :func:`split_tree`: re-inline arrays into the JSON tree."""
    if isinstance(json_tree, dict):
        if set(json_tree) == {_ARRAY_MARKER}:
            return arrays[json_tree[_ARRAY_MARKER]]
        return {key: join_tree(value, arrays) for key, value in json_tree.items()}
    if isinstance(json_tree, list):
        return [join_tree(item, arrays) for item in json_tree]
    return json_tree


# ----------------------------------------------------------------- RNG graphs

def _is_repro_object(value) -> bool:
    return type(value).__module__.split(".")[0] == "repro"


def _walk_generators(obj, path: str, found: dict, seen: set) -> None:
    if id(obj) in seen:
        return
    seen.add(id(obj))
    state = getattr(obj, "__dict__", None)
    if state is None:
        return
    for name, value in state.items():
        child = f"{path}.{name}" if path else name
        if isinstance(value, np.random.Generator):
            found[child] = value
        elif isinstance(value, (list, tuple)):
            for i, item in enumerate(value):
                if isinstance(item, np.random.Generator):
                    found[f"{child}[{i}]"] = item
                elif _is_repro_object(item):
                    _walk_generators(item, f"{child}[{i}]", found, seen)
        elif _is_repro_object(value):
            _walk_generators(value, child, found, seen)


def _find_generators(obj) -> dict[str, np.random.Generator]:
    found: dict[str, np.random.Generator] = {}
    _walk_generators(obj, "", found, set())
    return found


def capture_rng_states(obj) -> dict[str, dict]:
    """Bit-generator states of every ``np.random.Generator`` reachable
    from ``obj`` through repro objects (env wrappers, opponents, vector
    lanes), keyed by attribute path.  The states are JSON-serializable.

    Objects whose generators live in *other processes* (e.g.
    :class:`~repro.runtime.async_vec_env.AsyncVectorEnv`, whose lanes
    are worker processes) expose ``rng_states()`` / ``set_rng_states()``
    instead of an in-process generator graph; those are honoured here so
    checkpoints work identically across env backends.
    """
    remote = getattr(obj, "rng_states", None)
    if callable(remote):
        return remote()
    return {path: gen.bit_generator.state for path, gen in _find_generators(obj).items()}


def restore_rng_states(obj, states: dict[str, dict]) -> None:
    """Restore generator states captured by :func:`capture_rng_states`.

    The object graph must expose exactly the generators that were
    captured — a mismatch means the checkpoint was taken from a
    differently-shaped run and resuming would silently diverge.
    """
    remote = getattr(obj, "set_rng_states", None)
    if callable(remote):
        remote(states)
        return
    found = _find_generators(obj)
    missing = set(states) - set(found)
    extra = set(found) - set(states)
    if missing or extra:
        raise KeyError(
            "RNG graph mismatch between checkpoint and live objects: "
            f"missing={sorted(missing)} extra={sorted(extra)}")
    for path, state in states.items():
        found[path].bit_generator.state = state


# --------------------------------------------------------------- checkpoints

@dataclass
class TrainingCheckpoint:
    """One resumable snapshot of a training loop at an iteration boundary.

    ``kind`` tags the producing loop (``"train_ppo"`` / ``"adversary"``)
    so a checkpoint cannot be resumed by the wrong one; ``iteration`` is
    the number of *completed* iterations; ``history`` the per-iteration
    records so far; ``state`` an arbitrary nested tree (see module
    docstring) of arrays, scalars, and RNG states.
    """

    kind: str
    iteration: int
    history: list
    state: dict

    def save(self, path: str | Path) -> Path:
        arrays, json_tree = split_tree(self.state)
        return save_state(arrays, path, metadata={
            "format": _FORMAT_VERSION,
            "kind": self.kind,
            "iteration": self.iteration,
            "history": self.history,
            "tree": json_tree,
        })

    @classmethod
    def load(cls, path: str | Path) -> "TrainingCheckpoint":
        arrays, meta = load_state(path)
        if meta.get("format") != _FORMAT_VERSION:
            raise ValueError(f"unsupported checkpoint format in {path}: "
                             f"{meta.get('format')!r}")
        return cls(
            kind=meta["kind"],
            iteration=int(meta["iteration"]),
            history=meta["history"],
            state=join_tree(meta["tree"], arrays),
        )

    def expect_kind(self, kind: str) -> "TrainingCheckpoint":
        if self.kind != kind:
            raise ValueError(f"checkpoint kind {self.kind!r} cannot resume a "
                             f"{kind!r} loop")
        return self
