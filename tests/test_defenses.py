"""Defense registry, smoothness losses, ATLA perturbed rollouts."""

from __future__ import annotations

import numpy as np
import pytest

from repro import envs, nn
from repro.defenses import (
    DefenseTrainConfig,
    adversarial_smoothness_loss,
    defense_names,
    fgsm_perturbation,
    get_defense,
    random_smoothness_loss,
    register_defense,
)
from repro.defenses.atla import collect_perturbed_rollout
from repro.defenses.sa_regularizer import make_sa_loss
from repro.defenses.wocar import make_wocar_loss
from repro.rl import ActorCritic, RolloutBuffer


@pytest.fixture
def policy(rng):
    return ActorCritic(6, 2, hidden_sizes=(16,), rng=rng)


class TestRegistry:
    def test_all_paper_defenses_registered(self):
        assert set(defense_names()) >= {"ppo", "sa", "radial", "wocar", "atla", "atla_sa"}

    def test_unknown_defense(self):
        with pytest.raises(KeyError):
            get_defense("magic")

    def test_duplicate_rejected(self):
        with pytest.raises(ValueError):
            register_defense("ppo")(lambda f, c: None)


class TestSmoothnessLosses:
    def test_random_smoothness_nonnegative(self, policy, rng):
        obs = rng.standard_normal((16, 6))
        dist = policy.distribution(obs)
        loss = random_smoothness_loss(policy, obs, dist, epsilon=0.1, rng=rng)
        assert float(loss.data) >= 0.0

    def test_random_smoothness_zero_at_zero_eps(self, policy, rng):
        obs = rng.standard_normal((8, 6))
        dist = policy.distribution(obs)
        loss = random_smoothness_loss(policy, obs, dist, epsilon=0.0, rng=rng)
        assert float(loss.data) == pytest.approx(0.0, abs=1e-12)

    def test_random_smoothness_backward(self, policy, rng):
        obs = rng.standard_normal((8, 6))
        dist = policy.distribution(obs)
        loss = random_smoothness_loss(policy, obs, dist, epsilon=0.2, rng=rng)
        loss.backward()
        assert any(p.grad is not None for p in policy.actor.parameters())

    def test_fgsm_within_ball(self, policy, rng):
        obs = rng.standard_normal((10, 6))
        delta = fgsm_perturbation(policy, obs, epsilon=0.15, rng=rng)
        assert np.abs(delta).max() <= 0.15 + 1e-12
        assert delta.shape == obs.shape

    def test_fgsm_leaves_no_grads_behind(self, policy, rng):
        obs = rng.standard_normal((4, 6))
        fgsm_perturbation(policy, obs, epsilon=0.1, rng=rng)
        assert all(p.grad is None for p in policy.parameters())

    def test_adversarial_beats_random_smoothness(self, policy, rng):
        """FGSM perturbations should induce at least as much KL as random."""
        obs = rng.standard_normal((64, 6))
        dist = policy.distribution(obs)
        adv = float(adversarial_smoothness_loss(policy, obs, dist, 0.3, rng=rng).data)
        rand = float(random_smoothness_loss(policy, obs, dist, 0.3, rng).data)
        assert adv >= rand * 0.5  # allow slack; usually adv >> rand

    def test_wocar_loss_backward(self, policy, rng):
        obs = rng.standard_normal((16, 6))
        dist = policy.distribution(obs)
        loss = make_wocar_loss(0.2, weight=1.0, seed=0)(policy, obs, dist)
        assert float(loss.data) >= 0.0
        loss.backward()
        grads = [p.grad is not None for p in policy.parameters()]
        assert any(grads)

    def test_sa_loss_factory_weight(self, policy, rng):
        obs = rng.standard_normal((8, 6))
        dist = policy.distribution(obs)
        l1 = float(make_sa_loss(0.2, weight=1.0, seed=5)(policy, obs, dist).data)
        l2 = float(make_sa_loss(0.2, weight=2.0, seed=5)(policy, obs, dist).data)
        assert l2 == pytest.approx(2.0 * l1)


class TestDefenseTrainers:
    @pytest.mark.parametrize("name", ["ppo", "sa", "radial", "wocar"])
    def test_trainer_produces_frozen_victim(self, name):
        cfg = DefenseTrainConfig(iterations=1, steps_per_iteration=128,
                                 hidden_sizes=(8,), seed=0, epsilon=0.3)
        victim = get_defense(name)(lambda: envs.make("Hopper-v0"), cfg)
        assert victim.normalizer.frozen
        assert victim.actor.output.weight.data.shape == (8, 3)

    def test_atla_runs(self):
        cfg = DefenseTrainConfig(iterations=2, steps_per_iteration=128,
                                 hidden_sizes=(8,), seed=0, epsilon=0.3,
                                 atla_phases=2, atla_adversary_iterations=1)
        victim = get_defense("atla")(lambda: envs.make("Hopper-v0"), cfg)
        assert victim.normalizer.frozen

    def test_atla_sa_runs(self):
        cfg = DefenseTrainConfig(iterations=2, steps_per_iteration=128,
                                 hidden_sizes=(8,), seed=0, epsilon=0.3,
                                 atla_phases=1, atla_adversary_iterations=1)
        victim = get_defense("atla_sa")(lambda: envs.make("Hopper-v0"), cfg)
        assert victim.normalizer.frozen


class TestPerturbedRollout:
    def test_without_adversary_fills_buffer(self, rng):
        env = envs.make("Hopper-v0")
        env.seed(0)
        victim = ActorCritic(11, 3, hidden_sizes=(8,), rng=rng)
        buffer = RolloutBuffer(64, 11, 3)
        mean_ret = collect_perturbed_rollout(env, victim, None, 0.3, buffer, rng)
        assert buffer.full
        assert np.isfinite(mean_ret)

    def test_with_adversary_perturbs_observations(self, rng):
        env = envs.make("Hopper-v0")
        env.seed(0)
        victim = ActorCritic(11, 3, hidden_sizes=(8,), rng=rng)

        class BigAttack:
            def action(self, obs, rng=None, deterministic=False):
                return np.ones(11)

        buffer = RolloutBuffer(32, 11, 3)
        collect_perturbed_rollout(env, victim, BigAttack(), 0.5, buffer, rng)
        # stored observations include the +0.5 shift from the attack
        clean_buffer = RolloutBuffer(32, 11, 3)
        env2 = envs.make("Hopper-v0")
        env2.seed(0)
        victim2 = ActorCritic(11, 3, hidden_sizes=(8,), rng=np.random.default_rng(12345))
        victim2.load_state_dict(victim.state_dict())
        collect_perturbed_rollout(env2, victim2, None, 0.5, clean_buffer,
                                  np.random.default_rng(12345))
        assert not np.allclose(buffer.obs[0], clean_buffer.obs[0])
