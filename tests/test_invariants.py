"""Cross-layer invariants tying the threat model, envs, and harness together."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import envs
from repro.attacks import StatePerturbationEnv, default_epsilon
from repro.eval import evaluate_single_agent


class TestObsLayoutContracts:
    """The scripted opponents rely on fixed observation layouts."""

    def test_ysnp_delta_slice(self):
        game = envs.make_game("YouShallNotPass-v0")
        _, oa = game.reset(seed=0)
        expected = game.runner.position - game.blocker.position
        np.testing.assert_allclose(oa[12:14], expected)

    def test_kad_ball_slice(self):
        game = envs.make_game("KickAndDefend-v0")
        _, oa = game.reset(seed=0)
        np.testing.assert_allclose(oa[12:14], game.ball_position)
        np.testing.assert_allclose(oa[1], game.goalie.position[1])

    def test_locomotion_core_prefix(self):
        env = envs.make("Hopper-v0")
        obs = env.reset(seed=0)
        body = env.unwrapped.body
        np.testing.assert_allclose(obs[: body.core_dim], body.core_state())


class TestSurrogateRewardContract:
    """The adversary may only see 1(victim succeeds): check it end to end."""

    def test_adversary_reward_matches_success_flag(self, tiny_victim, rng):
        adv = StatePerturbationEnv(envs.make("SparseHopper-v0"), tiny_victim,
                                   epsilon=0.4)
        adv.seed(3)
        obs = adv.reset()
        for _ in range(100):
            obs, reward, term, trunc, info = adv.step(rng.uniform(-1, 1, 11))
            assert reward == (-1.0 if info["success"] else 0.0)
            if term or trunc:
                obs = adv.reset()

    def test_victim_reward_not_leaked_in_observation(self, tiny_victim, rng):
        """The adversary's observation must not contain the private reward."""
        adv = StatePerturbationEnv(envs.make("Hopper-v0"), tiny_victim, epsilon=0.4)
        adv.seed(1)
        obs = adv.reset()
        assert obs.shape == tiny_victim.normalize(envs.make("Hopper-v0").reset(seed=1)).shape


class TestEvaluationConsistency:
    def test_clean_eval_equals_zero_epsilon_attack(self, tiny_victim):
        """Evaluating with a zero-budget attack must match the clean eval."""

        class Zero:
            def action(self, obs, rng=None, deterministic=True):
                return np.zeros_like(obs)

        clean = evaluate_single_agent(envs.make("Hopper-v0"), tiny_victim, None,
                                      episodes=3, seed=11)
        zero = evaluate_single_agent(envs.make("Hopper-v0"), tiny_victim, Zero(),
                                     epsilon=0.0, episodes=3, seed=11)
        np.testing.assert_allclose(sorted(clean.episode_rewards),
                                   sorted(zero.episode_rewards), rtol=1e-9)

    def test_larger_epsilon_never_reduces_attack_power_of_flip(self, tiny_victim):
        """ε-monotonicity sanity for a fixed scripted attack (statistical)."""

        class Flip:
            def action(self, obs, rng=None, deterministic=True):
                return -np.sign(obs)

        r_small = evaluate_single_agent(envs.make("Hopper-v0"), tiny_victim, Flip(),
                                        epsilon=0.05, episodes=5, seed=2).mean_reward
        r_big = evaluate_single_agent(envs.make("Hopper-v0"), tiny_victim, Flip(),
                                      epsilon=1.5, episodes=5, seed=2).mean_reward
        assert r_big <= r_small + 60.0  # big budget shouldn't help the victim


class TestEpsilonBudgets:
    @pytest.mark.parametrize("env_id", envs.DENSE_TASKS + envs.SPARSE_TASKS)
    def test_budget_positive_for_every_task(self, env_id):
        assert default_epsilon(env_id) > 0


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10_000))
def test_property_env_seeding_is_deterministic(seed):
    a, b = envs.make("SparseAnt-v0"), envs.make("SparseAnt-v0")
    oa, ob = a.reset(seed=seed), b.reset(seed=seed)
    np.testing.assert_array_equal(oa, ob)
    act = np.linspace(-1, 1, 8)
    for _ in range(5):
        ra, rb = a.step(act), b.step(act)
        np.testing.assert_array_equal(ra[0], rb[0])
        assert ra[1] == rb[1] and ra[2] == rb[2]
