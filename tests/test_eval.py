"""Evaluation harness, metrics, tables, curves."""

from __future__ import annotations

import numpy as np
import pytest

from repro import envs
from repro.attacks import RandomAttackPolicy
from repro.eval import (
    AttackEvaluation,
    Curve,
    CurveSet,
    bold_min_per_row,
    bootstrap_ci,
    evaluate_game,
    evaluate_single_agent,
    format_mean_std,
    mean_std,
    render_table,
)
from repro.rl import ActorCritic


class TestMetrics:
    def test_mean_std(self):
        m, s = mean_std([1.0, 2.0, 3.0])
        assert m == pytest.approx(2.0)
        assert s == pytest.approx(np.std([1, 2, 3]))

    def test_mean_std_empty(self):
        assert mean_std([]) == (0.0, 0.0)

    def test_bootstrap_ci_contains_mean(self, rng):
        data = rng.standard_normal(200) + 5.0
        lo, hi = bootstrap_ci(data, seed=1)
        assert lo < data.mean() < hi
        assert hi - lo < 1.0

    def test_format(self):
        assert format_mean_std(1.234, 0.567) == "1.23 ± 0.57"
        assert format_mean_std(1.2, 0.5, digits=0) == "1 ± 0"


class TestTables:
    def test_render_alignment(self):
        out = render_table(["A", "Long header"], [["1", "2"], ["333", "4"]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert all(len(line) == len(lines[1]) for line in lines[1:])

    def test_bold_min(self):
        marked = bold_min_per_row([3.0, 1.0, 2.0], ["a", "b", "c"])
        assert marked == ["a", "*b*", "c"]

    def test_bold_min_empty(self):
        assert bold_min_per_row([], []) == []


class TestCurves:
    def test_curve_accumulates(self):
        c = Curve("x")
        c.add(1, 0.5)
        c.add(2, 0.25)
        assert c.final == 0.25
        assert c.best(minimize=True) == 0.25
        assert c.best(minimize=False) == 0.5

    def test_auc(self):
        c = Curve("x", x=[0.0, 1.0, 2.0], y=[1.0, 1.0, 1.0])
        assert c.auc() == pytest.approx(2.0)

    def test_curveset_render(self):
        cs = CurveSet("fig")
        for i in range(10):
            cs.curve("a").add(i, i / 10)
            cs.curve("b").add(i, 1.0 - i / 10)
        out = cs.render("asr")
        assert "fig" in out and "final asr" in out

    def test_curveset_json_roundtrip(self, tmp_path):
        cs = CurveSet("fig")
        cs.curve("a").add(1, 0.5)
        path = cs.to_json(tmp_path / "fig.json")
        loaded = CurveSet.from_json(path)
        assert loaded.title == "fig"
        assert loaded.curves["a"].y == [0.5]

    def test_empty_render(self):
        assert "(empty)" in CurveSet("nothing").render()


class TestHarness:
    def test_clean_evaluation(self, tiny_victim):
        ev = evaluate_single_agent(envs.make("Hopper-v0"), tiny_victim, None,
                                   episodes=5, seed=3)
        assert len(ev.episode_rewards) == 5
        assert 0.0 <= ev.asr <= 1.0
        assert "ASR" in ev.summary()

    def test_random_attack_evaluation(self, tiny_victim):
        ev = evaluate_single_agent(envs.make("Hopper-v0"), tiny_victim,
                                   RandomAttackPolicy(11, seed=1), epsilon=0.1,
                                   episodes=4, seed=3, attack_deterministic=False)
        assert len(ev.episode_rewards) == 4

    def test_seeded_evaluation_reproducible(self, tiny_victim):
        e1 = evaluate_single_agent(envs.make("Hopper-v0"), tiny_victim, None,
                                   episodes=3, seed=5)
        e2 = evaluate_single_agent(envs.make("Hopper-v0"), tiny_victim, None,
                                   episodes=3, seed=5)
        np.testing.assert_allclose(e1.episode_rewards, e2.episode_rewards)

    def test_asr_complementary_to_success(self):
        ev = AttackEvaluation(episode_rewards=[1.0] * 4,
                              episode_successes=[True, True, False, False],
                              episode_lengths=[10] * 4)
        assert ev.victim_success_rate == 0.5
        assert ev.asr == 0.5

    def test_game_evaluation(self, rng):
        victim = ActorCritic(14, 3, hidden_sizes=(8,), rng=rng)
        adversary = RandomAttackPolicy(3, seed=2)
        ev = evaluate_game(envs.make_game("YouShallNotPass-v0"), victim, adversary,
                           episodes=3, seed=1)
        assert len(ev.episode_rewards) == 3
        assert all(length <= 200 for length in ev.episode_lengths)
