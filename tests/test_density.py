"""KNN density estimation and the D/B replay buffers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.density import KnnDensityEstimator, StateBuffer, UnionStateBuffer, knn_distances


def brute_kth_distance(queries, refs, k, exclude_self=False):
    out = []
    for q in np.atleast_2d(queries):
        d = np.sort(np.linalg.norm(refs - q, axis=1))
        if exclude_self:
            d = d[1:]
        out.append(d[min(k, len(d)) - 1])
    return np.array(out)


class TestKnnDistances:
    def test_matches_brute_force(self, rng):
        refs = rng.standard_normal((40, 3))
        queries = rng.standard_normal((10, 3))
        for k in (1, 3, 7):
            ours = knn_distances(queries, refs, k=k)
            expected = brute_kth_distance(queries, refs, k)
            np.testing.assert_allclose(ours, expected, atol=1e-12)

    def test_exclude_self(self, rng):
        refs = rng.standard_normal((20, 2))
        ours = knn_distances(refs, refs, k=1, exclude_self=True)
        expected = brute_kth_distance(refs, refs, 1, exclude_self=True)
        np.testing.assert_allclose(ours, expected, atol=1e-12)
        assert (ours > 0).all()

    def test_k_larger_than_reference_set(self, rng):
        refs = rng.standard_normal((3, 2))
        out = knn_distances(rng.standard_normal((5, 2)), refs, k=10)
        assert out.shape == (5,)

    def test_empty_reference(self):
        out = knn_distances(np.zeros((4, 2)), np.zeros((0, 2)), k=3)
        np.testing.assert_array_equal(out, np.ones(4))

    def test_distance_floor(self):
        refs = np.zeros((5, 2))
        out = knn_distances(np.zeros((2, 2)), refs, k=2)
        assert (out > 0).all()

    def test_exclude_self_singleton_is_neutral(self):
        """A singleton reference set has no non-self neighbour: the
        distance must be the neutral 1.0, not the clipped zero
        self-distance (which inverted into a ~1e8 density bonus)."""
        point = np.array([[3.0, -1.0]])
        np.testing.assert_array_equal(
            knn_distances(point, point, k=5, exclude_self=True), np.ones(1))

    def test_exclude_self_small_set_clamps_to_farthest_non_self(self, rng):
        refs = rng.standard_normal((4, 3))  # fewer than k+1 references
        out = knn_distances(refs, refs, k=5, exclude_self=True)
        expected = brute_kth_distance(refs, refs, 5, exclude_self=True)
        np.testing.assert_allclose(out, expected, atol=1e-12)
        assert (out > 1e-6).all()


class TestKnnDensityEstimator:
    def test_density_higher_in_cluster(self, rng):
        cluster = rng.standard_normal((100, 2)) * 0.1
        outlier = np.array([[10.0, 10.0]])
        est = KnnDensityEstimator(np.vstack([cluster, outlier]), k=3)
        d_cluster = est.density(np.zeros((1, 2)))
        d_far = est.density(np.array([[9.0, 9.0]]))
        assert d_cluster[0] > d_far[0]

    def test_log_density_monotone_with_density(self, rng):
        refs = rng.standard_normal((50, 3))
        est = KnnDensityEstimator(refs, k=4)
        queries = rng.standard_normal((10, 3))
        dens = est.density(queries)
        log_dens = est.log_density(queries)
        assert (np.argsort(dens) == np.argsort(log_dens)).all()

    def test_empty_estimator(self):
        est = KnnDensityEstimator(np.zeros((0, 2)), k=3)
        np.testing.assert_array_equal(est.distance(np.zeros((3, 2))), np.ones(3))

    def test_singleton_exclude_self_is_neutral(self):
        est = KnnDensityEstimator(np.ones((1, 2)), k=3)
        np.testing.assert_array_equal(
            est.distance(np.ones((1, 2)), exclude_self=True), np.ones(1))
        np.testing.assert_array_equal(
            est.density(np.ones((1, 2)), exclude_self=True), np.ones(1))


class TestStateBuffer:
    def test_replace_semantics(self, rng):
        buf = StateBuffer()
        assert len(buf) == 0
        buf.replace(rng.standard_normal((10, 2)))
        assert len(buf) == 10
        buf.replace(rng.standard_normal((4, 2)))
        assert len(buf) == 4  # wholesale replacement, not append

    def test_states_are_copied(self):
        buf = StateBuffer()
        data = np.ones((3, 2))
        buf.replace(data)
        data[:] = 5.0
        np.testing.assert_array_equal(buf.states, np.ones((3, 2)))


class TestUnionStateBuffer:
    def test_accumulates_until_capacity(self, rng):
        buf = UnionStateBuffer(capacity=100)
        buf.extend(rng.standard_normal((30, 2)))
        buf.extend(rng.standard_normal((30, 2)))
        assert len(buf) == 60
        assert buf.total_seen == 60

    def test_capacity_bound(self, rng):
        buf = UnionStateBuffer(capacity=50)
        for _ in range(10):
            buf.extend(rng.standard_normal((20, 2)))
        assert len(buf) == 50
        assert buf.total_seen == 200

    def test_reservoir_is_unbiased(self):
        """Each batch should survive roughly in proportion after overflow."""
        buf = UnionStateBuffer(capacity=200, seed=0)
        buf.extend(np.full((400, 1), 1.0))
        buf.extend(np.full((400, 1), 2.0))
        fraction_second = (buf.states == 2.0).mean()
        assert 0.3 < fraction_second < 0.7

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            UnionStateBuffer(capacity=0)

    def test_empty_extend_noop(self):
        buf = UnionStateBuffer(capacity=10)
        buf.extend(np.zeros((0, 3)))
        assert len(buf) == 0


@settings(max_examples=20, deadline=None)
@given(st.integers(1, 5), st.integers(5, 30))
def test_property_knn_distance_positive_and_finite(k, n):
    rng = np.random.default_rng(k * 100 + n)
    refs = rng.standard_normal((n, 3))
    d = knn_distances(refs, refs, k=k, exclude_self=True)
    assert np.isfinite(d).all() and (d > 0).all()
