"""Maze geometry and navigation environment tests."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import envs
from repro.envs.maze import Maze, Rect, four_rooms, u_maze
from repro.envs.navigation import Ant4RoomsEnv, AntUMazeEnv


class TestRect:
    def test_contains(self):
        r = Rect(0, 1, 0, 1)
        assert r.contains(np.array([0.5, 0.5]))
        assert not r.contains(np.array([1.5, 0.5]))
        assert r.contains(np.array([1.1, 0.5]), margin=0.2)


class TestMaze:
    def test_bounds_collision(self):
        maze = Maze(Rect(-1, 1, -1, 1), [])
        assert maze.collides(np.array([2.0, 0.0]))
        assert not maze.collides(np.array([0.0, 0.0]))
        assert maze.collides(np.array([0.95, 0.0]), radius=0.1)

    def test_wall_collision(self):
        maze = Maze(Rect(-2, 2, -2, 2), [Rect(-0.1, 0.1, -2, 0)])
        assert maze.collides(np.array([0.0, -1.0]))
        assert not maze.collides(np.array([0.0, 1.0]))

    def test_resolve_move_slides_along_wall(self):
        maze = Maze(Rect(-2, 2, -2, 2), [Rect(0.5, 1.0, -2, 2)])
        pos = np.array([0.3, 0.0])
        new, blocked = maze.resolve_move(pos, np.array([0.5, 0.3]))
        assert blocked[0] and not blocked[1]
        assert new[0] == pytest.approx(0.3)       # x blocked
        assert new[1] == pytest.approx(0.3)       # y slides

    def test_resolve_move_free(self):
        maze = Maze(Rect(-2, 2, -2, 2), [])
        new, blocked = maze.resolve_move(np.array([0.0, 0.0]), np.array([0.5, -0.5]))
        assert not blocked.any()
        np.testing.assert_allclose(new, [0.5, -0.5])

    def test_raycast_hits_wall(self):
        maze = Maze(Rect(-5, 5, -5, 5), [Rect(1.0, 1.5, -5, 5)])
        d = maze.raycast(np.zeros(2), np.array([0.0]), max_range=4.0, step=0.05)
        assert 0.9 <= d[0] <= 1.1

    def test_raycast_max_range(self):
        maze = Maze(Rect(-50, 50, -50, 50), [])
        d = maze.raycast(np.zeros(2), np.array([0.0, np.pi / 2]), max_range=3.0)
        np.testing.assert_array_equal(d, [3.0, 3.0])


class TestLayouts:
    def test_u_maze_blocks_direct_path(self):
        maze = u_maze()
        # straight line from start arm to goal arm passes through the tongue
        assert maze.collides(np.array([-2.2, 0.0]))
        # the right corridor is open
        assert not maze.collides(np.array([2.0, 0.0]))

    def test_four_rooms_doors_open(self):
        maze = four_rooms(size=3.0, door=0.9)
        assert not maze.collides(np.array([0.0, -1.5]))   # door
        assert not maze.collides(np.array([1.5, 0.0]))    # door
        assert maze.collides(np.array([0.0, 0.0]))        # wall junction
        assert maze.collides(np.array([0.0, -2.8]))       # wall


class TestNavigationEnvs:
    @pytest.mark.parametrize("cls", [AntUMazeEnv, Ant4RoomsEnv])
    def test_reset_and_step(self, cls, rng):
        env = cls()
        obs = env.reset(seed=0)
        assert obs.shape == env.observation_space.shape
        obs2, r, term, trunc, info = env.step(env.action_space.sample(rng))
        assert r == 0.0 and not term
        assert "distance_to_goal" in info

    def test_goal_reachable_flag(self):
        env = AntUMazeEnv()
        env.reset(seed=0)
        env.position = env.goal.copy()
        _, reward, terminated, _, info = env.step(np.zeros(8))
        assert info["success"] and terminated and reward == 1.0

    def test_timeout_truncates(self):
        env = AntUMazeEnv()
        env.reset(seed=0)
        for _ in range(env.max_steps):
            _, _, term, trunc, _ = env.step(np.zeros(8))
        assert trunc and not term

    def test_walls_contain_agent(self, rng):
        env = Ant4RoomsEnv()
        env.reset(seed=1)
        for _ in range(100):
            env.step(rng.uniform(-1, 1, 8))
            assert not env.maze.collides(env.position, radius=env.radius * 0.9)

    def test_shaped_rewards_follow_waypoints(self):
        env = AntUMazeEnv(shaped=True)
        env.reset(seed=0)
        # teleport toward first waypoint: shaping should be positive
        start_d = env._prev_distance
        env.position = env.position + 0.9 * (env.waypoints[0] - env.position)
        _, reward, _, _, _ = env.step(np.zeros(8))
        assert reward > 0.0
        assert env._prev_distance < start_d

    def test_waypoint_advances(self):
        env = AntUMazeEnv(shaped=True)
        env.reset(seed=0)
        env.position = env.waypoints[0].copy()
        env.step(np.zeros(8))
        assert env._wp_index == 1

    def test_sparse_default_has_no_shaping(self):
        env = AntUMazeEnv()
        env.reset(seed=0)
        env.position = env.position + np.array([0.3, 0.0])
        _, reward, _, _, _ = env.step(np.zeros(8))
        assert reward == 0.0

    def test_force_map_fixed(self):
        a, b = AntUMazeEnv(), AntUMazeEnv()
        np.testing.assert_array_equal(a._force_map, b._force_map)


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 500))
def test_property_navigation_obs_finite(seed):
    env = Ant4RoomsEnv()
    obs = env.reset(seed=seed)
    rng = np.random.default_rng(seed)
    for _ in range(20):
        obs, *_ = env.step(rng.uniform(-1, 1, 8))
    assert np.isfinite(obs).all()
