"""Incremental KNN density index: exact-equivalence contract, amortized
rebuild schedule, buffer-delta syncing, checkpoint state, and telemetry.

The load-bearing test is the hypothesis property: across random
insert/query interleavings — including the pending-buffer -> rebuild
boundary — the index returns **bit-identical** distances to the
from-scratch :class:`~repro.density.KnnDensityEstimator`.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.density import IncrementalKnnIndex, KnnDensityEstimator, UnionStateBuffer
from repro.telemetry import Telemetry, use_telemetry


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    dim=st.integers(1, 12),
    k=st.integers(1, 6),
    rebuild_fraction=st.sampled_from([0.05, 0.25, 1.0, 5.0]),
    query_chunk=st.sampled_from([3, 64, 4096]),
    batch_sizes=st.lists(st.integers(1, 25), min_size=1, max_size=8),
)
def test_property_bit_identical_to_from_scratch_estimator(
        seed, dim, k, rebuild_fraction, query_chunk, batch_sizes):
    """index.query == KnnDensityEstimator.distance, bit for bit, after
    every insert batch (covering fresh, pending-heavy, and just-rebuilt
    states of the index)."""
    rng = np.random.default_rng(seed)
    index = IncrementalKnnIndex(rebuild_fraction=rebuild_fraction,
                                query_chunk=query_chunk)
    batches = []
    for size in batch_sizes:
        batch = rng.standard_normal((size, dim))
        index.add(batch)
        batches.append(batch)
        points = np.concatenate(batches)
        estimator = KnnDensityEstimator(points, k=k)
        queries = rng.standard_normal((11, dim))
        np.testing.assert_array_equal(index.query(queries, k),
                                      estimator.distance(queries))
        np.testing.assert_array_equal(
            index.query(points, k, exclude_self=True),
            estimator.distance(points, exclude_self=True))


def test_equivalence_across_rebuild_boundary(rng):
    """Deterministic walk over the pending -> rebuild transition: query
    with an empty pending buffer, a hot one, and right after the merge."""
    index = IncrementalKnnIndex(rebuild_fraction=0.5)
    first = rng.standard_normal((40, 6))
    index.add(first)                       # first add builds the tree
    assert index.n_pending == 0
    batches = [first]
    pending_states = []
    for size in (10, 9, 12, 30):           # 10+9 pend, 12 crosses, 30 pends
        batch = rng.standard_normal((size, 6))
        index.add(batch)
        batches.append(batch)
        pending_states.append(index.n_pending)
        points = np.concatenate(batches)
        np.testing.assert_array_equal(
            index.query(points, 5, exclude_self=True),
            KnnDensityEstimator(points, k=5).distance(points, exclude_self=True))
    assert pending_states == [10, 19, 0, 30]
    assert index.rebuilds == 2


class TestIncrementalKnnIndex:
    def test_empty_index_neutral_distance(self):
        index = IncrementalKnnIndex()
        np.testing.assert_array_equal(index.query(np.zeros((4, 3)), 5), np.ones(4))

    def test_singleton_exclude_self_neutral(self):
        index = IncrementalKnnIndex.over(np.ones((1, 3)))
        np.testing.assert_array_equal(
            index.query(np.ones((1, 3)), 5, exclude_self=True), np.ones(1))

    def test_rebuild_schedule_is_amortized(self, rng):
        index = IncrementalKnnIndex(rebuild_fraction=0.5)
        for _ in range(64):
            index.add(rng.standard_normal((8, 4)))
        # 64 adds but far fewer rebuilds: the schedule is geometric
        assert index.rebuilds < 16
        assert len(index) == 64 * 8

    def test_reset_replaces_contents(self, rng):
        index = IncrementalKnnIndex()
        index.add(rng.standard_normal((20, 2)))
        replacement = rng.standard_normal((7, 2))
        index.reset(replacement)
        assert len(index) == 7
        np.testing.assert_array_equal(index.points, replacement)

    def test_reset_to_empty(self, rng):
        index = IncrementalKnnIndex()
        index.add(rng.standard_normal((5, 2)))
        index.reset(np.zeros((0, 2)))
        assert len(index) == 0
        np.testing.assert_array_equal(index.query(np.zeros((2, 2)), 3), np.ones(2))

    def test_chunked_query_matches_single_chunk(self, rng):
        points = rng.standard_normal((100, 5))
        queries = rng.standard_normal((37, 5))
        chunked = IncrementalKnnIndex.over(points, query_chunk=5)
        whole = IncrementalKnnIndex.over(points, query_chunk=4096)
        np.testing.assert_array_equal(chunked.query(queries, 4), whole.query(queries, 4))
        assert chunked.query_chunks == 8
        assert whole.query_chunks == 1

    def test_add_empty_is_noop(self, rng):
        index = IncrementalKnnIndex()
        index.add(rng.standard_normal((3, 2)))
        rebuilds = index.rebuilds
        index.add(np.zeros((0, 2)))
        assert len(index) == 3 and index.rebuilds == rebuilds

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            IncrementalKnnIndex(rebuild_fraction=0.0)
        with pytest.raises(ValueError):
            IncrementalKnnIndex(query_chunk=0)

    def test_state_dict_roundtrip_preserves_partition_and_results(self, rng):
        index = IncrementalKnnIndex(rebuild_fraction=2.0)  # keep a pending tail
        for _ in range(5):
            index.add(rng.standard_normal((9, 4)))
        queries = rng.standard_normal((12, 4))
        index.query(queries, 3)
        restored = IncrementalKnnIndex()
        restored.load_state_dict(index.state_dict())
        assert restored.n_indexed == index.n_indexed
        assert restored.n_pending == index.n_pending
        assert restored.rebuilds == index.rebuilds
        assert restored.pending_hits == index.pending_hits
        assert restored.query_chunks == index.query_chunks
        np.testing.assert_array_equal(restored.query(queries, 3),
                                      index.query(queries, 3))

    def test_telemetry_counters(self, rng):
        with use_telemetry(Telemetry.in_memory()) as telemetry:
            index = IncrementalKnnIndex(rebuild_fraction=10.0)
            index.add(rng.standard_normal((5, 3)))   # first add always builds
            index.add(rng.standard_normal((5, 3)))   # stays pending
            assert index.n_pending == 5
            index.query(rng.standard_normal((7, 3)), 2)
            counters = telemetry.metrics.snapshot()["counters"]
        assert counters["density.index.rebuilds"] == index.rebuilds == 1
        assert counters["density.index.pending_hits"] == index.pending_hits == 7
        assert counters["density.index.query_chunks"] == index.query_chunks == 1


class TestUnionBufferExtendDelta:
    def test_append_only_reports_rows(self, rng):
        buf = UnionStateBuffer(capacity=100)
        states = rng.standard_normal((30, 2))
        delta = buf.extend(states)
        assert delta.append_only
        np.testing.assert_array_equal(delta.appended, states)

    def test_replacement_reports_mutated(self, rng):
        buf = UnionStateBuffer(capacity=20, seed=0)
        buf.extend(rng.standard_normal((20, 2)))
        delta = buf.extend(rng.standard_normal((50, 2)))
        assert delta.mutated and not delta.append_only
        assert len(delta.appended) == 0

    def test_empty_extend_delta(self):
        buf = UnionStateBuffer(capacity=10)
        delta = buf.extend(np.zeros((0, 3)))
        assert delta.append_only and delta.appended.size == 0

    def test_index_synced_through_deltas_matches_buffer(self, rng):
        """Driving an index from extend() deltas keeps it equal to a
        from-scratch estimator over buffer.states, across the
        append-only -> reservoir-replacement transition."""
        buf = UnionStateBuffer(capacity=60, seed=3)
        index = IncrementalKnnIndex(rebuild_fraction=0.3)
        for _ in range(10):
            delta = buf.extend(rng.standard_normal((16, 3)))
            if delta.append_only:
                index.add(delta.appended)
            else:
                index.reset(buf.states)
            queries = rng.standard_normal((9, 3))
            np.testing.assert_array_equal(
                index.query(queries, 4),
                KnnDensityEstimator(buf.states, k=4).distance(queries))


# ------------------------------------------------- background double-buffer

@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    dim=st.integers(1, 10),
    k=st.integers(1, 5),
    rebuild_fraction=st.sampled_from([0.05, 0.25, 1.0]),
    batch_sizes=st.lists(st.integers(1, 25), min_size=1, max_size=8),
    resets=st.lists(st.booleans(), min_size=1, max_size=8),
)
def test_property_background_bit_identical_to_sync(
        seed, dim, k, rebuild_fraction, batch_sizes, resets):
    """Random add/reset/query interleavings straddling the background
    publish point return bit-identical distances to the from-scratch
    estimator — the double-buffer rebuild is observationally invisible."""
    rng = np.random.default_rng(seed)
    index = IncrementalKnnIndex(rebuild_fraction=rebuild_fraction,
                                background=True)
    batches = []
    for size, do_reset in zip(batch_sizes, resets + [False] * len(batch_sizes)):
        batch = rng.standard_normal((size, dim))
        if do_reset and batches:
            # reset() kicks a full background rebuild; query immediately
            # after (below) straddles the publish point.
            batches = [np.concatenate(batches), batch]
            index.reset(np.concatenate(batches))
        else:
            index.add(batch)
            batches.append(batch)
        points = np.concatenate(batches)
        estimator = KnnDensityEstimator(points, k=k)
        queries = rng.standard_normal((7, dim))
        np.testing.assert_array_equal(index.query(queries, k),
                                      estimator.distance(queries))
        np.testing.assert_array_equal(
            index.query(points, k, exclude_self=True),
            estimator.distance(points, exclude_self=True))


class TestBackgroundRebuild:
    def test_counters_and_partition_match_sync_mode(self, rng):
        """Same adds → same rebuild count, pending split, and points in
        both modes: the background thread only moves *when* the tree is
        constructed, never what the index observably contains."""
        sync = IncrementalKnnIndex(rebuild_fraction=0.5)
        background = IncrementalKnnIndex(rebuild_fraction=0.5, background=True)
        for _ in range(20):
            batch = rng.standard_normal((8, 4))
            sync.add(batch)
            background.add(batch)
        assert background.rebuilds == sync.rebuilds
        assert background.n_indexed == sync.n_indexed
        assert background.n_pending == sync.n_pending
        np.testing.assert_array_equal(background.points, sync.points)

    def test_state_dict_roundtrip_mid_rebuild(self, rng):
        """state_dict taken right after a kick (the build may still be in
        flight) restores into an index that answers identically."""
        index = IncrementalKnnIndex(rebuild_fraction=0.5, background=True)
        for _ in range(6):
            index.add(rng.standard_normal((25, 4)))
        index.reset(rng.standard_normal((180, 4)))  # kick a full rebuild
        state = index.state_dict()                  # joins, then snapshots
        restored_background = IncrementalKnnIndex(background=True)
        restored_background.load_state_dict(state)
        restored_sync = IncrementalKnnIndex()
        restored_sync.load_state_dict(state)
        queries = rng.standard_normal((31, 4))
        np.testing.assert_array_equal(index.query(queries, 4),
                                      restored_background.query(queries, 4))
        np.testing.assert_array_equal(index.query(queries, 4),
                                      restored_sync.query(queries, 4))
        assert restored_background.rebuilds == index.rebuilds
        assert restored_background.n_indexed == index.n_indexed

    def test_pickle_joins_inflight_build(self, rng):
        """__getstate__ must not ship thread handles; the clone answers
        bit-identically even when pickled right after a kick."""
        import pickle

        index = IncrementalKnnIndex(background=True)
        index.add(rng.standard_normal((120, 3)))
        index.reset(rng.standard_normal((150, 3)))  # build in flight
        clone = pickle.loads(pickle.dumps(index))
        queries = rng.standard_normal((13, 3))
        np.testing.assert_array_equal(index.query(queries, 3),
                                      clone.query(queries, 3))

    def test_union_delta_driving_matches_estimator(self, rng):
        """The regularizer's exact sync loop, background mode: deltas in,
        estimator-equal distances out, across the reservoir transition."""
        buf = UnionStateBuffer(capacity=60, seed=3)
        index = IncrementalKnnIndex(rebuild_fraction=0.3, background=True)
        for _ in range(10):
            delta = buf.extend(rng.standard_normal((16, 3)))
            if delta.append_only:
                index.add(delta.appended)
            else:
                index.reset(buf.states)
            queries = rng.standard_normal((9, 3))
            np.testing.assert_array_equal(
                index.query(queries, 4),
                KnnDensityEstimator(buf.states, k=4).distance(queries))
