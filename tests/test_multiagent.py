"""Two-player games: bodies, contact, zero-sum outcomes, win conditions."""

from __future__ import annotations

import numpy as np
import pytest

from repro import envs
from repro.envs.multiagent import (
    KickAndDefendEnv,
    PlanarBody,
    YouShallNotPassEnv,
    resolve_contact,
)

BOUNDS = (-6.0, 6.0, -3.0, 3.0)


class TestPlanarBody:
    def test_reset_state(self):
        body = PlanarBody()
        body.reset(np.array([1.0, 2.0]))
        np.testing.assert_array_equal(body.position, [1.0, 2.0])
        assert body.balance == 1.0 and not body.fallen

    def test_force_moves_body(self):
        body = PlanarBody()
        body.reset(np.zeros(2))
        for _ in range(20):
            body.apply_action(np.array([1.0, 0.0, -1.0]))
            body.integrate(BOUNDS)
        assert body.position[0] > 0.5
        assert abs(body.position[1]) < 1e-9

    def test_bracing_slows_body(self):
        fast, braced = PlanarBody(), PlanarBody()
        fast.reset(np.zeros(2))
        braced.reset(np.zeros(2))
        for _ in range(20):
            fast.apply_action(np.array([1.0, 0.0, -1.0]))
            braced.apply_action(np.array([1.0, 0.0, 1.0]))
            fast.integrate(BOUNDS)
            braced.integrate(BOUNDS)
        assert fast.position[0] > braced.position[0]

    def test_fallen_body_cannot_act(self):
        body = PlanarBody()
        body.reset(np.zeros(2))
        body.fallen = True
        body.apply_action(np.array([1.0, 0.0, -1.0]))
        body.integrate(BOUNDS)
        assert abs(body.position[0]) < 1e-6

    def test_walls_stop_body(self):
        body = PlanarBody()
        body.reset(np.array([5.9, 0.0]))
        for _ in range(10):
            body.apply_action(np.array([1.0, 0.0, -1.0]))
            body.integrate(BOUNDS)
        assert body.position[0] <= 6.0
        assert body.velocity[0] == 0.0

    def test_balance_recovers(self):
        body = PlanarBody(recover_rate=0.1)
        body.reset(np.zeros(2))
        body.balance = 0.5
        body.integrate(BOUNDS)
        assert body.balance == pytest.approx(0.6)

    def test_take_impact_falls_at_zero(self):
        body = PlanarBody()
        body.reset(np.zeros(2))
        body.take_impact(impact_speed=100.0, damage_gain=1.0)
        assert body.fallen and body.balance == 0.0

    def test_brace_reduces_damage(self):
        soft, hard = PlanarBody(brace_effect=0.8), PlanarBody(brace_effect=0.8)
        soft.reset(np.zeros(2))
        hard.reset(np.zeros(2))
        hard.brace = 1.0
        soft.take_impact(1.0, 0.3)
        hard.take_impact(1.0, 0.3)
        assert hard.balance > soft.balance

    def test_state_vector(self):
        body = PlanarBody()
        body.reset(np.array([1.0, -1.0]))
        state = body.state()
        assert state.shape == (6,)
        np.testing.assert_array_equal(state[:2], [1.0, -1.0])
        assert state[4] == 1.0 and state[5] == 0.0


class TestContact:
    def _pair(self, gap=0.5):
        a, b = PlanarBody(), PlanarBody()
        a.reset(np.array([0.0, 0.0]))
        b.reset(np.array([gap, 0.0]))
        return a, b

    def test_no_contact_when_apart(self):
        a, b = self._pair(gap=2.0)
        assert not resolve_contact(a, b)

    def test_contact_separates_bodies(self):
        a, b = self._pair(gap=0.5)
        assert resolve_contact(a, b)
        assert np.linalg.norm(b.position - a.position) >= 0.8 - 1e-9

    def test_charger_takes_more_damage(self):
        a, b = self._pair(gap=0.5)
        a.velocity = np.array([3.0, 0.0])  # a charges into stationary b
        resolve_contact(a, b, damage_gain=0.2)
        assert a.balance < b.balance

    def test_momentum_exchange(self):
        a, b = self._pair(gap=0.5)
        a.velocity = np.array([2.0, 0.0])
        resolve_contact(a, b)
        assert a.velocity[0] < 2.0
        assert b.velocity[0] > 0.0

    def test_fallen_body_is_smaller(self):
        body = PlanarBody()
        body.reset(np.zeros(2))
        r0 = body.effective_radius
        body.fallen = True
        assert body.effective_radius < r0


class TestYouShallNotPass:
    def test_reset_positions(self):
        game = YouShallNotPassEnv()
        ov, oa = game.reset(seed=0)
        assert game.runner.position[0] == pytest.approx(4.0)
        assert game.blocker.position[0] == pytest.approx(0.0)
        assert ov.shape == (14,) and oa.shape == (14,)

    def test_zero_sum_rewards(self, rng):
        game = YouShallNotPassEnv()
        game.reset(seed=1)
        for _ in range(50):
            _, (rv, ra), done, _ = game.step(rng.uniform(-1, 1, 3), rng.uniform(-1, 1, 3))
            assert rv + ra == pytest.approx(0.0)
            if done:
                break

    def test_victim_wins_by_crossing(self):
        game = YouShallNotPassEnv()
        game.reset(seed=0)
        game.runner.position = np.array([game.finish_x + 0.05, 0.0])
        _, _, done, info = game.step(np.array([-1.0, 0.0, -1.0]), np.zeros(3))
        assert done and info["victim_win"] and not info["adversary_win"]

    def test_adversary_wins_by_knockdown(self):
        game = YouShallNotPassEnv()
        game.reset(seed=0)
        game.runner.balance = 0.0
        game.runner.fallen = True
        _, _, done, info = game.step(np.zeros(3), np.zeros(3))
        assert done and info["adversary_win"]

    def test_adversary_wins_by_timeout(self):
        game = YouShallNotPassEnv()
        game.reset(seed=0)
        done = False
        for _ in range(game.max_steps):
            _, _, done, info = game.step(np.zeros(3), np.zeros(3))
            if done:
                break
        assert done and info["adversary_win"]

    def test_info_states_for_knn(self):
        game = YouShallNotPassEnv()
        game.reset(seed=0)
        _, _, _, info = game.step(np.zeros(3), np.zeros(3))
        assert info["victim_state"].shape == (6,)
        assert info["adversary_state"].shape == (6,)

    def test_runner_outruns_static_blocker(self):
        game = YouShallNotPassEnv()
        game.reset(seed=2)
        game.runner.position[1] = 2.0  # offset lane: no contact
        for _ in range(game.max_steps):
            _, _, done, info = game.step(np.array([-1.0, 0.0, -1.0]), np.zeros(3))
            if done:
                break
        assert info["victim_win"]


class TestKickAndDefend:
    def test_reset_layout(self):
        game = KickAndDefendEnv()
        ov, oa = game.reset(seed=0)
        assert ov.shape == (17,) and oa.shape == (17,)
        assert game.kicker.position[0] == pytest.approx(-4.0)
        xmin, xmax, ymin, ymax = game.goalie_box
        assert xmin <= game.goalie.position[0] <= xmax

    def test_goalie_confined_to_box(self, rng):
        game = KickAndDefendEnv()
        game.reset(seed=1)
        for _ in range(80):
            _, _, done, _ = game.step(np.zeros(3), np.array([1.0, 1.0, 0.0]))
            xmin, xmax, ymin, ymax = game.goalie_box
            assert xmin - 1e-9 <= game.goalie.position[0] <= xmax + 1e-9
            assert ymin - 1e-9 <= game.goalie.position[1] <= ymax + 1e-9
            if done:
                break

    def test_kick_launches_ball(self):
        game = KickAndDefendEnv()
        game.reset(seed=0)
        game.kicker.position = game.ball_position - np.array([0.3, 0.0])
        _, _, _, info = game.step(np.array([1.0, 0.0, 0.0]), np.zeros(3))
        assert info["kicked"]
        assert game.ball_velocity[0] > 0.0

    def test_goal_scores(self):
        game = KickAndDefendEnv()
        game.reset(seed=0)
        game._kicked = True
        game.ball_position = np.array([game.gate_x - 0.1, 0.0])
        game.ball_velocity = np.array([3.0, 0.0])
        # park the goalie far away so it cannot block
        game.goalie.position = np.array([game.goalie_box[0], game.goalie_box[3]])
        _, _, done, info = game.step(np.zeros(3), np.zeros(3))
        assert done and info["victim_win"]

    def test_wide_shot_is_adversary_win(self):
        game = KickAndDefendEnv()
        game.reset(seed=0)
        game._kicked = True
        game.ball_position = np.array([game.gate_x - 0.1, 2.5])
        game.ball_velocity = np.array([3.0, 0.0])
        _, _, done, info = game.step(np.zeros(3), np.zeros(3))
        assert done and info["adversary_win"]

    def test_block_stops_ball(self):
        game = KickAndDefendEnv()
        game.reset(seed=0)
        game._kicked = True
        game.ball_position = game.goalie.position - np.array([0.3, 0.0])
        game.ball_velocity = np.array([3.0, 0.0])
        _, _, done, info = game.step(np.zeros(3), np.zeros(3))
        assert info["blocked"] and done and info["adversary_win"]
        np.testing.assert_array_equal(game.ball_velocity, [0.0, 0.0])

    def test_zero_sum(self, rng):
        game = KickAndDefendEnv()
        game.reset(seed=3)
        for _ in range(60):
            _, (rv, ra), done, _ = game.step(rng.uniform(-1, 1, 3), rng.uniform(-1, 1, 3))
            assert rv + ra == pytest.approx(0.0)
            if done:
                break


class TestGameRegistry:
    def test_make_game(self):
        for game_id in envs.GAME_TASKS:
            game = envs.make_game(game_id)
            ov, oa = game.reset(seed=0)
            assert game.victim_observation_space.contains(ov)
            assert game.adversary_observation_space.contains(oa)
