"""Artifact store: canonical keys (property tests), CRUD, prune, verify,
optimizer state round-trips, and the store-gc CLI."""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import MLP, Adam, SGD
from repro.store import (
    ArtifactStore,
    canonical_json,
    canonicalize,
    default_store,
    default_store_root,
    join_tree,
    spec_key,
    split_tree,
    state_fingerprint,
)

# --- canonicalization ---------------------------------------------------

json_scalars = st.one_of(
    st.none(), st.booleans(), st.integers(-2**53, 2**53), st.text(max_size=8),
    st.floats(allow_nan=False, allow_infinity=False),
)
json_trees = st.recursive(
    json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=6), children, max_size=4),
    ),
    max_leaves=20,
)


def shuffle_dicts(obj, rng):
    """Rebuild ``obj`` with every dict's insertion order permuted."""
    if isinstance(obj, dict):
        keys = list(obj)
        rng.shuffle(keys)
        return {k: shuffle_dicts(obj[k], rng) for k in keys}
    if isinstance(obj, list):
        return [shuffle_dicts(v, rng) for v in obj]
    return obj


class TestCanonicalKeys:
    @settings(deadline=None, max_examples=80)
    @given(tree=json_trees, seed=st.integers(0, 2**31 - 1))
    def test_key_invariant_under_dict_ordering(self, tree, seed):
        shuffled = shuffle_dicts(tree, np.random.default_rng(seed))
        assert spec_key(tree) == spec_key(shuffled)

    @settings(deadline=None, max_examples=80)
    @given(tree=json_trees)
    def test_canonical_json_round_trips(self, tree):
        """Parsing the canonical form and re-canonicalizing is a fixpoint —
        float formatting via repr survives a JSON round trip exactly."""
        text = canonical_json(tree)
        assert canonical_json(json.loads(text)) == text

    @settings(deadline=None, max_examples=80)
    @given(x=st.floats(allow_nan=False, allow_infinity=False))
    def test_float_formatting_exact(self, x):
        assert json.loads(canonical_json({"x": x}))["x"] == x

    def test_tuple_and_list_hash_identically(self):
        assert spec_key({"a": (1, 2)}) == spec_key({"a": [1, 2]})

    def test_numpy_scalars_normalize(self):
        assert spec_key({"a": np.int64(3)}) == spec_key({"a": 3})
        assert spec_key({"a": np.float64(0.5)}) == spec_key({"a": 0.5})

    def test_int_and_float_are_distinct(self):
        assert spec_key({"a": 1}) != spec_key({"a": 1.0})

    def test_rejects_nan_and_nonstring_keys(self):
        with pytest.raises(ValueError):
            canonicalize({"a": float("nan")})
        with pytest.raises(TypeError):
            canonicalize({1: "x"})
        with pytest.raises(TypeError):
            canonicalize({"a": object()})

    def test_fingerprint_sensitive_to_values_and_names(self):
        state = {"w": np.ones((2, 2)), "b": np.zeros(2)}
        assert state_fingerprint(state) == state_fingerprint(dict(reversed(state.items())))
        assert state_fingerprint(state) != state_fingerprint(
            {"w": np.ones((2, 2)), "b": np.ones(2)})
        assert state_fingerprint({"w": np.ones(4)}) != state_fingerprint(
            {"w2": np.ones(4)})


# --- state-tree flattening ----------------------------------------------

class TestSplitTree:
    def test_round_trip(self):
        tree = {
            "params": {"w": np.arange(6.0).reshape(2, 3), "b": np.zeros(3)},
            "opt": {"step": 7, "m": [np.ones(2), np.zeros(2)]},
            "rng": {"state": 12345678901234567890, "inc": 3},
            "none": None, "flag": True, "name": "x",
        }
        arrays, json_tree = split_tree(tree)
        restored = join_tree(json_tree, arrays)
        assert restored["opt"]["step"] == 7
        assert restored["rng"] == tree["rng"]
        np.testing.assert_array_equal(restored["params"]["w"], tree["params"]["w"])
        np.testing.assert_array_equal(restored["opt"]["m"][0], np.ones(2))

    def test_rejects_slash_keys(self):
        with pytest.raises(TypeError):
            split_tree({"a/b": 1})


# --- store CRUD ---------------------------------------------------------

SPEC = {"kind": "victim", "env_id": "Hopper-v0", "defense": "ppo", "seed": 0}


def _state(value=1.0):
    return {"w": np.full((3, 3), value), "b": np.zeros(3)}


class TestArtifactStore:
    def test_put_get_round_trip(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        entry = store.put(SPEC, _state(), metadata={"obs_dim": 11})
        assert entry.key == spec_key(SPEC)
        state, got = store.get(SPEC)
        np.testing.assert_array_equal(state["w"], np.full((3, 3), 1.0))
        assert got.metadata == {"obs_dim": 11}
        assert store.contains(SPEC)
        assert len(store) == 1

    def test_get_miss_returns_none(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        assert store.get(SPEC) is None
        assert not store.contains(SPEC)

    def test_default_store_honors_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "elsewhere"))
        assert default_store_root() == tmp_path / "elsewhere"
        store = default_store()
        store.put(SPEC, _state())
        assert (tmp_path / "elsewhere" / "objects").exists()

    def test_reput_is_idempotent(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        store.put(SPEC, _state())
        store.put(SPEC, _state())
        assert len(store) == 1

    def test_orphan_blob_is_invisible_and_pruned(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        entry = store.put(SPEC, _state())
        entry.sidecar.unlink()  # simulate a crash between blob and sidecar
        assert store.get(SPEC) is None
        assert any("orphan" in p for p in store.verify())
        store.prune()
        assert not entry.path.exists()

    def test_verify_detects_spec_tampering(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        entry = store.put(SPEC, _state())
        doc = json.loads(entry.sidecar.read_text())
        doc["spec"]["seed"] = 99
        entry.sidecar.write_text(json.dumps(doc))
        assert any("mismatch" in p for p in store.verify())

    def test_sidecar_records_blob_size_and_hash(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        entry = store.put(SPEC, _state())
        doc = json.loads(entry.sidecar.read_text())
        assert doc["nbytes"] == entry.path.stat().st_size
        assert doc["blob_sha256"] == entry.blob_sha256
        assert len(entry.blob_sha256) == 64
        assert store.verify() == []

    def test_truncated_blob_detected_and_treated_as_miss(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        entry = store.put(SPEC, _state())
        with open(entry.path, "r+b") as fh:
            fh.truncate(16)  # sidecar still says committed
        problems = store.verify()
        assert any("truncated" in p for p in problems), problems
        # get() treats corruption as a cache miss → caller retrains.
        assert store.get(SPEC) is None

    def test_bitflipped_blob_detected_by_hash(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        entry = store.put(SPEC, _state())
        corrupted = bytearray(entry.path.read_bytes())
        corrupted[len(corrupted) // 2] ^= 0xFF  # same size, different bytes
        entry.path.write_bytes(bytes(corrupted))
        problems = store.verify()
        assert any("sha256" in p for p in problems), problems
        assert store.get(SPEC) is None

    def test_legacy_sidecar_without_hash_still_loads(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        entry = store.put(SPEC, _state())
        doc = json.loads(entry.sidecar.read_text())
        del doc["blob_sha256"]  # sidecar from before integrity tracking
        entry.sidecar.write_text(json.dumps(doc))
        assert store.verify() == []
        state, _ = store.get(SPEC)
        np.testing.assert_array_equal(state["w"], _state()["w"])

    def test_prune_keep_latest_per_group(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        for seed in range(3):
            entry = store.put({**SPEC, "seed": seed}, _state(seed))
            # Pin distinct, ordered created_at stamps so "newest" is unambiguous.
            doc = json.loads(entry.sidecar.read_text())
            doc["created_at"] = float(seed)
            entry.sidecar.write_text(json.dumps(doc))
        other = {"kind": "attack", "env_id": "Ant-v0", "attack": "sarl", "seed": 0}
        store.put(other, _state())
        removed = store.prune(keep_latest=1)
        assert len(removed) == 2  # two oldest victims; the attack family stays
        remaining = {e.spec.get("seed") for e in store.list()
                     if e.spec["kind"] == "victim"}
        assert remaining == {2}
        assert store.contains(other)

    def test_records_artifacts_in_manifest(self, tmp_path):
        from repro.telemetry import Telemetry, use_telemetry

        store = ArtifactStore(tmp_path / "store")
        telemetry = Telemetry.to_dir(tmp_path / "run", run_id="r")
        with use_telemetry(telemetry):
            store.put(SPEC, _state())
            store.get(SPEC)
        telemetry.finalize("ok")
        artifacts = telemetry.manifest.artifacts
        assert {a["role"] for a in artifacts} == {"produced", "consumed"}
        assert all(a["key"] == spec_key(SPEC) for a in artifacts)


# --- optimizer state dicts ----------------------------------------------

def _make_net_and_batch(seed=0):
    rng = np.random.default_rng(seed)
    net = MLP(4, (8,), 2, rng=rng)
    x = rng.normal(size=(16, 4))
    y = rng.normal(size=(16, 2))
    return net, x, y


def _train_steps(net, opt, x, y, steps):
    for _ in range(steps):
        pred = net(x)
        loss = ((pred - y) ** 2).mean()
        opt.zero_grad()
        loss.backward()
        opt.step()


@pytest.mark.parametrize("make_opt", [
    lambda params: SGD(params, lr=0.05, momentum=0.9),
    lambda params: Adam(params, lr=0.01),
], ids=["sgd", "adam"])
class TestOptimizerStateDict:
    def test_round_trip_resumes_bit_identical(self, make_opt):
        # Train 4 steps straight through.
        net_a, x, y = _make_net_and_batch()
        opt_a = make_opt(net_a.parameters())
        _train_steps(net_a, opt_a, x, y, 4)

        # Train 2 steps, snapshot, restore into fresh copies, 2 more.
        net_b, _, _ = _make_net_and_batch()
        opt_b = make_opt(net_b.parameters())
        _train_steps(net_b, opt_b, x, y, 2)
        opt_state = opt_b.state_dict()
        net_state = net_b.state_dict()

        net_c, _, _ = _make_net_and_batch()
        net_c.load_state_dict(net_state)
        opt_c = make_opt(net_c.parameters())
        opt_c.load_state_dict(opt_state)
        _train_steps(net_c, opt_c, x, y, 2)

        for key, value in net_a.state_dict().items():
            np.testing.assert_array_equal(value, net_c.state_dict()[key])

    def test_rejects_mismatched_shapes(self, make_opt):
        net, _, _ = _make_net_and_batch()
        opt = make_opt(net.parameters())
        state = opt.state_dict()
        other_net, _, _ = _make_net_and_batch()
        other = make_opt([next(iter(other_net.parameters()))])
        with pytest.raises(ValueError):
            other.load_state_dict(state)


# --- store-gc CLI -------------------------------------------------------

class TestStoreGcCli:
    def _load_cli(self):
        import importlib.util
        from pathlib import Path

        path = Path(__file__).resolve().parent.parent / "scripts" / "store_gc.py"
        module_spec = importlib.util.spec_from_file_location("store_gc", path)
        module = importlib.util.module_from_spec(module_spec)
        module_spec.loader.exec_module(module)
        return module

    def test_list_verify_prune(self, tmp_path, capsys):
        gc = self._load_cli()
        store = ArtifactStore(tmp_path / "store")
        for seed in range(2):
            store.put({**SPEC, "seed": seed}, _state(seed))

        assert gc.main(["--store-dir", str(tmp_path / "store"), "list"]) == 0
        out = capsys.readouterr().out
        assert "2 artifacts" in out and "victim/Hopper-v0/ppo" in out

        assert gc.main(["--store-dir", str(tmp_path / "store"), "verify"]) == 0
        assert "0 problems" in capsys.readouterr().out

        assert gc.main(["--store-dir", str(tmp_path / "store"),
                        "prune", "--keep-latest", "1", "--yes"]) == 0
        assert len(store) == 1


# --- in-process blob LRU ------------------------------------------------


class TestStoreBlobCache:
    def _counters(self, telemetry) -> dict:
        return {name: c for name, c in
                telemetry.metrics.snapshot()["counters"].items()
                if name.startswith("store.")}

    def test_off_by_default_and_counters_still_track(self, tmp_path):
        from repro.telemetry import Telemetry

        telemetry = Telemetry.in_memory()
        store = ArtifactStore(tmp_path / "store", telemetry=telemetry)
        assert store.cache_size == 0
        store.put(SPEC, _state())
        store.get(SPEC)
        store.get(SPEC)
        store.get({**SPEC, "seed": 99})  # never written
        counters = self._counters(telemetry)
        assert counters["store.hits"] == 2.0
        assert counters["store.misses"] == 1.0
        assert "store.memcache_hits" not in counters

    def test_memcache_answers_repeat_gets(self, tmp_path):
        from repro.telemetry import Telemetry

        telemetry = Telemetry.in_memory()
        store = ArtifactStore(tmp_path / "store", telemetry=telemetry,
                              cache_size=4)
        store.put(SPEC, _state(2.5))
        first, entry = store.get(SPEC)
        # Delete the blob behind the store's back: a disk read would now
        # miss, so a hit here proves the LRU answered from memory.
        entry.path.unlink()
        second, _ = store.get(SPEC)
        np.testing.assert_array_equal(second["w"], first["w"])
        counters = self._counters(telemetry)
        assert counters["store.memcache_hits"] == 1.0
        assert counters["store.hits"] == 2.0

    def test_eviction_respects_bound(self, tmp_path):
        store = ArtifactStore(tmp_path / "store", cache_size=2)
        specs = [{**SPEC, "seed": i} for i in range(3)]
        for i, spec in enumerate(specs):
            store.put(spec, _state(float(i)))
            store.get(spec)
        assert len(store._cache) == 2
        # seed=0 was evicted (oldest); its blob is gone -> real miss now.
        entry0 = store.entry(specs[0])
        entry0.path.unlink()
        assert store.get(specs[0]) is None
        # seed=2 is still resident and survives its blob's deletion.
        store.entry(specs[2]).path.unlink()
        assert store.get(specs[2]) is not None

    def test_put_and_remove_invalidate(self, tmp_path):
        store = ArtifactStore(tmp_path / "store", cache_size=4)
        store.put(SPEC, _state(1.0))
        store.get(SPEC)
        store.put(SPEC, _state(7.0))  # legal re-put; cache must not serve 1.0
        state, _ = store.get(SPEC)
        np.testing.assert_array_equal(state["w"], np.full((3, 3), 7.0))
        store.remove(store.key_for(canonicalize(SPEC)))
        assert store.get(SPEC) is None

    def test_returned_dict_is_a_fresh_copy(self, tmp_path):
        store = ArtifactStore(tmp_path / "store", cache_size=4)
        store.put(SPEC, _state())
        first, _ = store.get(SPEC)
        first.pop("w")  # mutating the returned *dict* must not poison the cache
        second, _ = store.get(SPEC)
        assert "w" in second


class TestCrashConsistency:
    """Durability ordering of the put path: fsync *before* rename.

    The atomic rename makes a put invisible-or-complete against process
    crashes; the fsyncs make it so against power loss too — a name must
    never land over bytes the disk has not accepted yet.
    """

    @staticmethod
    def _instrument(monkeypatch):
        import os as os_mod

        events = []
        real_fsync, real_replace = os_mod.fsync, os_mod.replace

        def spy_fsync(fd):
            events.append(("fsync", fd))
            return real_fsync(fd)

        def spy_replace(src, dst, **kwargs):
            events.append(("replace", str(dst)))
            return real_replace(src, dst, **kwargs)

        monkeypatch.setattr(os_mod, "fsync", spy_fsync)
        monkeypatch.setattr(os_mod, "replace", spy_replace)
        return events

    def test_durable_save_fsyncs_before_rename(self, tmp_path, monkeypatch):
        from repro.nn.serialization import save_state

        events = self._instrument(monkeypatch)
        save_state(_state(), tmp_path / "ckpt.npz", durable=True)
        kinds = [kind for kind, _ in events]
        rename_at = kinds.index("replace")
        assert "fsync" in kinds[:rename_at]  # data on disk before the name
        assert "fsync" in kinds[rename_at + 1:]  # then the directory entry

    def test_plain_save_skips_fsync(self, tmp_path, monkeypatch):
        from repro.nn.serialization import save_state

        events = self._instrument(monkeypatch)
        save_state(_state(), tmp_path / "ckpt.npz", durable=False)
        assert [kind for kind, _ in events] == ["replace"]

    def test_store_put_is_always_durable(self, tmp_path, monkeypatch):
        store = ArtifactStore(tmp_path / "store")
        events = self._instrument(monkeypatch)
        store.put(SPEC, _state())
        renames = [i for i, (kind, _) in enumerate(events) if kind == "replace"]
        assert len(renames) == 2  # blob, then sidecar
        for rename_at in renames:  # every rename rides behind an fsync
            assert events[rename_at - 1][0] == "fsync"

    def test_truncation_during_put_is_detected_and_repairable(self, tmp_path):
        from repro.faultinject import truncate_blob

        store = ArtifactStore(tmp_path / "store")
        entry = store.put(SPEC, _state(3.0))
        truncate_blob(store, entry.key, keep_bytes=8)
        assert any("truncated" in p for p in store.verify())
        assert store.get(SPEC) is None  # corruption reads as a miss
        store.put(SPEC, _state(3.0))  # retraining the cell repairs in place
        state, _ = store.get(SPEC)
        np.testing.assert_array_equal(state["w"], np.full((3, 3), 3.0))
        assert store.verify() == []
