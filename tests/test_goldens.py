"""Golden-trace regression tests: catch silent drift in the numbers.

Each test recomputes a small, fully seeded experiment slice and compares
it against a checked-in JSON trace (``tests/goldens/``).  Comparisons use
tolerances (``RTOL``/``ATOL``) so a benign platform difference does not
fail the suite, while a real behavioural change — a reward-scale bug, a
changed RNG stream, a broken evaluation — does.

After an *intentional* change to training or evaluation behaviour,
regenerate with::

    PYTHONPATH=src python -m pytest tests/test_goldens.py --update-goldens
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import pytest

from repro.experiments import SCALES, evaluate_cell, run_table1, victim_for
from repro.experiments.table1 import TABLE1_ATTACKS

GOLDEN_DIR = Path(__file__).parent / "goldens"
SCALE = SCALES["smoke"]  # smallest preset — seconds per cell
RTOL = 1e-3
ATOL = 1e-6


def _assert_close(actual, golden, path=""):
    """Recursive comparison with float tolerances and exact structure."""
    if isinstance(golden, dict):
        assert isinstance(actual, dict), f"{path}: type changed"
        assert sorted(actual) == sorted(golden), f"{path}: keys changed"
        for key in golden:
            _assert_close(actual[key], golden[key], f"{path}.{key}")
    elif isinstance(golden, list):
        assert isinstance(actual, list), f"{path}: type changed"
        assert len(actual) == len(golden), f"{path}: length changed"
        for i, (a, g) in enumerate(zip(actual, golden)):
            _assert_close(a, g, f"{path}[{i}]")
    elif isinstance(golden, float):
        assert math.isclose(actual, golden, rel_tol=RTOL, abs_tol=ATOL), \
            f"{path}: {actual} != golden {golden} (rtol={RTOL}, atol={ATOL})"
    else:
        assert actual == golden, f"{path}: {actual} != golden {golden}"


def check_golden(name: str, payload: dict, update: bool) -> None:
    path = GOLDEN_DIR / f"{name}.json"
    if update:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        pytest.skip(f"regenerated golden {path.name}")
    assert path.exists(), (
        f"missing golden {path}; generate with --update-goldens")
    _assert_close(payload, json.loads(path.read_text()))


def test_evaluate_cell_golden(update_goldens):
    """One (victim, attack) evaluation cell: clean PPO Hopper victim."""
    victim = victim_for("Hopper-v0", "ppo", SCALE, seed=0)
    ev = evaluate_cell("Hopper-v0", victim, "none", None, SCALE)
    check_golden("evaluate_cell_hopper_ppo_none", {
        "env_id": "Hopper-v0",
        "defense": "ppo",
        "attack": "none",
        "scale": SCALE.name,
        "episodes": len(ev.episode_rewards),
        "mean_reward": ev.mean_reward,
        "std_reward": ev.std_reward,
        "asr": ev.asr,
        "episode_rewards": [float(r) for r in ev.episode_rewards],
        "episode_lengths": [int(n) for n in ev.episode_lengths],
    }, update_goldens)


def test_table1_row_golden(update_goldens):
    """One full Table-1 row (Hopper × ppo, all attack columns) at smoke scale."""
    result = run_table1(env_ids=["Hopper-v0"], defenses=["ppo"],
                        attacks=TABLE1_ATTACKS, scale=SCALE, seed=0,
                        verbose=False)
    row = {
        cell.attack: {
            "mean_reward": cell.mean_reward,
            "std_reward": cell.std_reward,
            "asr": cell.asr,
        }
        for cell in result.cells
    }
    assert sorted(row) == sorted(TABLE1_ATTACKS)
    check_golden("table1_row_hopper_ppo", {
        "env_id": "Hopper-v0",
        "defense": "ppo",
        "scale": SCALE.name,
        "row": row,
    }, update_goldens)
