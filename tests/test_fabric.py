"""Fabric unit tests: leases, fencing, the queue, degradation, janitor.

The cross-process split-brain battery (SIGKILL / SIGSTOP / clock skew /
two-daemon sweeps) lives in ``tests/test_chaos.py``; this file covers
the protocol pieces in isolation — token monotonicity, O_EXCL claim
races, queue validation and quarantine, store-backed dedup, graceful
degradation of a worker-less fabric, lease pruning, the worker CLI, and
the stale pool/shm janitor.
"""

from __future__ import annotations

import multiprocessing
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np
import pytest

from repro.fabric import (
    FabricConfig,
    FabricQueue,
    FabricSubmitter,
    FabricWorker,
    LeaseLost,
    QueueCorrupt,
    highest_token,
    try_acquire,
    worker_identity,
)
from repro.fabric.probe import probe_job
from repro.faultinject import skew_lease
from repro.runtime import (
    Job,
    WorkerPool,
    pid_alive,
    run_parallel,
    sweep_stale_pool_dirs,
    sweep_stale_shm_segments,
)
from repro.telemetry import Telemetry

_FORK = multiprocessing.get_context("fork")

# Fast timings for single-process protocol tests.
CFG = FabricConfig(lease_timeout=0.5, renew_interval=0.05, poll_interval=0.02,
                   worker_timeout=0.5, grace=0.2)


def _ok(value=1, seed=None):
    return value


def _dead_pid() -> int:
    proc = _FORK.Process(target=_ok)
    proc.start()
    proc.join()
    return proc.pid


def _age(path: Path, seconds: float) -> None:
    stat = path.stat()
    os.utime(path, (stat.st_atime - seconds, stat.st_mtime - seconds))


# ------------------------------------------------------------------- leases

class TestLease:
    def test_fresh_claim_gets_token_one(self, tmp_path):
        lease = try_acquire(tmp_path / "job", "job", "w1", 1.0)
        assert lease is not None
        assert lease.token == 1
        assert lease.superseded_token is None
        assert lease.path.read_text().strip() == "w1"

    def test_live_lease_cannot_be_stolen(self, tmp_path):
        assert try_acquire(tmp_path / "job", "job", "w1", 1.0) is not None
        assert try_acquire(tmp_path / "job", "job", "w2", 1.0) is None

    def test_expired_lease_stolen_with_next_token(self, tmp_path):
        first = try_acquire(tmp_path / "job", "job", "w1", 1.0)
        _age(first.path, 5.0)
        second = try_acquire(tmp_path / "job", "job", "w2", 1.0)
        assert second is not None and second.token == 2
        assert second.superseded_token == 1
        assert second.superseded_owner == "w1"
        # the second claimant of the same expired token loses the race
        _age(first.path, 5.0)
        assert try_acquire(tmp_path / "job", "job", "w3", 1.0) is None

    def test_fenced_lease_stops_renewing_and_raises(self, tmp_path):
        first = try_acquire(tmp_path / "job", "job", "w1", 1.0)
        assert first.renew()  # healthy: renewal freshens the heartbeat
        _age(first.path, 5.0)
        second = try_acquire(tmp_path / "job", "job", "w2", 1.0)
        assert second is not None
        assert not first.renew()  # fenced by the newer token
        assert first.lost
        with pytest.raises(LeaseLost):
            first.check()
        assert second.is_supreme()

    def test_vanished_token_counts_as_fenced(self, tmp_path):
        lease = try_acquire(tmp_path / "job", "job", "w1", 1.0)
        lease.path.unlink()
        assert not lease.renew()
        assert lease.lost

    def test_skew_lease_invites_a_steal(self, tmp_path):
        queue = FabricQueue(tmp_path / "fabric", config=CFG)
        job = Job(_ok, name="skewed")
        queue.enqueue(job, "j1", job.payload())
        assert try_acquire(queue.lease_dir("j1"), "j1", "w1",
                           CFG.lease_timeout) is not None
        # healthy heartbeat: no steal possible...
        assert try_acquire(queue.lease_dir("j1"), "j1", "w2",
                           CFG.lease_timeout) is None
        skew_lease(queue, "j1", 60.0)
        # ...but after the injected skew the same claim succeeds
        stolen = try_acquire(queue.lease_dir("j1"), "j1", "w2",
                             CFG.lease_timeout)
        assert stolen is not None and stolen.token == 2

    def test_tokens_sort_numerically(self, tmp_path):
        lease_dir = tmp_path / "job"
        lease = try_acquire(lease_dir, "job", "w", 1.0)
        for _ in range(10):
            _age(lease.path, 5.0)
            lease = try_acquire(lease_dir, "job", "w", 1.0)
        assert lease.token == 11
        assert highest_token(lease_dir)[0] == 11


# -------------------------------------------------------------------- queue

class TestQueue:
    def test_config_first_writer_wins(self, tmp_path):
        FabricQueue(tmp_path / "f", config=CFG)
        later = FabricQueue(tmp_path / "f",
                            config=FabricConfig(lease_timeout=99.0))
        assert later.config == CFG  # the file, not the argument, wins

    def test_config_validation(self):
        with pytest.raises(ValueError, match="renew_interval"):
            FabricConfig(lease_timeout=1.0, renew_interval=2.0).validate()
        with pytest.raises(ValueError, match="positive"):
            FabricConfig(lease_timeout=0.0).validate()

    def test_entry_round_trip(self, tmp_path):
        queue = FabricQueue(tmp_path / "f", config=CFG)
        job = Job(_ok, kwargs={"value": 5}, name="cell", timeout=3.0)
        payload = job.payload()
        queue.enqueue(job, "j1", payload, submitter="me")
        assert queue.entries() == ["j1"]
        entry = queue.read_entry("j1")
        assert entry.name == "cell" and entry.timeout == 3.0
        assert entry.payload_bytes == len(payload)
        assert queue.read_payload(entry) == payload

    def test_damaged_payload_is_queue_corrupt(self, tmp_path):
        queue = FabricQueue(tmp_path / "f", config=CFG)
        job = Job(_ok, name="cell")
        queue.enqueue(job, "j1", job.payload())
        entry = queue.read_entry("j1")
        payload_path = queue._payload_path("j1")
        payload_path.write_bytes(payload_path.read_bytes()[:4])
        with pytest.raises(QueueCorrupt, match="truncated"):
            queue.read_payload(entry)
        # same length, flipped bytes → hash mismatch
        payload_path.write_bytes(bytes(entry.payload_bytes))
        with pytest.raises(QueueCorrupt, match="corrupt"):
            queue.read_payload(entry)

    def test_result_envelope_highest_token_wins(self, tmp_path):
        queue = FabricQueue(tmp_path / "f", config=CFG)
        queue.commit_result("j1", 1, {"ok": True, "worker": "zombie"})
        queue.commit_result("j1", 2, {"ok": False, "worker": "thief"})
        envelope = queue.result_envelope("j1")
        assert envelope["worker"] == "thief" and envelope["token"] == 2
        # a stale writer committing *after* the thief changes nothing
        queue.commit_result("j1", 1, {"ok": True, "worker": "zombie-late"})
        assert queue.result_envelope("j1")["worker"] == "thief"

    def test_success_dedup_through_store(self, tmp_path):
        queue = FabricQueue(tmp_path / "f", config=CFG)
        from repro.runtime import JobResult

        sha = "ab" * 32
        queue.store_success(sha, JobResult(name="cell", ok=True, value=41))
        cached = queue.cached_success(sha)
        assert cached is not None and cached.value == 41
        assert queue.cached_success("cd" * 32) is None

    def test_failures_never_dedup(self, tmp_path):
        queue = FabricQueue(tmp_path / "f", config=CFG)
        from repro.runtime import JobResult

        sha = "ab" * 32
        queue.store_success(sha, JobResult(name="cell", ok=False,
                                           error="boom"))
        assert queue.cached_success(sha) is None  # failures re-run

    def test_worker_identity_is_host_and_pid(self):
        identity = worker_identity()
        assert str(os.getpid()) in identity
        assert worker_identity("abc").endswith("-abc")

    def test_prune_leases(self, tmp_path):
        queue = FabricQueue(tmp_path / "f", config=CFG)
        # job "done": superseded + current token, result committed
        done_dir = queue.lease_dir("done")
        lease = try_acquire(done_dir, "done", "w", CFG.lease_timeout)
        _age(lease.path, 5.0)
        try_acquire(done_dir, "done", "w", CFG.lease_timeout)
        queue.commit_result("done", 2, {"ok": True})
        # job "running": superseded + current token, no result
        running_dir = queue.lease_dir("running")
        lease = try_acquire(running_dir, "running", "w", CFG.lease_timeout)
        _age(lease.path, 5.0)
        current = try_acquire(running_dir, "running", "w", CFG.lease_timeout)
        # one stale + one fresh worker heartbeat
        queue.touch_worker("stale-w")
        _age(queue.workers_dir / "stale-w", 60.0)
        queue.touch_worker("fresh-w")

        removed = queue.prune_leases()
        assert not done_dir.exists()  # finished job: whole lease dir gone
        assert [p.name for p in running_dir.iterdir()] == [current.path.name]
        assert current.is_supreme()  # the live fence was never touched
        assert not (queue.workers_dir / "stale-w").exists()
        assert (queue.workers_dir / "fresh-w").exists()
        assert len(removed) == 4  # 2×done tokens + 1 superseded + 1 heartbeat


# -------------------------------------------------- degradation + submitter

class TestDegradation:
    def test_worker_less_fabric_runs_inline_and_reports(self, tmp_path):
        FabricQueue(tmp_path / "f", config=CFG)
        telemetry = Telemetry.in_memory()
        report = run_parallel(
            [Job(_ok, kwargs={"value": 3}, name="a"),
             Job(_ok, kwargs={"value": 4}, name="b")],
            fabric_dir=tmp_path / "f", telemetry=telemetry)
        assert report.values() == [3, 4]
        assert report.degraded
        assert "no live fabric workers" in report.degraded_reason
        assert any(act["action"] == "fabric-degraded"
                   for act in report.interventions)
        degraded_events = [e["payload"] for e in telemetry.sink.events
                          if e["type"] == "schedule.degraded"]
        assert degraded_events and "fabric" in degraded_events[0]["reason"]

    def test_resubmission_served_from_store_without_workers(self, tmp_path):
        FabricQueue(tmp_path / "f", config=CFG)
        jobs = lambda: [Job(_ok, kwargs={"value": v}, name=f"j{v}")
                        for v in (7, 8)]
        first = run_parallel(jobs(), fabric_dir=tmp_path / "f")
        assert first.degraded and first.values() == [7, 8]
        start = time.monotonic()
        second = run_parallel(jobs(), fabric_dir=tmp_path / "f")
        assert second.values() == [7, 8]
        assert not second.degraded  # nothing pending: dedup, not degrade
        assert time.monotonic() - start < CFG.grace + 2.0

    def test_batch_deadline_drops_pending_jobs(self, tmp_path):
        config = FabricConfig(lease_timeout=0.5, renew_interval=0.05,
                              poll_interval=0.02, worker_timeout=0.5,
                              grace=60.0)  # never degrade: force the deadline
        queue = FabricQueue(tmp_path / "f", config=config)
        submitter = FabricSubmitter(tmp_path / "f")
        results, interventions, _ = submitter.run_batch(
            [Job(_ok, name="dropped")], deadline=0.3)
        assert len(results) == 1 and not results[0].ok
        assert results[0].error_kind == "timeout"
        assert any(act["action"] == "deadline-drop" for act in interventions)
        assert queue.result_envelope(queue.entries()[0]) is None

    def test_fabric_and_pool_are_mutually_exclusive(self, tmp_path):
        with pytest.raises(ValueError, match="mutually exclusive"):
            run_parallel([Job(_ok)], fabric_dir=tmp_path / "f",
                         pool=object())


# ------------------------------------------------------------ in-process run

class TestWorkerLoop:
    def test_scan_executes_and_commits(self, tmp_path):
        queue = FabricQueue(tmp_path / "f", config=CFG)
        job = Job(_ok, kwargs={"value": 17}, name="cell")
        queue.enqueue(job, "j1", job.payload())
        worker = FabricWorker(queue, worker_id="w1", supervise=False)
        assert worker.scan_once()
        assert not worker.scan_once()  # envelope committed: nothing left
        envelope = queue.result_envelope("j1")
        assert envelope["ok"] and envelope["worker"] == "w1"
        assert queue.load_result("j1", envelope).value == 17
        assert worker.jobs_completed == 1

    def test_job_filter_restricts_claims(self, tmp_path):
        queue = FabricQueue(tmp_path / "f", config=CFG)
        for job_id in ("mine", "theirs"):
            job = Job(_ok, name=job_id)
            queue.enqueue(job, job_id, job.payload())
        worker = FabricWorker(queue, worker_id="w1", supervise=False,
                              job_filter={"mine"})
        assert worker.work(idle_exit=0.1) == 1
        assert queue.result_envelope("mine") is not None
        assert queue.result_envelope("theirs") is None

    def test_failure_envelope_carries_taxonomy(self, tmp_path):
        queue = FabricQueue(tmp_path / "f", config=CFG)
        job = Job(_raises, name="boom")
        queue.enqueue(job, "j1", job.payload())
        FabricWorker(queue, worker_id="w1", supervise=False).scan_once()
        envelope = queue.result_envelope("j1")
        assert not envelope["ok"] and envelope["error_kind"] == "crash"
        result = queue.load_result("j1", envelope)
        assert "ValueError" in result.error
        # failures are queue-local: nothing was deduplicated to the store
        assert queue.cached_success(envelope["payload_sha256"]) is None

    def test_worker_cli_drains_a_queue(self, tmp_path):
        fabric = tmp_path / "fabric"
        queue = FabricQueue(fabric, config=CFG)
        job = Job(probe_job, name="cli-cell", kwargs={"steps": 8, "seed": 5})
        queue.enqueue(job, "j1", job.payload())
        env = dict(os.environ)
        src = Path(__file__).resolve().parent.parent / "src"
        env["PYTHONPATH"] = f"{src}{os.pathsep}" + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.fabric.worker", str(fabric),
             "--max-jobs", "1", "--idle-exit", "5", "--worker-id", "cli-w",
             "--no-supervise"],
            env=env, capture_output=True, text=True, timeout=120)
        assert proc.returncode == 0, proc.stderr
        assert "completed 1 jobs" in proc.stdout
        envelope = queue.result_envelope("j1")
        assert envelope["ok"] and envelope["worker"] == "cli-w"
        assert queue.load_result("j1", envelope).value == probe_job(steps=8,
                                                                    seed=5)


def _raises(seed=None):
    raise ValueError("injected failure")


# ------------------------------------------------------------------ janitor

class TestJanitor:
    def test_pid_alive(self):
        assert pid_alive(os.getpid())
        assert not pid_alive(_dead_pid())
        assert not pid_alive(-1)

    def test_sweep_pool_dirs_only_dead_owners(self, tmp_path):
        dead = tmp_path / "repro-pool-dead"
        dead.mkdir()
        (dead / "owner.pid").write_text(f"{_dead_pid()}\n")
        live = tmp_path / "repro-pool-live"
        live.mkdir()
        (live / "owner.pid").write_text(f"{os.getpid()}\n")
        unstamped = tmp_path / "repro-pool-unstamped"
        unstamped.mkdir()  # no owner file: not provably ours, never touched
        removed = sweep_stale_pool_dirs(tmp_path)
        assert removed == [dead]
        assert not dead.exists() and live.exists() and unstamped.exists()

    def test_sweep_shm_segments_only_dead_pids(self, tmp_path):
        dead = tmp_path / f"repro-shm-{_dead_pid()}-abc123"
        dead.write_bytes(b"x" * 64)
        live = tmp_path / f"repro-shm-{os.getpid()}-abc123"
        live.write_bytes(b"x" * 64)
        legacy = tmp_path / "repro-shm-legacyname"  # pre-pid-stamp layout
        legacy.write_bytes(b"x" * 64)
        removed = sweep_stale_shm_segments(str(tmp_path))
        assert removed == [dead]
        assert not dead.exists() and live.exists() and legacy.exists()

    def test_worker_pool_init_sweeps_orphans(self):
        root = Path(tempfile.gettempdir())
        orphan = root / f"repro-pool-orphan-{os.urandom(4).hex()}"
        orphan.mkdir()
        (orphan / "owner.pid").write_text(f"{_dead_pid()}\n")
        try:
            with WorkerPool(max_workers=1) as pool:
                assert not orphan.exists()  # swept during __init__
                assert (Path(pool._tmp.name) / "owner.pid").exists()
        finally:
            if orphan.exists():
                import shutil

                shutil.rmtree(orphan)

    def test_async_vec_env_startup_sweeps_orphans(self):
        from repro import envs
        from repro.runtime import AsyncVectorEnv
        from repro.runtime.shm import default_shm_dir

        orphan = (Path(default_shm_dir())
                  / f"repro-shm-{_dead_pid()}-{os.urandom(4).hex()}")
        orphan.write_bytes(b"x" * 64)
        try:
            vec = AsyncVectorEnv([lambda: envs.make("Hopper-v0")])
            try:
                assert not orphan.exists()  # swept before arena creation
            finally:
                vec.close()
        finally:
            if orphan.exists():
                orphan.unlink()


# ----------------------------------------------------------------- store gc

class TestStoreGcLeases:
    def test_leases_subcommand_prunes(self, tmp_path):
        queue = FabricQueue(tmp_path / "fabric", config=CFG)
        lease = try_acquire(queue.lease_dir("done"), "done", "w",
                            CFG.lease_timeout)
        queue.commit_result("done", lease.token, {"ok": True})
        script = Path(__file__).resolve().parent.parent / "scripts" / "store_gc.py"
        proc = subprocess.run(
            [sys.executable, str(script), "leases",
             "--fabric-dir", str(tmp_path / "fabric"), "--yes"],
            capture_output=True, text=True, timeout=60)
        assert proc.returncode == 0, proc.stderr
        assert "removed 1 lease" in proc.stdout
        assert not queue.lease_dir("done").exists()
