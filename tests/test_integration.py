"""End-to-end integration: victim training -> attack training -> evaluation,
at tiny budgets.  These exercise every layer of the stack together."""

from __future__ import annotations

import numpy as np
import pytest

from repro import envs
from repro.attacks import (
    AttackConfig,
    OpponentEnv,
    StatePerturbationEnv,
    default_epsilon,
    train_apmarl,
    train_imap,
    train_sarl,
)
from repro.defenses import DefenseTrainConfig, get_defense
from repro.eval import evaluate_game, evaluate_single_agent
from repro.rl import ActorCritic

TINY_ATTACK = AttackConfig(iterations=2, steps_per_iteration=192, hidden_sizes=(8,), seed=0)


@pytest.mark.slow
class TestSingleAgentPipeline:
    def test_full_chain_every_regularizer(self, tiny_victim):
        eps = default_epsilon("Hopper-v0")
        for reg in ("sc", "pc", "r", "d"):
            adv_env = StatePerturbationEnv(envs.make("Hopper-v0"), tiny_victim,
                                           epsilon=eps)
            result = train_imap(adv_env, reg, TINY_ATTACK)
            ev = evaluate_single_agent(envs.make("Hopper-v0"), tiny_victim,
                                       result.policy, epsilon=eps, episodes=3)
            assert len(ev.episode_rewards) == 3, reg
            assert np.isfinite(ev.mean_reward), reg

    def test_full_chain_with_br(self, tiny_victim):
        eps = default_epsilon("Hopper-v0")
        adv_env = StatePerturbationEnv(envs.make("Hopper-v0"), tiny_victim, epsilon=eps)
        result = train_imap(adv_env, "pc", TINY_ATTACK, use_bias_reduction=True)
        assert result.name == "IMAP-PC+BR"
        taus = [h["tau"] for h in result.history]
        assert all(0.0 < t <= 1.0 for t in taus)

    def test_sarl_chain_on_sparse_task(self):
        cfg = DefenseTrainConfig(iterations=1, steps_per_iteration=128,
                                 hidden_sizes=(8,), seed=0)
        victim = get_defense("ppo")(lambda: envs.make("SparseHopper-v0"), cfg)
        adv_env = StatePerturbationEnv(envs.make("SparseHopper-v0"), victim,
                                       epsilon=0.5)
        result = train_sarl(adv_env, TINY_ATTACK)
        ev = evaluate_single_agent(envs.make("SparseHopper-v0"), victim,
                                   result.policy, epsilon=0.5, episodes=3)
        assert all(r in (-0.1, 0.0, 1.0) for r in np.round(ev.episode_rewards, 6))

    def test_defended_victim_attackable(self):
        cfg = DefenseTrainConfig(iterations=1, steps_per_iteration=128,
                                 hidden_sizes=(8,), seed=0, epsilon=0.3)
        victim = get_defense("sa")(lambda: envs.make("Hopper-v0"), cfg)
        adv_env = StatePerturbationEnv(envs.make("Hopper-v0"), victim, epsilon=0.6)
        result = train_imap(adv_env, "r", TINY_ATTACK)
        assert len(result.history) == 2

    def test_navigation_and_manipulation_pipelines(self):
        for env_id in ("AntUMaze-v0", "FetchReach-v0"):
            cfg = DefenseTrainConfig(iterations=1, steps_per_iteration=128,
                                     hidden_sizes=(8,), seed=0)
            from repro.zoo import training_env_factory
            from repro.rl import TrainConfig, train_ppo
            res = train_ppo(training_env_factory(env_id)(),
                            TrainConfig(iterations=1, steps_per_iteration=128,
                                        hidden_sizes=(8,), seed=0))
            victim = res.policy
            victim.freeze_normalizer()
            adv_env = StatePerturbationEnv(envs.make(env_id), victim, epsilon=0.5)
            result = train_imap(adv_env, "sc", TINY_ATTACK)
            ev = evaluate_single_agent(envs.make(env_id), victim, result.policy,
                                       epsilon=0.5, episodes=2)
            assert np.isfinite(ev.mean_reward), env_id


@pytest.mark.slow
class TestMultiAgentPipeline:
    def test_apmarl_and_imap_chains(self, rng):
        victim = ActorCritic(14, 3, hidden_sizes=(8,), rng=rng)
        for trainer, kwargs in ((train_apmarl, {}),
                                (lambda e, c, **kw: train_imap(e, "pc", c, multi_agent=True,
                                                               use_bias_reduction=True), {})):
            adv_env = OpponentEnv(envs.make_game("YouShallNotPass-v0"), victim, seed=0)
            result = trainer(adv_env, TINY_ATTACK, **kwargs)
            ev = evaluate_game(envs.make_game("YouShallNotPass-v0"), victim,
                               result.policy, episodes=3, seed=1)
            assert 0.0 <= ev.asr <= 1.0

    def test_kickanddefend_chain(self, rng):
        victim = ActorCritic(17, 3, hidden_sizes=(8,), rng=rng)
        adv_env = OpponentEnv(envs.make_game("KickAndDefend-v0"), victim, seed=0)
        result = train_imap(adv_env, "sc", TINY_ATTACK, multi_agent=True)
        ev = evaluate_game(envs.make_game("KickAndDefend-v0"), victim,
                           result.policy, episodes=3, seed=1)
        assert 0.0 <= ev.asr <= 1.0
