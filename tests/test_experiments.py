"""Experiment runners at smoke scale + attack-name parsing + scales."""

from __future__ import annotations

import pytest

from repro.experiments import (
    SCALES,
    br_improvement_count,
    current_scale,
    parse_attack_name,
    render_table3,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7,
    run_table1,
    run_table2,
    run_table3,
)

SMOKE = SCALES["smoke"]


class TestConfig:
    def test_scales_exist(self):
        assert {"smoke", "short", "paper"} <= set(SCALES)
        assert SCALES["short"].attack_iterations > SCALES["smoke"].attack_iterations

    def test_current_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "short")
        assert current_scale().name == "short"
        assert current_scale("paper").name == "paper"

    def test_unknown_scale(self):
        with pytest.raises(KeyError):
            current_scale("huge")


class TestAttackNames:
    def test_baselines(self):
        assert parse_attack_name("sarl") == {"family": "sarl"}
        assert parse_attack_name("random") == {"family": "random"}
        assert parse_attack_name("apmarl") == {"family": "apmarl"}

    def test_imap_variants(self):
        spec = parse_attack_name("imap-pc+br")
        assert spec == {"family": "imap", "regularizer": "pc", "use_br": True}
        assert parse_attack_name("IMAP-R")["regularizer"] == "r"

    def test_unknown(self):
        with pytest.raises(ValueError):
            parse_attack_name("imap-zz")
        with pytest.raises(ValueError):
            parse_attack_name("fgsm")


@pytest.mark.slow
class TestSmokeRuns:
    def test_table1_slice(self):
        result = run_table1(env_ids=["Hopper-v0"], defenses=["ppo"],
                            attacks=["none", "sarl"], scale=SMOKE, verbose=False)
        assert len(result.cells) == 2
        cell = result.cell("Hopper-v0", "ppo", "none")
        assert cell.mean_reward != 0.0
        assert "Table 1" in result.render(attacks=["none", "sarl"])

    def test_table2_slice_and_dominance_metric(self):
        result = run_table2(env_ids=["FetchReach-v0"],
                            attacks=["none", "sarl", "imap-sc", "imap-pc",
                                     "imap-r", "imap-d"],
                            include_br=False, scale=SMOKE, verbose=False)
        wins, total = result.imap_dominates_sarl_count()
        assert total == 1 and 0 <= wins <= 1
        assert "Table 2" in result.render()

    def test_table3_slice(self):
        result = run_table3(env_ids=["FetchReach-v0"], scale=SMOKE, verbose=False)
        improved, total = br_improvement_count(result)
        assert total == 1
        assert "Table 3" in render_table3(result)

    def test_fig4_slice(self):
        figures = run_fig4(env_ids=["SparseHopper-v0"], attacks=["sarl", "imap-r"],
                           scale=SMOKE, verbose=False)
        figure = figures["SparseHopper-v0"]
        assert set(figure.curves) == {"SARL", "IMAP-R"}
        assert len(figure.curves["SARL"].y) == SMOKE.attack_iterations

    def test_fig5_slice(self):
        out = run_fig5(game_ids=["YouShallNotPass-v0"], attacks=["apmarl"],
                       scale=SMOKE, verbose=False)
        data = out["YouShallNotPass-v0"]
        assert "apmarl" in data["final_asr"]
        assert 0.0 <= data["final_asr"]["apmarl"] <= 1.0

    def test_fig6_slice(self):
        out = run_fig6(env_id="FetchReach-v0", etas=[0.1, 1.0], scale=SMOKE,
                       verbose=False)
        assert set(out["final_reward"]) == {0.1, 1.0}

    def test_fig7_slice(self):
        out = run_fig7(xis=[0.0, 1.0], scale=SMOKE, verbose=False)
        assert set(out["final_asr"]) == {0.0, 1.0}
