"""Dense and sparse locomotion environment semantics."""

from __future__ import annotations

import numpy as np
import pytest

from repro import envs
from repro.envs.locomotion import LOCOMOTION_CONFIGS, LocomotionEnv
from repro.envs.sparse import SPARSE_FAILURE_PENALTY, SPARSE_SUCCESS_REWARD


def run_forward_policy(env, steps=200, u=0.33, seed=0):
    """Drive with symmetric torque + simple pitch feedback; return history."""
    obs = env.reset(seed=seed)
    body = env.unwrapped.body if hasattr(env.unwrapped, "body") else env.unwrapped._inner.body
    inner_cfg = (env.unwrapped.config if hasattr(env.unwrapped, "config")
                 else env.unwrapped._inner.config)
    w = body._w
    direction = w / float(w @ w)
    infos = []
    for _ in range(steps):
        need = -(6.0 * body.pitch + 2.0 * body.pitch_dot
                 + inner_cfg.body.speed_coupling * body.v * body.pitch)
        a = np.clip(u + direction * need / inner_cfg.body.imbalance_gain, -1, 1)
        obs, reward, term, trunc, info = env.step(a)
        infos.append((reward, term, trunc, info))
        if term or trunc:
            break
    return infos


class TestDenseLocomotion:
    def test_success_fires_once(self):
        env = envs.make("Hopper-v0")
        infos = run_forward_policy(env)
        successes = [i[3]["success"] for i in infos]
        assert sum(successes) == 1
        # success at the crossing step
        idx = successes.index(True)
        assert infos[idx][3]["x_position"] >= LOCOMOTION_CONFIGS["Hopper"].success_distance

    def test_reward_contains_velocity_and_alive(self):
        env = envs.make("Hopper-v0")
        env.reset(seed=1)
        _, reward, _, _, info = env.step(np.zeros(3))
        # v ~ 0, action 0: reward ~ alive bonus
        assert reward == pytest.approx(1.0, abs=0.2)

    def test_ctrl_cost_reduces_reward(self):
        env1, env2 = envs.make("Hopper-v0"), envs.make("Hopper-v0")
        env1.reset(seed=3)
        env2.reset(seed=3)
        r_zero = env1.step(np.zeros(3))[1]
        r_full = env2.step(np.array([1.0, -1.0, 1.0]))[1]
        cfg = LOCOMOTION_CONFIGS["Hopper"]
        assert r_full < r_zero + 1.0  # ctrl cost bites
        assert cfg.ctrl_cost_weight > 0

    def test_unhealthy_terminates(self):
        env = envs.make("Hopper-v0")
        env.reset(seed=0)
        env.unwrapped.body.pitch = 10.0
        _, _, terminated, _, info = env.step(np.zeros(3))
        assert terminated and not info["healthy"]

    def test_halfcheetah_never_terminates(self):
        env = envs.make("HalfCheetah-v0")
        env.reset(seed=0)
        env.unwrapped.body.pitch = 10.0
        _, _, terminated, _, _ = env.step(np.zeros(6))
        assert not terminated

    def test_padding_deterministic_across_instances(self):
        a, b = envs.make("Ant-v0"), envs.make("Ant-v0")
        oa, ob = a.reset(seed=5), b.reset(seed=5)
        np.testing.assert_array_equal(oa, ob)

    def test_padding_depends_on_core_state(self):
        env = envs.make("Ant-v0")
        o1 = env.reset(seed=5)
        o2, *_ = env.step(np.ones(8))
        assert not np.allclose(o1[20:], o2[20:])  # contact-like pad moved

    def test_obs_dim_smaller_than_core_rejected(self):
        from dataclasses import replace
        cfg = replace(LOCOMOTION_CONFIGS["Hopper"], obs_dim=3)
        with pytest.raises(ValueError):
            LocomotionEnv(cfg)


class TestStandup:
    def test_starts_fallen(self):
        env = envs.make("HumanoidStandup-v0")
        env.reset(seed=0)
        assert abs(env.unwrapped.body.pitch) > 0.5

    def test_standup_success_via_height(self):
        env = envs.make("HumanoidStandup-v0")
        env.reset(seed=0)
        env.unwrapped.body.pitch = 0.0
        env.unwrapped.body._update_height()
        _, _, _, _, info = env.step(np.zeros(17))
        assert info["success"]

    def test_reward_tracks_height_change(self):
        env = envs.make("HumanoidStandup-v0")
        env.reset(seed=0)
        body = env.unwrapped.body
        direction = body._w / float(body._w @ body._w)
        # push pitch toward zero -> z rises -> positive reward on average
        rewards = []
        for _ in range(30):
            need = -(6.0 * body.pitch + 2.0 * body.pitch_dot + 2.0 * np.sin(body.pitch))
            a = np.clip(direction * need / 2.5, -1, 1)
            _, r, term, trunc, _ = env.step(a)
            rewards.append(r)
            if term or trunc:
                break
        assert sum(rewards) > 0


class TestSparseLocomotion:
    def test_sparse_success_reward_and_termination(self):
        env = envs.make("SparseHopper-v0")
        infos = run_forward_policy(env, steps=200)
        rewards = [i[0] for i in infos]
        assert rewards[-1] == SPARSE_SUCCESS_REWARD
        assert infos[-1][1]  # terminated on success
        assert all(r == 0.0 for r in rewards[:-1])

    def test_sparse_fall_penalty(self):
        env = envs.make("SparseHopper-v0")
        env.reset(seed=0)
        env.unwrapped._inner.body.pitch = 10.0
        _, reward, terminated, _, _ = env.step(np.zeros(3))
        assert terminated and reward == SPARSE_FAILURE_PENALTY

    def test_sparse_timeout_reward_zero(self):
        env = envs.make("SparseHopper-v0")
        env.reset(seed=0)
        total, done = 0.0, False
        while not done:
            _, r, term, trunc, _ = env.step(np.zeros(3))
            total += r
            done = term or trunc
        assert total == 0.0

    def test_sparse_goal_further_than_dense(self):
        dense = LOCOMOTION_CONFIGS["Hopper"].success_distance
        sparse = envs.make("SparseHopper-v0").unwrapped.config.success_distance
        assert sparse > dense

    def test_sparse_obs_space_matches_dense(self):
        assert (envs.make("SparseAnt-v0").observation_space
                == envs.make("Ant-v0").observation_space)

    def test_sparse_seeding_reproducible(self):
        a, b = envs.make("SparseWalker2d-v0"), envs.make("SparseWalker2d-v0")
        np.testing.assert_array_equal(a.reset(seed=3), b.reset(seed=3))
        act = np.full(6, 0.2)
        np.testing.assert_array_equal(a.step(act)[0], b.step(act)[0])
