"""Victim zoo: caching, training-env twins, scripted opponents."""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro import envs
from repro.defenses import DefenseTrainConfig
from repro.store import default_store, spec_key
from repro.zoo import (
    VictimGameEnv,
    WeakBlocker,
    WeakGoalie,
    get_game_victim,
    get_victim,
    training_env_factory,
)
from repro.zoo.opponents import MixtureOpponent, Rammer
from repro.zoo.train import victim_spec

TINY = DefenseTrainConfig(iterations=1, steps_per_iteration=128, hidden_sizes=(8,), seed=0)


class TestTrainingEnvFactory:
    def test_dense_uses_registered_env(self):
        env = training_env_factory("Hopper-v0")()
        assert env.observation_space.shape == (11,)

    def test_sparse_twin_is_dense_rewarded(self):
        env = training_env_factory("SparseHopper-v0")()
        env.reset(seed=0)
        _, reward, _, _, _ = env.step(np.zeros(3))
        assert reward != 0.0  # shaped (alive bonus), not sparse

    def test_sparse_twin_matches_obs_space(self):
        twin = training_env_factory("SparseAnt-v0")()
        sparse = envs.make("SparseAnt-v0")
        assert twin.observation_space == sparse.observation_space

    def test_navigation_twin_shaped(self):
        env = training_env_factory("AntUMaze-v0")()
        assert env.shaped

    def test_fetchreach_twin_shaped(self):
        env = training_env_factory("FetchReach-v0")()
        assert env.shaped


class TestVictimCache:
    def test_cache_roundtrip(self):
        v1 = get_victim("Hopper-v0", "ppo", config=TINY, budget_tag="tiny", seed=0)
        store = default_store()
        assert store.contains(victim_spec("Hopper-v0", "ppo", TINY, "tiny", 0))
        v2 = get_victim("Hopper-v0", "ppo", config=TINY, budget_tag="tiny", seed=0)
        x = np.ones(11)
        np.testing.assert_allclose(v1.actor(x).data, v2.actor(x).data)
        assert v2.normalizer.frozen

    def test_force_retrain_overwrites(self):
        get_victim("Hopper-v0", "ppo", config=TINY, budget_tag="tiny2", seed=0)
        store = default_store()
        entry = store.entry(victim_spec("Hopper-v0", "ppo", TINY, "tiny2", 0))
        mtime = entry.path.stat().st_mtime_ns
        get_victim("Hopper-v0", "ppo", config=TINY, budget_tag="tiny2", seed=0,
                   force_retrain=True)
        entry2 = store.entry(victim_spec("Hopper-v0", "ppo", TINY, "tiny2", 0))
        assert entry2.path.stat().st_mtime_ns >= mtime

    def test_distinct_keys_per_defense_and_seed(self):
        a = spec_key(victim_spec("Hopper-v0", "ppo", TINY, "t", 0))
        b = spec_key(victim_spec("Hopper-v0", "sa", TINY, "t", 0))
        c = spec_key(victim_spec("Hopper-v0", "ppo", TINY, "t", 1))
        assert len({a, b, c}) == 3

    def test_config_change_changes_key(self):
        # The stale-cache fix: the full DefenseTrainConfig (including
        # nested PPO settings) is part of the content address.
        base = victim_spec("Hopper-v0", "sa_ppo", TINY, "t", 0)
        eps = victim_spec("Hopper-v0", "sa_ppo", replace(TINY, epsilon=0.3), "t", 0)
        iters = victim_spec("Hopper-v0", "sa_ppo", replace(TINY, iterations=2), "t", 0)
        assert len({spec_key(base), spec_key(eps), spec_key(iters)}) == 3

    def test_metadata_mismatch_falls_back_to_retraining(self):
        get_victim("Hopper-v0", "ppo", config=TINY, budget_tag="tiny3", seed=0)
        store = default_store()
        spec = victim_spec("Hopper-v0", "ppo", TINY, "tiny3", 0)
        entry = store.entry(spec)
        # Corrupt the sidecar metadata: claim the artifact is for another env.
        doc = entry.sidecar.read_text()
        entry.sidecar.write_text(doc.replace('"env_id": "Hopper-v0"',
                                             '"env_id": "Ant-v0"'))
        with pytest.warns(UserWarning, match="metadata mismatch"):
            v = get_victim("Hopper-v0", "ppo", config=TINY, budget_tag="tiny3",
                           seed=0)
        assert v.normalizer.frozen  # retrained fine
        # The retrain re-put the artifact with correct metadata.
        assert store.entry(spec).metadata["env_id"] == "Hopper-v0"

    def test_game_victim_cache(self):
        v1 = get_game_victim("YouShallNotPass-v0", iterations=1,
                             steps_per_iteration=128, hidden_sizes=(8,),
                             hardening_iterations=0, budget_tag="tiny", seed=0)
        v2 = get_game_victim("YouShallNotPass-v0", iterations=1,
                             steps_per_iteration=128, hidden_sizes=(8,),
                             hardening_iterations=0, budget_tag="tiny", seed=0)
        x = np.ones(14)
        np.testing.assert_allclose(v1.actor(x).data, v2.actor(x).data)


class TestOpponents:
    def test_weak_blocker_tracks_runner(self):
        obs = np.zeros(14)
        obs[12:14] = [2.0, 1.0]  # runner is ahead and above
        action = WeakBlocker(seed=0).action(obs)
        assert action.shape == (3,)
        assert action[0] > 0  # move toward the runner (x)

    def test_rammer_charges_at_unit_speed(self):
        obs = np.zeros(14)
        obs[12:14] = [3.0, 4.0]
        action = Rammer(seed=0).action(obs)
        np.testing.assert_allclose(action[:2], [0.6, 0.8], atol=1e-12)
        assert action[2] == 1.0  # braced

    def test_weak_goalie_tracks_ball(self):
        obs = np.zeros(17)
        obs[1] = 0.0    # my y
        obs[13] = 1.5   # ball y
        action = WeakGoalie(seed=0).action(obs)
        assert action[1] > 0

    def test_mixture_switches_on_reset(self):
        class Tag:
            def __init__(self, tag):
                self.tag = tag

            def action(self, obs, rng=None, deterministic=False):
                return np.full(3, self.tag)

        mix = MixtureOpponent([Tag(0.0), Tag(1.0)], seed=0)
        seen = set()
        for _ in range(30):
            mix.reset()
            seen.add(float(mix.action(np.zeros(14))[0]))
        assert seen == {0.0, 1.0}

    def test_mixture_rejects_empty(self):
        with pytest.raises(ValueError):
            MixtureOpponent([])


class TestVictimGameEnv:
    def test_single_agent_view(self, rng):
        game = envs.make_game("YouShallNotPass-v0")
        env = VictimGameEnv(game, WeakBlocker(seed=0), seed=0)
        obs = env.reset(seed=0)
        assert obs.shape == (14,)
        obs, r, term, trunc, info = env.step(rng.uniform(-1, 1, 3))
        assert "success" in info

    def test_episode_terminates(self, rng):
        game = envs.make_game("YouShallNotPass-v0")
        env = VictimGameEnv(game, WeakBlocker(seed=0), seed=0)
        env.reset(seed=0)
        done = False
        for _ in range(game.max_steps + 1):
            _, _, done, trunc, _ = env.step(rng.uniform(-1, 1, 3))
            if done:
                break
        assert done
