"""End-to-end tests for the evaluation service.

The acceptance path from the issue: a cold request computes and
persists; the identical warm request returns the same payload from the
store without scheduling a worker (asserted via ``store.hits`` and the
scheduler counters); k identical concurrent requests perform exactly one
evaluation; injected faults surface with the supervisor's ``error_kind``
taxonomy; and the socket server streams the documented event sequence.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.serve import (
    EvalService,
    LocalClient,
    ProtocolError,
    ServeClient,
    ServeConfig,
    ServeError,
    normalize_request,
    request_key,
    request_spec,
)
from repro.serve.server import serve_forever
from repro.store import ArtifactStore
from repro.telemetry import Telemetry

TINY = {
    "env_id": "Hopper-v0",
    "victim": {"iterations": 1, "steps_per_iteration": 64},
    "attack": {"kind": "none"},
    "eval": {"episodes": 2, "seed": 3},
}


def make_service(tmp_path, **config) -> EvalService:
    telemetry = Telemetry.in_memory()
    store = ArtifactStore(tmp_path / "store", telemetry=telemetry,
                          cache_size=config.pop("cache_size", 8))
    defaults = dict(job_timeout=120.0, retries=0)
    defaults.update(config)
    return EvalService(store, ServeConfig(**defaults), telemetry=telemetry)


def counter(service: EvalService, name: str) -> float:
    return service.metrics.counter(name).value


def strip_flags(payload: dict) -> dict:
    return {k: v for k, v in payload.items() if k not in ("cached", "coalesced")}


class TestColdWarm:
    def test_cold_computes_warm_serves_from_store(self, tmp_path):
        service = make_service(tmp_path)
        client = LocalClient(service)

        async def main():
            cold_events = []
            cold = await client.evaluate(
                TINY, on_event=lambda e: cold_events.append(e))
            warm_events = []
            warm = await client.evaluate(
                TINY, on_event=lambda e: warm_events.append(e))
            return cold, cold_events, warm, warm_events

        cold, cold_events, warm, warm_events = asyncio.run(main())

        # Cold: scheduled, computed, persisted.
        assert [e["event"] for e in cold_events][:2] == ["queued", "scheduled"]
        assert cold_events[-1]["event"] == "result"
        assert not cold["cached"]
        assert cold["key"] == request_key(TINY)
        assert cold["episodes"] == 2
        entry = service.store.entry_by_key(cold["key"])
        assert entry is not None and entry.metadata["lane"] == "worker"

        # Warm: same payload, straight from the store, no scheduling.
        assert [e["event"] for e in warm_events] == ["queued", "cached", "result"]
        assert warm["cached"]
        assert strip_flags(warm) == strip_flags(cold)
        assert counter(service, "serve.scheduled_jobs") == 1
        assert counter(service, "serve.inline_evals") == 0
        assert counter(service, "serve.cache_hits") == 1
        assert counter(service, "store.hits") >= 1

    def test_equivalent_spelling_hits_the_same_entry(self, tmp_path):
        service = make_service(tmp_path)
        client = LocalClient(service)
        respelled = {
            "eval": {"episodes": 2.0, "seed": 3.0},
            "attack": {"kind": "none"},
            "victim": {"steps_per_iteration": 64, "iterations": 1},
            "env_id": "Hopper-v0",
            "threat": {"kind": "none"},
        }

        async def main():
            cold = await client.evaluate(TINY)
            warm = await client.evaluate(respelled)
            return cold, warm

        cold, warm = asyncio.run(main())
        assert warm["cached"]
        assert strip_flags(warm) == strip_flags(cold)
        assert counter(service, "serve.scheduled_jobs") == 1

    def test_malformed_request_rejected_before_any_work(self, tmp_path):
        service = make_service(tmp_path)

        async def main():
            with pytest.raises(ProtocolError, match="unknown fields"):
                await service.submit({"env_id": "Hopper-v0", "evall": {}})

        asyncio.run(main())
        assert counter(service, "serve.requests") == 0


class TestCoalescing:
    def test_identical_concurrent_requests_cost_one_evaluation(self, tmp_path):
        service = make_service(tmp_path)
        client = LocalClient(service)
        k = 5

        async def main():
            return await asyncio.gather(*[client.evaluate(TINY)
                                          for _ in range(k)])

        payloads = asyncio.run(main())
        assert counter(service, "serve.computed") == 1
        assert counter(service, "serve.coalesced") == k - 1
        assert counter(service, "serve.scheduled_jobs") == 1
        assert sum(1 for p in payloads if p["coalesced"]) == k - 1
        reference = strip_flags(payloads[0])
        assert all(strip_flags(p) == reference for p in payloads)

    def test_coalesced_failure_propagates_to_all_waiters(self, tmp_path):
        service = make_service(tmp_path, allow_fault_injection=True)
        bad = dict(TINY, fault={"kind": "crash"})

        async def main():
            results = await asyncio.gather(
                *[service.submit(bad) for _ in range(3)],
                return_exceptions=True)
            return results

        results = asyncio.run(main())
        assert all(isinstance(r, ServeError) for r in results)
        assert all(r.error_kind == "crash" for r in results)
        assert counter(service, "serve.scheduled_jobs") == 1


class TestLanes:
    def test_inline_lane_matches_worker_lane_bitwise(self, tmp_path):
        """Same spec, either lane, same arrays: the canonical evaluator
        makes the result lane-independent."""
        service = make_service(tmp_path)
        request = dict(TINY, attack={"kind": "random"},
                       eval={"episodes": 2, "seed": 5})
        key = service.store.key_for(request_spec(normalize_request(request)))

        async def main():
            worker = await service.submit(request)
            service.store.remove(key)
            events = []
            inline = await service.submit(
                request, on_event=lambda e: events.append(e))
            return worker, inline, events

        worker, inline, events = asyncio.run(main())
        lanes = [e["lane"] for e in events if e["event"] == "scheduled"]
        assert lanes == ["inline"]
        assert inline["episode_rewards"] == worker["episode_rewards"]
        assert inline["episode_lengths"] == worker["episode_lengths"]
        entry = service.store.entry_by_key(key)
        assert entry.metadata["lane"] == "inline"

    def test_inline_disabled_always_schedules(self, tmp_path):
        service = make_service(tmp_path, inline_eval=False)
        key = service.store.key_for(request_spec(normalize_request(TINY)))

        async def main():
            await service.submit(TINY)
            service.store.remove(key)
            await service.submit(TINY)

        asyncio.run(main())
        assert counter(service, "serve.scheduled_jobs") == 2
        assert counter(service, "serve.inline_evals") == 0

    def test_learned_attack_never_runs_inline(self, tmp_path):
        """Training work must go through the supervised worker pool."""
        service = make_service(tmp_path)
        request = {
            "env_id": "Hopper-v0",
            "victim": {"iterations": 1, "steps_per_iteration": 64},
            "attack": {"kind": "sarl", "iterations": 1,
                       "steps_per_iteration": 64},
            "eval": {"episodes": 2, "seed": 3},
        }

        async def main():
            events = []
            await service.submit(request,
                                 on_event=lambda e: events.append(e))
            return events

        events = asyncio.run(main())
        lanes = [e["lane"] for e in events if e["event"] == "scheduled"]
        assert lanes == ["worker"]


class TestFaults:
    def test_fault_injection_disabled_by_default(self, tmp_path):
        service = make_service(tmp_path)

        async def main():
            with pytest.raises(ProtocolError, match="fault injection"):
                await service.submit(dict(TINY, fault={"kind": "crash"}))

        asyncio.run(main())

    @pytest.mark.parametrize("kind,expected", [
        ("crash", "crash"),
        ("numerical", "numerical"),
    ])
    def test_fault_classified_by_error_kind(self, tmp_path, kind, expected):
        service = make_service(tmp_path, allow_fault_injection=True)
        bad = dict(TINY, fault={"kind": kind},
                   eval={"episodes": 2, "seed": 40})

        async def main():
            events = []
            with pytest.raises(ServeError) as excinfo:
                await service.submit(bad, on_event=lambda e: events.append(e))
            return excinfo.value, events

        error, events = asyncio.run(main())
        assert error.error_kind == expected
        assert events[-1]["event"] == "error"
        assert events[-1]["error_kind"] == expected
        assert counter(service, "serve.errors") == 1

    def test_hang_killed_by_deadline_as_timeout(self, tmp_path):
        service = make_service(tmp_path, allow_fault_injection=True,
                               job_timeout=2.0)
        bad = dict(TINY, fault={"kind": "hang"},
                   eval={"episodes": 2, "seed": 41})

        async def main():
            with pytest.raises(ServeError) as excinfo:
                await service.submit(bad)
            return excinfo.value

        error = asyncio.run(main())
        assert error.error_kind == "timeout"


class TestSocketServer:
    def test_full_mix_over_the_socket(self, tmp_path):
        service = make_service(tmp_path, allow_fault_injection=True)
        socket_path = tmp_path / "serve.sock"

        async def main():
            ready = asyncio.Event()
            server = asyncio.create_task(
                serve_forever(service, socket_path, ready=ready))
            await asyncio.wait_for(ready.wait(), 10)
            client = await ServeClient.connect(socket_path)
            try:
                assert (await client.ping())["event"] == "pong"

                # Cold miss.
                cold_events = []
                cold = await client.evaluate(
                    TINY, on_event=lambda e: cold_events.append(e["event"]))
                assert cold_events[:2] == ["queued", "scheduled"]
                assert cold_events[-1] == "result"
                assert "progress" in cold_events

                # Warm hit over the wire: identical payload.
                warm = await client.evaluate(TINY)
                assert warm["cached"]
                assert strip_flags(warm) == strip_flags(cold)

                # Coalesced duplicates share one evaluation.
                fresh = dict(TINY, eval={"episodes": 2, "seed": 77})
                fanned = await asyncio.gather(
                    *[client.evaluate(fresh) for _ in range(3)])
                assert sum(1 for p in fanned if p["coalesced"]) == 2
                assert counter(service, "serve.computed") == 2

                # Injected fault classified through the taxonomy.
                bad = dict(TINY, fault={"kind": "crash"},
                           eval={"episodes": 2, "seed": 78})
                with pytest.raises(ServeError) as excinfo:
                    await client.evaluate(bad)
                assert excinfo.value.error_kind == "crash"

                status = await client.status()
                assert status["inflight"] == 0
                assert status["counters"]["serve.requests"] == 6.0

                await client.shutdown()
            finally:
                await client.close()
            await asyncio.wait_for(server, 10)

        asyncio.run(main())

    def test_unknown_op_and_bad_json_survive_the_connection(self, tmp_path):
        service = make_service(tmp_path)
        socket_path = tmp_path / "serve.sock"

        async def main():
            ready = asyncio.Event()
            server = asyncio.create_task(
                serve_forever(service, socket_path, ready=ready))
            await asyncio.wait_for(ready.wait(), 10)
            reader, writer = await asyncio.open_unix_connection(
                str(socket_path))
            try:
                writer.write(b"{broken\n")
                writer.write(b'{"op": "frobnicate", "id": "x"}\n')
                writer.write(b'{"op": "ping", "id": "y"}\n')
                await writer.drain()
                import json

                seen = [json.loads(await asyncio.wait_for(reader.readline(), 10))
                        for _ in range(3)]
                assert [e["event"] for e in seen] == ["error", "error", "pong"]
                writer.write(b'{"op": "shutdown"}\n')
                await writer.drain()
            finally:
                writer.close()
            await asyncio.wait_for(server, 10)

        asyncio.run(main())


class TestStats:
    def test_stats_shape(self, tmp_path):
        service = make_service(tmp_path)

        async def main():
            await service.submit(TINY)
            await service.submit(TINY)

        asyncio.run(main())
        stats = service.stats()
        assert stats["inflight"] == 0
        assert stats["counters"]["serve.requests"] == 2.0
        assert stats["counters"]["serve.cache_hits"] == 1.0
