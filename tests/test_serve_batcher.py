"""Tests for the micro-batching inference lane.

The contract under test: forwards are actually grouped (calls < items),
results are bit-identical to unbatched ``act`` on the same observations,
and the whole evaluation is a pure function of the request — the same
spec gives the same arrays however the event loop interleaves episodes.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro import envs
from repro.rl.policy import ActorCritic
from repro.serve import MicroBatcher, batched_evaluate, run_batched_evaluate
from repro.serve.batcher import _MODE_RNG


def make_policy(obs_dim=5, action_dim=3, seed=0) -> ActorCritic:
    return ActorCritic(obs_dim, action_dim, hidden_sizes=(8,),
                       rng=np.random.default_rng(seed))


class TestMicroBatcher:
    def test_groups_concurrent_forwards_into_one_call(self):
        policy = make_policy()
        obs = np.random.default_rng(1).normal(size=(4, 5))

        async def main():
            batcher = MicroBatcher()
            for i in range(4):
                batcher.join(i)

            async def one(i):
                try:
                    return await batcher.act(i, policy, obs[i])
                finally:
                    batcher.leave(i)

            actions = await asyncio.gather(*[one(i) for i in range(4)])
            return batcher, actions

        batcher, actions = asyncio.run(main())
        assert batcher.calls == 1
        assert batcher.items == 4
        # Bit-identical to one direct act_batch over the same rows.
        expected, _, _, _, _ = policy.act_batch(obs, _MODE_RNG,
                                                deterministic=True)
        for i in range(4):
            np.testing.assert_array_equal(actions[i], expected[i])

    def test_two_policies_flush_as_separate_groups(self):
        victim, attacker = make_policy(seed=0), make_policy(5, 5, seed=1)
        obs = np.random.default_rng(2).normal(size=(4, 5))

        async def main():
            batcher = MicroBatcher()
            for i in range(4):
                batcher.join(i)

            async def one(i):
                policy = victim if i % 2 == 0 else attacker
                try:
                    return await batcher.act(i, policy, obs[i])
                finally:
                    batcher.leave(i)

            await asyncio.gather(*[one(i) for i in range(4)])
            return batcher

        batcher = asyncio.run(main())
        assert batcher.calls == 2
        assert batcher.items == 4

    def test_leave_unblocks_remaining_members(self):
        """A member that exits early must not wedge the others' flush."""
        policy = make_policy()

        async def main():
            batcher = MicroBatcher()
            batcher.join(0)
            batcher.join(1)

            async def short():
                batcher.leave(0)

            async def long():
                try:
                    return await batcher.act(1, policy, np.zeros(5))
                finally:
                    batcher.leave(1)

            _, action = await asyncio.wait_for(
                asyncio.gather(short(), long()), timeout=5.0)
            return action

        action = asyncio.run(main())
        assert action.shape == (3,)

    def test_submit_without_join_rejected(self):
        async def main():
            batcher = MicroBatcher()
            with pytest.raises(ValueError, match="must join"):
                await batcher.act(0, make_policy(), np.zeros(5))

        asyncio.run(main())

    def test_policy_failure_propagates_to_waiters(self):
        class Broken:
            def act_batch(self, batch, rng, deterministic=False):
                raise RuntimeError("injected forward failure")

        async def main():
            batcher = MicroBatcher()
            batcher.join(0)
            try:
                await batcher.act(0, Broken(), np.zeros(5))
            finally:
                batcher.leave(0)

        with pytest.raises(RuntimeError, match="injected forward"):
            asyncio.run(main())


class TestBatchedEvaluate:
    def test_batches_across_episodes(self, tiny_victim):
        batcher = MicroBatcher()
        evaluation = asyncio.run(batched_evaluate(
            lambda: envs.make("Hopper-v0"), tiny_victim,
            episodes=4, seed=5, batcher=batcher))
        assert len(evaluation.episode_rewards) == 4
        assert batcher.calls < batcher.items  # grouping actually happened

    def test_deterministic_across_runs(self, tiny_victim):
        kwargs = dict(episodes=3, seed=11)
        first = run_batched_evaluate(lambda: envs.make("Hopper-v0"),
                                     tiny_victim, **kwargs)
        second = run_batched_evaluate(lambda: envs.make("Hopper-v0"),
                                      tiny_victim, **kwargs)
        assert first.episode_rewards == second.episode_rewards
        assert first.episode_lengths == second.episode_lengths
        assert first.episode_successes == second.episode_successes

    def test_seed_changes_result(self, tiny_victim):
        a = run_batched_evaluate(lambda: envs.make("Hopper-v0"), tiny_victim,
                                 episodes=3, seed=11)
        b = run_batched_evaluate(lambda: envs.make("Hopper-v0"), tiny_victim,
                                 episodes=3, seed=12)
        assert a.episode_rewards != b.episode_rewards

    def test_episode_count_changes_batch_composition(self, tiny_victim):
        """Episode seeds are prefix-stable; episode *results* are not.

        ``derive_job_seeds`` gives episode i the same seed whether 3 or
        5 episodes run, so per-episode randomness is count-independent —
        but the batch a forward pass rides in is part of the request's
        contract (batched float64 matmul is not row-stable across batch
        shapes), so rewards from a 3-episode and a 5-episode request are
        two different, individually reproducible results.
        """
        from repro.runtime.scheduler import derive_job_seeds

        assert derive_job_seeds(7, 5)[:3] == derive_job_seeds(7, 3)
        three = run_batched_evaluate(lambda: envs.make("Hopper-v0"),
                                     tiny_victim, episodes=3, seed=7)
        rerun = run_batched_evaluate(lambda: envs.make("Hopper-v0"),
                                     tiny_victim, episodes=3, seed=7)
        assert three.episode_rewards == rerun.episode_rewards

    def test_random_attack_perturbs_outcome(self, tiny_victim):
        from repro.attacks import RandomAttackPolicy

        clean = run_batched_evaluate(lambda: envs.make("Hopper-v0"),
                                     tiny_victim, episodes=3, seed=7)
        attacked = run_batched_evaluate(
            lambda: envs.make("Hopper-v0"), tiny_victim, episodes=3, seed=7,
            attack_policy=RandomAttackPolicy(
                envs.make("Hopper-v0").observation_space.shape[0], seed=7),
            epsilon=0.6, norm="linf")
        assert clean.episode_rewards != attacked.episode_rewards

    def test_rejects_nonpositive_episodes(self, tiny_victim):
        with pytest.raises(ValueError, match="episodes must be positive"):
            run_batched_evaluate(lambda: envs.make("Hopper-v0"), tiny_victim,
                                 episodes=0, seed=1)
