"""Property tests for the serve protocol's canonicalization layer.

The dedup guarantee rests on two invariants: every semantically
equivalent spelling of a request (field order, int-vs-float budgets,
defaults elided vs explicit) maps to the *same* content address, and
requests that name distinct computations (different threat models,
budgets, seeds) *never* share one.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import ProtocolError, normalize_request, request_key
from repro.serve.protocol import (
    ATTACK_KINDS,
    LEARNED_ATTACKS,
    decode_message,
    encode_message,
)

ENV_IDS = ("Hopper-v0", "Walker2d-v0", "Ant-v0")


def permute(d: dict, rng_seed: int) -> dict:
    """Same mapping, different insertion order (recursively)."""
    import random

    rng = random.Random(rng_seed)
    keys = list(d)
    rng.shuffle(keys)
    return {k: permute(d[k], rng_seed + 1) if isinstance(d[k], dict) else d[k]
            for k in keys}


def intish(value: int) -> st.SearchStrategy:
    """The int itself or its float spelling — must canonicalize equally."""
    return st.sampled_from([value, float(value)])


@st.composite
def requests(draw) -> dict:
    env_id = draw(st.sampled_from(ENV_IDS))
    request: dict = {"env_id": env_id}
    attack_kind = draw(st.sampled_from(ATTACK_KINDS))
    attack: dict = {"kind": attack_kind}
    if attack_kind in LEARNED_ATTACKS:
        if draw(st.booleans()):
            attack["seed"] = draw(intish(draw(st.integers(0, 100))))
        if draw(st.booleans()):
            attack["iterations"] = draw(intish(draw(st.integers(1, 10))))
    request["attack"] = attack
    if attack_kind != "none" and draw(st.booleans()):
        threat: dict = {"kind": "state_perturbation"}
        if draw(st.booleans()):
            threat["epsilon"] = draw(st.floats(0.01, 2.0, allow_nan=False))
        if draw(st.booleans()):
            threat["norm"] = draw(st.sampled_from(["linf", "l2"]))
        request["threat"] = threat
    if draw(st.booleans()):
        request["victim"] = {
            "seed": draw(intish(draw(st.integers(0, 100)))),
            "iterations": draw(intish(draw(st.integers(1, 16)))),
        }
    if draw(st.booleans()):
        request["eval"] = {
            "episodes": draw(intish(draw(st.integers(1, 64)))),
            "seed": draw(intish(draw(st.integers(0, 10_000)))),
        }
    return request


class TestKeyEquivalence:
    @settings(deadline=None, max_examples=80)
    @given(request=requests(), perm_seed=st.integers(0, 2**31))
    def test_field_order_is_irrelevant(self, request, perm_seed):
        assert request_key(permute(request, perm_seed)) == request_key(request)

    @settings(deadline=None, max_examples=80)
    @given(request=requests())
    def test_normalize_is_idempotent(self, request):
        normalized = normalize_request(request)
        assert normalize_request(normalized) == normalized
        assert request_key(normalized) == request_key(request)

    @settings(deadline=None, max_examples=60)
    @given(episodes=st.integers(1, 64), seed=st.integers(0, 1000))
    def test_int_and_float_budgets_collide(self, episodes, seed):
        """``8`` and ``8.0`` name the same computation."""
        as_int = {"env_id": "Hopper-v0",
                  "eval": {"episodes": episodes, "seed": seed}}
        as_float = {"env_id": "Hopper-v0",
                    "eval": {"episodes": float(episodes), "seed": float(seed)}}
        assert request_key(as_int) == request_key(as_float)

    @settings(deadline=None, max_examples=60)
    @given(epsilon=st.integers(1, 3))
    def test_integral_epsilon_spellings_collide(self, epsilon):
        base = {"env_id": "Hopper-v0", "attack": {"kind": "random"}}
        a = dict(base, threat={"epsilon": epsilon})
        b = dict(base, threat={"epsilon": float(epsilon)})
        assert request_key(a) == request_key(b)

    def test_elided_defaults_collide_with_explicit(self):
        bare = {"env_id": "Hopper-v0"}
        explicit = {
            "env_id": "Hopper-v0",
            "victim": {"defense": "ppo", "seed": 0, "iterations": 4,
                       "steps_per_iteration": 512, "hidden_sizes": [64, 64],
                       "budget_tag": "serve"},
            "attack": {"kind": "none"},
            "threat": {"kind": "none"},
            "eval": {"episodes": 8, "seed": 1234},
        }
        assert request_key(bare) == request_key(explicit)


class TestKeySeparation:
    @settings(deadline=None, max_examples=80)
    @given(a=requests(), b=requests())
    def test_distinct_normalizations_never_collide(self, a, b):
        """Keys are injective on canonical forms (SHA-256, modulo miracles)."""
        if normalize_request(a) == normalize_request(b):
            assert request_key(a) == request_key(b)
        else:
            assert request_key(a) != request_key(b)

    @settings(deadline=None, max_examples=40)
    @given(eps_a=st.floats(0.01, 2.0, allow_nan=False),
           eps_b=st.floats(0.01, 2.0, allow_nan=False))
    def test_threat_budget_separates_keys(self, eps_a, eps_b):
        base = {"env_id": "Hopper-v0", "attack": {"kind": "random"}}
        key_a = request_key(dict(base, threat={"epsilon": eps_a}))
        key_b = request_key(dict(base, threat={"epsilon": eps_b}))
        assert (key_a == key_b) == (eps_a == eps_b)

    def test_threat_norm_separates_keys(self):
        base = {"env_id": "Hopper-v0", "attack": {"kind": "random"}}
        assert (request_key(dict(base, threat={"norm": "linf"}))
                != request_key(dict(base, threat={"norm": "l2"})))

    def test_attack_kind_separates_keys(self):
        keys = {request_key({"env_id": "Hopper-v0", "attack": {"kind": k}})
                for k in ATTACK_KINDS}
        assert len(keys) == len(ATTACK_KINDS)


class TestValidation:
    def test_unknown_top_level_field_rejected(self):
        with pytest.raises(ProtocolError, match="unknown fields"):
            normalize_request({"env_id": "Hopper-v0", "victiim": {}})

    def test_unknown_section_field_rejected(self):
        with pytest.raises(ProtocolError, match="unknown fields"):
            normalize_request({"env_id": "Hopper-v0",
                               "eval": {"episodes": 4, "seeed": 1}})

    def test_unknown_env_rejected(self):
        with pytest.raises(ProtocolError, match="unknown environment"):
            normalize_request({"env_id": "Doom-v0"})

    def test_non_integral_float_budget_rejected(self):
        with pytest.raises(ProtocolError, match="expected an integer"):
            normalize_request({"env_id": "Hopper-v0",
                               "eval": {"episodes": 7.5}})

    def test_bool_is_not_an_integer(self):
        with pytest.raises(ProtocolError, match="expected an integer"):
            normalize_request({"env_id": "Hopper-v0",
                               "eval": {"episodes": True}})

    def test_budget_fields_on_budgetless_attack_rejected(self):
        with pytest.raises(ProtocolError, match="not meaningful"):
            normalize_request({"env_id": "Hopper-v0",
                               "attack": {"kind": "random", "iterations": 3}})

    def test_threat_none_with_attack_rejected(self):
        with pytest.raises(ProtocolError, match="incompatible"):
            normalize_request({"env_id": "Hopper-v0",
                               "attack": {"kind": "random"},
                               "threat": {"kind": "none"}})

    def test_nonpositive_epsilon_rejected(self):
        with pytest.raises(ProtocolError, match="must be > 0"):
            normalize_request({"env_id": "Hopper-v0",
                               "attack": {"kind": "random"},
                               "threat": {"epsilon": 0.0}})


class TestWireFormat:
    @settings(deadline=None, max_examples=50)
    @given(request=requests())
    def test_roundtrip(self, request):
        message = {"op": "submit", "id": "c1", "request": request}
        assert decode_message(encode_message(message)) == message

    def test_nan_rejected_on_encode(self):
        with pytest.raises(ProtocolError, match="unencodable"):
            encode_message({"x": float("nan")})

    def test_malformed_line_rejected(self):
        with pytest.raises(ProtocolError, match="malformed JSON"):
            decode_message(b"{not json}\n")

    def test_non_object_rejected(self):
        with pytest.raises(ProtocolError, match="must be an object"):
            decode_message(b"[1,2]\n")
