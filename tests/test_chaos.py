"""Chaos battery: the fault-containment layer under injected faults.

Every fault here is produced by :mod:`repro.faultinject` — seeded,
step-addressed, marker-file counted — so failures replay exactly.

1. Env faults: ``FaultyEnv`` raises / emits NaN at specified steps,
   deterministically per injector seed.
2. Numerical-health guards: NaN/Inf/magnitude violations raise
   structured ``NumericalDivergence`` before any optimizer or
   checkpoint mutation.
3. Supervisor watchdog: hung, stalled (SIGSTOP), and crashed workers
   are killed and classified; sweep deadlines always terminate.
4. Scheduler containment: retries with seeded backoff, pool breakage
   requeue + inline degradation, and the acceptance sweep — one hang,
   one crash, one NaN divergence, everything else succeeds and the
   diverged cell recovers bit-identically from its last healthy
   checkpoint.
5. Store corruption: a truncated blob behind a valid sidecar is caught
   by ``verify`` and treated as a cache miss by ``get``.
"""

from __future__ import annotations

import os
import pickle
import signal
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import envs
from repro.attacks import AttackConfig
from repro.attacks.imap.regularizers import RiskRegularizer
from repro.fabric import FabricConfig, FabricQueue, FabricWorker
from repro.faultinject import (
    FaultInjectionError,
    FaultInjector,
    FaultSpec,
    WorkerFault,
    skew_lease,
    truncate_blob,
    truncate_queue_entry,
)
from repro.nn import as_tensor
from repro.rl import (
    NumericalDivergence,
    TrainConfig,
    check_finite,
    check_gradients,
    train_ppo,
)
from repro.runtime import (
    ERROR_KINDS,
    Job,
    WorkerPool,
    compute_backoff,
    classify_exception,
    run_parallel,
)
from repro.runtime.supervisor import WorkerTimeout
from repro.store import ArtifactStore
from repro.telemetry import Telemetry

SEED = 5
STEPS = 64


# ----------------------------------------------------- picklable job helpers

def _ok_job(value=1, seed=None):
    return value


def _sleep_job(seconds=3600.0, seed=None):
    time.sleep(seconds)
    return "woke"


def _sigstop_job(seed=None):
    # Freeze this worker process without exiting: heartbeat thread stops
    # beating while the process stays "alive" — the stalled-worker case.
    os.kill(os.getpid(), signal.SIGSTOP)
    return "resumed"


def _backoff_schedule(seed, rounds=6):
    rng = np.random.default_rng(np.random.SeedSequence(seed))
    return [compute_backoff(0.2, r, rng) for r in range(1, rounds + 1)]


def _send_backoff_schedule(conn, seed):
    conn.send(_backoff_schedule(seed))
    conn.close()


@dataclass
class _InjectedNaNLoss:
    """extra_loss hook that returns one NaN once armed, else exact zero.

    Arming is two-stage so the fault fires *after* a healthy checkpoint
    exists: the training callback writes ``phase_path`` when iteration 0
    completes, and the first extra-loss call after that claims
    ``marker`` (O_EXCL, cross-process) and returns NaN.  With
    ``marker=None`` the hook is inert but still runs the same zero-loss
    code path, so faulted-and-recovered runs stay bit-comparable to an
    unfaulted baseline.
    """

    marker: str | None = None
    phase_path: str | None = None

    def __call__(self, policy, obs, dist):
        if (self.marker is not None and self.phase_path is not None
                and os.path.exists(self.phase_path)):
            try:
                os.close(os.open(self.marker,
                                 os.O_CREAT | os.O_EXCL | os.O_WRONLY))
                return as_tensor(float("nan"))
            except FileExistsError:
                pass
        return as_tensor(0.0)


def _train_job(checkpoint_path=None, checkpoint_every=0, nan_marker=None,
               phase_path=None, hang_marker=None, iterations=3, seed=None):
    """Picklable training cell with optional injected NaN loss or hang.

    ``nan_marker``+``phase_path``: diverge once during iteration 1 (see
    :class:`_InjectedNaNLoss`).  ``hang_marker``: hang once in the
    iteration-1 callback (after iteration 0 checkpointed) — pair with a
    supervisor timeout.  Returns history + final parameters so tests can
    assert bit-identical recovery.
    """
    extra = _InjectedNaNLoss(marker=nan_marker, phase_path=phase_path)

    def callback(iteration, policy, record):
        if phase_path is not None and iteration == 0:
            open(phase_path, "w").close()
        if hang_marker is not None and iteration == 1:
            try:
                os.close(os.open(hang_marker,
                                 os.O_CREAT | os.O_EXCL | os.O_WRONLY))
                time.sleep(3600.0)
            except FileExistsError:
                pass

    config = TrainConfig(iterations=iterations, steps_per_iteration=STEPS,
                         seed=SEED)
    result = train_ppo(envs.make("Hopper-v0"), config, extra_loss=extra,
                       callback=callback, checkpoint_path=checkpoint_path,
                       checkpoint_every=checkpoint_every)
    return {"history": result.history, "params": result.policy.state_dict()}


def _assert_same_outcome(actual: dict, baseline: dict) -> None:
    assert actual["history"] == baseline["history"]
    assert sorted(actual["params"]) == sorted(baseline["params"])
    for key, value in baseline["params"].items():
        np.testing.assert_array_equal(actual["params"][key], value,
                                      err_msg=key)


# -------------------------------------------------------------- env faults

class TestFaultyEnv:
    def _env(self, *specs, seed=0):
        injector = FaultInjector(seed=seed)
        return injector, injector.wrap_env(envs.make("Hopper-v0"), *specs)

    def test_raise_at_exact_step(self):
        injector, env = self._env(FaultSpec("raise", at_step=3))
        env.reset(seed=0)
        action = np.zeros(env.action_space.shape)
        with injector:
            env.step(action)
            env.step(action)
            with pytest.raises(FaultInjectionError, match="step 3"):
                env.step(action)
        assert injector.fired == [(3, "raise")]

    def test_nan_poisons_obs_and_reward_once(self):
        injector, env = self._env(FaultSpec("nan", at_step=2))
        env.reset(seed=0)
        action = np.zeros(env.action_space.shape)
        with injector:
            obs1, reward1, *_ = env.step(action)
            obs2, reward2, *_ = env.step(action)
            obs3, reward3, *_ = env.step(action)
        assert np.isfinite(obs1).all() and np.isfinite(reward1)
        assert np.isnan(obs2).all() and np.isnan(reward2)
        assert np.isfinite(obs3).all() and np.isfinite(reward3)  # once=True

    def test_probabilistic_faults_replay_identically(self):
        def fire_steps(seed):
            injector, env = self._env(
                FaultSpec("nan", probability=0.3, once=False), seed=seed)
            env.reset(seed=0)
            action = np.zeros(env.action_space.shape)
            with injector:
                for _ in range(30):
                    env.step(action)
            return injector.fired

        assert fire_steps(11) == fire_steps(11)
        assert fire_steps(11) != fire_steps(12)

    def test_inactive_injector_passes_through(self):
        injector, env = self._env(FaultSpec("raise", at_step=1))
        env.reset(seed=0)
        env.step(np.zeros(env.action_space.shape))  # no `with`: no fault
        assert injector.fired == []

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("explode", at_step=1)
        with pytest.raises(ValueError, match="can never fire"):
            FaultSpec("raise")
        with pytest.raises(ValueError, match="unknown worker fault kind"):
            WorkerFault(_ok_job, "explode", "marker")


# ------------------------------------------------------------ health guards

class TestHealthGuards:
    def test_clean_values_pass_through(self):
        values = np.array([1.0, -2.0, 3.0])
        assert check_finite("returns", values) is values

    def test_nan_raises_with_stats(self):
        with pytest.raises(NumericalDivergence) as excinfo:
            check_finite("returns", np.array([1.0, np.nan, np.inf]),
                         iteration=4)
        err = excinfo.value
        assert err.what == "returns" and err.iteration == 4
        assert err.stats["nan"] == 1 and err.stats["inf"] == 1
        assert "returns" in str(err) and "iteration 4" in str(err)

    def test_magnitude_guard(self):
        check_finite("loss", 1e5, max_abs=1e6)
        with pytest.raises(NumericalDivergence, match="loss"):
            check_finite("loss", -1e9, max_abs=1e6)

    def test_gradient_guard(self):
        class Param:
            def __init__(self, grad):
                self.grad = grad

        check_gradients([Param(np.ones(3)), Param(None)])
        with pytest.raises(NumericalDivergence, match="gradients"):
            check_gradients([Param(np.array([1.0, np.nan]))])

    def test_regularizer_bonus_guard(self):
        reg = RiskRegularizer(AttackConfig())
        with pytest.raises(NumericalDivergence, match="RiskRegularizer"):
            reg._checked(np.array([0.0, np.nan]))

    def test_nan_loss_aborts_training_before_checkpoint(self, tmp_path):
        phase = tmp_path / "phase"
        open(phase, "w").close()  # armed from the start ...
        ckpt = tmp_path / "ppo.ckpt.npz"
        with pytest.raises(NumericalDivergence, match="loss"):
            _train_job(checkpoint_path=str(ckpt), checkpoint_every=1,
                       nan_marker=str(tmp_path / "nan"),
                       phase_path=str(phase))
        # ... so the divergence hit in iteration 0, before any checkpoint.
        assert not ckpt.exists()

    def test_classification_taxonomy(self):
        assert classify_exception(RuntimeError("boom")) == "crash"
        assert classify_exception(TimeoutError()) == "timeout"
        assert classify_exception(WorkerTimeout()) == "timeout"
        assert classify_exception(pickle.PicklingError("no")) == "pickling"
        try:
            check_finite("x", np.array([np.nan]))
        except NumericalDivergence as exc:
            assert classify_exception(exc) == "numerical"
        from concurrent.futures.process import BrokenProcessPool
        assert classify_exception(BrokenProcessPool("dead")) == "pool_broken"
        from repro.fabric import LeaseLost, QueueCorrupt
        assert classify_exception(LeaseLost("fenced")) == "lease_lost"
        assert classify_exception(QueueCorrupt("garbled")) == "queue_corrupt"
        assert set(ERROR_KINDS) == {
            "crash", "timeout", "numerical", "pickling", "pool_broken",
            "lease_lost", "orphaned", "queue_corrupt"}


# ----------------------------------------------------------------- watchdog

class TestSupervisor:
    def test_hung_worker_killed_at_timeout(self):
        start = time.perf_counter()
        report = run_parallel([
            Job(_ok_job, kwargs={"value": 7}, name="fine"),
            Job(_sleep_job, name="hung", timeout=1.0),
        ], max_workers=2)
        assert time.perf_counter() - start < 30.0  # not 3600
        by_name = {r.name: r for r in report.results}
        assert by_name["fine"].ok and by_name["fine"].value == 7
        assert not by_name["hung"].ok
        assert by_name["hung"].error_kind == "timeout"
        assert any(act["action"] == "timeout-kill"
                   for act in report.interventions)

    def test_crashed_worker_classified_and_retried(self, tmp_path):
        marker = tmp_path / "crash-once"
        report = run_parallel(
            [Job(WorkerFault(_ok_job, "crash", str(marker)),
                 kwargs={"value": 3}, name="crashy")],
            retries=1, timeout=60.0)
        result = report.results[0]
        assert result.ok and result.value == 3 and result.attempts == 2
        (attempt, failed), = [r for r in report.retried]
        assert attempt == 1 and failed.error_kind == "crash"
        assert "exited with code 13" in failed.error

    def test_stalled_worker_caught_by_heartbeat(self):
        report = run_parallel([Job(_sigstop_job, name="stalled")],
                              heartbeat_timeout=1.0)
        result = report.results[0]
        assert not result.ok and result.error_kind == "timeout"
        assert "heartbeat" in result.error
        assert any(act["action"] == "heartbeat-kill"
                   for act in report.interventions)

    def test_sweep_deadline_terminates_everything(self):
        start = time.perf_counter()
        report = run_parallel(
            [Job(_sleep_job, name=f"h{i}") for i in range(3)],
            max_workers=1, deadline=1.5)
        assert time.perf_counter() - start < 30.0
        assert all(r.error_kind == "timeout" for r in report.results)
        actions = {act["action"] for act in report.interventions}
        assert "deadline-kill" in actions and "deadline-drop" in actions


# --------------------------------------------------------- retries + backoff

class TestRetryBackoff:
    def test_backoff_is_seeded_and_exponential(self):
        a = [compute_backoff(0.1, r, np.random.default_rng(3))
             for r in (1, 2, 3)]
        b = [compute_backoff(0.1, r, np.random.default_rng(3))
             for r in (1, 2, 3)]
        assert a == b  # same seed, same delays
        for round_index, delay in enumerate(a, start=1):
            scale = 0.1 * 2 ** (round_index - 1)
            assert 0.5 * scale <= delay <= scale

    def test_zero_base_disables_backoff_without_touching_rng(self):
        rng = np.random.default_rng(0)
        before = rng.bit_generator.state
        assert compute_backoff(0.0, 5, rng) == 0.0
        assert rng.bit_generator.state == before

    def test_run_parallel_sleeps_between_retry_rounds(self, tmp_path):
        marker = tmp_path / "raise-twice"
        start = time.perf_counter()
        report = run_parallel(
            [Job(WorkerFault(_ok_job, "raise", str(marker), times=2),
                 name="flaky")],
            retries=2, retry_backoff=0.2, backoff_seed=1)
        elapsed = time.perf_counter() - start
        assert report.results[0].ok and report.results[0].attempts == 3
        assert elapsed >= 0.2  # round 1 ≥ 0.1, round 2 ≥ 0.2

    def test_rounds_beyond_the_cap_stay_bounded(self):
        # 2^9999 would overflow float; the exponent clamp + cap must not.
        delay = compute_backoff(1.0, 10_000, np.random.default_rng(0))
        assert 0.0 < delay <= 60.0
        assert compute_backoff(5.0, 1_000, np.random.default_rng(1),
                               cap=2.5) <= 2.5
        # The cap bounds the scale *before* jitter, so delays never grow
        # past cap no matter the round.
        rng = np.random.default_rng(2)
        delays = [compute_backoff(0.5, r, rng) for r in range(1, 80)]
        assert max(delays) <= 60.0
        assert all(d > 0.0 for d in delays)

    def test_zero_backoff_never_sleeps(self, tmp_path, monkeypatch):
        import repro.runtime.scheduler as sched_mod

        sleeps: list[float] = []
        monkeypatch.setattr(sched_mod.time, "sleep",
                            lambda s: sleeps.append(s))
        marker = tmp_path / "raise-twice-nosleep"
        report = run_parallel(
            [Job(WorkerFault(_ok_job, "raise", str(marker), times=2),
                 name="flaky")],
            retries=2, retry_backoff=0.0, backoff_seed=1)
        assert report.results[0].ok and report.results[0].attempts == 3
        assert sleeps == []

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 2**32 - 1), st.integers(1, 40))
    def test_identical_seed_yields_identical_schedule(self, seed, rounds):
        def schedule():
            rng = np.random.default_rng(np.random.SeedSequence(seed))
            return [compute_backoff(0.3, r, rng) for r in range(1, rounds + 1)]

        assert schedule() == schedule()

    def test_schedule_identical_across_processes(self):
        import multiprocessing

        ctx = multiprocessing.get_context("fork")
        parent, child = ctx.Pipe()
        proc = ctx.Process(target=_send_backoff_schedule, args=(child, 123))
        proc.start()
        remote = parent.recv()
        proc.join(timeout=10)
        assert remote == _backoff_schedule(123)


# ----------------------------------------------------------- pool breakage

class TestPoolDegradation:
    def test_broken_pool_requeues_then_degrades_inline(self, tmp_path):
        marker = tmp_path / "crash-twice"
        telemetry = Telemetry.in_memory()
        jobs = [Job(WorkerFault(_ok_job, "crash", str(marker), times=2),
                    kwargs={"value": 0}, name="crasher")]
        jobs += [Job(_ok_job, kwargs={"value": i}, name=f"ok{i}")
                 for i in (1, 2, 3)]
        report = run_parallel(jobs, max_workers=2, telemetry=telemetry)
        assert report.n_failed == 0, report.failures
        assert report.degraded
        assert {r.name for _, r in report.retried} >= {"crasher"}
        assert all(r.error_kind == "pool_broken" for _, r in report.retried)
        assert report.values()[:4] == [0, 1, 2, 3]
        assert any(e["type"] == "schedule.degraded"
                   for e in telemetry.sink.events)
        assert "degraded to inline" in report.summary()


# ------------------------------------------------------------ the acceptance

class TestAcceptanceSweep:
    def test_faulted_sweep_contains_all_three_faults(self, tmp_path):
        baseline = _train_job(iterations=3)

        jobs = [
            Job(_ok_job, kwargs={"value": 11}, name="cell-a"),
            Job(_train_job, name="diverge", checkpointable=True,
                kwargs={"nan_marker": str(tmp_path / "nan"),
                        "phase_path": str(tmp_path / "phase")}),
            Job(WorkerFault(_ok_job, "hang", str(tmp_path / "hang"),
                            times=99), name="hung", timeout=1.5),
            Job(WorkerFault(_ok_job, "crash", str(tmp_path / "crash")),
                kwargs={"value": 33}, name="crashed"),
            Job(_ok_job, kwargs={"value": 22}, name="cell-b"),
        ]
        telemetry = Telemetry.in_memory()
        report = run_parallel(jobs, max_workers=2, retries=1, timeout=90.0,
                              checkpoint_dir=tmp_path / "ckpts",
                              checkpoint_every=1, telemetry=telemetry)

        by_name = {r.name: r for r in report.results}
        # Every healthy cell succeeded despite its faulty neighbours.
        assert by_name["cell-a"].ok and by_name["cell-a"].value == 11
        assert by_name["cell-b"].ok and by_name["cell-b"].value == 22
        # The permanently hung cell was killed (twice) and classified.
        assert not by_name["hung"].ok
        assert by_name["hung"].error_kind == "timeout"
        assert by_name["hung"].attempts == 2
        # The crash was classified and its retry succeeded.
        assert by_name["crashed"].ok and by_name["crashed"].value == 33
        assert by_name["crashed"].attempts == 2
        # Requeued attempts carry the correct taxonomy tags.
        retried_kinds = {r.name: r.error_kind for _, r in report.retried}
        assert retried_kinds["crashed"] == "crash"
        assert retried_kinds["diverge"] == "numerical"
        assert retried_kinds["hung"] == "timeout"
        # The diverged cell recovered bit-identically from the last
        # healthy checkpoint (iteration 1, written before the NaN fired).
        assert by_name["diverge"].ok and by_name["diverge"].attempts == 2
        _assert_same_outcome(by_name["diverge"].value, baseline)
        # ... and telemetry classified every requeued attempt.
        attempts = [e["payload"] for e in telemetry.sink.events
                    if e["type"] == "job.attempt"]
        assert ({(p["name"], p["error_kind"]) for p in attempts}
                >= {("crashed", "crash"), ("diverge", "numerical"),
                    ("hung", "timeout")})

    def test_kill_and_resume_under_injected_hang(self, tmp_path):
        baseline = _train_job(iterations=3)
        report = run_parallel(
            [Job(_train_job, name="hangs-mid-train", checkpointable=True,
                 kwargs={"hang_marker": str(tmp_path / "hang")},
                 timeout=10.0)],
            retries=1, checkpoint_dir=tmp_path / "ckpts", checkpoint_every=1)
        result = report.results[0]
        assert result.ok and result.attempts == 2
        (attempt, failed), = report.retried
        assert failed.error_kind == "timeout"
        # Killed mid-iteration-1; the retry resumed from iteration 1's
        # checkpoint and finished exactly as a run that never hung.
        _assert_same_outcome(result.value, baseline)


# ------------------------------------------------------------ store faults

class TestStoreCorruption:
    def _store(self, tmp_path) -> tuple[ArtifactStore, str]:
        store = ArtifactStore(tmp_path / "store")
        entry = store.put({"kind": "victim", "env_id": "Hopper-v0"},
                          {"w": np.arange(64, dtype=np.float64)})
        return store, entry.key

    def test_truncated_blob_reported_by_verify(self, tmp_path):
        store, key = self._store(tmp_path)
        assert store.verify() == []
        truncate_blob(store, key)
        problems = store.verify()
        assert len(problems) == 1
        assert "truncated" in problems[0] or "bytes" in problems[0]

    def test_truncated_blob_is_a_cache_miss(self, tmp_path):
        store, key = self._store(tmp_path)
        spec = {"kind": "victim", "env_id": "Hopper-v0"}
        assert store.get(spec) is not None
        truncate_blob(store, key)
        assert store.get(spec) is None  # caller falls back to retraining

    def test_truncate_requires_committed_artifact(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        with pytest.raises(FileNotFoundError):
            truncate_blob(store, "0" * 64)


# ---------------------------------------------------- persistent pool chaos

def _rollout_job(seed=7):
    """Deterministic mini-rollout: real env stepping inside the worker."""
    env = envs.make("Hopper-v0")
    env.seed(seed)
    rng = np.random.default_rng(np.random.SeedSequence(seed))
    obs = env.reset()
    total = 0.0
    for _ in range(STEPS):
        obs, reward, terminated, truncated, _ = env.step(
            rng.uniform(-1.0, 1.0, size=env.action_space.shape))
        total += reward
        if terminated or truncated:
            obs = env.reset()
    return {"total": total, "final_obs": np.asarray(obs).tolist()}


class TestWorkerPoolChaos:
    def test_worker_killed_mid_rollout_requeued_bit_identical(self, tmp_path):
        """SIGKILL-equivalent crash mid-job: classified, replaced, retried.

        The fault fires once (marker-counted), so the retry on the
        replacement worker runs the rollout clean — and must return the
        same bits an unfaulted inline run produces.
        """
        marker = tmp_path / "pool-crash"
        job = Job(fn=WorkerFault(_rollout_job, "crash", str(marker)),
                  name="rollout")
        with WorkerPool(max_workers=2) as pool:
            report = run_parallel([job], pool=pool, retries=1)
            assert pool.replacements == 1
            heartbeats = list(Path(pool._tmp.name).glob("*.heartbeat"))
            assert len(heartbeats) == 2  # dead worker's file was removed
        assert report.n_failed == 0
        assert len(report.retried) == 1
        assert report.retried[0][1].error_kind == "crash"
        assert "exited with code 13" in report.retried[0][1].error
        assert report.values()[0] == _rollout_job()

    def test_crash_without_retry_is_contained(self, tmp_path):
        """No retries: the crash is a classified failure, not an exception,
        and the refilled pool keeps serving subsequent sweeps."""
        marker = tmp_path / "pool-crash-noretry"
        with WorkerPool(max_workers=1) as pool:
            report = run_parallel(
                [Job(fn=WorkerFault(_ok_job, "crash", str(marker)),
                     name="boom")], pool=pool)
            assert report.results[0].error_kind == "crash"
            follow_up = run_parallel(
                [Job(fn=_ok_job, args=(5,), name="after")], pool=pool)
        assert follow_up.values() == [5]

    def test_no_stale_files_after_graceful_close_and_sigkill(self):
        """Neither shutdown mode leaves heartbeat files or shm segments."""
        from repro.runtime.shm import default_shm_dir

        shm_dir = Path(default_shm_dir())

        pool = WorkerPool(max_workers=2)
        root = Path(pool._tmp.name)
        pool.run([Job(fn=_ok_job, args=(1,), name="warm")])
        pool.close()
        assert not root.exists()

        pool = WorkerPool(max_workers=2)
        root = Path(pool._tmp.name)
        pool.run([Job(fn=_ok_job, args=(1,), name="warm")])
        for worker in list(pool._live):
            os.kill(worker.process.pid, signal.SIGKILL)
            worker.process.join(5.0)
        pool.close()  # close after carnage still cleans the directory
        assert not root.exists()
        assert sorted(shm_dir.glob("repro-pool-*")) == []

# ------------------------------------------------- fabric split-brain battery

from repro.fabric import highest_token, try_acquire  # noqa: E402
from repro.fabric.probe import probe_job  # noqa: E402

_FORK = __import__("multiprocessing").get_context("fork")
# Aggressive timings so steals happen in test time; worker_timeout is
# deliberately *shorter* than lease_timeout, so by the time a token is
# stealable its dead owner's daemon heartbeat is unambiguously stale.
_FAB_CFG = FabricConfig(lease_timeout=1.0, renew_interval=0.1,
                        poll_interval=0.05, worker_timeout=0.5, grace=30.0)


def _fabric_daemon(fabric_dir, worker_id, supervise=False, idle_exit=None,
                   max_jobs=None):
    """Fork-process target: one worker daemon draining the shared dir."""
    queue = FabricQueue(fabric_dir)
    worker = FabricWorker(queue, worker_id=worker_id, supervise=supervise)
    worker.work(idle_exit=idle_exit, max_jobs=max_jobs)


def _wait_for(predicate, timeout=60.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class TestFabricSplitBrain:
    def test_sigkill_mid_lease_stolen_and_bit_identical(self, tmp_path):
        """Daemon SIGKILLed mid-job: the job is re-leased by a second
        daemon, resumed from its fabric checkpoint, recorded as an
        ``orphaned`` steal, and completes bit-identically."""
        import threading

        baseline = _train_job(iterations=3)
        fabric = tmp_path / "fabric"
        queue = FabricQueue(fabric, config=_FAB_CFG)
        hang = tmp_path / "hang"
        daemon_a = _FORK.Process(target=_fabric_daemon,
                                 args=(str(fabric), "daemon-a"))
        daemon_a.start()
        spawned: dict = {}
        chaos_errors: list[str] = []

        def chaos():
            # The job claims `hang` inside iteration 1, after iteration
            # 1's checkpoint hit the shared dir — that's "mid-lease".
            if not _wait_for(hang.exists, timeout=120.0):
                chaos_errors.append("job never reached the hang marker")
                return
            os.kill(daemon_a.pid, signal.SIGKILL)
            daemon_b = _FORK.Process(target=_fabric_daemon,
                                     args=(str(fabric), "daemon-b"),
                                     kwargs={"idle_exit": 2.0})
            daemon_b.start()
            spawned["daemon_b"] = daemon_b

        thread = threading.Thread(target=chaos)
        thread.start()
        report = run_parallel(
            [Job(_train_job, name="stolen-cell", checkpointable=True,
                 kwargs={"hang_marker": str(hang)})],
            fabric_dir=fabric, checkpoint_every=1)
        thread.join()
        assert chaos_errors == []
        daemon_a.join(5.0)
        spawned["daemon_b"].join(30.0)

        result = report.results[0]
        assert result.ok
        # Resumed on daemon-b from daemon-a's checkpoint: same bits as a
        # run that was never interrupted.
        _assert_same_outcome(result.value, baseline)
        # The steal was surfaced as an orphaned attempt in the report.
        assert "orphaned" in [r.error_kind for _, r in report.retried]
        job_id, = queue.entries()
        envelope = queue.result_envelope(job_id)
        assert envelope["worker"] == "daemon-b"
        assert envelope["token"] == 2  # the thief's newer fencing token
        assert not report.degraded

    def test_sigstop_zombie_fences_itself(self, tmp_path):
        """Daemon SIGSTOPped past the heartbeat timeout: its job is
        stolen and completed; on SIGCONT the zombie must abandon its
        result (``lease_lost``) — the committed envelope is the thief's."""
        fabric = tmp_path / "fabric"
        queue = FabricQueue(fabric, config=_FAB_CFG)
        started = tmp_path / "started"
        release = tmp_path / "release"
        job = Job(probe_job, name="held",
                  kwargs={"steps": 16, "start_marker": str(started),
                          "hold_until": str(release), "seed": 3})
        job_id = "000001-held"
        queue.enqueue(job, job_id, job.payload())

        zombie = _FORK.Process(target=_fabric_daemon,
                               args=(str(fabric), "zombie-a"),
                               kwargs={"idle_exit": 2.0})
        zombie.start()
        assert _wait_for(started.exists)
        os.kill(zombie.pid, signal.SIGSTOP)  # freeze mid-job: heartbeats stop
        time.sleep(_FAB_CFG.lease_timeout + 0.3)  # let token t1 go stale

        thief = _FORK.Process(target=_fabric_daemon,
                              args=(str(fabric), "thief-b"),
                              kwargs={"idle_exit": 2.0})
        thief.start()
        assert _wait_for(lambda: (highest_token(queue.lease_dir(job_id))
                                  or (0,))[0] >= 2)
        release.touch()
        assert _wait_for(lambda: queue.result_envelope(job_id) is not None)
        os.kill(zombie.pid, signal.SIGCONT)
        zombie.join(30.0)
        thief.join(30.0)

        envelope = queue.result_envelope(job_id)
        assert envelope["token"] == 2 and envelope["worker"] == "thief-b"
        kinds = {record["error_kind"] for record in queue.attempts(job_id)}
        assert "lease_lost" in kinds  # the zombie abandoned, not published
        assert "orphaned" in kinds    # the thief logged the dead-looking owner
        result = queue.load_result(job_id, envelope)
        assert result.ok
        assert result.value == probe_job(steps=16, seed=3)  # markers change nothing

    def test_clock_skewed_steal_makes_owner_abandon(self, tmp_path):
        """A claimant whose clock runs fast steals a *healthy* lease.
        Both sides are alive: the owner must fence itself and abandon,
        and nobody records it as orphaned (it reports for itself)."""
        fabric = tmp_path / "fabric"
        queue = FabricQueue(fabric, config=_FAB_CFG)
        started = tmp_path / "started"
        release = tmp_path / "release"
        job = Job(probe_job, name="skewed",
                  kwargs={"steps": 16, "start_marker": str(started),
                          "hold_until": str(release), "seed": 4})
        job_id = "000001-skewed"
        queue.enqueue(job, job_id, job.payload())

        owner = _FORK.Process(target=_fabric_daemon,
                              args=(str(fabric), "owner-a"),
                              kwargs={"idle_exit": 2.0})
        owner.start()
        assert _wait_for(started.exists)
        # Steal with a clock 60s ahead: to the thief, the owner's fresh
        # heartbeat looks long-expired even though it renews constantly.
        lease = try_acquire(queue.lease_dir(job_id), job_id, "skewed-thief",
                            _FAB_CFG.lease_timeout, now=time.time() + 60.0)
        assert lease is not None and lease.token == 2
        assert lease.superseded_owner == "owner-a"
        # The thief starts executing right away (its keeper renews t2 —
        # otherwise the fenced owner would steal the job *back* at t3).
        import threading

        entry = queue.read_entry(job_id)
        thief = FabricWorker(queue, worker_id="skewed-thief", supervise=False)
        thief_thread = threading.Thread(target=thief._execute,
                                        args=(entry, lease))
        thief_thread.start()
        release.touch()
        thief_thread.join(30.0)
        owner.join(30.0)  # owner finishes, fences itself, abandons, idles out

        envelope = queue.result_envelope(job_id)
        assert envelope["token"] == 2 and envelope["worker"] == "skewed-thief"
        records = queue.attempts(job_id)
        # Exactly one containment record: the owner's self-report.  The
        # live owner is never double-logged as orphaned by its thief.
        assert [r["error_kind"] for r in records] == ["lease_lost"]
        assert records[0]["owner"] == "owner-a"
        assert queue.load_result(job_id, envelope).ok

    def test_truncated_queue_entry_quarantined(self, tmp_path):
        """A damaged entry is classified queue_corrupt, moved aside, and
        answered — it can never wedge the scan loop."""
        queue = FabricQueue(tmp_path / "fabric", config=_FAB_CFG)
        job = Job(_ok_job, kwargs={"value": 9}, name="damaged")
        queue.enqueue(job, "000001-damaged", job.payload())
        truncate_queue_entry(queue, "000001-damaged")

        worker = FabricWorker(queue, worker_id="contain", supervise=False)
        assert worker.scan_once()
        envelope = queue.result_envelope("000001-damaged")
        assert envelope["error_kind"] == "queue_corrupt"
        assert queue.entries() == []  # quarantined, not rescanned
        assert (queue.quarantine_dir / "000001-damaged.json").exists()
        result = queue.load_result("000001-damaged", envelope)
        assert not result.ok and result.error_kind == "queue_corrupt"

    def test_two_daemons_one_queue_bit_identical_to_single_host(self, tmp_path):
        """The acceptance sweep: two supervised daemons race over one
        queue; every cell matches a single-host run_parallel bit for bit."""
        def jobs():
            return [Job(probe_job, name=f"cell-{s}",
                        kwargs={"steps": 24, "seed": s}) for s in range(6)]

        baseline = run_parallel(jobs(), max_workers=2)
        fabric = tmp_path / "fabric"
        queue = FabricQueue(fabric, config=_FAB_CFG)
        daemons = [
            _FORK.Process(target=_fabric_daemon,
                          args=(str(fabric), f"sweeper-{i}"),
                          kwargs={"idle_exit": 2.0, "supervise": True})
            for i in range(2)
        ]
        for proc in daemons:
            proc.start()
        report = run_parallel(jobs(), fabric_dir=fabric)
        for proc in daemons:
            proc.join(60.0)

        assert not report.degraded and report.n_failed == 0
        assert ([r.name for r in report.results]
                == [r.name for r in baseline.results])
        for ours, reference in zip(report.results, baseline.results):
            assert ours.value == reference.value  # bit-identical cross-host
        committed = {queue.result_envelope(job_id)["worker"]
                     for job_id in queue.entries()}
        assert committed <= {"sweeper-0", "sweeper-1"}
