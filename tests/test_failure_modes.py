"""Failure injection: wrong shapes, misuse, and corrupted inputs should
fail loudly (or be handled) rather than silently corrupt results."""

from __future__ import annotations

import numpy as np
import pytest

from repro import envs
from repro.attacks import StatePerturbationEnv
from repro.envs.physics import BodyConfig, LinkChainBody
from repro.nn import MLP, Adam, Tensor
from repro.rl import ActorCritic, RolloutBuffer


class TestShapeErrors:
    def test_body_rejects_wrong_action_dim(self):
        body = LinkChainBody(BodyConfig(n_joints=4))
        with pytest.raises(ValueError):
            body.step(np.zeros(3))

    def test_matmul_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            _ = Tensor(np.ones((2, 3))) @ Tensor(np.ones((2, 3)))

    def test_checkpoint_into_wrong_architecture(self, rng):
        a = ActorCritic(4, 2, hidden_sizes=(8,), rng=rng)
        b = ActorCritic(4, 2, hidden_sizes=(16,), rng=rng)
        with pytest.raises((KeyError, ValueError)):
            b.load_checkpoint_state(a.checkpoint_state())

    def test_buffer_rejects_overflow(self, rng):
        buf = RolloutBuffer(1, 2, 1)
        buf.add(np.zeros(2), np.zeros(1), 0.0, 0.0, 0.0)
        with pytest.raises(RuntimeError):
            buf.add(np.zeros(2), np.zeros(1), 0.0, 0.0, 0.0)


class TestNumericalRobustness:
    def test_env_observations_stay_finite_under_extreme_actions(self):
        for env_id in ("Hopper-v0", "Ant-v0", "SparseWalker2d-v0"):
            env = envs.make(env_id)
            obs = env.reset(seed=0)
            for _ in range(100):
                obs, reward, term, trunc, _ = env.step(
                    np.full(env.action_space.shape, 1e9))
                assert np.isfinite(obs).all(), env_id
                assert np.isfinite(reward), env_id
                if term or trunc:
                    obs = env.reset()

    def test_game_stays_finite_under_extreme_actions(self):
        game = envs.make_game("KickAndDefend-v0")
        game.reset(seed=0)
        big = np.full(3, 1e6)
        for _ in range(50):
            (ov, oa), (rv, ra), done, _ = game.step(big, -big)
            assert np.isfinite(ov).all() and np.isfinite(oa).all()
            assert np.isfinite(rv)
            if done:
                game.reset()

    def test_adversary_env_survives_nan_free_with_huge_actions(self, tiny_victim):
        adv = StatePerturbationEnv(envs.make("Hopper-v0"), tiny_victim, epsilon=0.5)
        obs = adv.reset(seed=0)
        for _ in range(30):
            obs, r, term, trunc, _ = adv.step(np.full(11, 1e12))
            assert np.isfinite(obs).all() and np.isfinite(r)
            if term or trunc:
                obs = adv.reset()

    def test_normalizer_handles_constant_inputs(self):
        from repro.rl import ObservationNormalizer
        norm = ObservationNormalizer((2,))
        for _ in range(50):
            out = norm(np.array([3.0, 3.0]))
        assert np.isfinite(out).all()

    def test_adam_survives_zero_gradients(self, rng):
        net = MLP(2, (4,), 1, rng=rng)
        opt = Adam(net.parameters(), lr=0.1)
        loss = net(np.zeros((3, 2))).sum() * 0.0
        opt.zero_grad()
        loss.backward()
        opt.step()
        assert all(np.isfinite(p.data).all() for p in net.parameters())

    def test_gaussian_log_prob_extreme_actions_finite(self, rng):
        from repro.nn import DiagGaussian
        dist = DiagGaussian(np.zeros((2, 3)), np.full(3, -2.0))
        lp = dist.log_prob(np.full((2, 3), 50.0))
        assert np.isfinite(lp.data).all()


class TestMisuse:
    def test_sparse_env_reset_required_semantics(self):
        env = envs.make("SparseHopper-v0")
        env.reset(seed=0)
        env.step(np.zeros(3))  # fine after reset

    def test_unwrapped_reaches_base_through_two_layers(self):
        env = envs.make("SparseHopper-v0")
        from repro.envs.sparse import SparseLocomotionEnv
        assert isinstance(env.unwrapped, SparseLocomotionEnv)

    def test_attack_config_rejects_unknown_override(self):
        from repro.experiments import SCALES, attack_config_for
        with pytest.raises(TypeError):
            attack_config_for(SCALES["smoke"], seed=0, not_a_field=1)

    def test_victim_action_works_without_explicit_rng_state(self, tiny_victim):
        action = tiny_victim.action(np.zeros(11), np.random.default_rng(0),
                                    deterministic=True)
        assert action.shape == (3,)
