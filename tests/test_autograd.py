"""Gradient correctness of the autograd engine (numeric checks +
hypothesis property tests)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.nn import Tensor, as_tensor, is_grad_enabled, no_grad
from repro.nn import functional as F


def numeric_grad(fn, x0: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    grad = np.zeros_like(x0, dtype=np.float64)
    for idx in np.ndindex(*x0.shape):
        xp, xm = x0.copy(), x0.copy()
        xp[idx] += eps
        xm[idx] -= eps
        grad[idx] = (fn(Tensor(xp)).item() - fn(Tensor(xm)).item()) / (2 * eps)
    return grad


def check_grad(fn, x0: np.ndarray, atol: float = 1e-5) -> None:
    x = Tensor(x0.copy(), requires_grad=True)
    fn(x).backward()
    assert x.grad is not None
    np.testing.assert_allclose(x.grad, numeric_grad(fn, x0), atol=atol)


SAFE = arrays(np.float64, (3, 2),
              elements=st.floats(-2.0, 2.0, allow_nan=False, width=64))


class TestElementwiseGradients:
    def test_add(self, rng):
        check_grad(lambda x: (x + 2.5).sum(), rng.standard_normal((4, 3)))

    def test_mul(self, rng):
        other = rng.standard_normal((4, 3))
        check_grad(lambda x: (x * other).sum(), rng.standard_normal((4, 3)))

    def test_sub_and_neg(self, rng):
        check_grad(lambda x: (3.0 - x - x).sum(), rng.standard_normal((2, 5)))

    def test_div(self, rng):
        denom = rng.standard_normal((3, 3)) + 4.0
        check_grad(lambda x: (x / denom).sum(), rng.standard_normal((3, 3)))

    def test_rdiv(self, rng):
        x0 = rng.uniform(1.0, 2.0, size=(3, 3))
        check_grad(lambda x: (1.0 / x).sum(), x0)

    def test_pow(self, rng):
        check_grad(lambda x: (x**3).sum(), rng.standard_normal((3, 3)))

    def test_exp_log(self, rng):
        x0 = rng.uniform(0.5, 2.0, size=(4, 2))
        check_grad(lambda x: x.exp().sum(), x0)
        check_grad(lambda x: x.log().sum(), x0)

    def test_tanh_sigmoid_sqrt_abs(self, rng):
        x0 = rng.uniform(0.2, 1.5, size=(3, 3))
        check_grad(lambda x: x.tanh().sum(), x0)
        check_grad(lambda x: x.sigmoid().sum(), x0)
        check_grad(lambda x: x.sqrt().sum(), x0)
        check_grad(lambda x: x.abs().sum(), x0)

    def test_relu(self, rng):
        x0 = rng.standard_normal((4, 4)) + 0.05  # keep away from the kink
        check_grad(lambda x: x.relu().sum(), x0)

    def test_clip_gradient_zero_outside(self):
        x = Tensor(np.array([-2.0, 0.0, 2.0]), requires_grad=True)
        x.clip(-1.0, 1.0).sum().backward()
        np.testing.assert_array_equal(x.grad, [0.0, 1.0, 0.0])


class TestBroadcasting:
    def test_bias_broadcast(self, rng):
        bias = Tensor(np.zeros(3), requires_grad=True)
        x = Tensor(rng.standard_normal((5, 3)))
        (x + bias).sum().backward()
        np.testing.assert_allclose(bias.grad, np.full(3, 5.0))

    def test_scalar_broadcast(self, rng):
        s = Tensor(np.array(2.0), requires_grad=True)
        x = Tensor(rng.standard_normal((4, 4)))
        (x * s).sum().backward()
        np.testing.assert_allclose(s.grad, x.data.sum())

    def test_row_broadcast_mul(self, rng):
        row = Tensor(rng.standard_normal((1, 4)), requires_grad=True)
        x = rng.standard_normal((3, 4))
        (Tensor(x) * row).sum().backward()
        np.testing.assert_allclose(row.grad, x.sum(axis=0, keepdims=True))


class TestMatmul:
    def test_matmul_both_sides(self, rng):
        a0 = rng.standard_normal((4, 3))
        b0 = rng.standard_normal((3, 2))
        a = Tensor(a0, requires_grad=True)
        b = Tensor(b0, requires_grad=True)
        (a @ b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((4, 2)) @ b0.T)
        np.testing.assert_allclose(b.grad, a0.T @ np.ones((4, 2)))

    def test_vector_matmul(self, rng):
        v = Tensor(rng.standard_normal(3), requires_grad=True)
        m = Tensor(rng.standard_normal((3, 2)))
        (v @ m).sum().backward()
        np.testing.assert_allclose(v.grad, m.data.sum(axis=1))


class TestReductionsAndShape:
    def test_sum_axis(self, rng):
        check_grad(lambda x: x.sum(axis=0).sum(), rng.standard_normal((3, 4)))
        check_grad(lambda x: x.sum(axis=1, keepdims=True).sum(), rng.standard_normal((3, 4)))

    def test_mean(self, rng):
        x0 = rng.standard_normal((4, 5))
        check_grad(lambda x: x.mean(), x0)
        check_grad(lambda x: x.mean(axis=1).sum(), x0)

    def test_max(self, rng):
        x0 = rng.standard_normal((3, 6))
        check_grad(lambda x: x.max(axis=1).sum(), x0)

    def test_reshape(self, rng):
        check_grad(lambda x: (x.reshape(6) ** 2).sum(), rng.standard_normal((2, 3)))

    def test_transpose(self, rng):
        w = rng.standard_normal((3, 2))
        check_grad(lambda x: (x.T @ Tensor(w)).sum(), rng.standard_normal((3, 4)))

    def test_getitem(self, rng):
        check_grad(lambda x: (x[0:2, 1] ** 2).sum(), rng.standard_normal((4, 3)))

    def test_getitem_fancy_accumulates(self):
        x = Tensor(np.arange(4.0), requires_grad=True)
        idx = np.array([0, 0, 2])
        x[idx].sum().backward()
        np.testing.assert_array_equal(x.grad, [2.0, 0.0, 1.0, 0.0])


class TestFunctional:
    def test_minimum_maximum(self, rng):
        x0 = rng.standard_normal((4, 3))
        other = rng.standard_normal((4, 3))
        check_grad(lambda x: F.minimum(x, other).sum(), x0)
        check_grad(lambda x: F.maximum(x * 2.0, other).sum(), x0)

    def test_where(self, rng):
        x0 = rng.standard_normal((5, 2))
        cond = x0 > 0
        check_grad(lambda x: F.where(cond, x**2, x * 3.0).sum(), x0)

    def test_concatenate(self, rng):
        x0 = rng.standard_normal((3, 2))
        check_grad(lambda x: F.concatenate([x, x * 2.0], axis=0).sum(), x0)
        check_grad(lambda x: F.concatenate([x, x.tanh()], axis=1).sum(), x0)

    def test_stack(self, rng):
        x0 = rng.standard_normal((3,))
        check_grad(lambda x: (F.stack([x, x * 3.0], axis=0) ** 2).sum(), x0)

    def test_logsumexp_matches_numpy(self, rng):
        x0 = rng.standard_normal((4, 6))
        out = F.logsumexp(Tensor(x0), axis=-1)
        expected = np.log(np.exp(x0).sum(axis=-1))
        np.testing.assert_allclose(out.data, expected, atol=1e-10)

    def test_logsumexp_grad(self, rng):
        check_grad(lambda x: F.logsumexp(x, axis=-1).sum(), rng.standard_normal((3, 4)))

    def test_softmax_rows_sum_to_one(self, rng):
        probs = F.softmax(Tensor(rng.standard_normal((5, 7))), axis=-1)
        np.testing.assert_allclose(probs.data.sum(axis=-1), np.ones(5), atol=1e-12)

    def test_mse_and_huber(self, rng):
        x0 = rng.standard_normal((6,))
        target = rng.standard_normal((6,))
        check_grad(lambda x: F.mse_loss(x, target), x0)
        check_grad(lambda x: F.huber_loss(x * 3.0, target), x0, atol=1e-4)


class TestEngineMechanics:
    def test_no_grad_blocks_graph(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert not y.requires_grad
        assert is_grad_enabled()

    def test_backward_requires_scalar(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(ValueError):
            (x * 2.0).backward()

    def test_grad_accumulates_across_backwards(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        y = x * 3.0
        y.backward()
        y2 = x * 3.0
        y2.backward()
        np.testing.assert_allclose(x.grad, [6.0])

    def test_diamond_graph(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        a = x * 3.0
        b = x * 4.0
        (a * b).sum().backward()  # d/dx 12x^2 = 24x
        np.testing.assert_allclose(x.grad, [48.0])

    def test_reuse_node_multiple_consumers(self, rng):
        x0 = rng.standard_normal((3, 3))
        check_grad(lambda x: (x.tanh() * x.tanh()).sum(), x0)

    def test_detach_cuts_graph(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        y = (x * 2.0).detach() * 5.0
        assert not y.requires_grad

    def test_as_tensor_idempotent(self):
        t = Tensor([1.0, 2.0])
        assert as_tensor(t) is t
        assert isinstance(as_tensor([1.0]), Tensor)


@settings(max_examples=30, deadline=None)
@given(SAFE)
def test_property_tanh_chain_grad(x0):
    x = Tensor(x0, requires_grad=True)
    (x.tanh() * 2.0 + x**2).sum().backward()
    expected = (1.0 - np.tanh(x0) ** 2) * 2.0 + 2.0 * x0
    np.testing.assert_allclose(x.grad, expected, atol=1e-8)


@settings(max_examples=30, deadline=None)
@given(SAFE, SAFE)
def test_property_min_plus_max_equals_sum(a, b):
    total = F.minimum(Tensor(a), Tensor(b)) + F.maximum(Tensor(a), Tensor(b))
    np.testing.assert_allclose(total.data, a + b, atol=1e-12)


@settings(max_examples=30, deadline=None)
@given(SAFE)
def test_property_softmax_invariant_to_shift(x0):
    p1 = F.softmax(Tensor(x0), axis=-1).data
    p2 = F.softmax(Tensor(x0 + 100.0), axis=-1).data
    np.testing.assert_allclose(p1, p2, atol=1e-10)
